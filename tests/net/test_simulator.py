"""Unit tests for the discrete-event simulator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.net import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule(2.0, out.append, "late")
        sim.schedule(1.0, out.append, "early")
        sim.run()
        assert out == ["early", "late"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        out = []
        for i in range(5):
            sim.schedule(1.0, out.append, i)
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        out = []

        def outer():
            out.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            out.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert out == [("outer", 1.0), ("inner", 2.0)]

    def test_cancel(self):
        sim = Simulator()
        out = []
        ev = sim.schedule(1.0, out.append, "x")
        ev.cancel()
        sim.run()
        assert out == []

    def test_run_until_stops_clock(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "a")
        sim.schedule(5.0, out.append, "b")
        sim.run(until=2.0)
        assert out == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert out == ["a", "b"]

    def test_run_max_events(self):
        sim = Simulator()
        out = []
        for i in range(10):
            sim.schedule(float(i + 1), out.append, i)
        n = sim.run(max_events=3)
        assert n == 3
        assert out == [0, 1, 2]

    def test_run_with_no_events_sets_until(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_reset(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending == 0

    def test_reset_restarts_seq_tiebreaker(self):
        """A reset simulator must be bit-for-bit identical to a fresh one,
        including the seq values it assigns (regression: ``_seq`` used to
        keep counting across resets)."""
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        ev = sim.schedule(1.0, lambda: None)
        fresh_ev = Simulator().schedule(1.0, lambda: None)
        assert ev.seq == fresh_ev.seq == 0

    def test_reset_then_replay_matches_fresh(self):
        def fill(sim, out):
            for i in range(4):
                sim.schedule(1.0, out.append, i)
            sim.schedule(0.5, out.append, "first")
            sim.run()

        fresh_out: list = []
        fill(Simulator(), fresh_out)
        reused = Simulator()
        fill(reused, [])
        reused.reset()
        reused_out: list = []
        fill(reused, reused_out)
        assert reused_out == fresh_out


class TestPeriodic:
    def test_schedule_every(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now), until=5.0)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_schedule_every_stops_on_false(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            return len(ticks) < 3

        sim.schedule_every(1.0, tick)
        sim.run()
        assert len(ticks) == 3

    def test_explicit_start(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(2.0, lambda: ticks.append(sim.now), start=0.5, until=5.0)
        sim.run()
        assert ticks == [0.5, 2.5, 4.5]

    def test_bad_interval(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_every(0.0, lambda: None)


class TestHeapCompaction:
    def test_mass_cancellation_compacts_heap(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(1000)]
        for ev in events[:900]:
            ev.cancel()
        # tombstones swept once they dominate, without waiting for pop time
        assert sim.pending < 1000

    def test_compaction_preserves_ordering(self):
        sim = Simulator()
        out = []
        events = [sim.schedule(float(i % 7), out.append, i) for i in range(500)]
        keep = {i for i in range(500) if i % 3 == 0}
        for i, ev in enumerate(events):
            if i not in keep:
                ev.cancel()
        sim.run()
        expected = sorted(keep, key=lambda i: (float(i % 7), i))
        assert out == expected

    def test_cancel_during_run_is_safe(self):
        sim = Simulator()
        out = []
        later = [sim.schedule(2.0 + i * 1e-6, out.append, i) for i in range(200)]

        def cancel_most():
            for ev in later[:190]:
                ev.cancel()

        sim.schedule(1.0, cancel_most)
        sim.run()
        assert out == list(range(190, 200))

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert sim._cancelled_pending == 1
        sim.run()
        assert sim._cancelled_pending == 0


class TestDeterminism:
    @given(delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_replay_identical(self, delays):
        def run_once():
            sim = Simulator()
            out = []
            for i, d in enumerate(delays):
                sim.schedule(d, out.append, (d, i))
            sim.run()
            return out

        assert run_once() == run_once()

    @given(delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_fire_times_sorted(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
