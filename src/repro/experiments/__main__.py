"""Batch experiment runner.

Usage::

    python -m repro.experiments              # all experiments, full scale
    python -m repro.experiments E2 E4        # a subset
    python -m repro.experiments --scale 0.3  # faster, smaller
    python -m repro.experiments --markdown   # EXPERIMENTS.md-ready output
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import ExperimentConfig, run_all


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments",
                                     description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="size multiplier for workload knobs")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--markdown", action="store_true",
                        help="emit GitHub-flavoured markdown tables")
    args = parser.parse_args(argv)

    cfg = ExperimentConfig(seed=args.seed, scale=args.scale)
    only = args.experiments or None
    started = time.perf_counter()
    results = run_all(cfg, only=only)
    for exp_id, tables in results.items():
        for table in tables:
            print(table.to_markdown() if args.markdown else table.to_text())
            print()
    elapsed = time.perf_counter() - started
    print(f"# ran {sum(len(t) for t in results.values())} tables from "
          f"{len(results)} experiments in {elapsed:.1f}s "
          f"(scale={args.scale})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
