"""The paper's contribution: the adaptive distributed Traffic Control
Service (TCS).

Layered exactly as Sec. 4-5 describe:

* :mod:`ownership`    — traffic ownership + the Internet number authority,
* :mod:`certificates` — TCSP-signed ownership certificates,
* :mod:`components`   — packet-processing components (filter, rate limit,
  anti-spoof, logging, statistics, triggers, digests, scrubbing),
* :mod:`graph`        — Click-style component graphs [5, 10],
* :mod:`safety`       — Sec. 4.5 vetting + runtime conservation monitor,
* :mod:`device`       — the adaptive device with its two processing stages
  attached to a router (Figs. 2 and 6),
* :mod:`nms`          — per-ISP network management systems,
* :mod:`tcsp`         — the Traffic Control Service Provider (Figs. 3-5),
* :mod:`deployment`   — deployment scoping (border routers, tiers, AS sets),
* :mod:`service`      — the :class:`TrafficControlService` public facade,
* :mod:`apps`         — the Sec. 4.3/4.4 applications (anti-spoofing,
  distributed firewall, SPIE traceback, triggers, debugging/statistics).
"""

from repro.core.ownership import NetworkUser, NumberAuthority, OwnershipRegistry
from repro.core.certificates import CertificateAuthority, OwnershipCertificate
from repro.core.components import (
    Component,
    ComponentContext,
    HeaderFilter,
    LoggerComponent,
    PayloadHashFilter,
    PayloadScrubber,
    PrefixBlacklist,
    RateLimiterComponent,
    SourceAntiSpoof,
    StatisticsCollector,
    TriggerComponent,
    DigestStoreComponent,
    Verdict,
)
from repro.core.graph import ComponentGraph
from repro.core.safety import SafetyMonitor, vet_component, vet_graph
from repro.core.device import AdaptiveDevice, DeviceContext, ServiceInstance
from repro.core.nms import DesiredService, IspNms
from repro.core.rpc import CircuitBreaker, ControlChannel, RetryPolicy, RpcStats
from repro.core.storage import (
    InMemoryBackend,
    ReplicatedBackend,
    StorageBackend,
    StoreLog,
    StoreTable,
)
from repro.core.tcsp import Tcsp, IspContract, TcspReplicaSet
from repro.core.deployment import DeploymentScope
from repro.core.service import TrafficControlService
from repro.core.stateful import StatefulTeardownFilter, TimingAnomalyFilter
from repro.core.compose import RuleSpec, ServiceSpec, compile_spec, spec_factory
from repro.core.inband import ControlOutcome, ControlRequest, InbandControlPlane

__all__ = [
    "NetworkUser",
    "NumberAuthority",
    "OwnershipRegistry",
    "CertificateAuthority",
    "OwnershipCertificate",
    "Component",
    "ComponentContext",
    "Verdict",
    "HeaderFilter",
    "PrefixBlacklist",
    "RateLimiterComponent",
    "PayloadHashFilter",
    "PayloadScrubber",
    "SourceAntiSpoof",
    "LoggerComponent",
    "StatisticsCollector",
    "TriggerComponent",
    "DigestStoreComponent",
    "ComponentGraph",
    "vet_component",
    "vet_graph",
    "SafetyMonitor",
    "AdaptiveDevice",
    "DeviceContext",
    "ServiceInstance",
    "IspNms",
    "DesiredService",
    "ControlChannel",
    "RetryPolicy",
    "CircuitBreaker",
    "RpcStats",
    "Tcsp",
    "IspContract",
    "TcspReplicaSet",
    "StorageBackend",
    "InMemoryBackend",
    "ReplicatedBackend",
    "StoreTable",
    "StoreLog",
    "DeploymentScope",
    "TrafficControlService",
    "StatefulTeardownFilter",
    "TimingAnomalyFilter",
    "RuleSpec",
    "ServiceSpec",
    "compile_spec",
    "spec_factory",
    "InbandControlPlane",
    "ControlRequest",
    "ControlOutcome",
]
