"""Physical units used throughout the simulator.

Internally the simulator measures time in **seconds**, data in **bytes**,
and rates in **bits per second**.  These helpers make call sites read like
the quantities they carry (``Mbps(10)``, ``ms(5)``) instead of bare floats.
"""

from __future__ import annotations

__all__ = [
    "BITS_PER_BYTE",
    "bits",
    "bytes_to_bits",
    "Kbps",
    "Mbps",
    "Gbps",
    "seconds",
    "ms",
    "us",
    "fmt_rate",
    "fmt_bytes",
]

BITS_PER_BYTE = 8


def bits(n: float) -> float:
    """A rate of ``n`` bits per second."""
    return float(n)


def bytes_to_bits(n: float) -> float:
    """Convert a byte count to bits."""
    return float(n) * BITS_PER_BYTE


def Kbps(n: float) -> float:
    """A rate of ``n`` kilobits per second."""
    return float(n) * 1e3


def Mbps(n: float) -> float:
    """A rate of ``n`` megabits per second."""
    return float(n) * 1e6


def Gbps(n: float) -> float:
    """A rate of ``n`` gigabits per second."""
    return float(n) * 1e9


def seconds(n: float) -> float:
    """A duration of ``n`` seconds."""
    return float(n)


def ms(n: float) -> float:
    """A duration of ``n`` milliseconds."""
    return float(n) * 1e-3


def us(n: float) -> float:
    """A duration of ``n`` microseconds."""
    return float(n) * 1e-6


def fmt_rate(bps: float) -> str:
    """Human-readable rate, e.g. ``fmt_rate(2.5e6) == '2.50 Mbit/s'``."""
    for factor, unit in ((1e9, "Gbit/s"), (1e6, "Mbit/s"), (1e3, "kbit/s")):
        if abs(bps) >= factor:
            return f"{bps / factor:.2f} {unit}"
    return f"{bps:.0f} bit/s"


def fmt_bytes(n: float) -> str:
    """Human-readable byte count, e.g. ``fmt_bytes(2048) == '2.0 KiB'``."""
    for factor, unit in ((1024**3, "GiB"), (1024**2, "MiB"), (1024, "KiB")):
        if abs(n) >= factor:
            return f"{n / factor:.1f} {unit}"
    return f"{n:.0f} B"
