"""Shared experiment scaffolding: configuration, registry, batch runners.

Two execution modes share one code path: :func:`run_all` executes
experiments serially in-process; :func:`run_parallel` fans the same runners
out across a :class:`~concurrent.futures.ProcessPoolExecutor`.  Every
experiment derives its randomness from ``(cfg.seed, labels...)`` via
:func:`repro.util.rng.derive_rng`, so the two modes produce byte-identical
tables — parallelism only changes the wall clock, never the science.

:func:`parallel_map` gives individual experiments the same guarantee for
their *inner* sweep loops (e.g. the E3 deployment-sweep trials): each work
item carries its own derived seed, results come back in submission order,
and the serial path is taken automatically when it cannot or should not
fork (one worker, one item, already inside a pool worker).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from repro.util.tables import Table

__all__ = ["ExperimentConfig", "register", "registry", "run_all",
           "run_parallel", "parallel_map"]

_X = TypeVar("_X")
_Y = TypeVar("_Y")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``scale`` trades fidelity for runtime: 1.0 is the full (paper-shaped)
    configuration used for EXPERIMENTS.md; benchmarks use smaller scales.
    ``workers`` caps intra-experiment fan-out (sweep trials); 1 keeps every
    loop serial.  Results are identical either way — see
    :func:`parallel_map`.
    """

    seed: int = 42
    scale: float = 1.0
    workers: int = 1

    def scaled(self, n: int, minimum: int = 1) -> int:
        """Scale an integer knob, keeping it at least ``minimum``."""
        return max(minimum, int(round(n * self.scale)))

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)

    def with_workers(self, workers: int) -> "ExperimentConfig":
        return replace(self, workers=max(1, workers))


_REGISTRY: dict[str, Callable[[ExperimentConfig], list[Table]]] = {}


def register(experiment_id: str):
    """Decorator registering an experiment's runner under its id."""

    def wrap(fn: Callable[[ExperimentConfig], list[Table]]):
        _REGISTRY[experiment_id] = fn
        return fn

    return wrap


def _discover() -> None:
    """Import every ``e<N>_*`` module so it registers itself.

    Auto-discovery via :mod:`pkgutil` means adding an experiment file is
    enough — no import list to maintain here.
    """
    import importlib
    import pkgutil
    import re

    import repro.experiments as pkg

    for info in pkgutil.iter_modules(pkg.__path__):
        if re.match(r"e\d+_", info.name):
            importlib.import_module(f"{pkg.__name__}.{info.name}")


def registry() -> dict[str, Callable[[ExperimentConfig], list[Table]]]:
    _discover()
    return dict(_REGISTRY)


def run_all(cfg: ExperimentConfig | None = None,
            only: Iterable[str] | None = None) -> dict[str, list[Table]]:
    """Run all (or selected) experiments serially; returns {id: [tables]}."""
    cfg = cfg or ExperimentConfig()
    wanted = set(only) if only is not None else None
    results: dict[str, list[Table]] = {}
    for exp_id, runner in sorted(registry().items()):
        if wanted is not None and exp_id not in wanted:
            continue
        results[exp_id] = runner(cfg)
    return results


def _run_one(exp_id: str, cfg: ExperimentConfig) -> list[Table]:
    """Pool-worker entry point: resolve the runner by id and execute it."""
    return registry()[exp_id](cfg)


def _in_pool_worker() -> bool:
    """True when already running inside a multiprocessing worker (no
    nested pools: daemonic workers cannot fork, and forking from a
    non-daemonic worker would oversubscribe the machine)."""
    proc = multiprocessing.current_process()
    return proc.daemon or proc.name != "MainProcess"


def run_parallel(cfg: ExperimentConfig | None = None,
                 only: Iterable[str] | None = None,
                 max_workers: Optional[int] = None) -> dict[str, list[Table]]:
    """Run experiments across a process pool; same results as :func:`run_all`.

    Each experiment id becomes one pool task; tables are collected back in
    sorted-id order.  Experiments are pure functions of ``cfg`` (all
    randomness is derived from ``cfg.seed``), so the output is byte-identical
    to the serial runner's.  Falls back to :func:`run_all` when a pool
    cannot be created (single-process environments, nested workers).
    """
    cfg = cfg or ExperimentConfig()
    wanted = set(only) if only is not None else None
    ids = [exp_id for exp_id in sorted(registry())
           if wanted is None or exp_id in wanted]
    if _in_pool_worker():
        return run_all(cfg, only=ids)
    try:
        with ProcessPoolExecutor(max_workers=max_workers or os.cpu_count()) as pool:
            futures = {exp_id: pool.submit(_run_one, exp_id, cfg)
                       for exp_id in ids}
            return {exp_id: futures[exp_id].result() for exp_id in ids}
    except (OSError, PermissionError) as exc:  # pragma: no cover - env-specific
        print(f"# run_parallel: process pool unavailable ({exc}); "
              f"running serially", file=sys.stderr)
        return run_all(cfg, only=ids)


def parallel_map(fn: Callable[[_X], _Y], items: Sequence[_X],
                 workers: Optional[int] = None) -> list[_Y]:
    """Order-preserving map over independent sweep points.

    Fans out across a process pool when ``workers > 1`` and it is safe to
    fork; otherwise maps serially.  ``fn`` must be a picklable top-level
    function and each item must carry everything the point needs —
    including its own derived seed — so the output is identical in both
    modes.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1 or _in_pool_worker():
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
            return list(pool.map(fn, items))
    except (OSError, PermissionError) as exc:  # pragma: no cover - env-specific
        print(f"# parallel_map: process pool unavailable ({exc}); "
              f"running serially", file=sys.stderr)
        return [fn(item) for item in items]
