#!/usr/bin/env python3
"""Forensic investigation of a spoofed attack (paper Sec. 4.4).

"This would enable support for network forensics by sampling traces of
suspicious network activity.  Such a service would allow the network user
to investigate the origin of spoofed network traffic."

Workflow shown here:

1. a spoofed UDP flood hits a server; the source addresses are useless;
2. trace recorders at several vantage points sample the event and are
   exported as JSON-lines evidence files;
3. the victim's TCS-hosted SPIE digest stores answer per-packet origin
   queries, contradicting the forged source fields;
4. the merged evidence shows the true agent ASes.

Run:  python examples/forensic_investigation.py
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro.attack import DirectFlood
from repro.core import DeploymentScope, NumberAuthority, Tcsp, TrafficControlService
from repro.core.apps import SpieTracebackApp
from repro.net import Network, TopologyBuilder, TraceRecorder


def main() -> None:
    network = Network(TopologyBuilder.hierarchical(2, 2, 6, seed=23))
    stubs = network.topology.stub_ases
    victim = network.add_host(stubs[0], record=True)
    agents = [network.add_host(a) for a in stubs[1:4]]

    # --- TCS: SPIE digests everywhere, for the victim's traffic
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, network)
    tcsp.contract_isp("world-isp", network.topology.as_numbers)
    prefix = network.topology.prefix_of(victim.asn)
    authority.record_allocation(prefix, "victim-co")
    user, cert = tcsp.register_user("victim-co", [prefix])
    service = TrafficControlService(tcsp, user, cert)
    spie = SpieTracebackApp(service)
    spie.deploy(DeploymentScope.everywhere())

    # --- sampling trace recorders at the victim's upstream transits
    recorders = {}
    for asn in network.topology.transit_ases[:3]:
        recorders[asn] = TraceRecorder(sample_rate=0.5, seed=asn)
        network.routers[asn].add_filter("forensics", recorders[asn])

    # --- the attack: spoofed sources
    DirectFlood(network, agents, victim, rate_pps=150.0, duration=0.5,
                spoof="random", seed=9).launch()
    network.run()

    attack_pkts = [p for _, p in victim.log if p.kind == "attack"]
    claimed = Counter(network.topology.as_of(p.src) for p in attack_pkts)
    print(f"attack packets received : {len(attack_pkts)}")
    print(f"claimed source ASes     : {len(claimed)} distinct (spoofed noise)")

    # --- export the evidence
    with tempfile.TemporaryDirectory() as tmp:
        total = 0
        for asn, recorder in recorders.items():
            total += recorder.to_jsonl(Path(tmp) / f"as{asn}.jsonl")
        print(f"evidence exported       : {total} sampled observations "
              f"from {len(recorders)} vantage points")
        merged = TraceRecorder.merge(recorders.values())
        print(f"merged timeline         : {len(merged)} records, "
              f"{merged[0].time:.3f}s .. {merged[-1].time:.3f}s")

    # --- SPIE: trace individual packets to their true origin
    origins = Counter()
    for pkt in attack_pkts[:50]:
        result = spie.trace(pkt, victim.asn)
        if result.origin_asn is not None:
            origins[result.origin_asn] += 1
    agent_asns = sorted({a.asn for a in agents})
    print(f"SPIE origin verdicts    : {dict(sorted(origins.items()))}")
    print(f"true agent ASes         : {agent_asns}")
    assert set(origins) <= set(agent_asns)
    print("the digests identified the real origin ASes despite the "
          "spoofed source fields.")


if __name__ == "__main__":
    main()
