"""Benchmark regenerating E3: filtering effectiveness vs deployment fraction (Sec. 3.2)."""

from repro.experiments import e3_deployment_sweep

from conftest import run_and_print


def test_e3(benchmark, exp_cfg):
    """E3: filtering effectiveness vs deployment fraction (Sec. 3.2)"""
    run_and_print(benchmark, e3_deployment_sweep.run, exp_cfg)
