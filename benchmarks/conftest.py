"""Shared benchmark fixtures.

Every experiment benchmark runs the corresponding experiment module at a
reduced scale (so `pytest benchmarks/ --benchmark-only` completes in
minutes) and prints the regenerated tables; EXPERIMENTS.md records the
full-scale (`--scale 1.0`) outputs of `python -m repro.experiments`.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentConfig


@pytest.fixture(scope="session")
def exp_cfg() -> ExperimentConfig:
    """Benchmark-sized experiment configuration."""
    return ExperimentConfig(seed=42, scale=0.25)


def run_and_print(benchmark, runner, cfg) -> None:
    """Time one full experiment run and print its tables."""
    tables = benchmark.pedantic(runner, args=(cfg,), rounds=1, iterations=1)
    for table in tables:
        print()
        print(table.to_text())
