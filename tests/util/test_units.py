"""Unit tests for unit helpers."""

from repro.util import Gbps, Kbps, Mbps, bytes_to_bits, fmt_rate, ms, us
from repro.util.units import fmt_bytes


class TestUnits:
    def test_rates(self):
        assert Kbps(1) == 1e3
        assert Mbps(1) == 1e6
        assert Gbps(2) == 2e9

    def test_times(self):
        import math

        assert ms(5) == 0.005
        assert math.isclose(us(5), 5e-6)

    def test_bytes_to_bits(self):
        assert bytes_to_bits(100) == 800

    def test_fmt_rate(self):
        assert fmt_rate(2.5e6) == "2.50 Mbit/s"
        assert fmt_rate(1e9) == "1.00 Gbit/s"
        assert fmt_rate(10) == "10 bit/s"
        assert fmt_rate(2000) == "2.00 kbit/s"

    def test_fmt_bytes(self):
        assert fmt_bytes(2048) == "2.0 KiB"
        assert fmt_bytes(3 * 1024**2) == "3.0 MiB"
        assert fmt_bytes(10) == "10 B"
