"""Tests for SOS overlay, i3 defense and last-hop filtering."""

import pytest

from repro.attack import DirectFlood
from repro.errors import ControlPlaneUnavailable, MitigationError
from repro.mitigation import I3Defense, LastHopFilter, SecureOverlay
from repro.net import Network, Packet, Protocol, TopologyBuilder


def base_net(seed=2):
    net = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=seed))
    stubs = net.topology.stub_ases
    victim = net.add_host(stubs[0], record=True)
    client = net.add_host(stubs[1])
    attacker = net.add_host(stubs[2])
    return net, victim, client, attacker, stubs


class TestSecureOverlay:
    def _overlay(self):
        net, victim, client, attacker, stubs = base_net()
        sos = SecureOverlay(victim, overlay_asns=stubs[3:8], n_soaps=2,
                            n_beacons=1, n_servlets=1)
        sos.deploy(net)
        return net, victim, client, attacker, sos

    def test_needs_enough_overlay_ases(self):
        net, victim, *_ = base_net()
        with pytest.raises(MitigationError):
            SecureOverlay(victim, overlay_asns=[1], n_soaps=2)

    def test_authorized_client_reaches_victim_via_overlay(self):
        net, victim, client, attacker, sos = self._overlay()
        sos.authorize(client)
        pkt = sos.overlay_packet(client, Packet.udp(client.address, victim.address, kind="legit"))
        client.send(pkt)
        net.run()
        assert victim.received_by_kind.get("legit", 0) == 1
        # the packet arrived from the servlet, not the client
        (_, delivered), = victim.log
        assert int(delivered.src) == int(sos.servlets[0].address)

    def test_unauthorized_client_rejected_at_soap(self):
        net, victim, client, attacker, sos = self._overlay()
        pkt = sos.overlay_packet(client, Packet.udp(client.address, victim.address, kind="legit"))
        client.send(pkt)
        net.run()
        assert victim.received_packets == 0
        assert sos.rejected_at_soap == 1

    def test_direct_traffic_dropped_at_perimeter(self):
        """Even *legitimate* direct traffic dies — the overlay's collateral."""
        net, victim, client, attacker, sos = self._overlay()
        client.send(Packet.udp(client.address, victim.address, kind="legit"))
        attacker.send(Packet.udp(attacker.address, victim.address, kind="attack"))
        net.run()
        assert victim.received_packets == 0
        assert sos.perimeter_drops == 2

    def test_flood_blocked_but_crosses_network(self):
        net, victim, client, attacker, sos = self._overlay()
        flood = DirectFlood(net, [attacker], victim, rate_pps=100.0,
                            duration=0.3, spoof="none", seed=1)
        flood.launch()
        net.run()
        assert victim.received_by_kind.get("attack", 0) == 0
        # but the attack still burned transport resources en route
        assert net.byte_hops_by_kind["attack"] > 0

    def test_stretch_at_least_one(self):
        net, victim, client, attacker, sos = self._overlay()
        assert sos.stretch(client) >= 1.0

    def test_trust_relationship_cost_grows_with_users(self):
        net, victim, client, attacker, sos = self._overlay()
        assert sos.trust_relationships() == 0
        sos.authorize(client)
        sos.authorize(attacker)  # "keeping malicious users out ... a challenge"
        assert sos.trust_relationships() == 4  # 2 users x 2 soaps

    def test_authorized_compromised_client_defeats_perimeter(self):
        net, victim, client, attacker, sos = self._overlay()
        sos.authorize(attacker)
        pkt = sos.overlay_packet(attacker, Packet.udp(attacker.address, victim.address, kind="attack"))
        attacker.send(pkt)
        net.run()
        assert victim.received_by_kind.get("attack", 0) == 1


class TestI3Defense:
    def _i3(self, **kw):
        net, victim, client, attacker, stubs = base_net(seed=4)
        i3 = I3Defense(victim, i3_asns=stubs[3:5], **kw)
        i3.deploy(net)
        return net, victim, client, attacker, i3

    def test_needs_nodes(self):
        net, victim, *_ = base_net()
        with pytest.raises(MitigationError):
            I3Defense(victim, i3_asns=[])

    def test_trigger_relay_delivers(self):
        net, victim, client, attacker, i3 = self._i3()
        pkt = i3.trigger_packet(client, Packet.udp(client.address, victim.address, kind="legit"))
        client.send(pkt)
        net.run()
        assert victim.received_by_kind.get("legit", 0) == 1
        assert i3.relayed == 1

    def test_direct_attack_blocked_at_perimeter_only(self):
        """ip_already_known: attack still crosses the Internet and loads
        the victim's edge — the paper's 'how do you hide a known IP?'."""
        net, victim, client, attacker, i3 = self._i3(ip_already_known=True)
        flood = DirectFlood(net, [attacker], victim, rate_pps=100.0,
                            duration=0.3, spoof="none", seed=2)
        flood.launch()
        net.run()
        assert victim.received_by_kind.get("attack", 0) == 0
        assert i3.perimeter_drops > 0
        assert net.byte_hops_by_kind["attack"] > 0  # resources still wasted

    def test_nonswitched_legit_client_cut_off(self):
        net, victim, client, attacker, i3 = self._i3()
        client.send(Packet.udp(client.address, victim.address, kind="legit"))
        net.run()
        assert victim.received_packets == 0

    def test_stretch(self):
        net, victim, client, attacker, i3 = self._i3()
        assert i3.stretch(client) >= 1.0

    def test_trigger_requires_deploy(self):
        net, victim, client, attacker, stubs = base_net()
        i3 = I3Defense(victim, i3_asns=stubs[3:4])
        with pytest.raises(MitigationError):
            i3.trigger_packet(client, Packet.udp(client.address, victim.address))


class TestLastHopFilter:
    def _setup(self, capacity=100.0):
        net, victim, client, attacker, stubs = base_net(seed=6)
        # rule: drop UDP to port 53 (the flood's default destination port)
        lh = LastHopFilter(victim, lambda p: p.proto is Protocol.UDP and p.dport == 53,
                           processing_capacity_pps=capacity)
        lh.deploy(net)
        return net, victim, client, attacker, lh

    def test_configure_before_attack_succeeds(self):
        net, victim, client, attacker, lh = self._setup()
        assert lh.try_configure()
        assert lh.configured
        attacker.send(Packet.udp(attacker.address, victim.address, kind="attack"))
        client.send(Packet.udp(client.address, victim.address, dport=80, kind="legit"))
        net.run()
        assert victim.received_by_kind.get("attack", 0) == 0
        assert victim.received_by_kind.get("legit", 0) == 1
        assert lh.dropped == 1

    def test_configure_under_overload_fails(self):
        """The paper's open question, answered in the negative."""
        net, victim, client, attacker, lh = self._setup(capacity=50.0)
        flood = DirectFlood(net, [attacker], victim, rate_pps=2000.0,
                            duration=0.5, spoof="none", seed=3)
        flood.launch()

        outcome = {}

        def attempt():
            outcome["ok"] = lh.try_configure()

        net.sim.schedule_at(0.3, attempt)  # mid-attack
        net.run()
        assert outcome["ok"] is False
        assert lh.failed_attempts == 1
        assert not lh.configured

    def test_configure_or_raise(self):
        net, victim, client, attacker, lh = self._setup(capacity=50.0)
        flood = DirectFlood(net, [attacker], victim, rate_pps=2000.0,
                            duration=0.5, spoof="none", seed=3)
        flood.launch()

        def attempt():
            with pytest.raises(ControlPlaneUnavailable):
                lh.configure_or_raise()

        net.sim.schedule_at(0.3, attempt)
        net.run()

    def test_deploy_required(self):
        net, victim, client, attacker, stubs = base_net()
        lh = LastHopFilter(victim, lambda p: True)
        with pytest.raises(MitigationError):
            lh.try_configure()
