"""Tests for links, routers, hosts and the assembled Network."""

import pytest

from repro.errors import SimulationError, TopologyError
from repro.net import (
    Link,
    LinkParams,
    Network,
    Packet,
    Simulator,
    TopologyBuilder,
)
from repro.util.units import Mbps, ms


def line_net(n=3, **kw):
    return Network(TopologyBuilder.line(n), **kw)


class TestLink:
    def test_delivery_time_includes_serialization_and_delay(self):
        net = line_net(2)
        a = net.add_host(0, access=LinkParams(bandwidth=Mbps(8), delay=ms(10), buffer_bytes=10**6))
        b = net.add_host(1)
        a.send(Packet.udp(a.address, b.address, size=1000))
        net.run()
        # serialization of 1000 B at 8 Mbit/s = 1 ms per link traversal
        assert b.received_packets == 1
        assert net.sim.now > ms(10)

    def test_tail_drop_when_buffer_full(self):
        sim = Simulator()
        net = line_net(2)
        link = net.link_between(0, 1)
        # shrink buffer so the second packet cannot fit
        link.buffer_bytes = 1200
        fat = LinkParams(bandwidth=Mbps(1000), delay=0.0, buffer_bytes=10**6)
        a = net.add_host(0, access=fat)
        b = net.add_host(1)
        for _ in range(5):
            a.send(Packet.udp(a.address, b.address, size=1000))
        net.run()
        assert b.received_packets < 5
        assert link.dropped_packets >= 1
        assert net.routers[0].drops.get("queue-full", 0) >= 1
        del sim

    def test_fifo_order(self):
        net = line_net(2)
        a = net.add_host(0)
        b = net.add_host(1, record=True)
        for i in range(5):
            a.send(Packet.udp(a.address, b.address, sport=i))
        net.run()
        assert [p.sport for _, p in b.log] == [0, 1, 2, 3, 4]

    def test_invalid_parameters(self):
        net = line_net(2)
        with pytest.raises(SimulationError):
            Link(net.routers[0], net.routers[1], bandwidth=0, delay=0.0)

    def test_utilization_and_drop_rate(self):
        net = line_net(2)
        link = net.link_between(0, 1)
        link.buffer_bytes = 2000
        a = net.add_host(0, access=LinkParams(bandwidth=Mbps(1000), delay=0.0, buffer_bytes=10**7))
        b = net.add_host(1)
        for _ in range(100):
            a.send(Packet.udp(a.address, b.address, size=1000))
        net.run(until=0.5)
        assert link.dropped_packets > 0
        assert link.drop_rate(0.1) >= 0
        del b


class TestForwarding:
    def test_multi_hop_delivery(self):
        net = line_net(5)
        a = net.add_host(0)
        b = net.add_host(4)
        a.send(Packet.udp(a.address, b.address))
        net.run()
        assert b.received_packets == 1

    def test_ttl_decremented_per_as_hop(self):
        net = line_net(4)
        a = net.add_host(0)
        b = net.add_host(3, record=True)
        a.send(Packet.udp(a.address, b.address, ttl=64))
        net.run()
        (_, p), = b.log
        assert p.ttl == 64 - 3  # three inter-AS hops

    def test_ttl_expiry_drops(self):
        net = line_net(5)
        a = net.add_host(0)
        b = net.add_host(4)
        a.send(Packet.udp(a.address, b.address, ttl=2))
        net.run()
        assert b.received_packets == 0
        assert net.total_dropped("ttl-expired") == 1

    def test_unroutable_destination_dropped(self):
        net = line_net(2)
        a = net.add_host(0)
        from repro.net import IPv4Address

        a.send(Packet.udp(a.address, IPv4Address.parse("203.0.113.1")))
        net.run()
        assert net.total_dropped("no-route") == 1

    def test_unknown_host_in_known_as_dropped(self):
        net = line_net(2)
        a = net.add_host(0)
        dst_prefix = net.topology.prefix_of(1)
        a.send(Packet.udp(a.address, dst_prefix.last))
        net.run()
        assert net.total_dropped("no-host") == 1

    def test_filter_drops_and_accounts(self):
        net = line_net(3)
        a = net.add_host(0)
        b = net.add_host(2)
        net.routers[1].add_filter("blockall", lambda p, r, l, now: False)
        a.send(Packet.udp(a.address, b.address, kind="attack"))
        net.run()
        assert b.received_packets == 0
        assert net.routers[1].drops["filter:blockall"] == 1
        assert net.routers[1].drops_by_kind[("filter:blockall", "attack")] == 1

    def test_filter_replace_and_remove(self):
        net = line_net(2)
        r = net.routers[0]
        r.add_filter("f", lambda *a: False)
        r.add_filter("f", lambda *a: True)
        assert len(r.filters) == 1
        assert r.remove_filter("f")
        assert not r.remove_filter("f")
        assert not r.has_filter("f")

    def test_responder_generates_reply(self):
        net = line_net(3)
        client = net.add_host(0)
        server = net.add_host(2)
        server.add_responder(
            lambda pkt, host, now: [Packet.udp(host.address, pkt.src, size=1000, kind="reply")]
        )
        client.send(Packet.udp(client.address, server.address, kind="request"))
        net.run()
        assert client.received_by_kind["reply"] == 1

    def test_byte_hops_accounting(self):
        net = line_net(4)
        a = net.add_host(0)
        b = net.add_host(3)
        net.routers[2].add_filter("block", lambda p, r, l, now: p.kind != "attack")
        a.send(Packet.udp(a.address, b.address, size=100, kind="attack"))
        net.run()
        # dropped at AS2 after 2 inter-AS hops
        assert net.byte_hops_by_kind["attack"] == 200


class TestNetworkApi:
    def test_host_at(self):
        net = line_net(2)
        a = net.add_host(0)
        assert net.host_at(a.address) is a
        with pytest.raises(TopologyError):
            net.host_at(12345)

    def test_link_between_missing(self):
        net = line_net(3)
        with pytest.raises(TopologyError):
            net.link_between(0, 2)

    def test_total_received_by_kind(self):
        net = line_net(2)
        a = net.add_host(0)
        b = net.add_host(1)
        a.send(Packet.udp(a.address, b.address, kind="legit"))
        a.send(Packet.udp(a.address, b.address, kind="attack"))
        net.run()
        assert net.total_received() == 2
        assert net.total_received("legit") == 1
        assert net.total_received("attack") == 1

    def test_reset_stats(self):
        net = line_net(2)
        a = net.add_host(0)
        b = net.add_host(1)
        a.send(Packet.udp(a.address, b.address))
        net.run()
        net.reset_stats()
        assert b.received_packets == 0
        assert net.routers[0].forwarded_packets == 0
        assert net.total_received() == 0

    def test_path_helper(self):
        net = line_net(4)
        assert net.path(0, 3) == [0, 1, 2, 3]

    def test_tier_link_params_applied(self):
        net = Network(TopologyBuilder.hierarchical(n_core=2, transit_per_core=1,
                                                   stub_per_transit=1, seed=1))
        core_pair = (net.topology.core_ases[0], net.topology.core_ases[1])
        edge_pair = None
        for (a, b) in net.links:
            if net.topology.role_of(a).value == "transit" and net.topology.role_of(b).value == "stub":
                edge_pair = (a, b)
                break
        assert net.links[core_pair].bandwidth > net.links[edge_pair].bandwidth
