"""Tests for the ASGI/WSGI middleware adapters."""

import asyncio

from repro.core import ComponentGraph, NetworkUser
from repro.core.components import PrefixBlacklist
from repro.net import Prefix
from repro.service import (
    AsgiTrafficMiddleware,
    ManualClock,
    ServiceFacade,
    TrafficController,
    WsgiTrafficMiddleware,
)
from repro.service.facade import DROP_ADMISSION, Verdict
from repro.service.middleware import blocked_status
from repro.util import TokenBucket


def make_controller(admission=None):
    facade = ServiceFacade(clock=ManualClock())
    user = NetworkUser("acme", prefixes=[Prefix.parse("10.1.0.0/16")])
    graph = ComponentGraph("blk")
    graph.chain(PrefixBlacklist("b", [Prefix.parse("203.0.113.0/24")]))
    facade.subscribe(user, dst_graph=graph)
    return TrafficController(facade, "10.1.0.5", admission=admission)


class TestBlockedStatus:
    def test_admission_maps_to_429(self):
        assert blocked_status(DROP_ADMISSION) == 429

    def test_pipeline_drop_maps_to_403(self):
        filtered = Verdict(allowed=False, redirected=True, reason="filtered")
        assert blocked_status(filtered) == 403


def demo_wsgi_app(environ, start_response):
    start_response("200 OK", [("Content-Type", "text/plain")])
    return [b"hello\n"]


def call_wsgi(app, remote_addr):
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    body = b"".join(app({"REMOTE_ADDR": remote_addr}, start_response))
    return captured["status"], captured["headers"], body


class TestWsgi:
    def test_allowed_request_reaches_the_app(self):
        app = WsgiTrafficMiddleware(demo_wsgi_app, make_controller())
        status, _headers, body = call_wsgi(app, "198.51.100.7")
        assert status == "200 OK"
        assert body == b"hello\n"

    def test_blacklisted_client_gets_403(self):
        app = WsgiTrafficMiddleware(demo_wsgi_app, make_controller())
        status, headers, body = call_wsgi(app, "203.0.113.9")
        assert status == "403 Forbidden"
        assert headers["X-TCS-Verdict"] == "filtered"
        assert body == b"blocked by traffic control service\n"
        assert headers["Content-Length"] == str(len(body))

    def test_admission_rejection_gets_429(self):
        controller = make_controller(admission=TokenBucket(rate=0.0, burst=1.0))
        app = WsgiTrafficMiddleware(demo_wsgi_app, controller)
        assert call_wsgi(app, "198.51.100.7")[0] == "200 OK"
        status, headers, _ = call_wsgi(app, "198.51.100.7")
        assert status == "429 Too Many Requests"
        assert headers["X-TCS-Verdict"] == "admission"

    def test_custom_blocked_body(self):
        app = WsgiTrafficMiddleware(demo_wsgi_app, make_controller(),
                                    blocked_body=b"nope")
        _, headers, body = call_wsgi(app, "203.0.113.9")
        assert body == b"nope"
        assert headers["Content-Length"] == "4"

    def test_missing_remote_addr_fails_safe(self):
        app = WsgiTrafficMiddleware(demo_wsgi_app, make_controller())
        captured = {}

        def start_response(status, headers):
            captured["status"] = status

        body = b"".join(app({}, start_response))
        # 0.0.0.0 is unowned -> direct pass
        assert captured["status"] == "200 OK"
        assert body == b"hello\n"


async def demo_asgi_app(scope, receive, send):
    await send({"type": "http.response.start", "status": 200,
                "headers": [(b"content-type", b"text/plain")]})
    await send({"type": "http.response.body", "body": b"hello\n"})


def call_asgi(app, client_host, scope_type="http"):
    scope = {"type": scope_type, "client": (client_host, 1234)}
    sent = []

    async def send(message):
        sent.append(message)

    async def receive():  # pragma: no cover - never awaited in these tests
        return {"type": "http.request"}

    asyncio.run(app(scope, receive, send))
    return sent


class TestAsgi:
    def test_allowed_request_reaches_the_app(self):
        app = AsgiTrafficMiddleware(demo_asgi_app, make_controller())
        sent = call_asgi(app, "198.51.100.7")
        assert sent[0]["status"] == 200
        assert sent[1]["body"] == b"hello\n"

    def test_blacklisted_client_gets_403(self):
        app = AsgiTrafficMiddleware(demo_asgi_app, make_controller())
        sent = call_asgi(app, "203.0.113.9")
        assert sent[0]["status"] == 403
        headers = dict(sent[0]["headers"])
        assert headers[b"x-tcs-verdict"] == b"filtered"
        assert sent[1]["body"] == b"blocked by traffic control service\n"

    def test_admission_rejection_gets_429(self):
        controller = make_controller(admission=TokenBucket(rate=0.0, burst=1.0))
        app = AsgiTrafficMiddleware(demo_asgi_app, controller)
        assert call_asgi(app, "198.51.100.7")[0]["status"] == 200
        assert call_asgi(app, "198.51.100.7")[0]["status"] == 429

    def test_non_http_scope_passes_through(self):
        seen = []

        async def lifespan_app(scope, receive, send):
            seen.append(scope["type"])

        app = AsgiTrafficMiddleware(lifespan_app, make_controller())
        call_asgi(app, "203.0.113.9", scope_type="lifespan")
        assert seen == ["lifespan"]

    def test_missing_client_fails_safe(self):
        app = AsgiTrafficMiddleware(demo_asgi_app, make_controller())
        sent = []

        async def send(message):
            sent.append(message)

        asyncio.run(app({"type": "http"}, None, send))
        assert sent[0]["status"] == 200
