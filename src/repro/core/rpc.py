"""Control-plane messaging with retries, backoff and circuit breaking.

The paper's control plane (user -> TCSP -> ISP NMS, Figs. 3-5) was modelled
as plain method calls guarded by a single ``reachable`` boolean.  Real
control channels lose messages, time out and must be retried; Sec. 5.1's
availability claim ("users fall back to the direct NMS path") only holds if
unreachability is *detected* rather than assumed.  This module provides the
small messaging layer every control-plane hop now goes through:

* :class:`RetryPolicy` — per-call attempt budget with bounded exponential
  backoff and deterministic jitter (derived from the seeded RNG, so runs
  are bit-for-bit reproducible);
* :class:`CircuitBreaker` — after ``threshold`` consecutive transport
  failures the channel *opens* and rejects calls instantly until
  ``reset_after`` simulated seconds pass, then *half-opens* to probe;
* :class:`ControlChannel` — one logical channel to one endpoint.  A call
  attempt is delivered unless (a) the endpoint reports itself down
  (``down_fn``) or (b) the attached :class:`~repro.net.faults.FaultInjector`
  drops the message.  Undelivered attempts are retried under the policy;
  exhaustion raises :class:`~repro.errors.RetryExhausted`, which subclasses
  :class:`~repro.errors.ControlPlaneUnavailable` so the existing direct
  peer-NMS failover engages automatically.

Application-level errors raised by the endpoint itself (certificate
mismatch, scope violation, ...) are **not** retried: the message was
delivered, the refusal is authoritative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ControlPlaneUnavailable, RetryExhausted
from repro.obs.metrics import declare, reset_metrics
from repro.util.rng import derive_rng

__all__ = ["RetryPolicy", "CircuitBreaker", "ControlChannel", "RpcStats"]

_RPC_FIELDS = ("calls", "delivered", "retries", "drops", "exhausted",
               "rejected", "backoff_time")
_RPC_DECLS = {
    name: declare(f"rpc.{name}", "counter", labels=("channel",),
                  help=f"per-channel {name.replace('_', ' ')}")
    for name in _RPC_FIELDS
}
_BACKOFF_HIST = declare(
    "rpc.backoff_s", "histogram", labels=("channel",),
    help="distribution of accounted backoff delays per retry",
    buckets=(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0))


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and backoff shape for one call.

    ``backoff(attempt)`` for attempt 0,1,2,... is
    ``min(max_delay, base_delay * multiplier**attempt)`` plus a jitter drawn
    uniformly from ``[0, jitter * that_delay)`` — the standard bounded
    exponential backoff, fully deterministic given the channel's RNG stream.
    """

    attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.1
    timeout: float = 0.25  #: per-attempt timeout (accounted, not slept)

    def backoff(self, attempt: int, rng) -> float:
        delay = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if self.jitter > 0.0:
            delay += float(rng.random()) * self.jitter * delay
        return delay


class CircuitBreaker:
    """Consecutive-failure circuit breaker over a monotonic clock.

    States: ``closed`` (calls flow), ``open`` (calls rejected instantly),
    ``half-open`` (one probe call allowed after ``reset_after`` elapsed).
    """

    def __init__(self, threshold: int = 5, reset_after: float = 2.0,
                 clock: Callable[[], float] = lambda: 0.0) -> None:
        self.threshold = threshold
        self.reset_after = reset_after
        self.clock = clock
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.times_opened = 0

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if self.clock() - self.opened_at >= self.reset_after:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a call proceed right now?"""
        return self.state != "open"

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.threshold and self.opened_at is None:
            self.opened_at = self.clock()
            self.times_opened += 1
        elif self.opened_at is not None and self.state == "half-open":
            # failed probe: re-open for another full reset window
            self.opened_at = self.clock()
            self.times_opened += 1

    def reset(self) -> None:
        self.failures = 0
        self.opened_at = None


class RpcStats:
    """Per-channel counters (reported by E16), backed by the ambient
    :mod:`repro.obs` registry under ``rpc.*{channel=...}``.

    Field semantics: ``calls``/``delivered``/``retries``; ``drops`` are
    attempts lost in transport (down or injected); ``exhausted`` calls ran
    out of attempts; ``rejected`` calls hit an open circuit breaker;
    ``backoff_time`` is the cumulative backoff delay accounted.  The
    attribute API is a thin property view over the registered counters.
    """

    FIELDS = _RPC_FIELDS
    __slots__ = tuple(f"_m_{name}" for name in _RPC_FIELDS)

    def __init__(self, channel: str = "-") -> None:
        for name in _RPC_FIELDS:
            setattr(self, f"_m_{name}", _RPC_DECLS[name].labelled(channel=channel))

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in _RPC_FIELDS}

    def reset(self) -> None:
        reset_metrics(tuple(getattr(self, f"_m_{name}") for name in _RPC_FIELDS))


def _rpc_stat_property(name: str) -> property:
    def _get(self: RpcStats):
        return getattr(self, f"_m_{name}").value

    def _set(self: RpcStats, value) -> None:
        getattr(self, f"_m_{name}").value = value

    return property(_get, _set)


for _name in _RPC_FIELDS:
    setattr(RpcStats, _name, _rpc_stat_property(_name))


class ControlChannel:
    """One retry-aware control channel to one endpoint.

    ``down_fn`` reports endpoint-side unreachability (TCSP under DDoS, NMS
    partitioned); ``injector`` may additionally drop individual messages.
    The channel never sleeps: backoff delays are *accounted* in
    ``stats.backoff_time`` (and reproduced in E16's recovery accounting)
    rather than advancing the simulator, so routing a call through a
    channel is behaviour-preserving whenever nothing is failing.
    """

    def __init__(self, name: str, *,
                 clock: Callable[[], float] = lambda: 0.0,
                 policy: Optional[RetryPolicy] = None,
                 down_fn: Optional[Callable[[], bool]] = None,
                 injector: Optional[Any] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 seed: int = 0) -> None:
        self.name = name
        self.clock = clock
        self.policy = policy or RetryPolicy()
        self.down_fn = down_fn or (lambda: False)
        self.injector = injector
        self.breaker = breaker or CircuitBreaker(clock=clock)
        self.breaker.clock = clock
        self.stats = RpcStats(channel=name)
        self._backoff_hist = _BACKOFF_HIST.labelled(channel=name)
        self._rng = derive_rng(seed, "rpc", name)
        self._seed = seed

    # ------------------------------------------------------------------ calls
    def call(self, op: str, fn: Callable[..., Any], *args: Any,
             **kwargs: Any) -> Any:
        """Invoke ``fn(*args, **kwargs)`` as one control-plane message.

        Each attempt is delivered iff the endpoint is up and the fault
        injector does not drop the message; delivered attempts execute
        exactly once.  Raises :class:`RetryExhausted` after the policy's
        attempt budget, or :class:`ControlPlaneUnavailable` instantly while
        the circuit breaker is open.
        """
        self.stats.calls += 1
        if not self.breaker.allow():
            self.stats.rejected += 1
            raise ControlPlaneUnavailable(
                f"channel {self.name!r}: circuit open after "
                f"{self.breaker.failures} consecutive failures"
            )
        policy = self.policy
        for attempt in range(policy.attempts):
            if attempt > 0:
                self.stats.retries += 1
                delay = policy.backoff(attempt - 1, self._rng)
                self.stats.backoff_time += delay
                self._backoff_hist.observe(delay)
            if self._delivered(op):
                result = fn(*args, **kwargs)
                self.breaker.record_success()
                self.stats.delivered += 1
                return result
            self.stats.drops += 1
        self.stats.exhausted += 1
        self.breaker.record_failure()
        raise RetryExhausted(
            f"channel {self.name!r}: {op!r} undelivered after "
            f"{policy.attempts} attempts"
        )

    def _delivered(self, op: str) -> bool:
        if self.down_fn():
            return False
        if self.injector is not None:
            return not self.injector.drop_message(self.name, op, self.clock())
        return True

    # -------------------------------------------------------------- lifecycle
    def reset(self) -> None:
        """Forget transient state (breaker, counters, RNG stream position)."""
        self.breaker.reset()
        self.stats.reset()
        self._backoff_hist.reset()
        self._rng = derive_rng(self._seed, "rpc", self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ControlChannel({self.name!r}, breaker={self.breaker.state}, "
                f"calls={self.stats.calls})")
