"""Benchmark regenerating E9: traceback identification and SPIE backlog (Sec. 3.1, 4.4)."""

from repro.experiments import e9_traceback

from conftest import run_and_print


def test_e9(benchmark, exp_cfg):
    """E9: traceback identification and SPIE backlog (Sec. 3.1, 4.4)"""
    run_and_print(benchmark, e9_traceback.run, exp_cfg)
