"""Tests for dynamic topology changes and the Sec. 4.2 routing-update
handling of adaptive devices."""

import pytest

from repro.core import ComponentGraph, NetworkUser, OwnershipRegistry
from repro.core.components import HeaderFilter, HeaderMatch, SourceAntiSpoof
from repro.core.device import attach_device
from repro.errors import TopologyError
from repro.net import Network, Packet, Protocol, TopologyBuilder


def diamond_net():
    """0 -2- 3 and 0 -1- 3: two disjoint paths between the endpoints."""
    import networkx as nx

    from repro.net import ASRole
    from repro.net.topology import Topology

    g = nx.Graph()
    for v in (0, 3):
        g.add_node(v, role=ASRole.STUB)
    for v in (1, 2):
        g.add_node(v, role=ASRole.TRANSIT)
    g.add_edge(0, 1)
    g.add_edge(1, 3)
    g.add_edge(0, 2)
    g.add_edge(2, 3)
    return Network(Topology(g))


class TestLinkFailure:
    def test_traffic_reroutes_after_failure(self):
        net = diamond_net()
        a = net.add_host(0)
        b = net.add_host(3)
        original_path = net.path(0, 3)
        via = original_path[1]
        other = 1 if via == 2 else 2
        net.fail_link(0, via)
        assert net.path(0, 3) == [0, other, 3]
        a.send(Packet.udp(a.address, b.address))
        net.run()
        assert b.received_packets == 1
        assert net.routers[other].forwarded_packets == 1

    def test_partitioning_failure_rejected(self):
        net = Network(TopologyBuilder.line(3))
        with pytest.raises(TopologyError):
            net.fail_link(0, 1)
        # the refused failure must leave the topology intact
        assert net.topology.graph.has_edge(0, 1)

    def test_unknown_adjacency_rejected(self):
        net = diamond_net()
        with pytest.raises(TopologyError):
            net.fail_link(0, 3)

    def test_restore_link(self):
        net = diamond_net()
        original_path = net.path(0, 3)
        via = original_path[1]
        net.fail_link(0, via)
        net.restore_link(0, via)
        assert net.path(0, 3) == original_path
        with pytest.raises(TopologyError):
            net.restore_link(0, via)  # not failed any more


class TestDeviceRoutingUpdates:
    def _device_world(self, policy):
        net = diamond_net()
        registry = OwnershipRegistry()
        user = NetworkUser("acme", prefixes=[net.topology.prefix_of(3)])
        registry.register(user)
        device = attach_device(net, 0, registry)
        device.routing_update_policy = policy
        graph = ComponentGraph("svc")
        graph.chain(
            SourceAntiSpoof("as", user.prefixes),         # topology-dependent
            HeaderFilter("f", HeaderMatch(proto=Protocol.UDP, dport=9)),
        )
        device.install(user, dst_graph=graph)
        return net, device, user

    def test_adapt_policy_keeps_service_running(self):
        net, device, user = self._device_world("adapt")
        net.fail_link(0, net.path(0, 3)[1])
        assert device.routing_updates == 1
        assert device.services["acme"].active

    def test_disable_policy_pauses_topology_dependent_service(self):
        net, device, user = self._device_world("disable")
        net.fail_link(0, net.path(0, 3)[1])
        assert not device.services["acme"].active
        assert "acme" in device.pending_routing_reconfig

    def test_reconfirm_reenables(self):
        net, device, user = self._device_world("disable")
        net.fail_link(0, net.path(0, 3)[1])
        assert device.reconfirm_topology("acme") == 1
        assert device.services["acme"].active
        assert device.reconfirm_topology("acme") == 0  # idempotent

    def test_topology_independent_service_untouched(self):
        net = diamond_net()
        registry = OwnershipRegistry()
        user = NetworkUser("acme", prefixes=[net.topology.prefix_of(3)])
        registry.register(user)
        device = attach_device(net, 0, registry)
        device.routing_update_policy = "disable"
        graph = ComponentGraph("plain")
        graph.add(HeaderFilter("f", HeaderMatch(proto=Protocol.UDP, dport=9)))
        device.install(user, dst_graph=graph)
        net.fail_link(0, net.path(0, 3)[1])
        assert device.services["acme"].active  # nothing topology-dependent

    def test_update_notifies_all_devices(self):
        net = diamond_net()
        registry = OwnershipRegistry()
        devices = [attach_device(net, asn, registry) for asn in (0, 1, 2, 3)]
        net.fail_link(0, net.path(0, 3)[1])
        assert all(d.routing_updates == 1 for d in devices)
