"""Engine behavior: the backend-agnostic run path and its guard rails."""

import pytest

from repro.experiments.common import ExperimentConfig
from repro.experiments.e2_mitigation_matrix import run_cell
from repro.scenario import (
    Engine,
    FluidEngine,
    MetricSet,
    PacketEngine,
    SpecError,
    preset,
    run_scenario,
)


class TestPacketEngine:
    def test_satisfies_the_engine_protocol(self):
        assert isinstance(PacketEngine(), Engine)
        assert isinstance(FluidEngine(), Engine)

    def test_returns_a_labelled_metric_set(self):
        spec = preset("spoofed-flood-ingress")
        m = PacketEngine().run(spec)
        assert isinstance(m, MetricSet)
        assert m.engine == "packet"
        assert m.scenario == spec.name
        assert m.seed == spec.seed
        assert m.attack_survival == 0.0

    def test_preset_matches_the_e2_matrix_cell(self):
        """The reflector-tcs preset mirrors E2's (reflector, tcs) cell —
        running it through the engine must reproduce run_cell exactly."""
        m = run_scenario(preset("reflector-tcs"))
        cell = run_cell("reflector", "tcs", ExperimentConfig())
        assert int(m.attack_delivered) == cell.attack_pkts
        assert m.legit_goodput == cell.legit_goodput
        assert m.collateral == cell.collateral
        assert m.notes == cell.notes


class TestFluidEngine:
    def test_reflector_path(self):
        m = FluidEngine().run(preset("reflector-baseline"))
        assert m.engine == "fluid"
        assert m.attack_sent > 0
        assert 0.0 <= m.attack_survival <= 1.0

    def test_direct_path_with_ingress_kills_spoofed_flood(self):
        m = FluidEngine().run(preset("spoofed-flood-ingress"))
        assert m.attack_survival == 0.0
        assert m.collateral == 0.0

    def test_agrees_with_packet_engine_on_filtering_defenses(self):
        """The documented cross-backend comparison: full-coverage filtering
        yields zero attack survival on both engines."""
        for name in ("spoofed-flood-ingress", "reflector-tcs"):
            spec = preset(name)
            assert PacketEngine().run(spec).attack_survival == 0.0
            assert FluidEngine().run(spec).attack_survival == 0.0

    def test_rejects_fault_specs(self):
        with pytest.raises(SpecError, match="fault"):
            FluidEngine().run(preset("reflector-under-faults"))

    def test_rejects_packet_only_defenses(self):
        with pytest.raises(SpecError, match="fluid"):
            FluidEngine().run(preset("botnet-flood-pushback"))


class TestRunScenario:
    def test_unknown_engine_rejected(self):
        with pytest.raises(SpecError, match="engine"):
            run_scenario(preset("spoofed-flood"), engine="abacus")

    def test_dispatches_by_name(self):
        spec = preset("spoofed-flood-ingress")
        assert run_scenario(spec, engine="packet").engine == "packet"
        assert run_scenario(spec, engine="fluid").engine == "fluid"
