"""Worldwide anti-spoofing deployment — the Sec. 4.3 headline application.

"For stopping a DDoS reflector attack to a specific web site, the owner of
that web site's IP address can, by using our proposed traffic control
system, almost instantly deploy worldwide ingress filtering rules.  These
rules will block all traffic that enters the Internet from customers of a
peripheral ISP and that carries this web site's spoofed IP address."

:class:`AntiSpoofApp` wraps the service facade; :class:`TcsAntiSpoofMitigation`
adapts it to the common :class:`~repro.mitigation.base.Mitigation`
interface so E2 can compare it head-to-head with the baselines, and
provides the fluid-model filter for the E4 deployment sweeps.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.components import SourceAntiSpoof
from repro.core.device import DeviceContext
from repro.core.deployment import DeploymentScope
from repro.core.graph import ComponentGraph
from repro.core.service import TrafficControlService
from repro.mitigation.base import Mitigation
from repro.net.addressing import Prefix
from repro.net.fluid import Flow
from repro.net.network import Network
from repro.net.topology import ASRole

__all__ = ["AntiSpoofApp", "TcsAntiSpoofMitigation"]


class AntiSpoofApp:
    """Deploy (and manage) anti-spoofing for the service user's prefixes."""

    def __init__(self, service: TrafficControlService) -> None:
        self.service = service

    def graph_factory(self, device_ctx: DeviceContext) -> ComponentGraph:
        """One SourceAntiSpoof component protecting the user's prefixes."""
        graph = ComponentGraph(f"antispoof:{self.service.user.user_id}")
        graph.add(SourceAntiSpoof("anti-spoof", self.service.user.prefixes))
        return graph

    def deploy(self, scope: Optional[DeploymentScope] = None) -> dict[str, list[int]]:
        """Push the rules worldwide — by default to all stub borders, where
        traffic 'enters the Internet'."""
        scope = scope or DeploymentScope.stub_borders()
        # spoofed *sources* are filtered in the source-owner stage: the
        # spoofed address belongs to the user, so the user's stage runs.
        return self.service.deploy(scope, src_graph_factory=self.graph_factory)

    def components(self) -> Iterable[SourceAntiSpoof]:
        """All deployed anti-spoof components (for drop accounting)."""
        for nms in self.service.tcsp.nmses:
            for device in nms.devices.values():
                instance = device.services.get(self.service.user.user_id)
                if instance and instance.src_graph:
                    for comp in instance.src_graph.components():
                        if isinstance(comp, SourceAntiSpoof):
                            yield comp

    def dropped(self) -> int:
        return sum(c.dropped for c in self.components())


class TcsAntiSpoofMitigation(Mitigation):
    """Mitigation-interface adapter for the E2/E4 comparisons.

    Packet-level deployment goes through a provided service facade; the
    fluid filter reproduces the same semantics analytically: a spoofed flow
    claiming a protected prefix dies at its *source AS* whenever that stub
    AS hosts an adaptive device with the rule.
    """

    name = "tcs-antispoof"

    def __init__(self, protected_prefixes: Sequence[Prefix],
                 protected_asns: Sequence[int]) -> None:
        super().__init__()
        self.protected_prefixes = list(protected_prefixes)
        self.protected_asns = set(protected_asns)
        self._network: Optional[Network] = None

    def deploy(self, network: Network, asns: Iterable[int]) -> None:
        """Standalone deployment (without the TCSP plumbing): install the
        anti-spoof check as a router filter at the given stub ASes."""
        self._network = network
        from repro.net.node import Host

        for asn in asns:
            if network.topology.role_of(asn) is not ASRole.STUB:
                continue  # the rule only applies at peripheral ISPs
            router = network.routers[asn]
            local_prefix = network.topology.prefix_of(asn)

            def filt(packet, router, link, now, local_prefix=local_prefix):
                if link is None or not isinstance(link.src, Host):
                    return True  # transit traffic is never touched
                for prefix in self.protected_prefixes:
                    if prefix.contains(packet.src) and not local_prefix.overlaps(prefix):
                        return False
                return True

            router.add_filter(self.name, filt)
            self.deployed_asns.add(asn)

    def fluid_filter(self):
        mitigation = self

        class _Fluid:
            def pass_fraction(self, flow: Flow, asn: int, prev_asn, pos: int,
                              path) -> float:
                if (pos == 0 and asn in mitigation.deployed_asns
                        and flow.spoofed
                        and flow.source_address_asn in mitigation.protected_asns
                        and flow.src_asn not in mitigation.protected_asns):
                    return 0.0
                return 1.0

        return _Fluid()
