"""E8 — protocol-misuse teardown attacks and the TCS firewall (Sec. 4.3).

"Attacks based on protocol misuse like e.g. sending ICMP unreachable or
TCP reset messages to tear down TCP connections can also be filtered out."

Sweep the forged-teardown injection rate and measure connection survival
with and without the victim's distributed-firewall rules; both RST and
ICMP variants.
"""

from __future__ import annotations

from repro.attack import ConnectionPool, ProtocolMisuseAttack
from repro.core import DeploymentScope, NumberAuthority, Tcsp, TrafficControlService
from repro.core.apps import DistributedFirewallApp, FirewallRule
from repro.experiments.common import ExperimentConfig, register
from repro.net import Network, TopologyBuilder
from repro.util.tables import Table

__all__ = ["run", "misuse_table"]


def _world(cfg: ExperimentConfig, firewall: bool, mode: str, rate: float):
    net = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=cfg.seed))
    stubs = net.topology.stub_ases
    victim = net.add_host(stubs[0])
    peers = [net.add_host(a) for a in stubs[1:5]]
    attacker = net.add_host(stubs[5])
    pool = ConnectionPool(victim)
    for peer in peers:
        pool.establish(peer)
    fw = None
    if firewall:
        authority = NumberAuthority()
        tcsp = Tcsp("TCSP", authority, net)
        tcsp.contract_isp("isp", net.topology.as_numbers)
        prefix = net.topology.prefix_of(victim.asn)
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        svc = TrafficControlService(tcsp, user, cert)
        fw = DistributedFirewallApp(svc, [FirewallRule.block_teardown_rst(),
                                          FirewallRule.block_icmp_unreachable()])
        fw.deploy(DeploymentScope.everywhere())
    ProtocolMisuseAttack(net, attacker, pool, rate_pps=rate, duration=0.5,
                         mode=mode, seed=cfg.seed).launch()
    net.run(until=1.0)
    return pool, fw


def misuse_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E8: connection survival under forged teardown attacks (Sec. 4.3)",
        ["mode", "inject_pps", "survival_no_defense", "survival_with_tcs_fw",
         "fw_drops"],
    )
    for mode in ("rst", "icmp"):
        for rate in (5.0, 20.0, 100.0):
            pool_bare, _ = _world(cfg, firewall=False, mode=mode, rate=rate)
            pool_fw, fw = _world(cfg, firewall=True, mode=mode, rate=rate)
            table.add_row(mode, rate,
                          round(pool_bare.survival_fraction, 2),
                          round(pool_fw.survival_fraction, 2),
                          fw.dropped())
    table.add_note("4 established connections per run; the firewall rules "
                   "run in the victim's destination-owner stage on every "
                   "adaptive device")
    return table


@register("E8")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [misuse_table(cfg)]
