"""Component graphs (paper Sec. 5.2).

"Services are composed of components that are arranged as directed graphs
[10, 5].  Each component performs some well defined packet processing."

A :class:`ComponentGraph` is a DAG of named components with per-verdict
edges (Click-style ports): after a component returns PASS or DROP the
packet continues along the matching edge, or exits the graph on that
verdict if no edge is defined.  A DROP is **sticky**: once any component
drops, downstream components on the drop path may still observe the packet
(e.g. log it) but can never resurrect it — a structural piece of the
Sec. 4.5 safety story.
"""

from __future__ import annotations

from typing import Iterator, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import ComponentGraphError
from repro.core.components import Component, ComponentContext, Verdict
from repro.net.packet import Packet
from repro.obs.metrics import declare

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import PacketBatch
    from repro.policy.compiler import CompiledPolicy

_PACKETS_IN = declare(
    "graph.packets_in", "counter", labels=("graph",),
    help="packets entering a component graph")
_PACKETS_DROPPED = declare(
    "graph.packets_dropped", "counter", labels=("graph",),
    help="packets leaving a component graph with a DROP verdict")

__all__ = ["ComponentGraph"]


class ComponentGraph:
    """A validated DAG of packet-processing components."""

    def __init__(self, name: str = "service") -> None:
        self.name = name
        self._components: dict[str, Component] = {}
        self._edges: dict[tuple[str, Verdict], str] = {}
        self._entry: Optional[str] = None
        # registry-backed tallies; ``packets_in``/``packets_dropped`` stay
        # available as attribute views below
        self._m_packets_in = _PACKETS_IN.labelled(graph=name)
        self._m_packets_dropped = _PACKETS_DROPPED.labelled(graph=name)
        # structural version: bumped on every mutation so cached compiled
        # policies (repro.policy) know when to re-lower
        self._version = 0
        self._compiled: Optional["CompiledPolicy"] = None
        self._compiled_version = -1

    # ------------------------------------------------------- legacy counters
    @property
    def packets_in(self) -> int:
        return self._m_packets_in.value

    @packets_in.setter
    def packets_in(self, value: int) -> None:
        self._m_packets_in.value = value

    @property
    def packets_dropped(self) -> int:
        return self._m_packets_dropped.value

    @packets_dropped.setter
    def packets_dropped(self, value: int) -> None:
        self._m_packets_dropped.value = value

    # ---------------------------------------------------------------- building
    def add(self, component: Component, entry: bool = False) -> "ComponentGraph":
        """Add a component; the first added (or ``entry=True``) is the entry."""
        if component.name in self._components:
            raise ComponentGraphError(f"duplicate component name {component.name!r}")
        self._components[component.name] = component
        if entry or self._entry is None:
            self._entry = component.name
        self._version += 1
        return self

    def connect(self, src: str, dst: str, on: Verdict = Verdict.PASS) -> "ComponentGraph":
        """Route packets leaving ``src`` with verdict ``on`` into ``dst``."""
        for name in (src, dst):
            if name not in self._components:
                raise ComponentGraphError(f"unknown component {name!r}")
        self._edges[(src, on)] = dst
        self._version += 1
        return self

    def chain(self, *components: Component) -> "ComponentGraph":
        """Convenience: add components and connect them linearly on PASS."""
        for component in components:
            self.add(component)
        names = [c.name for c in components]
        for a, b in zip(names, names[1:]):
            self.connect(a, b, Verdict.PASS)
        return self

    @property
    def entry(self) -> Optional[str]:
        return self._entry

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError as exc:
            raise ComponentGraphError(f"unknown component {name!r}") from exc

    def components(self) -> Iterator[Component]:
        return iter(self._components.values())

    def edges(self) -> dict[tuple[str, Verdict], str]:
        """Copy of the verdict-edge map, in insertion order."""
        return dict(self._edges)

    def __len__(self) -> int:
        return len(self._components)

    @property
    def version(self) -> int:
        """Structural version; bumped on every :meth:`add`/:meth:`connect`."""
        return self._version

    def compiled(self) -> "CompiledPolicy":
        """The cached compiled policy for this graph (re-lowered on mutation).

        Compiles with ``vet=False``: runtime execution of an installed graph
        must never newly fail vetting that the interpreter would have
        tolerated — install/compose paths vet explicitly.
        """
        if self._compiled is None or self._compiled_version != self._version:
            # deferred import: repro.policy lowers graphs, so importing it
            # at module scope would be circular
            from repro.policy.compiler import compile_policy

            self._compiled = compile_policy(self, vet=False)
            self._compiled_version = self._version
        return self._compiled

    # -------------------------------------------------------------- validation
    def validate(self) -> None:
        """Raise unless the graph is non-empty, acyclic, and fully wired."""
        if not self._components or self._entry is None:
            raise ComponentGraphError(f"graph {self.name!r} is empty")
        # acyclicity over the union of PASS/DROP edges, from any node
        adjacency: dict[str, list[str]] = {n: [] for n in self._components}
        for (src, _), dst in self._edges.items():
            adjacency[src].append(dst)
        state: dict[str, int] = {}

        def visit(node: str) -> None:
            state[node] = 1
            for nxt in adjacency[node]:
                mark = state.get(nxt, 0)
                if mark == 1:
                    raise ComponentGraphError(
                        f"graph {self.name!r} has a cycle through {nxt!r}"
                    )
                if mark == 0:
                    visit(nxt)
            state[node] = 2

        for node in self._components:
            if state.get(node, 0) == 0:
                visit(node)
        # reachability: warn-level condition made strict — unreachable
        # components are almost certainly configuration bugs
        reachable = {self._entry}
        frontier = [self._entry]
        while frontier:
            node = frontier.pop()
            for verdict in (Verdict.PASS, Verdict.DROP):
                nxt = self._edges.get((node, verdict))
                if nxt is not None and nxt not in reachable:
                    reachable.add(nxt)
                    frontier.append(nxt)
        unreachable = set(self._components) - reachable
        if unreachable:
            raise ComponentGraphError(
                f"graph {self.name!r}: unreachable components {sorted(unreachable)}"
            )

    # --------------------------------------------------------------- execution
    def batch_plan(self) -> Optional[list[Component]]:
        """The PASS-chain of pure batch-capable observers, or ``None``.

        A graph qualifies for the device's vectorised observer path only
        when every component is reachable along one PASS chain from the
        entry, is ``batch_capable``, declares neither drops nor mutations
        (``may_drop``/``may_shrink``/``modifies_headers``), and wires no
        DROP edge — i.e. every packet provably passes unmodified, so the
        per-packet verdict walk collapses to one vectorised update per
        component.
        """
        if self._entry is None:
            return None
        plan: list[Component] = []
        seen: set[str] = set()
        node: Optional[str] = self._entry
        while node is not None:
            if node in seen:
                return None
            seen.add(node)
            component = self._components[node]
            caps = component.capabilities
            if (not component.batch_capable or caps.may_drop
                    or caps.may_shrink or caps.modifies_headers):
                return None
            if (node, Verdict.DROP) in self._edges:
                return None
            plan.append(component)
            node = self._edges.get((node, Verdict.PASS))
        if len(plan) != len(self._components):
            return None
        return plan

    def process_batch(self, batch: "PacketBatch", rows: np.ndarray,
                      ctx: ComponentContext,
                      plan: Optional[list[Component]] = None) -> None:
        """Run ``batch[rows]`` through a pure-observer chain (see
        :meth:`batch_plan`); counter totals match the scalar walk."""
        plan = plan if plan is not None else self.batch_plan()
        if plan is None:
            raise ComponentGraphError(
                f"graph {self.name!r} has no pure-observer batch plan")
        n = len(rows)
        self._m_packets_in.value += n
        for component in plan:
            component._m_processed.value += n
            component.process_batch(batch, rows, ctx)

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        """Run the packet through the graph; returns the final verdict.

        DROP is sticky: once set it cannot be reversed by later components.
        """
        if self._entry is None:
            raise ComponentGraphError(f"graph {self.name!r} is empty")
        self._m_packets_in.value += 1
        doomed = False
        node: Optional[str] = self._entry
        steps = 0
        limit = len(self._components) + 1
        while node is not None:
            if steps >= limit:  # defense in depth; validate() prevents cycles
                raise ComponentGraphError(f"graph {self.name!r} did not terminate")
            steps += 1
            verdict = self._components[node](packet, ctx)
            if verdict is Verdict.DROP:
                doomed = True
            node = self._edges.get((node, verdict))
        if doomed:
            self._m_packets_dropped.value += 1
            return Verdict.DROP
        return Verdict.PASS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComponentGraph({self.name!r}, components={len(self._components)})"
