"""PacketBatch and the batched data plane.

The batching contract: at batch size 1 the vectorised pipeline is
byte-identical to the scalar one — same host/router/link counters, same
registry snapshot (modulo the ``sim.batch*`` slot counters), same final
simulated clock.  Larger batches keep exact drop-tail admission and
counter totals while coarsening intra-batch departure spacing.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.net import (
    IPv4Address,
    LinkParams,
    Link,
    Network,
    Node,
    Packet,
    PacketBatch,
    Protocol,
    Simulator,
    TopologyBuilder,
)
from repro.obs import scoped
from repro.util.units import Mbps, ms


class TestConstruction:
    def test_broadcast_scalars(self):
        b = PacketBatch(src=np.full(4, 100, dtype=np.int64), dst=200,
                        size=700, kind="attack")
        assert len(b) == 4
        assert list(b.dst) == [200] * 4
        assert b.total_bytes == 2800
        assert b.kind_counts() == {"attack": 4}

    def test_scalar_src_needs_length(self):
        with pytest.raises(SimulationError):
            PacketBatch(src=100, dst=200)

    def test_size_clamped_to_header(self):
        b = PacketBatch(src=np.array([1, 2]), dst=3, size=np.array([1, 999]))
        assert list(b.size) == [20, 999]

    def test_kind_vocabulary(self):
        b = PacketBatch(src=np.arange(3), dst=9,
                        kind=["legit", "attack", "legit"])
        assert b.kind_counts() == {"legit": 2, "attack": 1}
        assert b.bytes_by_kind() == {"legit": 1024, "attack": 512}

    def test_column_length_mismatch_raises(self):
        with pytest.raises(SimulationError):
            PacketBatch(src=np.arange(3), dst=np.arange(2))

    def test_round_trip_through_packets(self):
        src = [int(IPv4Address.parse("10.0.0.1")),
               int(IPv4Address.parse("10.0.0.2"))]
        b = PacketBatch(src=np.array(src), dst=int(IPv4Address.parse("10.1.0.9")),
                        proto=Protocol.TCP, dport=80, ttl=9, size=99,
                        kind=["legit", "attack"], flow_id=np.array([5, 6]))
        again = PacketBatch.from_packets(b.to_packets())
        for col in ("src", "dst", "size", "ttl", "proto", "sport", "dport",
                    "flags", "icmp", "flow_id"):
            assert list(getattr(again, col)) == list(getattr(b, col)), col
        assert again.kind_counts() == b.kind_counts()

    def test_select_and_concat(self):
        b = PacketBatch(src=np.arange(6), dst=9, kind=["a", "b"] * 3)
        evens = b.select(np.array([True, False] * 3))
        odds = b.select(np.array([False, True] * 3))
        assert list(evens.src) == [0, 2, 4]
        merged = PacketBatch.concat([evens, odds])
        assert sorted(merged.src) == list(range(6))
        assert merged.kind_counts() == b.kind_counts()

    def test_concat_empty(self):
        assert len(PacketBatch.concat([])) == 0

    def test_flow_keys_pack_unsigned(self):
        hi = 2**32 - 1
        b = PacketBatch(src=np.array([hi]), dst=hi, proto=Protocol.TCP,
                        dport=2**16 - 1)
        a, key_b = b.flow_keys()
        assert a.dtype == np.uint64 and key_b.dtype == np.uint64
        assert int(a[0]) == (hi << 32) | hi

    def test_write_back(self):
        b = PacketBatch(src=np.array([1]), dst=2, ttl=10)
        p = b.packet_at(0)
        p.ttl -= 3
        b.write_back(0, p)
        assert b.ttl[0] == 7


def _run_line(batched: bool, access=None, n_packets: int = 40):
    """Send the same staggered traffic scalar or as 1-packet batches."""
    with scoped() as reg:
        net = Network(TopologyBuilder.line(3), access=access or LinkParams())
        a = net.add_host(0)
        b = net.add_host(2)
        rng = np.random.default_rng(7)
        sizes = rng.integers(64, 1500, n_packets)
        for i in range(n_packets):
            kind = "legit" if i % 3 else "attack"
            when = i * 2e-4
            if batched:
                pb = PacketBatch.udp(np.array([int(a.address)]),
                                     int(b.address), size=int(sizes[i]),
                                     kind=kind)
                net.sim.schedule_at(when, a.send_batch, pb)
            else:
                pkt = Packet.udp(a.address, b.address, size=int(sizes[i]),
                                 kind=kind)
                net.sim.schedule_at(when, a.send, pkt)
        net.run()
        state = (
            b.received_packets, b.received_bytes,
            dict(b.received_by_kind), dict(b.received_bytes_by_kind),
            a.sent_packets,
            {asn: (r.forwarded_packets, r.forwarded_bytes,
                   r.delivered_packets, dict(r.drops))
             for asn, r in net.routers.items()},
            dict(net.global_drops), dict(net.byte_hops_by_kind),
            round(net.sim.now, 12),
        )
        snap = {k: v for k, v in reg.snapshot().items()
                if not k.startswith("sim.batch")}
    return state, snap


class TestBatchOneEquivalence:
    def test_uncongested_byte_identical(self):
        scalar_state, scalar_snap = _run_line(batched=False)
        batch_state, batch_snap = _run_line(batched=True)
        assert batch_state == scalar_state
        assert batch_snap == scalar_snap

    def test_congested_byte_identical(self):
        """Queue-full drops and their counters agree at batch size 1."""
        thin = LinkParams(bandwidth=Mbps(1), delay=ms(2), buffer_bytes=4000)
        scalar_state, scalar_snap = _run_line(batched=False, access=thin,
                                              n_packets=80)
        batch_state, batch_snap = _run_line(batched=True, access=thin,
                                            n_packets=80)
        assert scalar_state[0] < scalar_state[4]  # uplink tail drops happened
        assert batch_state == scalar_state
        assert batch_snap == scalar_snap


class _Sink(Node):
    def __init__(self):
        super().__init__("sink")
        self.packets = 0

    def receive(self, packet, link):
        self.packets += 1

    def receive_batch(self, batch, link):
        self.packets += len(batch)


class TestTransmitBatchDropParity:
    def _sizes(self):
        return np.random.default_rng(11).integers(100, 2000, 64)

    def _scalar_accepts(self, sizes):
        with scoped():
            sim = Simulator()
            link = Link(_Sink(), _Sink(), bandwidth=Mbps(10), delay=ms(1),
                        buffer_bytes=8000)
            accepted = [link.send(Packet.udp(IPv4Address(1), IPv4Address(2),
                                             size=int(s)), sim)
                        for s in sizes]
            stats = (link.tx_packets, link.tx_bytes, link.dropped_packets,
                     link.dropped_bytes)
        return accepted, stats

    def _batch_accepts(self, sizes):
        with scoped():
            sim = Simulator()
            link = Link(_Sink(), _Sink(), bandwidth=Mbps(10), delay=ms(1),
                        buffer_bytes=8000)
            batch = PacketBatch.udp(np.full(len(sizes), 1, dtype=np.int64), 2,
                                    size=sizes.astype(np.int64))
            batch.flow_id = np.arange(len(sizes), dtype=np.int64)
            rejected = link.transmit_batch(batch, sim)
            rejected_ids = set() if rejected is None else {
                int(x) for x in rejected.flow_id}
            accepted = [i not in rejected_ids for i in range(len(sizes))]
            stats = (link.tx_packets, link.tx_bytes, link.dropped_packets,
                     link.dropped_bytes)
        return accepted, stats

    def test_same_admission_pattern_and_counters(self):
        """Exact drop-tail: the batch admits precisely the packets the
        scalar per-packet loop admits (including post-drop re-admission of
        smaller packets), with equal byte accounting."""
        sizes = self._sizes()
        scalar_accepted, scalar_stats = self._scalar_accepts(sizes)
        batch_accepted, batch_stats = self._batch_accepts(sizes)
        assert sum(scalar_accepted) < len(sizes)  # buffer did overflow
        assert batch_accepted == scalar_accepted
        assert batch_stats == scalar_stats

    def test_all_accepted_returns_none(self):
        with scoped():
            sim = Simulator()
            sink = _Sink()
            link = Link(_Sink(), sink, bandwidth=Mbps(10), delay=ms(1),
                        buffer_bytes=1 << 20)
            batch = PacketBatch.udp(np.full(10, 1, dtype=np.int64), 2)
            assert link.transmit_batch(batch, sim) is None
            sim.run()
            assert sink.packets == 10

    def test_empty_batch_is_noop(self):
        with scoped():
            sim = Simulator()
            link = Link(_Sink(), _Sink(), bandwidth=Mbps(10), delay=ms(1))
            empty = PacketBatch(src=np.empty(0, dtype=np.int64),
                                dst=np.empty(0, dtype=np.int64))
            assert link.transmit_batch(empty, sim) is None
            assert link.tx_packets == 0


class TestBatchDropReasons:
    def _net(self, **kw):
        net = Network(TopologyBuilder.line(3), **kw)
        return net, net.add_host(0), net.add_host(2)

    def test_no_route(self):
        with scoped():
            net, a, b = self._net()
            outside = int(IPv4Address.parse("172.16.0.1"))
            batch = PacketBatch.udp(np.full(3, int(a.address), dtype=np.int64),
                                    outside)
            net.routers[0].receive_batch(batch, None)
            assert net.routers[0].drops["no-route"] == 3
            assert net.global_drops["no-route"] == 3

    def test_ttl_expired(self):
        with scoped():
            net, a, b = self._net()
            batch = PacketBatch.udp(np.full(2, int(a.address), dtype=np.int64),
                                    int(b.address), ttl=1)
            net.routers[0].receive_batch(batch, None)
            assert net.routers[0].drops["ttl-expired"] == 2

    def test_no_host(self):
        with scoped():
            net, a, b = self._net()
            ghost = int(net.topology.prefix_of(0).base + 250)
            batch = PacketBatch.udp(np.full(2, int(a.address), dtype=np.int64),
                                    ghost)
            net.routers[0].receive_batch(batch, None)
            assert net.routers[0].drops["no-host"] == 2

    def test_queue_full_counts_match_delivery(self):
        """A batch larger than the access buffer splits exactly into
        delivered + queue-full."""
        with scoped():
            thin = LinkParams(bandwidth=Mbps(1), delay=ms(1),
                              buffer_bytes=64_000)
            net, a, b = self._net(access=thin)
            n = 1024
            batch = PacketBatch.udp(np.full(n, int(a.address), dtype=np.int64),
                                    int(b.address))
            sent = a.send_batch(batch)
            net.run()
            assert sent == 64_000 // 512  # uplink buffer in 512-byte packets
            assert b.received_packets == sent

    def test_mixed_destinations_split_by_next_hop(self):
        """One batch fans out to a local host and a remote AS correctly."""
        with scoped():
            net = Network(TopologyBuilder.star(3))
            hub_host = net.add_host(0)
            leaf_host = net.add_host(1)
            src = np.full(4, int(leaf_host.address), dtype=np.int64)
            dst = np.array([int(hub_host.address), int(leaf_host.address)] * 2,
                           dtype=np.int64)
            batch = PacketBatch.udp(src, dst)
            net.routers[1].receive_batch(batch, None)
            net.run()
            assert hub_host.received_packets == 2
            assert leaf_host.received_packets == 2
