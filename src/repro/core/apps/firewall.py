"""Distributed firewall on the traffic control service.

Sec. 4.3: "Attacks based on protocol misuse like e.g. sending ICMP
unreachable or TCP reset messages to tear down TCP connections can also be
filtered out.  Without such a distributed traffic control service,
worldwide filtering of illegitimate packets is almost impossible due to
the many network operators involved."

The firewall runs in the *destination-owner* stage: the owner of the
protected servers filters what may reach them, anywhere in the network —
"distributed firewall-like filtering" (Sec. 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.components import (
    HeaderFilter,
    HeaderMatch,
    LoggerComponent,
    RateLimiterComponent,
)
from repro.core.device import DeviceContext
from repro.core.deployment import DeploymentScope
from repro.core.graph import ComponentGraph
from repro.core.service import TrafficControlService
from repro.net.packet import ICMPType, Protocol, TCPFlags

__all__ = ["FirewallRule", "DistributedFirewallApp"]


@dataclass(frozen=True)
class FirewallRule:
    """A named drop rule over a header match."""

    name: str
    match: HeaderMatch

    @classmethod
    def block_teardown_rst(cls) -> "FirewallRule":
        """Drop forged TCP RSTs aimed at the owner's hosts."""
        return cls("block-rst", HeaderMatch(proto=Protocol.TCP, flags_any=TCPFlags.RST))

    @classmethod
    def block_icmp_unreachable(cls) -> "FirewallRule":
        """Drop ICMP host-unreachable teardown messages."""
        return cls("block-icmp-unreach",
                   HeaderMatch(proto=Protocol.ICMP, icmp_type=ICMPType.HOST_UNREACHABLE))

    @classmethod
    def block_port(cls, dport: int, proto: Protocol = Protocol.UDP) -> "FirewallRule":
        return cls(f"block-{proto.name.lower()}-{dport}",
                   HeaderMatch(proto=proto, dport=dport))


class DistributedFirewallApp:
    """Deploy a rule set (plus optional rate limit and logging) worldwide."""

    def __init__(self, service: TrafficControlService,
                 rules: Sequence[FirewallRule],
                 rate_limit_bps: Optional[float] = None,
                 with_logging: bool = False) -> None:
        self.service = service
        self.rules = list(rules)
        self.rate_limit_bps = rate_limit_bps
        self.with_logging = with_logging
        self._graphs: list[ComponentGraph] = []

    def graph_factory(self, device_ctx: DeviceContext) -> ComponentGraph:
        graph = ComponentGraph(f"firewall:{self.service.user.user_id}")
        components: list = []
        if self.with_logging:
            # observe everything, including packets later filtered
            components.append(LoggerComponent("fw-log"))
        components += [HeaderFilter(rule.name, rule.match) for rule in self.rules]
        if self.rate_limit_bps is not None:
            components.append(RateLimiterComponent("fw-rate-limit", self.rate_limit_bps))
        graph.chain(*components)
        self._graphs.append(graph)
        return graph

    def deploy(self, scope: Optional[DeploymentScope] = None) -> dict[str, list[int]]:
        """Install in the destination-owner stage under the given scope."""
        scope = scope or DeploymentScope.everywhere()
        return self.service.deploy(scope, dst_graph_factory=self.graph_factory)

    def dropped(self) -> int:
        """Packets dropped by this firewall across all devices."""
        total = 0
        for graph in self._graphs:
            total += graph.packets_dropped
        return total
