"""E16 resilience experiment: smoke, determinism, and the recovery
acceptance criterion (effectiveness back within 5% of the fault-free run
after the last fault clears).
"""

import pytest

from repro.experiments import e16_resilience
from repro.experiments.common import ExperimentConfig

CFG = ExperimentConfig(seed=42, scale=0.3)


@pytest.fixture(scope="module")
def tables():
    return e16_resilience.run(CFG)


class TestShape:
    def test_six_tables(self, tables):
        assert len(tables) == 6
        assert all(t.rows for t in tables)

    def test_sweep_covers_all_levels(self, tables):
        levels = [row[0] for row in tables[0].rows]
        assert levels == [lvl for lvl, _ in e16_resilience.LEVELS]

    def test_fault_free_level_injects_nothing(self, tables):
        none_row = tables[0].rows[0]
        assert none_row[1] == 0 and none_row[2] == 0

    def test_heavier_levels_inject_more_faults(self, tables):
        counts = [row[1] for row in tables[0].rows]
        assert counts == sorted(counts)
        assert counts[-1] > 0


class TestRecovery:
    def test_every_level_recovers(self, tables):
        recovered_col = tables[0].columns.index("recovered")
        assert all(row[recovered_col] for row in tables[0].rows)

    def test_faults_degrade_effectiveness_while_active(self, tables):
        eff_col = tables[0].columns.index("eff_during_faults")
        heavy = tables[0].rows[-1][eff_col]
        assert heavy < 1.0  # crashes measurably leak attack traffic

    def test_fail_open_leaks_fail_closed_blocks(self, tables):
        e16d = tables[3]
        by_policy = {row[0]: row for row in e16d.rows}
        open_row, closed_row = by_policy["fail-open"], by_policy["fail-closed"]
        assert open_row[1] > closed_row[1]    # attack leaked while down
        assert open_row[2] > closed_row[2]    # legit preserved while down
        assert open_row[3] == closed_row[3] == 0.0  # both recover filtering


class TestStateSurvival:
    """E16e/E16f: the ISSUE acceptance criteria for the storage layer."""

    def test_backends_and_columns(self, tables):
        e16e = tables[4]
        assert [row[0] for row in e16e.rows] == ["memory", "replicated"]

    def test_memory_backend_loses_crashed_shard_state(self, tables):
        e16e = tables[4]
        row = dict(zip(e16e.columns, e16e.rows[0]))
        assert row["durable"] is False
        assert row["wiped"] > 0
        assert row["desired_healed"] < row["desired_deploy"]

    def test_replicated_backend_heals_to_full_deployment(self, tables):
        e16e = tables[4]
        row = dict(zip(e16e.columns, e16e.rows[1]))
        assert row["durable"] is True
        assert row["wiped"] == 0
        assert row["desired_healed"] == row["desired_deploy"]
        assert row["perm_lost"] == 0

    def test_tcsp_standby_promoted_during_outage(self, tables):
        e16e = tables[4]
        col = e16e.columns.index("tcsp_failovers")
        assert all(row[col] >= 1 for row in e16e.rows)

    def test_convergence_timeline_heals(self, tables):
        e16f = tables[5]
        live = e16f.columns.index("live_replicas")
        divergent = e16f.columns.index("divergent")
        assert any(row[live] < 3 for row in e16f.rows)  # the crash happened
        final = e16f.rows[-1]
        assert final[live] == 3 and final[divergent] == 0


class TestDeterminism:
    def test_two_runs_identical(self, tables):
        again = e16_resilience.run(CFG)
        assert repr(tables) == repr(again)

    def test_parallel_sweep_identical_to_serial(self, tables):
        fanned = e16_resilience.run(
            ExperimentConfig(seed=42, scale=0.3, workers=4))
        assert repr(tables) == repr(fanned)
