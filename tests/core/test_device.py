"""Tests for the adaptive device: redirect decision, two-stage processing,
scope confinement, runtime safety containment."""

import pytest

from repro.core import (
    AdaptiveDevice,
    ComponentGraph,
    DeviceContext,
    NetworkUser,
    OwnershipRegistry,
)
from repro.core.components import (
    Capabilities,
    Component,
    HeaderFilter,
    HeaderMatch,
    Verdict,
)
from repro.core.device import attach_device
from repro.errors import DeploymentError, SafetyViolation, VettingError
from repro.net import (
    ASRole,
    IPv4Address,
    Network,
    Packet,
    Prefix,
    Protocol,
    TopologyBuilder,
)

A = IPv4Address.parse
P = Prefix.parse


def make_device(role=ASRole.STUB, strict=True):
    registry = OwnershipRegistry()
    acme = NetworkUser("acme", prefixes=[P("10.1.0.0/16")])
    globex = NetworkUser("globex", prefixes=[P("10.2.0.0/16")])
    registry.register(acme)
    registry.register(globex)
    ctx = DeviceContext(asn=7, role=role, local_prefix=P("10.7.0.0/16"))
    return AdaptiveDevice(ctx, registry, strict=strict), acme, globex


def drop_udp_graph(name="g"):
    g = ComponentGraph(name)
    g.add(HeaderFilter("udp-drop", HeaderMatch(proto=Protocol.UDP)))
    return g


class TestRedirectDecision:
    def test_wants_only_owned_with_installed_service(self):
        device, acme, globex = make_device()
        device.install(acme, dst_graph=drop_udp_graph())
        assert device.wants(Packet.udp(A("10.9.0.1"), A("10.1.0.1")))   # dst owned
        assert device.wants(Packet.udp(A("10.1.0.1"), A("10.9.0.1")))   # src owned
        assert not device.wants(Packet.udp(A("10.9.0.1"), A("10.8.0.1")))  # unowned
        # globex is registered but has no service here
        assert not device.wants(Packet.udp(A("10.9.0.1"), A("10.2.0.1")))

    def test_unowned_traffic_never_reaches_graphs(self):
        """Scope confinement is structural (Sec. 4.5)."""
        device, acme, _ = make_device()
        graph = drop_udp_graph()
        device.install(acme, dst_graph=graph)
        pkt = Packet.udp(A("10.8.0.1"), A("10.9.0.1"))
        assert not device.wants(pkt)
        out = device.process(pkt, now=0.0, ingress_asn=None)
        assert out is pkt
        assert graph.packets_in == 0


class TestTwoStageProcessing:
    def test_dst_stage_runs_for_destination_owner(self):
        device, acme, _ = make_device()
        device.install(acme, dst_graph=drop_udp_graph())
        out = device.process(Packet.udp(A("10.9.0.1"), A("10.1.0.1")), 0.0, None)
        assert out is None  # dropped by acme's dst stage

    def test_src_stage_runs_for_source_owner(self):
        device, acme, _ = make_device()
        device.install(acme, src_graph=drop_udp_graph())
        out = device.process(Packet.udp(A("10.1.0.1"), A("10.9.0.1")), 0.0, None)
        assert out is None

    def test_both_stages_in_order(self):
        device, acme, globex = make_device()
        order = []

        class Tag(Component):
            def process(self, packet, ctx):
                order.append((self.name, ctx.stage, ctx.owner.user_id))
                return Verdict.PASS

        gs = ComponentGraph("src")
        gs.add(Tag("src-tag"))
        gd = ComponentGraph("dst")
        gd.add(Tag("dst-tag"))
        device.install(acme, src_graph=gs)
        device.install(globex, dst_graph=gd)
        pkt = Packet.udp(A("10.1.0.1"), A("10.2.0.1"))  # acme -> globex
        out = device.process(pkt, 0.0, None)
        assert out is pkt
        assert order == [("src-tag", "source", "acme"),
                         ("dst-tag", "dest", "globex")]

    def test_src_drop_prevents_dst_stage(self):
        device, acme, globex = make_device()
        hits = []

        class Spy(Component):
            def process(self, packet, ctx):
                hits.append(ctx.stage)
                return Verdict.PASS

        device.install(acme, src_graph=drop_udp_graph("src"))
        spy_graph = ComponentGraph("dst")
        spy_graph.add(Spy("spy"))
        device.install(globex, dst_graph=spy_graph)
        out = device.process(Packet.udp(A("10.1.0.1"), A("10.2.0.1")), 0.0, None)
        assert out is None
        assert hits == []

    def test_inactive_service_is_noop(self):
        device, acme, _ = make_device()
        device.install(acme, dst_graph=drop_udp_graph())
        device.set_active("acme", False)
        pkt = Packet.udp(A("10.9.0.1"), A("10.1.0.1"))
        assert device.process(pkt, 0.0, None) is pkt
        device.set_active("acme", True)
        assert device.process(pkt.copy(), 0.0, None) is None

    def test_set_active_unknown_user(self):
        device, *_ = make_device()
        with pytest.raises(DeploymentError):
            device.set_active("nobody", True)


class TestInstallUninstall:
    def test_install_requires_a_graph(self):
        device, acme, _ = make_device()
        with pytest.raises(DeploymentError):
            device.install(acme)

    def test_install_vets_graphs(self):
        device, acme, _ = make_device()

        class Amplifier(Component):
            capabilities = Capabilities(max_outputs_per_input=10)

            def process(self, packet, ctx):
                return Verdict.PASS

        bad = ComponentGraph("bad")
        bad.add(Amplifier("amp"))
        with pytest.raises(VettingError):
            device.install(acme, dst_graph=bad)
        assert "acme" not in device.services

    def test_reinstall_updates_stage(self):
        device, acme, _ = make_device()
        device.install(acme, dst_graph=drop_udp_graph("v1"))
        device.install(acme, src_graph=drop_udp_graph("v2"))
        inst = device.services["acme"]
        assert inst.dst_graph.name == "v1"
        assert inst.src_graph.name == "v2"

    def test_uninstall(self):
        device, acme, _ = make_device()
        device.install(acme, dst_graph=drop_udp_graph())
        assert device.uninstall("acme")
        assert not device.uninstall("acme")

    def test_rule_count(self):
        device, acme, globex = make_device()
        device.install(acme, src_graph=drop_udp_graph(), dst_graph=drop_udp_graph())
        device.install(globex, dst_graph=drop_udp_graph())
        assert device.rule_count() == 3


class LyingMutator(Component):
    """Declares itself benign but rewrites the destination address."""

    capabilities = Capabilities()

    def process(self, packet, ctx):
        packet.dst = A("10.9.9.9")
        return Verdict.PASS


class TestRuntimeSafety:
    def test_strict_device_raises_and_disables(self):
        device, acme, _ = make_device(strict=True)
        g = ComponentGraph("lying")
        g.add(LyingMutator("liar"))
        device.install(acme, dst_graph=g)
        pkt = Packet.udp(A("10.8.0.1"), A("10.1.0.1"))
        with pytest.raises(SafetyViolation):
            device.process(pkt, 0.0, None)
        assert device.services["acme"].disabled_for_violation
        assert device.safety_disables == 1
        # service is now contained: packets pass untouched
        pkt2 = Packet.udp(A("10.8.0.1"), A("10.1.0.1"))
        assert device.process(pkt2, 0.0, None) is pkt2

    def test_containment_device_restores_packet(self):
        device, acme, _ = make_device(strict=False)
        g = ComponentGraph("lying")
        g.add(LyingMutator("liar"))
        device.install(acme, dst_graph=g)
        original_dst = A("10.1.0.1")
        pkt = Packet.udp(A("10.8.0.1"), original_dst)
        out = device.process(pkt, 0.0, None)
        assert out is pkt
        assert out.dst == original_dst  # mutation undone
        assert device.services["acme"].disabled_for_violation

    def test_reinstall_clears_violation_flag(self):
        device, acme, _ = make_device(strict=False)
        g = ComponentGraph("lying")
        g.add(LyingMutator("liar"))
        device.install(acme, dst_graph=g)
        device.process(Packet.udp(A("10.8.0.1"), A("10.1.0.1")), 0.0, None)
        assert device.services["acme"].disabled_for_violation
        device.install(acme, dst_graph=drop_udp_graph("fixed"))
        assert not device.services["acme"].disabled_for_violation


class TestAttachToNetwork:
    def test_attached_device_filters_owned_traffic_in_flight(self):
        net = Network(TopologyBuilder.line(3))
        registry = OwnershipRegistry()
        victim_prefix = net.topology.prefix_of(2)
        acme = NetworkUser("acme", prefixes=[victim_prefix])
        registry.register(acme)
        device = attach_device(net, 1, registry)
        device.install(acme, dst_graph=drop_udp_graph())
        a = net.add_host(0)
        b = net.add_host(2)
        a.send(Packet.udp(a.address, b.address))  # UDP -> dropped at AS1
        a.send(Packet.tcp_syn(a.address, b.address))  # TCP -> passes
        net.run()
        assert b.received_packets == 1
        assert net.routers[1].drops["adaptive-device"] == 1
        assert device.redirected == 2

    def test_unowned_traffic_takes_direct_path(self):
        net = Network(TopologyBuilder.line(3))
        registry = OwnershipRegistry()
        acme = NetworkUser("acme", prefixes=[net.topology.prefix_of(0)])
        registry.register(acme)
        device = attach_device(net, 1, registry)
        device.install(acme, dst_graph=drop_udp_graph())
        x = net.add_host(1)
        y = net.add_host(2)
        x.send(Packet.udp(x.address, y.address))
        net.run()
        assert y.received_packets == 1
        assert device.redirected == 0


class TestResetStats:
    def test_reset_stats_zeroes_counters_but_keeps_services(self):
        device, acme, _ = make_device()
        device.install(acme, dst_graph=drop_udp_graph())
        device.process(Packet.udp(A("10.9.0.1"), A("10.1.0.1")), 0.0, None)
        device.crash()
        device.restart()
        assert device.dropped == 1
        assert device.crashes == 1 and device.restarts == 1

        device.reset_stats()
        for field in ("redirected", "dropped", "safety_disables", "crashes",
                      "restarts", "flow_cache_hits", "flow_cache_misses"):
            assert getattr(device, field) == 0

    def test_reset_stats_is_accounting_only(self):
        device, acme, _ = make_device()
        device.install(acme, dst_graph=drop_udp_graph())
        device.reset_stats()
        # the installed service still filters after the reset
        out = device.process(Packet.udp(A("10.9.0.1"), A("10.1.0.1")), 0.0, None)
        assert out is None
        assert device.dropped == 1
