"""Unit tests for the packet model."""

from repro.net import ICMPType, IPv4Address, Packet, Protocol, TCPFlags


A = IPv4Address.parse("10.0.0.1")
B = IPv4Address.parse("10.0.1.1")


class TestConstructors:
    def test_syn(self):
        p = Packet.tcp_syn(A, B, dport=80)
        assert p.proto is Protocol.TCP
        assert p.flags.is_syn
        assert not p.flags.is_synack

    def test_synack(self):
        p = Packet.tcp_synack(B, A)
        assert p.flags.is_synack
        assert not p.flags.is_syn

    def test_rst(self):
        p = Packet.tcp_rst(A, B)
        assert p.flags & TCPFlags.RST

    def test_icmp(self):
        p = Packet.icmp(A, B, ICMPType.HOST_UNREACHABLE)
        assert p.proto is Protocol.ICMP
        assert p.icmp_type is ICMPType.HOST_UNREACHABLE

    def test_udp(self):
        p = Packet.udp(A, B, dport=53, size=300)
        assert p.proto is Protocol.UDP
        assert p.size == 300

    def test_minimum_size_enforced(self):
        p = Packet(src=A, dst=B, size=1)
        assert p.size == 20

    def test_payload_bytes(self):
        assert Packet(src=A, dst=B, size=520).payload_bytes == 500
        assert Packet(src=A, dst=B, size=20).payload_bytes == 0


class TestIdentity:
    def test_uids_unique(self):
        uids = {Packet.udp(A, B).uid for _ in range(100)}
        assert len(uids) == 100

    def test_copy_gets_fresh_uid(self):
        p = Packet.udp(A, B)
        q = p.copy()
        assert q.uid != p.uid
        assert q.src == p.src and q.size == p.size

    def test_copy_with_overrides(self):
        p = Packet.udp(A, B, kind="legit")
        q = p.copy(kind="attack", ttl=3)
        assert q.kind == "attack" and q.ttl == 3
        assert p.kind == "legit"


class TestDigest:
    def test_digest_stable(self):
        p = Packet.udp(A, B)
        assert p.digest() == p.digest()

    def test_digest_ignores_ttl(self):
        """SPIE digests must survive forwarding (TTL changes per hop)."""
        p = Packet.udp(A, B)
        d1 = p.digest()
        p.ttl -= 3
        assert p.digest() == d1

    def test_digest_ignores_marking(self):
        p = Packet.udp(A, B)
        d1 = p.digest()
        p.marking = ("AS1", "AS2", 0)
        assert p.digest() == d1

    def test_distinct_packets_distinct_digests(self):
        p = Packet.udp(A, B)
        q = Packet.udp(A, B)
        assert p.digest() != q.digest()  # uid differs

    def test_digest_depends_on_header(self):
        p = Packet.udp(A, B, dport=53)
        q = p.copy(uid=p.uid, dport=80)
        assert p.digest() != q.digest()


class TestGroundTruth:
    def test_defaults(self):
        p = Packet.udp(A, B)
        assert p.kind == "legit"
        assert not p.spoofed
        assert p.true_origin is None

    def test_spoofed_attack(self):
        p = Packet.tcp_syn(A, B, spoofed=True, true_origin="agent-1", kind="attack")
        assert p.spoofed
        assert p.true_origin == "agent-1"
