"""Worldwide packet traceback service on the TCS (paper Sec. 4.4).

"Our system could be used to implement a worldwide packet traceback
service such as SPIE by storing a backlog of packet hashes.  This would
enable support for network forensics ...  Such a service would allow the
network user to investigate the origin of spoofed network traffic."

Digest stores run in the *destination-owner* stage (the user traces
packets sent *to* them), installed on whatever scope the user paid for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.components import DigestStoreComponent
from repro.core.device import DeviceContext
from repro.core.deployment import DeploymentScope
from repro.core.graph import ComponentGraph
from repro.core.service import TrafficControlService
from repro.net.packet import Packet

__all__ = ["SpieTracebackApp", "TcsTraceResult"]


@dataclass
class TcsTraceResult:
    """Path reconstructed from the user's own digest stores."""

    path: list[int] = field(default_factory=list)
    origin_asn: Optional[int] = None
    coverage_gap: bool = False  # walk ended at a device-less AS


class SpieTracebackApp:
    """Deploy digest stores and answer origin queries for owned traffic."""

    def __init__(self, service: TrafficControlService,
                 capacity: int = 50_000, window: float = 1.0,
                 max_windows: int = 16) -> None:
        self.service = service
        self.capacity = capacity
        self.window = window
        self.max_windows = max_windows
        self.stores: dict[int, DigestStoreComponent] = {}

    def graph_factory(self, device_ctx: DeviceContext) -> ComponentGraph:
        store = DigestStoreComponent("spie-digests", capacity=self.capacity,
                                     window=self.window,
                                     max_windows=self.max_windows)
        self.stores[device_ctx.asn] = store
        graph = ComponentGraph(f"spie:{self.service.user.user_id}")
        graph.add(store)
        return graph

    def deploy(self, scope: Optional[DeploymentScope] = None) -> dict[str, list[int]]:
        scope = scope or DeploymentScope.everywhere()
        return self.service.deploy(scope, dst_graph_factory=self.graph_factory)

    # ---------------------------------------------------------------- queries
    def saw(self, asn: int, packet: Packet) -> bool:
        store = self.stores.get(asn)
        return store is not None and store.saw(packet)

    def trace(self, packet: Packet, victim_asn: int) -> TcsTraceResult:
        """Reverse-path walk over the user's digest stores.

        Analogous to SPIE's traceback, but running on the user's own TCS
        deployment — no inter-ISP coordination needed at query time.
        """
        network = self.service.tcsp.network
        result = TcsTraceResult()
        current = victim_asn
        visited = {victim_asn}
        if self.saw(current, packet):
            result.path.append(current)
        while True:
            candidates = [n for n in network.topology.neighbors(current)
                          if n not in visited and self.saw(n, packet)]
            if not candidates:
                # distinguish "origin reached" from "left our coverage"
                uncovered = [n for n in network.topology.neighbors(current)
                             if n not in visited and n not in self.stores]
                result.coverage_gap = bool(uncovered) and not result.path
                break
            current = candidates[0]
            visited.add(current)
            result.path.append(current)
        result.origin_asn = result.path[-1] if result.path else None
        return result
