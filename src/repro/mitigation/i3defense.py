"""i3-based DDoS defense (Lakshminarayanan et al. [11] on Stoica's Internet
Indirection Infrastructure [23]).

Clients send to a *trigger* hosted on an i3 node; the i3 node forwards to
the server.  Under attack the server accepts only i3-relayed traffic.

Reproduced criticisms (Sec. 3.1):

* "IP addresses of the attacked servers are assumed to be hidden from the
  attackers.  It remains unclear how server IP addresses can be hidden
  under attack, when they are known under normal operation." — modelled by
  ``ip_already_known``: the attacker learned the address before the defense
  activated, so direct attack traffic still arrives at the victim's ISP
  and is dropped only at the perimeter — after crossing the Internet
  (wasted byte-hops stay high) and after loading the victim's edge links.
* indirection adds latency (one extra overlay leg) and the i3 node itself
  becomes an attackable rendezvous point.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import MitigationError
from repro.mitigation.base import Mitigation
from repro.net.link import Link
from repro.net.network import Network
from repro.net.node import Host, Router
from repro.net.packet import Packet

__all__ = ["I3Defense"]


class I3Defense(Mitigation):
    """Indirection defense for one victim host."""

    name = "i3"

    def __init__(self, victim: Host, i3_asns: Sequence[int],
                 ip_already_known: bool = True) -> None:
        super().__init__()
        if not i3_asns:
            raise MitigationError("i3 defense needs at least one i3 node AS")
        self.victim = victim
        self.i3_asns = list(i3_asns)
        self.ip_already_known = ip_already_known
        self.i3_nodes: list[Host] = []
        self.perimeter_drops = 0
        self.relayed = 0
        self.network: Optional[Network] = None

    def deploy(self, network: Network, asns: Iterable[int] = ()) -> None:
        self.network = network
        self.i3_nodes = [network.add_host(a) for a in self.i3_asns]
        for node in self.i3_nodes:
            node.add_responder(self._i3_responder())
        node_addrs = {int(n.address) for n in self.i3_nodes}
        victim_addr = int(self.victim.address)

        def perimeter(packet: Packet, router: Router, link: Optional[Link],
                      now: float) -> bool:
            if int(packet.dst) != victim_addr:
                return True
            if int(packet.src) in node_addrs:
                return True
            self.perimeter_drops += 1
            return False

        network.routers[self.victim.asn].add_filter(self.name, perimeter)
        self.deployed_asns.add(self.victim.asn)

    def _i3_responder(self):
        def respond(packet: Packet, host: Host, now: float):
            if packet.overlay_dst is None or int(packet.overlay_dst) != int(self.victim.address):
                return None
            self.relayed += 1
            return [packet.copy(src=host.address, dst=packet.overlay_dst,
                                overlay_dst=None)]

        return respond

    def trigger_packet(self, client: Host, template: Packet) -> Packet:
        """Rewrite a victim-bound packet to go via the client's i3 trigger."""
        if not self.i3_nodes:
            raise MitigationError("i3 defense not deployed")
        assert self.network is not None
        node = min(self.i3_nodes,
                   key=lambda n: (len(self.network.path(client.asn, n.asn)), n.name))
        return template.copy(dst=node.address, overlay_dst=self.victim.address)

    def stretch(self, client: Host) -> float:
        """Indirected path length / direct path length in AS hops."""
        assert self.network is not None
        node = min(self.i3_nodes,
                   key=lambda n: (len(self.network.path(client.asn, n.asn)), n.name))
        via = (len(self.network.path(client.asn, node.asn)) - 1
               + len(self.network.path(node.asn, self.victim.asn)) - 1)
        direct = len(self.network.path(client.asn, self.victim.asn)) - 1
        return via / direct if direct else float(via)
