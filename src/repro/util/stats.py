"""Small statistics helpers used by devices, links and experiments."""

from __future__ import annotations

import math
from collections import deque

__all__ = ["OnlineStats", "WindowedCounter"]


class OnlineStats:
    """Streaming mean/variance/min/max (Welford's algorithm).

    Constant memory, numerically stable — suitable for per-packet metrics in
    long simulation runs.

    >>> s = OnlineStats()
    >>> for x in (1.0, 2.0, 3.0): s.add(x)
    >>> s.mean
    2.0
    """

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        """Fold one observation into the summary."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two summaries (parallel-merge form of Welford)."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n, self._mean, self._m2 = other.n, other._mean, other._m2
            self.min, self.max = other.min, other.max
            return self
        delta = other._mean - self._mean
        total = self.n + other.n
        self._m2 += other._m2 + delta * delta * self.n * other.n / total
        self._mean += delta * other.n / total
        self.n = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self


class WindowedCounter:
    """Count of events inside a sliding time window.

    Used by trigger components ("rate of connection attempts ... exceeding
    expected boundaries", Sec. 4.4) and by the runtime safety monitor.
    """

    __slots__ = ("window", "_events")

    def __init__(self, window: float) -> None:
        self.window = float(window)
        self._events: deque[tuple[float, float]] = deque()

    def add(self, now: float, weight: float = 1.0) -> None:
        """Record an event of the given weight at time ``now``."""
        self._events.append((now, weight))
        self._expire(now)

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        ev = self._events
        while ev and ev[0][0] < cutoff:
            ev.popleft()

    def total(self, now: float) -> float:
        """Sum of weights inside ``[now - window, now]``."""
        self._expire(now)
        return sum(w for _, w in self._events)

    def rate(self, now: float) -> float:
        """Average weight per second over the window."""
        return self.total(now) / self.window if self.window > 0 else 0.0

    def __len__(self) -> int:
        return len(self._events)
