#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a full-scale experiment run.

Usage::

    python -m repro.experiments --markdown > /tmp/exp.md
    python tools/build_experiments_md.py /tmp/exp.md > EXPERIMENTS.md

or simply ``python tools/build_experiments_md.py`` to run the experiments
inline (slower, ~20 s).
"""

from __future__ import annotations

import io
import re
import sys

INTRO = """# EXPERIMENTS — paper claims vs. measured results

Every table below was regenerated with `python -m repro.experiments`
(seed 42, scale 1.0, fully deterministic; ~20 s total on a laptop) and this
file is rebuilt by `tools/build_experiments_md.py`.
The paper (IPPS 2005) is an architecture paper without quantitative
tables — its Figures 1-6 are diagrams — so each experiment operationalises
one *claim* of the paper; "reproduced" below means the measured **shape**
(who wins, by what kind of factor, where crossovers fall) matches the
claim.  The benchmark suite (`pytest benchmarks/ --benchmark-only`)
re-runs all of these at reduced scale.

| ID | Paper anchor | Claim | Reproduced? |
|----|--------------|-------|-------------|
| E1 | Fig. 1, Sec. 2.2 | the amplifying network multiplies packet rate, bytes and traceback difficulty | yes — rate amp 50-86x, byte amp = configured reply ratio, depth 3 |
| E2 | Sec. 3, 4.3 | prior mitigations fail or backfire per attack class; the TCS wins everywhere | yes — full matrix below |
| E3 | Sec. 3.2 [15] | route-based filtering highly effective at ~20% AS coverage | yes — <1% survival at 20% top-degree deployment, robust under valley-free routing |
| E4 | Sec. 4.3, 6 | TCS stops attacks close to the source and frees transport resources | yes — drop distance 0 hops; byte-hops fall 1:1 with victim protection |
| E5 | Sec. 4.5 | every misuse avenue is closed | yes — 10/10 attempts blocked |
| E6 | Sec. 5.3 | rules scale with subscribers, not hosts; redirect check is cheap | yes — linear in subscribers, flat in hosts |
| E7 | Sec. 5.1, Figs. 3-5 | one registration covers all ISPs; direct NMS path survives a DDoS on the TCSP | yes |
| E8 | Sec. 4.3 | protocol-misuse (RST/ICMP) teardown attacks can be filtered out | yes — 0% -> 100% connection survival |
| E9 | Sec. 3.1, 4.4 | traceback yields "a wrong attack source — the reflectors" | yes — all three traceback methods name only reflectors |
| E10 | Sec. 4.4 | triggers auto-activate rate limits on anomalies | yes — detection in 20-110 ms, goodput preserved |
| E11 | Sec. 4.4 | link delay/loss measurable in-network for debugging | yes — <1% delay error, loss localised |
| E12 | Sec. 4.6 | filtering close to the source frees ISP bandwidth; collateral confined to offending access networks | yes — 100% of core/transit attack load freed at full stub deployment |
| E13 | Secs. 4.1/4.3 | design-choice ablations (stage order, redirect policy, stateful filtering) | yes — each paper choice measurably dominates its alternative |
| E14 | Sec. 3.1 | "an attacked server's resources are exhausted before its uplink is overloaded" defeats pushback | yes — 0 pushback activations at <1% link load while the server dies; TCS unaffected |
| E15 | Secs. 1, 4.2 | rules "installed, configured and activated instantly" keep up with a vector-switching attacker | yes — every vector answered in 35-110 ms from packet headers alone |
| E16 | Secs. 4.5, 5.1 | the service stays effective and controllable while its own parts fail, and heals itself | yes — recovery to within 5% of fault-free effectiveness after every injected fault schedule; replicated control-plane state survives TCSP/NMS-shard/storage crashes with zero permanent losses |

---
"""

SECTIONS = [
 ("E1", "Fig. 1 / Sec. 2.2 — attack anatomy", """**Claim.** "Such a network amplifies the rate of packets (a few control
packets of the attacker to the masters cause many attack packets to be
sent by the agents to the victim), the size of packets (if request packet
size < reply packet size) and the difficulty to trace back an attack."

**Measured.** Rate amplification grows with the agent pool (50x -> 86x per
control packet); byte amplification equals the configured reply/request
ratio (DNS-style reflectors); the indirection depth is 3
(attacker->master->agent->reflector).  The worm model (Slammer parameters)
builds the "several ten thousand hosts" agent pool in ~3 minutes.""",
  ["E1a", "E1b"]),
 ("E2", "Sec. 3 / 4.3 — the mitigation matrix", """**Claims reproduced, row by row:**
* *ingress filtering* annihilates spoofed traffic (including reflector
  requests) but is useless against a real-address botnet, and it only
  works because here every agent-side stub deploys it (Sec. 3.2);
* *route-based filtering at 30% random ASes* barely helps at this scale
  (placement matters — see E3);
* *pushback* under spoofing names 20 innocent ASes as "the attacker"
  (Sec. 3.1: "legitimate sources may experience severe service
  degradation"); against the reflector attack its aggregates are the
  reflectors;
* *traceback-filter* halves the unspoofed flood (true sources found) but
  against the reflector attack identifies reflectors (ids_false) and
  filtering them buys little while cutting their legitimate services;
* *SOS* and *i3* protect the victim but cut off every client that did not
  pre-join (0.5 collateral = the non-participating half), and the attack
  still crosses the Internet to die at the perimeter;
* *last-hop filtering* fails outright: the victim is already overloaded
  when it tries to install rules (the paper's "interesting open question",
  answered in the negative);
* *the TCS* zeroes all three attack classes with zero collateral: anti-
  spoofing at stub borders (reflector), the dst-owner-stage distributed
  firewall (spoofed flood), and near-source blacklisting of genuine
  addresses (unspoofed botnet).""",
  ["E2"]),
 ("E3", "Sec. 3.2 — deployment-fraction sweep (Park & Lee)", """**Claim.** "ingress filtering is already highly effective against source
address spoofing even if only approximately 20% of the autonomous systems
have it in place" — for *route-based* filtering on power-law Internets.

**Measured.** Route-based filtering at the top-degree 20% of ASes lets
under 1% of spoofed traffic through; the same filter at *random* ASes
needs ~80% coverage for the same effect, and edge ingress filtering
scales only linearly with deployment.  Placement at high-degree transit
ASes is what makes the 20% figure work — consistent with [15].  E3b shows
the result is robust to the routing model: under valley-free (Gao-Rexford)
policy routing the funnel through high-degree providers is even tighter.""",
  ["E3", "E3b"]),
 ("E4", "Sec. 4.3 / Sec. 6 — the TCS defense", """**Claims.** "Our service allows for filtering traffic close to the source
of the attack" and "frees network resources that are nowadays wasted for
transporting attack traffic around the globe".

**Measured.** Victim-side protection scales linearly with the fraction of
stub borders offering the service (the incremental-deployment story of
Sec. 5.1); the mean drop distance is 0 hops (killed at the very source
AS), so wasted byte-hops fall 1:1 with the attack.  E4b contrasts: a
victim-edge filter protects the victim equally well but still burns 100%
of the transport path.  Collateral is 0 at every deployment level.""",
  ["E4", "E4b"]),
 ("E5", "Sec. 4.5 — misuse prevention", """**Claim.** "Any misuse of such a novel service must be prevented from the
very beginning ... countermeasures against effects of misconfigurations
and misuse were taken into consideration when designing this new service."

**Measured.** All ten concrete misuse attempts are blocked by the designed
mechanism (registration/ownership checks, certificate signatures, static
vetting of declared capabilities, runtime conservation monitoring with
containment, structural scope confinement).  Property-based tests
(hypothesis) cover the same invariants over randomised inputs.""",
  ["E5"]),
 ("E6", "Sec. 5.3 — scalability", """**Claim.** "no additional rules must be installed in our adaptive devices
when more users join the Internet or when additional computers are
attached"; rules derive from "the tens of thousands of subscribers".

**Measured.** Rules grow exactly linearly in subscribers (2 per
subscriber here) and are flat in the host population; the per-packet
redirect decision (one longest-prefix-match lookup) costs ~2 us regardless
of the subscriber count, and unowned traffic pays only that check
("Most traffic will use the direct path through the router").  E6g
extends the same state-vs-population argument to flow *statistics*: the
exact per-flow backend grows linearly with attacker fan-in while the
sketch backends (Count-Min, Count-Sketch, counting Bloom) hold constant
state with top-10 heavy-hitter recall >= 0.9 — statistics memory, like
rule count, need not scale with the host population.""",
  ["E6a", "E6b", "E6c", "E6d", "E6e", "E6f", "E6g"]),
 ("E7", "Sec. 5.1 / Figs. 3-5 — control plane", """**Claims.** "Only a single service registration is needed instead of a
separate one with each ISP"; the direct NMS path works "if the network
conditions are such that the TCSP can no longer be reached, e.g. because
of an ongoing DDoS attack on the TCSP".

**Measured.** One registration + one deploy call configures all devices
across 4 contracted ISPs; with the TCSP down, the home-NMS path with peer
forwarding reaches identical coverage.  E7c makes the outage mechanistic:
control requests travel as packets to a TCSP *host* with bounded service
capacity, and a flood past that capacity starves them — 100% -> 0%
completion exactly at the crossover.""",
  ["E7a", "E7b", "E7c"]),
 ("E8", "Sec. 4.3 — protocol-misuse teardown", """**Claim.** "Attacks based on protocol misuse like e.g. sending ICMP
unreachable or TCP reset messages to tear down TCP connections can also
be filtered out."

**Measured.** Undefended, forged teardown packets kill every connection
at >=20 pps; with the two TCS firewall rules, survival is 100% at every
injection rate, for both RST and ICMP variants.  (E13c refines this with
a stateful filter that additionally spares *legitimate* resets.)""",
  ["E8"]),
 ("E9", "Sec. 3.1 / 4.4 — traceback", """**Claim.** "Reactive strategies involving traceback mechanisms will yield
a wrong attack source — the reflectors — ... if DDoS attacks involve
reflectors."

**Measured.** PPM, classic SPIE and the TCS-hosted SPIE service all
identify the true agent ASes for direct attacks (even spoofed ones), and
all three terminate at the *reflectors* for reflector attacks — the
packets the victim receives were genuinely created there.  E9b shows the
SPIE digest-backlog limit: packets older than the retained Bloom-filter
windows become untraceable.""",
  ["E9a", "E9b"]),
 ("E10", "Sec. 4.4 — automated reaction", """**Claim.** "Automated reaction to network anomalies could be implemented
by placing triggers that fire an event if the traffic statistics ...
indicate values exceeding expected boundaries.  As a consequence, a rule
that rate limits the anomalous traffic could be activated."

**Measured.** Pre-armed triggers detect the flood in 20-110 ms (faster at
lower thresholds), activate the pre-installed rate limiter on each firing
device, cut attack delivery by up to 27x, and — because the limiter
targets only the anomalous traffic class — leave legit goodput at 100%.
E10b attaches a SpaceSaving heavy-hitter tracker to the trigger window:
each firing then *names* the offending sources (attacker recall 1.0 with
O(64) state per trigger) and the reaction narrows from "all matching
traffic" to the identified offenders.""",
  ["E10", "E10b"]),
 ("E11", "Sec. 4.4 — network debugging", """**Claim.** "Link delays or packet loss on intermediate links could be
measured for network debugging purposes."

**Measured.** Per-segment one-way delay recovered to within 0.1% (the
residual is serialization time); a squeezed link's loss is detected and
localised to the right segment.""",
  ["E11"]),
 ("E12", "Sec. 4.6 — deployment incentives", """**Claim.** "Malicious or illegitimate traffic can now be filtered closer
to the source.  This frees valuable bandwidth resources ... Collateral
damage is limited mostly to poorly managed access networks where infected
or compromised machines are hooked up to the Internet."

**Measured.** With full stub-border deployment the reflector attack never
leaves the offending access networks: core and transit ISPs carry 0% of
the former attack load (their incentive to offer the premium service),
and the containment table shows the killed-at-source share tracking the
deployment fraction 1:1.""",
  ["E12", "E12b"]),
 ("E13", "design-choice ablations", """Three architecture decisions, each measured against its alternative:

* *source stage before destination stage* (Sec. 4.1) — reversed, a
  receiver's logger observes packets the sender's stage then retracts;
  the paper's order mirrors send-then-receive causality.
* *redirect only owned traffic* (Sec. 4.1) — the cost of giving up the
  ownership check, measured honestly for this software model.
* *stateless vs. stateful teardown filtering* (Sec. 4.3) — blocking every
  RST also kills 100% of legitimate resets; the connection-aware filter
  (an implemented extension) blocks all forged teardowns and no real ones.""",
  ["E13a", "E13b", "E13c"]),
 ("E14", "Sec. 3.1 — the server-farm failure mode", """**Claim.** "Pushback assumes that DDoS attacks result in overloaded
links.  In many cases, however, an attacked server's resources are
exhausted before its uplink is overloaded.  In particular, this is the
case for servers that are hosted in farms."

**Measured.** Behind a 1 Gbit/s farm link a moderate botnet never pushes
link utilisation past ~1%, yet the victim's CPU model drops most traffic
— including two thirds of legitimate requests.  Pushback's
drop-statistics detector records **zero** activations (nothing congests),
while the victim-deployed TCS blacklist — which needs no congestion
signal — removes the flood at its sources and restores 100% service.""",
  ["E14"]),
 ("E15", "Secs. 1 / 4.2 — the arms race", """**Claim.** Attackers "construct new attack tools and variants" faster
than defenses follow (Sec. 1); the TCS counters this because rules "can
be installed, configured and activated instantly" (Sec. 4.2).

**Measured.** A three-phase campaign switches vectors (reflector bounce,
spoofed UDP flood, forged-RST teardown).  The reactive defender — seeing
only packet headers at the victim — classifies each vector's signature
and answers with the matching TCS deployment within 35-110 ms; per-phase
attack delivery collapses and 8/10 long-lived connections survive the
teardown phase versus 1/10 undefended.""",
  ["E15"]),
 ("E16", "Secs. 4.5 / 5.1 — resilience under injected faults", """**Claims.** The control plane survives a DDoS on the TCSP (Sec. 5.1) and
a failing device must never exceed its owner's mandate (Sec. 4.5) — here
hardened into a measurable property: *mitigation effectiveness returns to
within 5% of the fault-free run after the last injected fault clears*.

**Measured.** A seeded fault schedule (device crashes, control-message
loss windows, NMS partitions, a TCSP outage) is injected into a live
deployment filtering a UDP flood.  Effectiveness dips while source-side
devices are down (fail-open) and recovers every time: crashed devices
restart *wiped* (Sec. 4.5) and the NMS watchdog's anti-entropy pass
re-installs the desired services within one heartbeat.  E16c shows the
control-plane paths: a TCSP outage is detected by retry exhaustion and
fails over to the direct peer-NMS path; a partitioned NMS is skipped and
resynced afterwards.  E16d quantifies the fail-open/fail-closed policy
choice: fail-open leaks the crashed stub's attack share but preserves
legitimate traffic; fail-closed inverts the trade.  E16e/E16f extend the
chaos to control-plane *state*: the TCSP runs as a replica set over a
pluggable storage backend, and a fault plan crashes the primary TCSP,
one NMS shard and one storage replica mid-run.  With process-local
memory the crashed shard's desired state is wiped and stays lost; with
the replicated, prefix-sharded store a promoted standby and the
restarted NMS reconcile back to full deployment — zero permanently lost
records after heal — and E16f's timeline shows the replica set
converging (divergent records repaired by anti-entropy within two
windows of the restart).  The whole experiment is deterministic for a
seed (two runs are byte-identical, serial or parallel).""",
  ["E16a", "E16b", "E16c", "E16d", "E16e", "E16f"]),
]


def parse_blocks(text: str) -> dict[str, str]:
    blocks: dict[str, str] = {}
    current_key, buf = None, []
    for line in io.StringIO(text):
        m = re.match(r"\*\*(E\d+[a-g]?):", line)
        if m:
            if current_key:
                blocks[current_key] = "".join(buf).strip()
            current_key, buf = m.group(1), [line]
        elif current_key:
            buf.append(line)
    if current_key:
        blocks[current_key] = "".join(buf).strip()
    return blocks


def build(markdown_tables: str) -> str:
    blocks = parse_blocks(markdown_tables)
    wanted = [key for _, _, _, keys in SECTIONS for key in keys]
    missing = [k for k in wanted if k not in blocks]
    if missing:
        raise SystemExit(f"missing experiment tables: {missing}")
    out = [INTRO]
    for exp_id, title, commentary, keys in SECTIONS:
        out.append(f"## {exp_id} — {title}\n\n{commentary}\n")
        for key in keys:
            out.append(blocks[key] + "\n")
        out.append("---\n")
    out.append("""## Scenario layer — packet vs. fluid engine comparison

Every experiment above now runs through the declarative scenario layer
(`repro.scenario`, see DESIGN.md §10): a frozen `ScenarioSpec` built once
and executed by interchangeable engines.  The E2-shaped presets run on
*both* backends via `python -m repro scenario run --spec NAME --engine
both` (seed 42, scale 1.0):

| preset | engine | attack survival | legit goodput | collateral |
|---|---|---|---|---|
| `reflector-tcs` | packet | 0.000 | 1.000 | 0.000 |
| `reflector-tcs` | fluid | 0.000 | 1.000 | 0.000 |
| `spoofed-flood-ingress` | packet | 0.000 | 1.000 | 0.000 |
| `spoofed-flood-ingress` | fluid | 0.000 | 1.000 | 0.000 |
| `spoofed-flood-rbf` | packet | 0.400 | 1.000 | 0.000 |
| `spoofed-flood-rbf` | fluid | 0.375 | 1.000 | 0.000 |
| `reflector-baseline` | packet | 0.230 | 0.536 | 0.000 |
| `reflector-baseline` | fluid | 1.000 | 1.000 | 0.000 |

The engines agree wherever the models overlap: full-coverage filtering
(TCS anti-spoofing, RFC 2267 ingress) reports zero attack survival and
zero collateral on either backend, and partial route-based filtering
lands within a few percent (0.400 packet vs. 0.375 fluid — the packet
engine's per-packet sampling vs. the fluid model's exact flow fractions).
*Undefended* cells differ by design: the fluid model's default link
capacities exceed the packet model's access-link limits, so fluid
survival is 1.0 where the packet engine already shows congestive
queue-drop (0.23 for the amplified reflector flood, with legitimate
goodput collapsing to 0.54).  Filtering conclusions transfer between
backends; congestion conclusions require the packet engine.

---

## Reproduction environment

* `python -m repro.experiments --seed 42 --scale 1.0`
* Python 3.11, numpy/scipy/networkx only, no network access.
* All numbers above are deterministic for the given seed; different seeds
  move individual numbers but not any qualitative shape.
""")
    return "\n".join(out)


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        tables = open(argv[1]).read()
    else:
        import contextlib

        from repro.experiments.__main__ import main as run_experiments

        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            run_experiments(["--markdown"])
        tables = buf.getvalue()
    sys.stdout.write(build(tables))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
