"""Tests for component graphs and the Sec. 4.5 safety machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ComponentGraph, NetworkUser, SafetyMonitor, vet_component, vet_graph
from repro.core.components import (
    Capabilities,
    Component,
    ComponentContext,
    HeaderFilter,
    HeaderMatch,
    LoggerComponent,
    PayloadScrubber,
    PrefixBlacklist,
    Verdict,
)
from repro.core.safety import MAX_EXTRA_TRAFFIC_BPS, PacketSnapshot
from repro.errors import ComponentGraphError, SafetyViolation, VettingError
from repro.net import IPv4Address, Packet, Prefix, Protocol

A = IPv4Address.parse
P = Prefix.parse
OWNER = NetworkUser("acme", prefixes=[P("10.1.0.0/16")])


def ctx(now=0.0):
    return ComponentContext(now=now, asn=1, is_transit=False,
                            local_prefix=P("10.9.0.0/16"), stage="dest",
                            owner=OWNER)


class PassThrough(Component):
    def process(self, packet, ctx):
        return Verdict.PASS


class DropAll(Component):
    capabilities = Capabilities(may_drop=True)

    def process(self, packet, ctx):
        return Verdict.DROP


class TestGraphBuilding:
    def test_chain_processes_in_order(self):
        g = ComponentGraph("g")
        seen = []

        class Tag(Component):
            def process(self, packet, ctx):
                seen.append(self.name)
                return Verdict.PASS

        g.chain(Tag("a"), Tag("b"), Tag("c"))
        g.validate()
        assert g.process(Packet.udp(A("1.1.1.1"), A("2.2.2.2")), ctx()) is Verdict.PASS
        assert seen == ["a", "b", "c"]

    def test_duplicate_names_rejected(self):
        g = ComponentGraph()
        g.add(PassThrough("x"))
        with pytest.raises(ComponentGraphError):
            g.add(PassThrough("x"))

    def test_connect_unknown_component(self):
        g = ComponentGraph()
        g.add(PassThrough("x"))
        with pytest.raises(ComponentGraphError):
            g.connect("x", "ghost")

    def test_empty_graph_invalid(self):
        g = ComponentGraph()
        with pytest.raises(ComponentGraphError):
            g.validate()
        with pytest.raises(ComponentGraphError):
            g.process(Packet.udp(A("1.1.1.1"), A("2.2.2.2")), ctx())

    def test_cycle_detected(self):
        g = ComponentGraph()
        g.chain(PassThrough("a"), PassThrough("b"))
        g.connect("b", "a", Verdict.PASS)
        with pytest.raises(ComponentGraphError):
            g.validate()

    def test_unreachable_component_detected(self):
        g = ComponentGraph()
        g.add(PassThrough("a"))
        g.add(PassThrough("orphan"))
        with pytest.raises(ComponentGraphError):
            g.validate()

    def test_component_accessor(self):
        g = ComponentGraph()
        a = PassThrough("a")
        g.add(a)
        assert g.component("a") is a
        with pytest.raises(ComponentGraphError):
            g.component("nope")
        assert len(g) == 1


class TestGraphSemantics:
    def test_drop_is_sticky(self):
        """A post-drop logger observes but can never resurrect the packet."""
        g = ComponentGraph()
        dropper = DropAll("drop")
        logger = LoggerComponent("log")
        g.add(dropper)
        g.add(logger)
        g.connect("drop", "log", Verdict.DROP)
        g.validate()
        verdict = g.process(Packet.udp(A("1.1.1.1"), A("2.2.2.2")), ctx())
        assert verdict is Verdict.DROP
        assert len(logger.entries) == 1  # it saw the doomed packet

    def test_branching_on_verdict(self):
        g = ComponentGraph()
        filt = HeaderFilter("f", HeaderMatch(proto=Protocol.ICMP))
        pass_log = LoggerComponent("pass-log")
        drop_log = LoggerComponent("drop-log")
        g.add(filt)
        g.add(pass_log)
        g.add(drop_log)
        g.connect("f", "pass-log", Verdict.PASS)
        g.connect("f", "drop-log", Verdict.DROP)
        g.validate()
        g.process(Packet.udp(A("1.1.1.1"), A("2.2.2.2")), ctx())
        from repro.net import ICMPType

        g.process(Packet.icmp(A("1.1.1.1"), A("2.2.2.2"), ICMPType.ECHO_REQUEST), ctx())
        assert len(pass_log.entries) == 1
        assert len(drop_log.entries) == 1

    def test_counters(self):
        g = ComponentGraph()
        g.add(DropAll("d"))
        g.process(Packet.udp(A("1.1.1.1"), A("2.2.2.2")), ctx())
        g.process(Packet.udp(A("1.1.1.1"), A("2.2.2.2")), ctx())
        assert g.packets_in == 2
        assert g.packets_dropped == 2


class TestVetting:
    def test_benign_components_pass(self):
        for comp in (PassThrough("p"), DropAll("d"), PayloadScrubber(),
                     LoggerComponent(), PrefixBlacklist("b")):
            vet_component(comp)

    def test_forbidden_header_writes_rejected(self):
        class TtlRewriter(Component):
            capabilities = Capabilities(modifies_headers=frozenset({"ttl"}))

            def process(self, packet, ctx):
                return Verdict.PASS

        with pytest.raises(VettingError, match="forbidden"):
            vet_component(TtlRewriter("evil"))

    @pytest.mark.parametrize("field", ["src", "dst", "ttl"])
    def test_each_forbidden_field_rejected(self, field):
        class Rewriter(Component):
            capabilities = Capabilities(modifies_headers=frozenset({field}))

            def process(self, packet, ctx):
                return Verdict.PASS

        with pytest.raises(VettingError):
            vet_component(Rewriter("evil"))

    def test_benign_header_writes_allowed(self):
        class DscpMarker(Component):
            capabilities = Capabilities(modifies_headers=frozenset({"dscp"}))

            def process(self, packet, ctx):
                return Verdict.PASS

        vet_component(DscpMarker("ok"))

    def test_rate_amplifier_rejected(self):
        class Duplicator(Component):
            capabilities = Capabilities(max_outputs_per_input=2)

            def process(self, packet, ctx):
                return Verdict.PASS

        with pytest.raises(VettingError, match="rate"):
            vet_component(Duplicator("evil"))

    def test_byte_amplifier_rejected(self):
        class Inflater(Component):
            capabilities = Capabilities(max_size_ratio=2.0)

            def process(self, packet, ctx):
                return Verdict.PASS

        with pytest.raises(VettingError, match="amplification"):
            vet_component(Inflater("evil"))

    def test_excessive_logging_budget_rejected(self):
        class Chatty(Component):
            capabilities = Capabilities(extra_traffic_bps=MAX_EXTRA_TRAFFIC_BPS * 2)

            def process(self, packet, ctx):
                return Verdict.PASS

        with pytest.raises(VettingError, match="side-channel"):
            vet_component(Chatty("chatty"))

    def test_vet_graph_checks_all_components(self):
        class Inflater(Component):
            capabilities = Capabilities(max_size_ratio=2.0)

            def process(self, packet, ctx):
                return Verdict.PASS

        g = ComponentGraph()
        g.chain(PassThrough("ok"), Inflater("evil"))
        with pytest.raises(VettingError):
            vet_graph(g)

    def test_vet_graph_aggregate_budget(self):
        g = ComponentGraph()

        def make(i):
            class Budgeted(Component):
                capabilities = Capabilities(extra_traffic_bps=MAX_EXTRA_TRAFFIC_BPS)

                def process(self, packet, ctx):
                    return Verdict.PASS

            return Budgeted(f"b{i}")

        g.chain(make(0), make(1), make(2))
        with pytest.raises(VettingError, match="aggregates"):
            vet_graph(g)

    def test_vet_graph_validates_structure(self):
        g = ComponentGraph()
        with pytest.raises(ComponentGraphError):
            vet_graph(g)


class TestSafetyMonitor:
    def _pkt(self, size=100):
        return Packet.udp(A("10.1.0.1"), A("10.2.0.1"), size=size)

    def test_clean_pass(self):
        m = SafetyMonitor()
        pkt = self._pkt()
        before = m.note_in(pkt)
        m.check(before, pkt, "svc")
        assert m.conserving
        assert m.violations == 0

    def test_drop_is_conserving(self):
        m = SafetyMonitor()
        before = m.note_in(self._pkt())
        m.check(before, None, "svc")
        assert m.conserving

    def test_address_rewrite_detected(self):
        m = SafetyMonitor()
        pkt = self._pkt()
        before = m.note_in(pkt)
        pkt.dst = A("10.3.0.1")
        with pytest.raises(SafetyViolation, match="src/dst"):
            m.check(before, pkt, "svc")
        assert m.violations == 1

    def test_ttl_rewrite_detected(self):
        m = SafetyMonitor()
        pkt = self._pkt()
        before = m.note_in(pkt)
        pkt.ttl += 10
        with pytest.raises(SafetyViolation, match="TTL"):
            m.check(before, pkt, "svc")

    def test_size_growth_detected(self):
        m = SafetyMonitor()
        pkt = self._pkt(size=100)
        before = m.note_in(pkt)
        pkt.size = 200
        with pytest.raises(SafetyViolation, match="amplification"):
            m.check(before, pkt, "svc")

    def test_shrink_allowed(self):
        m = SafetyMonitor()
        pkt = self._pkt(size=100)
        before = m.note_in(pkt)
        pkt.size = 50
        m.check(before, pkt, "svc")
        assert m.bytes_out == 50

    def test_snapshot_of(self):
        pkt = self._pkt(size=77)
        snap = PacketSnapshot.of(pkt)
        assert snap.size == 77 and snap.ttl == pkt.ttl

    @given(sizes=st.lists(st.integers(min_value=20, max_value=1500), min_size=1, max_size=50),
           drop_pattern=st.lists(st.booleans(), min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_conservation_invariant_any_drop_pattern(self, sizes, drop_pattern):
        """Whatever subset of packets a (well-behaved) service drops, the
        monitor's conservation invariant holds."""
        m = SafetyMonitor()
        for i, size in enumerate(sizes):
            pkt = self._pkt(size=size)
            before = m.note_in(pkt)
            dropped = drop_pattern[i % len(drop_pattern)]
            m.check(before, None if dropped else pkt, "svc")
        assert m.conserving
        assert m.packets_out <= m.packets_in
        assert m.bytes_out <= m.bytes_in
