"""Property-based tests for the service composition layer."""

from hypothesis import given, settings, strategies as st

from repro.core.compose import RuleSpec, ServiceSpec, compile_spec
from repro.core.device import DeviceContext
from repro.net import ASRole, Prefix

CTX = DeviceContext(asn=3, role=ASRole.STUB,
                    local_prefix=Prefix.parse("10.3.0.0/16"))


@st.composite
def rules(draw):
    action = draw(st.sampled_from(
        ["drop", "rate-limit", "scrub-payload", "blacklist", "log",
         "collect-stats", "trigger"]))
    kwargs = {"action": action}
    if action == "drop":
        kwargs["proto"] = draw(st.sampled_from(["tcp", "udp", "icmp", None]))
        kwargs["dport"] = draw(st.one_of(st.none(),
                                         st.integers(min_value=1, max_value=65535)))
    elif action == "rate-limit":
        kwargs["rate_bps"] = draw(st.floats(min_value=1e3, max_value=1e9))
    elif action == "blacklist":
        base = draw(st.integers(min_value=0, max_value=255))
        kwargs["prefixes"] = (f"{base}.0.0.0/8",)
    elif action == "trigger":
        kwargs["threshold_pps"] = draw(st.floats(min_value=1.0, max_value=1e5))
    return RuleSpec(**kwargs)


@st.composite
def specs(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    return ServiceSpec(name=f"svc-{n}", rules=tuple(draw(rules()) for _ in range(n)))


class TestComposeProperties:
    @given(spec=specs())
    @settings(max_examples=80, deadline=None)
    def test_compiles_to_one_component_per_rule(self, spec):
        graph = compile_spec(spec, CTX)
        assert len(graph) == len(spec.rules)
        graph.validate()  # compiled graphs are always structurally valid

    @given(spec=specs())
    @settings(max_examples=40, deadline=None)
    def test_compilation_is_deterministic(self, spec):
        g1 = compile_spec(spec, CTX)
        g2 = compile_spec(spec, CTX)
        assert [c.name for c in g1.components()] == [c.name for c in g2.components()]
        assert [type(c) for c in g1.components()] == [type(c) for c in g2.components()]

    @given(spec=specs())
    @settings(max_examples=40, deadline=None)
    def test_compiled_graphs_always_pass_vetting(self, spec):
        """No declarative rule can ever express a Sec. 4.5 violation."""
        from repro.core import vet_graph

        graph = compile_spec(spec, CTX)
        vet_graph(graph)  # must not raise

    @given(spec=specs())
    @settings(max_examples=30, deadline=None)
    def test_compiled_graph_processes_packets(self, spec):
        from repro.core import NetworkUser
        from repro.core.components import ComponentContext, Verdict
        from repro.net import IPv4Address, Packet

        graph = compile_spec(spec, CTX)
        owner = NetworkUser("acme", prefixes=[Prefix.parse("10.1.0.0/16")])
        ctx = ComponentContext(now=0.0, asn=3, is_transit=False,
                               local_prefix=Prefix.parse("10.3.0.0/16"),
                               stage="dest", owner=owner)
        pkt = Packet.udp(IPv4Address.parse("10.9.0.1"),
                         IPv4Address.parse("10.1.0.1"), size=500)
        verdict = graph.process(pkt, ctx)
        assert verdict in (Verdict.PASS, Verdict.DROP)
        # conservation: the compiled pipeline never grows the packet
        assert pkt.size <= 500
