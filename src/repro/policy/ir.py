"""Typed intermediate representation for component graphs.

Lowering keeps a *live* reference to each component: the IR describes the
graph's structure and per-op semantics, while mutable component state
(blacklist prefixes, token buckets, collectors) stays shared between the
interpreter and any compiled program, so both observe the same world.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.core.components import (
    Component,
    DigestStoreComponent,
    HeaderFilter,
    LoggerComponent,
    PayloadHashFilter,
    PayloadScrubber,
    PrefixBlacklist,
    RateLimiterComponent,
    SourceAntiSpoof,
    TriggerComponent,
    Verdict,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.graph import ComponentGraph

__all__ = ["OpKind", "PolicyOp", "Policy", "lower_graph", "classify"]


class OpKind(enum.Enum):
    """Semantic family of one op — drives kernel selection and passes."""

    #: header-predicate drop (vectorized via column kernels)
    FILTER = "filter"
    #: source-prefix membership drop (vectorized via masked compares)
    BLACKLIST = "blacklist"
    #: context-aware anti-spoofing drop (vectorized per device context)
    ANTISPOOF = "antispoof"
    #: token-bucket admission — order-sensitive, run row-sequentially
    RATE_LIMIT = "rate-limit"
    #: bounded per-packet log lines — order-sensitive, run row-sequentially
    LOGGER = "logger"
    #: pure observer with a native ``process_batch`` (stats collectors)
    OBSERVER_BATCH = "observer-batch"
    #: payload deletion — mutates sizes, never vectorized
    SCRUB = "scrub"
    #: payload-digest drop — needs per-packet digests, never vectorized
    HASH_FILTER = "hash-filter"
    #: threshold trigger — callback side effects, never vectorized
    TRIGGER = "trigger"
    #: packet-digest backlog — needs ``packet.digest()``, never vectorized
    DIGEST = "digest"
    #: anything the compiler has no model for
    OPAQUE = "opaque"


#: kinds the batch program knows how to execute
VECTORIZABLE_KINDS = frozenset({
    OpKind.FILTER, OpKind.BLACKLIST, OpKind.ANTISPOOF, OpKind.RATE_LIMIT,
    OpKind.LOGGER, OpKind.OBSERVER_BATCH,
})

#: kinds whose per-op state depends on the order packets are seen in
ORDER_SENSITIVE_KINDS = frozenset({OpKind.RATE_LIMIT, OpKind.LOGGER})


def classify(component: Component) -> OpKind:
    """Map a component onto its IR op kind."""
    if isinstance(component, HeaderFilter):
        return OpKind.FILTER
    if isinstance(component, PrefixBlacklist):
        return OpKind.BLACKLIST
    if isinstance(component, SourceAntiSpoof):
        return OpKind.ANTISPOOF
    if isinstance(component, RateLimiterComponent):
        return OpKind.RATE_LIMIT
    if isinstance(component, LoggerComponent):
        return OpKind.LOGGER
    if isinstance(component, TriggerComponent):
        return OpKind.TRIGGER
    if isinstance(component, PayloadScrubber):
        return OpKind.SCRUB
    if isinstance(component, PayloadHashFilter):
        return OpKind.HASH_FILTER
    if isinstance(component, DigestStoreComponent):
        return OpKind.DIGEST
    caps = component.capabilities
    if (component.batch_capable and not caps.may_drop and not caps.may_shrink
            and not caps.modifies_headers):
        # any pure observer exposing process_batch, e.g. the traffic-matrix
        # collector — no per-class knowledge needed
        return OpKind.OBSERVER_BATCH
    return OpKind.OPAQUE


@dataclass
class PolicyOp:
    """One component in IR form: live component + explicit verdict edges."""

    index: int
    name: str
    kind: OpKind
    component: Component
    pass_to: Optional[int] = None
    drop_to: Optional[int] = None

    @property
    def may_drop(self) -> bool:
        return self.component.capabilities.may_drop


@dataclass
class Policy:
    """A lowered graph: ops in insertion order plus the raw edge list.

    ``edge_list`` preserves ``connect()`` insertion order so structural
    diagnostics replay :meth:`ComponentGraph.validate` exactly (same cycle
    witness, same messages).
    """

    name: str
    ops: list[PolicyOp]
    entry: Optional[int]
    edge_list: list[tuple[int, Verdict, int]]

    def op(self, name: str) -> PolicyOp:
        for op in self.ops:
            if op.name == name:
                return op
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.ops)


def lower_graph(graph: "ComponentGraph") -> Policy:
    """Lower a component graph into IR (structure is *not* validated here —
    the structural pass reports cycles/reachability as diagnostics)."""
    index_of: dict[str, int] = {}
    ops: list[PolicyOp] = []
    for i, component in enumerate(graph.components()):
        index_of[component.name] = i
        ops.append(PolicyOp(index=i, name=component.name,
                            kind=classify(component), component=component))
    edge_list: list[tuple[int, Verdict, int]] = []
    for (src, verdict), dst in graph.edges().items():
        src_i, dst_i = index_of[src], index_of[dst]
        edge_list.append((src_i, verdict, dst_i))
        if verdict is Verdict.PASS:
            ops[src_i].pass_to = dst_i
        else:
            ops[src_i].drop_to = dst_i
    entry = index_of[graph.entry] if graph.entry is not None else None
    return Policy(name=graph.name, ops=ops, entry=entry, edge_list=edge_list)
