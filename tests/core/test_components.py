"""Tests for the adaptive-device processing components."""

import pytest

from repro.core import NetworkUser
from repro.core.components import (
    ComponentContext,
    DigestStoreComponent,
    HeaderFilter,
    HeaderMatch,
    LoggerComponent,
    PayloadHashFilter,
    PayloadScrubber,
    PrefixBlacklist,
    RateLimiterComponent,
    SourceAntiSpoof,
    StatisticsCollector,
    TriggerComponent,
    Verdict,
)
from repro.net import ICMPType, IPv4Address, Packet, Prefix, Protocol, TCPFlags

P = Prefix.parse
A = IPv4Address.parse
OWNER = NetworkUser("acme", prefixes=[P("10.1.0.0/16")])


def ctx(now=0.0, asn=7, is_transit=False, local_prefix="10.7.0.0/16",
        stage="dest", local_origin=False, ingress=None):
    return ComponentContext(now=now, asn=asn, is_transit=is_transit,
                            local_prefix=P(local_prefix), stage=stage,
                            owner=OWNER, ingress_asn=ingress,
                            local_origin=local_origin)


class TestHeaderMatch:
    def test_proto_and_port(self):
        m = HeaderMatch(proto=Protocol.UDP, dport=53)
        assert m.matches(Packet.udp(A("1.1.1.1"), A("2.2.2.2"), dport=53))
        assert not m.matches(Packet.udp(A("1.1.1.1"), A("2.2.2.2"), dport=80))
        assert not m.matches(Packet.tcp_syn(A("1.1.1.1"), A("2.2.2.2"), dport=53))

    def test_flags_any(self):
        m = HeaderMatch(flags_any=TCPFlags.RST)
        assert m.matches(Packet.tcp_rst(A("1.1.1.1"), A("2.2.2.2")))
        assert not m.matches(Packet.tcp_syn(A("1.1.1.1"), A("2.2.2.2")))

    def test_prefixes(self):
        m = HeaderMatch(src_prefix=P("10.1.0.0/16"), dst_prefix=P("10.2.0.0/16"))
        assert m.matches(Packet.udp(A("10.1.0.1"), A("10.2.0.1")))
        assert not m.matches(Packet.udp(A("10.9.0.1"), A("10.2.0.1")))

    def test_size_bounds(self):
        m = HeaderMatch(min_size=100, max_size=200)
        assert m.matches(Packet.udp(A("1.1.1.1"), A("2.2.2.2"), size=150))
        assert not m.matches(Packet.udp(A("1.1.1.1"), A("2.2.2.2"), size=99))
        assert not m.matches(Packet.udp(A("1.1.1.1"), A("2.2.2.2"), size=201))

    def test_icmp_type(self):
        m = HeaderMatch(icmp_type=ICMPType.HOST_UNREACHABLE)
        assert m.matches(Packet.icmp(A("1.1.1.1"), A("2.2.2.2"), ICMPType.HOST_UNREACHABLE))
        assert not m.matches(Packet.icmp(A("1.1.1.1"), A("2.2.2.2"), ICMPType.ECHO_REQUEST))

    def test_sport(self):
        m = HeaderMatch(sport=53)
        assert m.matches(Packet.udp(A("1.1.1.1"), A("2.2.2.2"), sport=53))
        assert not m.matches(Packet.udp(A("1.1.1.1"), A("2.2.2.2")))


class TestFilters:
    def test_header_filter_counts(self):
        f = HeaderFilter("f", HeaderMatch(proto=Protocol.ICMP))
        assert f(Packet.icmp(A("1.1.1.1"), A("2.2.2.2"), ICMPType.ECHO_REQUEST), ctx()) is Verdict.DROP
        assert f(Packet.udp(A("1.1.1.1"), A("2.2.2.2")), ctx()) is Verdict.PASS
        assert f.processed == 2 and f.dropped == 1

    def test_prefix_blacklist(self):
        b = PrefixBlacklist("b", [P("10.5.0.0/16")])
        assert b(Packet.udp(A("10.5.1.1"), A("2.2.2.2")), ctx()) is Verdict.DROP
        assert b(Packet.udp(A("10.6.1.1"), A("2.2.2.2")), ctx()) is Verdict.PASS
        b.add(P("10.6.0.0/16"))
        assert b(Packet.udp(A("10.6.1.1"), A("2.2.2.2")), ctx()) is Verdict.DROP
        b.remove(P("10.6.0.0/16"))
        assert b(Packet.udp(A("10.6.1.1"), A("2.2.2.2")), ctx()) is Verdict.PASS

    def test_rate_limiter(self):
        r = RateLimiterComponent("r", rate_bps=8_000.0, burst_bytes=1_000.0)
        pkt = Packet.udp(A("1.1.1.1"), A("2.2.2.2"), size=1000)
        assert r(pkt, ctx(now=0.0)) is Verdict.PASS
        assert r(pkt.copy(), ctx(now=0.0)) is Verdict.DROP   # bucket drained
        assert r(pkt.copy(), ctx(now=1.0)) is Verdict.PASS   # 1000 B refilled

    def test_payload_hash_filter(self):
        f = PayloadHashFilter("f", banned_digests=[b"worm-sig"])
        bad = Packet.udp(A("1.1.1.1"), A("2.2.2.2"), payload_digest=b"worm-sig")
        good = Packet.udp(A("1.1.1.1"), A("2.2.2.2"), payload_digest=b"cat-pic")
        assert f(bad, ctx()) is Verdict.DROP
        assert f(good, ctx()) is Verdict.PASS
        f.ban(b"cat-pic")
        assert f(good.copy(), ctx()) is Verdict.DROP

    def test_payload_scrubber_shrinks_only(self):
        s = PayloadScrubber()
        pkt = Packet.udp(A("1.1.1.1"), A("2.2.2.2"), size=520, payload_digest=b"x")
        assert s(pkt, ctx()) is Verdict.PASS
        assert pkt.size == 20
        assert pkt.payload_digest == b""
        assert s.scrubbed_bytes == 500
        # idempotent on already-scrubbed packets
        s(pkt, ctx())
        assert s.scrubbed_bytes == 500


class TestSourceAntiSpoof:
    PROTECTED = [P("10.1.0.0/16")]

    def test_drops_locally_injected_spoof_at_foreign_stub(self):
        c = SourceAntiSpoof("as", self.PROTECTED)
        pkt = Packet.udp(A("10.1.0.9"), A("2.2.2.2"))  # claims protected src
        assert c(pkt, ctx(is_transit=False, local_origin=True,
                          local_prefix="10.7.0.0/16")) is Verdict.DROP

    def test_passes_transit_traffic(self):
        """'Of course, transit traffic ... must not be blocked.'"""
        c = SourceAntiSpoof("as", self.PROTECTED)
        pkt = Packet.udp(A("10.1.0.9"), A("2.2.2.2"))
        assert c(pkt, ctx(is_transit=True, local_origin=False)) is Verdict.PASS

    def test_passes_at_owners_own_isp(self):
        """The web site's own uplink traffic must flow."""
        c = SourceAntiSpoof("as", self.PROTECTED)
        pkt = Packet.udp(A("10.1.0.9"), A("2.2.2.2"))
        assert c(pkt, ctx(is_transit=False, local_origin=True,
                          local_prefix="10.1.0.0/16")) is Verdict.PASS

    def test_passes_non_spoofed_local_traffic(self):
        c = SourceAntiSpoof("as", self.PROTECTED)
        pkt = Packet.udp(A("10.7.0.9"), A("10.1.0.1"))  # genuine local source
        assert c(pkt, ctx(is_transit=False, local_origin=True,
                          local_prefix="10.7.0.0/16")) is Verdict.PASS

    def test_passes_forwarded_traffic_at_stub(self):
        """Reply traffic *to* clients at this stub is not locally injected."""
        c = SourceAntiSpoof("as", self.PROTECTED)
        pkt = Packet.udp(A("10.1.0.9"), A("10.7.0.1"))
        assert c(pkt, ctx(is_transit=False, local_origin=False,
                          local_prefix="10.7.0.0/16", ingress=3)) is Verdict.PASS


class TestObservation:
    def test_logger_bounded(self):
        lg = LoggerComponent(max_entries=2)
        for i in range(5):
            lg(Packet.udp(A("1.1.1.1"), A("2.2.2.2")), ctx(now=float(i)))
        assert len(lg.entries) == 2
        assert lg.processed == 5

    def test_statistics_collector(self):
        st = StatisticsCollector(window=10.0)
        st(Packet.udp(A("1.1.1.1"), A("2.2.2.2"), size=100), ctx(now=0.0))
        st(Packet.tcp_syn(A("1.1.1.1"), A("2.2.2.2")), ctx(now=1.0))
        assert st.packets_by_proto == {"UDP": 1, "TCP": 1}
        assert st.bytes_by_proto["UDP"] == 100
        assert st.rate.total(1.0) == 2.0

    def test_digest_store_membership(self):
        ds = DigestStoreComponent(capacity=100)
        pkt = Packet.udp(A("1.1.1.1"), A("2.2.2.2"))
        other = Packet.udp(A("1.1.1.1"), A("2.2.2.2"))
        ds(pkt, ctx(now=0.5))
        assert ds.saw(pkt)
        assert not ds.saw(other)

    def test_digest_store_window_paging(self):
        ds = DigestStoreComponent(capacity=10, window=1.0, max_windows=2)
        pkts = [Packet.udp(A("1.1.1.1"), A("2.2.2.2")) for _ in range(4)]
        for i, pkt in enumerate(pkts):
            ds(pkt, ctx(now=float(i)))
        assert len(ds.windows) == 2
        assert not ds.saw(pkts[0])  # paged out
        assert ds.saw(pkts[3])


class TestTrigger:
    def test_fires_over_threshold_once(self):
        fired = []
        t = TriggerComponent("t", threshold_pps=10.0,
                             action=lambda c, r: fired.append((c.now, r)),
                             window=1.0)
        pkt = Packet.udp(A("1.1.1.1"), A("2.2.2.2"))
        for i in range(40):
            t(pkt, ctx(now=i * 0.02))
        assert len(fired) == 1
        assert t.fired == 1

    def test_rearms_after_quiet_period(self):
        fired = []
        t = TriggerComponent("t", threshold_pps=10.0,
                             action=lambda c, r: fired.append(c.now),
                             window=0.5, rearm=0.5)
        pkt = Packet.udp(A("1.1.1.1"), A("2.2.2.2"))
        for i in range(20):
            t(pkt, ctx(now=i * 0.02))       # burst 1 -> fires
        for i in range(20):
            t(pkt, ctx(now=5.0 + i * 1.0))  # slow traffic -> rearm
        for i in range(20):
            t(pkt, ctx(now=30.0 + i * 0.02))  # burst 2 -> fires again
        assert len(fired) == 2

    def test_predicate_filters_counted_packets(self):
        fired = []
        t = TriggerComponent("t", threshold_pps=5.0,
                             action=lambda c, r: fired.append(c.now),
                             predicate=lambda p: p.proto is Protocol.TCP,
                             window=1.0)
        udp = Packet.udp(A("1.1.1.1"), A("2.2.2.2"))
        for i in range(50):
            t(udp, ctx(now=i * 0.01))
        assert not fired  # UDP storm ignored

    def test_invalid_threshold(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            TriggerComponent("t", threshold_pps=0.0, action=lambda c, r: None)

    def test_never_drops(self):
        t = TriggerComponent("t", threshold_pps=1.0, action=lambda c, r: None)
        pkt = Packet.udp(A("1.1.1.1"), A("2.2.2.2"))
        for i in range(100):
            assert t(pkt, ctx(now=i * 0.001)) is Verdict.PASS
