"""Unit tests for topology builders and the Topology class."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.net import ASRole, Topology, TopologyBuilder
from repro.net.topology import stub_sample
from repro.util import derive_rng


class TestHierarchical:
    def test_tier_counts(self):
        t = TopologyBuilder.hierarchical(n_core=3, transit_per_core=2, stub_per_transit=4, seed=1)
        assert len(t.core_ases) == 3
        assert len(t.transit_ases) == 6
        assert len(t.stub_ases) == 24
        assert len(t) == 33

    def test_connected_and_deterministic(self):
        a = TopologyBuilder.hierarchical(seed=7)
        b = TopologyBuilder.hierarchical(seed=7)
        assert nx.is_connected(a.graph)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_core_mesh(self):
        t = TopologyBuilder.hierarchical(n_core=4, transit_per_core=0, stub_per_transit=0, seed=1)
        for i, a in enumerate(t.core_ases):
            for b in t.core_ases[i + 1:]:
                assert t.graph.has_edge(a, b)

    def test_invalid_sizes(self):
        with pytest.raises(TopologyError):
            TopologyBuilder.hierarchical(n_core=0)


class TestPowerlaw:
    def test_roles_assigned(self):
        t = TopologyBuilder.powerlaw(n=100, seed=5)
        assert t.core_ases and t.stub_ases
        assert len(t) == 100

    def test_core_has_highest_degree(self):
        t = TopologyBuilder.powerlaw(n=200, seed=2)
        min_core_deg = min(t.degree(a) for a in t.core_ases)
        max_stub_deg = max(t.degree(a) for a in t.stub_ases)
        assert min_core_deg >= max_stub_deg

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            TopologyBuilder.powerlaw(n=2, m=2)

    def test_deterministic(self):
        a = TopologyBuilder.powerlaw(n=50, seed=3)
        b = TopologyBuilder.powerlaw(n=50, seed=3)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)


class TestInternetLike:
    def test_builds_with_all_roles(self):
        t = TopologyBuilder.internet_like(n=150, seed=11)
        assert len(t) == 150
        assert t.core_ases and t.stub_ases


class TestMicroTopologies:
    def test_line(self):
        t = TopologyBuilder.line(4)
        assert t.stub_ases == [0, 3]
        assert t.transit_ases == [1, 2]

    def test_line_two_nodes_all_stub(self):
        t = TopologyBuilder.line(2)
        assert t.stub_ases == [0, 1]

    def test_star(self):
        t = TopologyBuilder.star(5)
        assert t.transit_ases == [0]
        assert len(t.stub_ases) == 5

    def test_tree(self):
        t = TopologyBuilder.tree(branching=2, height=3)
        assert t.role_of(0) is ASRole.CORE
        leaves = [a for a in t.as_numbers if t.degree(a) == 1]
        assert all(t.role_of(a) is ASRole.STUB for a in leaves)

    def test_from_graph_defaults_stub(self):
        g = nx.cycle_graph(4)
        t = TopologyBuilder.from_graph(g, roles={0: ASRole.CORE})
        assert t.role_of(0) is ASRole.CORE
        assert t.role_of(1) is ASRole.STUB


class TestTopologyQueries:
    def test_prefixes_disjoint_and_resolvable(self):
        t = TopologyBuilder.hierarchical(seed=1)
        for asn in t.as_numbers:
            p = t.prefix_of(asn)
            assert t.as_of(p.first) == asn
            assert t.as_of(p.last) == asn

    def test_add_host(self):
        t = TopologyBuilder.star(3)
        addr = t.add_host(1)
        assert t.as_of(addr) == 1
        assert addr in list(t.ases[1].hosts)

    def test_add_host_unknown_as(self):
        t = TopologyBuilder.star(3)
        with pytest.raises(TopologyError):
            t.add_host(99)

    def test_add_hosts_unique(self):
        t = TopologyBuilder.star(3)
        addrs = t.add_hosts(2, 10)
        assert len(set(addrs)) == 10

    def test_is_transit_for(self):
        t = TopologyBuilder.line(3)
        assert t.is_transit_for(1)
        assert not t.is_transit_for(0)

    def test_disconnected_graph_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(2)
        with pytest.raises(TopologyError):
            Topology(g)

    def test_empty_graph_rejected(self):
        with pytest.raises(TopologyError):
            Topology(nx.Graph())

    def test_as_of_unknown_address(self):
        t = TopologyBuilder.star(2)
        assert t.as_of("203.0.113.1") is None


class TestStubSample:
    def test_samples_distinct_stubs(self):
        t = TopologyBuilder.hierarchical(seed=1)
        rng = derive_rng(0, "sample")
        picked = stub_sample(t, 5, rng, exclude=[t.stub_ases[0]])
        assert len(set(picked)) == 5
        assert t.stub_ases[0] not in picked
        assert all(t.role_of(a) is ASRole.STUB for a in picked)

    def test_insufficient_stubs(self):
        t = TopologyBuilder.star(2)
        with pytest.raises(TopologyError):
            stub_sample(t, 5, derive_rng(0))


@given(n=st.integers(min_value=5, max_value=60), seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_powerlaw_always_connected_with_roles(n, seed):
    t = TopologyBuilder.powerlaw(n=n, m=2, seed=seed)
    assert nx.is_connected(t.graph)
    assert t.stub_ases  # builder guarantees at least one stub
