"""E4 — the TCS reflector defense: filtering close to the source
(paper Sec. 4.3 + Sec. 6).

The victim deploys TCS anti-spoofing rules at stub borders; we sweep the
fraction of stub ASes offering the service and measure

* the reflected attack rate still reaching the victim,
* the wasted transport work (bits x AS-hops) the attack consumes — the
  Sec. 6 claim: the TCS "frees network resources that are nowadays wasted
  for transporting attack traffic around the globe",
* the mean distance from the source at which attack traffic dies,
* collateral damage (always zero by construction, Sec. 4.5),

and contrasts source-side filtering with an equally-protective *victim-
edge* filter, which saves the victim but wastes the whole transport path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.apps import TcsAntiSpoofMitigation
from repro.experiments.common import ExperimentConfig, register
from repro.net import Flow, FluidNetwork
from repro.scenario import TopologySpec
from repro.scenario.attacks import reflector_fanout, reflector_roles
from repro.util.rng import derive_rng
from repro.util.tables import Table

__all__ = ["run", "defense_sweep_table", "placement_table"]

FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0)


class _VictimEdgeFilter:
    """Comparator: drop reflected attack traffic at the victim's own AS."""

    def __init__(self, victim_asn: int) -> None:
        self.victim_asn = victim_asn

    def pass_fraction(self, flow: Flow, asn: int, prev_asn, pos: int,
                      path: Sequence[int]) -> float:
        if asn == self.victim_asn and flow.kind.startswith("attack"):
            return 0.0
        return 1.0


def _build(cfg: ExperimentConfig, trial: int):
    n_ases = cfg.scaled(300, minimum=60)
    topo = TopologySpec(kind="powerlaw", n=n_ases, m=2,
                        seed_offset=trial).build(cfg.seed)
    fluid = FluidNetwork(topo)
    rng = derive_rng(cfg.seed, "e4", trial)
    roles = reflector_roles(topo, rng, cfg.scaled(60, minimum=10),
                            cfg.scaled(30, minimum=5), style="pick-victim")
    model = reflector_fanout(fluid, roles, rate_per_agent=1e6,
                             amplification=5.0)
    legit = [Flow(a, roles.victim_asn, 2e5, kind="legit")
             for a in roles.spare_asns[:10]]
    return topo, fluid, model, legit, roles.victim_asn


def defense_sweep_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E4: TCS anti-spoofing vs. deployment fraction of stub borders "
        "(Sec. 4.3 / Sec. 6)",
        ["fraction", "attack_at_victim_frac", "byte_hops_frac",
         "mean_drop_dist_hops", "legit_goodput", "collateral"],
    )
    n_trials = cfg.scaled(4, minimum=2)
    acc: dict[float, list[list[float]]] = {f: [[], [], [], [], []] for f in FRACTIONS}
    for trial in range(n_trials):
        topo, fluid, model, legit, victim_asn = _build(cfg, trial)
        rng = derive_rng(cfg.seed, "e4-deploy", trial)
        stubs = list(topo.stub_ases)
        rng.shuffle(stubs)
        # undefended baseline for normalisation
        req0, res0 = model.evaluate(extra_flows=legit, congestion=False)
        base_attack = res0.delivered_rate("attack-reflected", dst_asn=victim_asn)
        base_byte_hops = (sum(v for k, v in req0.byte_hops.items()
                              if k.startswith("attack"))
                          + sum(v for k, v in res0.byte_hops.items()
                                if k.startswith("attack")))
        for fraction in FRACTIONS:
            mit = TcsAntiSpoofMitigation(
                [topo.prefix_of(victim_asn)], [victim_asn])
            mit.deployed_asns = set(stubs[: int(round(fraction * len(stubs)))])
            filt = mit.fluid_filter()
            req, res = model.evaluate(filters=[filt], extra_flows=legit,
                                      congestion=False)
            attack = res.delivered_rate("attack-reflected", dst_asn=victim_asn)
            byte_hops = (sum(v for k, v in req.byte_hops.items()
                             if k.startswith("attack"))
                         + sum(v for k, v in res.byte_hops.items()
                               if k.startswith("attack")))
            drop_dist = req.drop_distance.get("attack-request", 0.0)
            goodput = res.survival_fraction("legit")
            collateral = 1.0 - goodput
            acc[fraction][0].append(attack / base_attack if base_attack else 0.0)
            acc[fraction][1].append(byte_hops / base_byte_hops if base_byte_hops else 0.0)
            acc[fraction][2].append(drop_dist)
            acc[fraction][3].append(goodput)
            acc[fraction][4].append(collateral)
    for fraction in FRACTIONS:
        a, b, d, g, c = (float(np.mean(v)) for v in acc[fraction])
        table.add_row(fraction, round(a, 3), round(b, 3), round(d, 2),
                      round(g, 3), round(c, 3))
    table.add_note("byte_hops_frac: transport work consumed by attack "
                   "traffic, relative to the undefended run")
    table.add_note("drop distance 0 = killed at the very source AS")
    return table


def placement_table(cfg: ExperimentConfig) -> Table:
    """Source-side TCS filtering vs victim-edge filtering at equal coverage."""
    table = Table(
        "E4b: where filtering happens matters (Sec. 6: freeing wasted "
        "transport resources)",
        ["defense", "attack_at_victim_frac", "byte_hops_frac"],
    )
    topo, fluid, model, legit, victim_asn = _build(cfg, trial=99)
    req0, res0 = model.evaluate(extra_flows=legit, congestion=False)
    base_attack = res0.delivered_rate("attack-reflected", dst_asn=victim_asn)

    def byte_hops(req, res):
        return (sum(v for k, v in req.byte_hops.items() if k.startswith("attack"))
                + sum(v for k, v in res.byte_hops.items() if k.startswith("attack")))

    base_bh = byte_hops(req0, res0)
    # TCS at all stub borders
    mit = TcsAntiSpoofMitigation([topo.prefix_of(victim_asn)], [victim_asn])
    mit.deployed_asns = set(topo.stub_ases)
    req1, res1 = model.evaluate(filters=[mit.fluid_filter()],
                                extra_flows=legit, congestion=False)
    # victim-edge filter
    req2, res2 = model.evaluate(filters=[_VictimEdgeFilter(victim_asn)],
                                extra_flows=legit, congestion=False)
    table.add_row("none", 1.0, 1.0)
    table.add_row("tcs@stub-borders (close to source)",
                  round(res1.delivered_rate("attack-reflected",
                                            dst_asn=victim_asn) / base_attack, 3),
                  round(byte_hops(req1, res1) / base_bh, 3))
    table.add_row("victim-edge filter (close to victim)",
                  round(res2.delivered_rate("attack-reflected",
                                            dst_asn=victim_asn) / base_attack, 3),
                  round(byte_hops(req2, res2) / base_bh, 3))
    table.add_note("both defenses protect the victim; only source-side "
                   "filtering frees the transport path")
    return table


@register("E4")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [defense_sweep_table(cfg), placement_table(cfg)]
