"""Tests for multi-phase campaigns and the timeline sampler."""

import pytest

from repro.attack import Campaign, CampaignPhase, ConnectionPool
from repro.errors import AttackConfigError
from repro.net import Network, TopologyBuilder


def build_world(seed=12):
    net = Network(TopologyBuilder.hierarchical(2, 2, 6, seed=seed))
    stubs = net.topology.stub_ases
    victim = net.add_host(stubs[0])
    agents = [net.add_host(a) for a in stubs[1:4]]
    reflectors = [net.add_host(a) for a in stubs[4:7]]
    return net, victim, agents, reflectors, stubs


class TestCampaignPhase:
    def test_invalid_kind(self):
        with pytest.raises(AttackConfigError):
            CampaignPhase("nuke", start=0.0, duration=1.0)

    def test_invalid_timing(self):
        with pytest.raises(AttackConfigError):
            CampaignPhase("reflector", start=-1.0, duration=1.0)
        with pytest.raises(AttackConfigError):
            CampaignPhase("reflector", start=0.0, duration=0.0)

    def test_end(self):
        phase = CampaignPhase("reflector", start=1.0, duration=0.5)
        assert phase.end == 1.5


class TestCampaign:
    def test_needs_phases(self):
        net, victim, agents, reflectors, stubs = build_world()
        with pytest.raises(AttackConfigError):
            Campaign(net, victim, agents, reflectors, phases=[])

    def test_phases_execute_in_their_windows(self):
        net, victim, agents, reflectors, stubs = build_world()
        campaign = Campaign(net, victim, agents, reflectors, phases=[
            CampaignPhase("direct-unspoofed", start=0.1, duration=0.3,
                          rate_pps=100.0, label="flood"),
            CampaignPhase("reflector", start=0.7, duration=0.3,
                          rate_pps=100.0, label="bounce"),
        ], seed=1)
        timeline = campaign.run()
        # attack present in both windows, absent in the gap
        assert timeline.attack_rate_during(0.1, 0.4) > 50
        assert timeline.attack_rate_during(0.75, 1.0) > 50
        assert timeline.attack_rate_during(0.5, 0.65) < 20

    def test_phase_report_labels(self):
        net, victim, agents, reflectors, stubs = build_world()
        campaign = Campaign(net, victim, agents, reflectors, phases=[
            CampaignPhase("direct-unspoofed", start=0.1, duration=0.2,
                          rate_pps=50.0, label="alpha"),
        ], seed=1)
        campaign.run()
        report = campaign.phase_report()
        assert report[0][0] == "alpha"
        assert report[0][1] > 0

    def test_reflector_phase_requires_reflectors(self):
        net, victim, agents, _, stubs = build_world()
        campaign = Campaign(net, victim, agents, [], phases=[
            CampaignPhase("reflector", start=0.0, duration=0.1),
        ])
        with pytest.raises(AttackConfigError):
            campaign.launch()

    def test_misuse_phase_requires_pool(self):
        net, victim, agents, reflectors, stubs = build_world()
        campaign = Campaign(net, victim, agents, reflectors, phases=[
            CampaignPhase("rst-misuse", start=0.0, duration=0.1),
        ])
        with pytest.raises(AttackConfigError):
            campaign.launch()

    def test_misuse_phase_kills_connections(self):
        net, victim, agents, reflectors, stubs = build_world()
        pool = ConnectionPool(victim)
        peers = [net.add_host(stubs[7]) for _ in range(3)]
        for p in peers:
            pool.establish(p)
        campaign = Campaign(net, victim, agents, reflectors, phases=[
            CampaignPhase("rst-misuse", start=0.05, duration=0.3,
                          rate_pps=60.0),
        ], seed=2)
        campaign.pool = pool
        campaign.run()
        assert pool.alive_count < 3

    def test_peak_attack_rate(self):
        net, victim, agents, reflectors, stubs = build_world()
        campaign = Campaign(net, victim, agents, reflectors, phases=[
            CampaignPhase("direct-unspoofed", start=0.1, duration=0.3,
                          rate_pps=200.0),
        ], seed=3)
        timeline = campaign.run()
        assert timeline.peak_attack_rate() >= timeline.attack_rate_during(0.1, 0.4)
