"""Additional Network construction and accounting tests."""


from repro.net import LinkParams, Network, Packet, TopologyBuilder
from repro.util.units import Mbps, ms


class TestCustomLinkParams:
    def test_link_params_fn_overrides_tiers(self):
        calls = []

        def chooser(a, b):
            calls.append((a, b))
            return LinkParams(bandwidth=Mbps(7), delay=ms(1), buffer_bytes=10_000)

        net = Network(TopologyBuilder.line(3), link_params_fn=chooser)
        assert all(link.bandwidth == Mbps(7) for link in net.links.values())
        # called once per direction per edge
        assert len(calls) == 2 * net.topology.graph.number_of_edges()

    def test_asymmetric_links_possible(self):
        def chooser(a, b):
            bw = Mbps(100) if a < b else Mbps(10)
            return LinkParams(bandwidth=bw, delay=ms(1), buffer_bytes=10_000)

        net = Network(TopologyBuilder.line(2), link_params_fn=chooser)
        assert net.link_between(0, 1).bandwidth == Mbps(100)
        assert net.link_between(1, 0).bandwidth == Mbps(10)


class TestByteHopAccounting:
    def test_delivered_traffic_counts_hops(self):
        net = Network(TopologyBuilder.line(4))
        a = net.add_host(0)
        b = net.add_host(3)
        a.send(Packet.udp(a.address, b.address, size=100, kind="x"))
        net.run()
        # three inter-AS hops at 100 bytes each
        assert net.byte_hops_by_kind["x"] == 300

    def test_local_delivery_counts_zero_hops(self):
        net = Network(TopologyBuilder.line(2))
        a = net.add_host(0)
        b = net.add_host(0)
        a.send(Packet.udp(a.address, b.address, size=100, kind="x"))
        net.run()
        assert b.received_packets == 1
        assert net.byte_hops_by_kind.get("x", 0) == 0


class TestRepr:
    def test_reprs_do_not_crash(self):
        net = Network(TopologyBuilder.line(2))
        host = net.add_host(0)
        host.send(Packet.udp(host.address, host.address))
        for obj in (net, net.sim, net.routers[0], host,
                    net.link_between(0, 1), net.topology):
            assert repr(obj)


class TestMultiHostAses:
    def test_many_hosts_one_as(self):
        net = Network(TopologyBuilder.line(2))
        hosts = [net.add_host(0) for _ in range(5)]
        sink = net.add_host(1)
        for h in hosts:
            h.send(Packet.udp(h.address, sink.address))
        net.run()
        assert sink.received_packets == 5
        assert len({int(h.address) for h in hosts}) == 5

    def test_host_to_host_same_as(self):
        net = Network(TopologyBuilder.line(2))
        a = net.add_host(0)
        b = net.add_host(0)
        a.send(Packet.udp(a.address, b.address))
        net.run()
        assert b.received_packets == 1
        # hairpin through the AS router, no inter-AS forwarding
        assert net.routers[0].forwarded_packets == 0
        assert net.routers[0].delivered_packets == 1
