"""Benchmark regenerating E12: ISP incentives — bandwidth freed per tier (Sec. 4.6)."""

from repro.experiments import e12_incentives

from conftest import run_and_print


def test_e12(benchmark, exp_cfg):
    """E12: ISP incentives — bandwidth freed per tier (Sec. 4.6)"""
    run_and_print(benchmark, e12_incentives.run, exp_cfg)
