"""Deterministic fault injection for the simulated TCS world.

The paper argues the service stays controllable while parts of it fail
(Sec. 5.1) and that a failing device must never exceed its owner's mandate
(Sec. 4.5).  This module turns those failure modes into *scheduled,
reproducible events*:

* :class:`FaultPlan` — a pure-data schedule of faults (device crashes,
  link flaps, NMS partitions, TCSP outages, control-message-loss windows).
  :meth:`FaultPlan.random` draws a plan from the seeded RNG, so a plan is
  a deterministic function of ``(seed, knobs)`` — byte-identical whether
  generated serially or inside a :func:`~repro.experiments.common
  .parallel_map` worker (pinned by a property test).
* :class:`FaultInjector` — binds a plan to a live world (network, TCSP,
  NMSes) and schedules each fault's start/clear as simulator events.
  Crashed devices are restarted *wiped* (Sec. 4.5: a crashed device must
  never keep filtering with configuration its owner no longer controls) and
  re-populated by the NMS watchdog's anti-entropy pass.  Message-loss
  windows are consulted by every :class:`~repro.core.rpc.ControlChannel`
  attempt via :meth:`drop_message`.

With no injector armed (every experiment E1-E15) nothing in this module
runs — behaviour is bit-for-bit what it was before the module existed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional, Sequence, TYPE_CHECKING

from repro.errors import FaultConfigError, TopologyError
from repro.obs.metrics import declare, reset_metrics
from repro.util.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.nms import IspNms
    from repro.core.storage import ReplicatedBackend
    from repro.core.tcsp import Tcsp
    from repro.net.network import Network

__all__ = ["FaultKind", "Fault", "FaultPlan", "FaultInjector"]

_INJECTED = declare("faults.injected", "counter",
                    help="faults that actually struck their target")
_CLEARED = declare("faults.cleared", "counter",
                   help="faults whose clear event fired")
_SKIPPED = declare("faults.skipped", "counter",
                   help="faults skipped (missing target, would partition)")
_MSG_SEEN = declare("faults.messages_seen", "counter",
                    help="control-plane message attempts consulted")
_MSG_DROPPED = declare("faults.messages_dropped", "counter",
                       help="control-plane message attempts dropped")


class FaultKind(str, Enum):
    """Taxonomy of injectable faults (DESIGN.md: failure model)."""

    DEVICE_CRASH = "device-crash"      #: adaptive device down, then restarted wiped
    LINK_FLAP = "link-flap"            #: AS adjacency down, routing reconverges
    NMS_PARTITION = "nms-partition"    #: one ISP's NMS unreachable
    TCSP_OUTAGE = "tcsp-outage"        #: the TCSP itself unreachable (under DDoS)
    MESSAGE_LOSS = "message-loss"      #: control messages dropped with probability
    STORE_REPLICA_CRASH = "store-replica-crash"  #: one storage replica down
    NMS_SHARD_CRASH = "nms-shard-crash"  #: NMS process dies (volatile state lost)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: ``kind`` strikes ``target`` at ``start`` and
    clears ``duration`` seconds later.  ``param`` is kind-specific (loss
    probability for :attr:`FaultKind.MESSAGE_LOSS`)."""

    kind: FaultKind
    start: float
    duration: float
    target: tuple = ()
    param: float = 0.0

    @property
    def end(self) -> float:
        return self.start + self.duration

    def key(self) -> tuple:
        """Canonical sort/identity key (stable across processes)."""
        return (self.start, self.kind.value, self.target, self.duration,
                round(self.param, 12))


@dataclass
class FaultPlan:
    """An ordered, validated schedule of faults."""

    faults: list[Fault] = field(default_factory=list)

    def __post_init__(self) -> None:
        for f in self.faults:
            if f.start < 0:
                raise FaultConfigError(f"fault starts in the past: {f}")
            if f.duration <= 0:
                raise FaultConfigError(f"fault needs positive duration: {f}")
            if f.kind is FaultKind.MESSAGE_LOSS and not 0.0 <= f.param <= 1.0:
                raise FaultConfigError(f"loss probability outside [0,1]: {f}")
        self.faults.sort(key=Fault.key)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def by_kind(self, kind: FaultKind) -> list[Fault]:
        return [f for f in self.faults if f.kind is kind]

    @property
    def last_clear(self) -> float:
        """Time the final injected fault clears (0.0 for an empty plan)."""
        return max((f.end for f in self.faults), default=0.0)

    def signature(self) -> str:
        """Stable content hash — equal iff the schedules are byte-identical."""
        text = ";".join(
            f"{f.kind.value}|{f.start!r}|{f.duration!r}|{f.target!r}|{f.param!r}"
            for f in self.faults
        )
        return hashlib.sha256(text.encode()).hexdigest()

    # ------------------------------------------------------------- generation
    @classmethod
    def random(cls, seed: int, *, horizon: float,
               device_asns: Sequence[int] = (),
               links: Sequence[tuple[int, int]] = (),
               nms_ids: Sequence[str] = (),
               store_replicas: Sequence[int] = (),
               n_crashes: int = 0, n_flaps: int = 0, n_partitions: int = 0,
               n_loss_windows: int = 0, loss_rate: float = 0.5,
               tcsp_outages: int = 0,
               n_store_crashes: int = 0, n_shard_crashes: int = 0,
               mean_downtime: float = 0.4) -> "FaultPlan":
        """Draw a plan from the seeded RNG.

        Fault starts land in ``[0.05, 0.55] * horizon`` and downtimes are
        clipped exponentials, so every fault clears well before the horizon
        — leaving a measurable recovery tail (E16's acceptance criterion).
        New fault families draw *after* the pre-existing ones, so a plan
        with all new knobs at zero is byte-identical to before they
        existed.
        """
        if horizon <= 0:
            raise FaultConfigError(f"horizon must be > 0, got {horizon}")
        rng = derive_rng(seed, "fault-plan")
        faults: list[Fault] = []

        def start() -> float:
            return float(rng.uniform(0.05 * horizon, 0.55 * horizon))

        def downtime() -> float:
            d = float(rng.exponential(mean_downtime))
            return min(max(d, 0.05), 0.25 * horizon)

        for pool, n, kind in (
            (list(device_asns), n_crashes, FaultKind.DEVICE_CRASH),
            (list(links), n_flaps, FaultKind.LINK_FLAP),
            (list(nms_ids), n_partitions, FaultKind.NMS_PARTITION),
        ):
            if n > 0 and not pool:
                raise FaultConfigError(f"no targets available for {kind.value}")
            for _ in range(n):
                victim = pool[int(rng.integers(0, len(pool)))]
                target = tuple(victim) if isinstance(victim, tuple) else (victim,)
                faults.append(Fault(kind, start(), downtime(), target))
        for _ in range(tcsp_outages):
            faults.append(Fault(FaultKind.TCSP_OUTAGE, start(), downtime()))
        for _ in range(n_loss_windows):
            faults.append(Fault(FaultKind.MESSAGE_LOSS, start(), downtime(),
                                param=loss_rate))
        for pool, n, kind in (
            (list(store_replicas), n_store_crashes,
             FaultKind.STORE_REPLICA_CRASH),
            (list(nms_ids), n_shard_crashes, FaultKind.NMS_SHARD_CRASH),
        ):
            if n > 0 and not pool:
                raise FaultConfigError(f"no targets available for {kind.value}")
            for _ in range(n):
                victim = pool[int(rng.integers(0, len(pool)))]
                faults.append(Fault(kind, start(), downtime(), (victim,)))
        return cls(faults)


class FaultInjector:
    """Executes a :class:`FaultPlan` against a live world.

    ``arm()`` schedules every fault's start and clear on the network's
    simulator and registers a reset hook so
    :meth:`~repro.net.simulator.Simulator.reset` leaves no fault state
    behind.  Counters (``injected``, ``cleared``, ``skipped``,
    ``messages_dropped``) feed E16's tables.
    """

    def __init__(self, plan: FaultPlan, network: "Network", *,
                 tcsp: "Optional[Tcsp]" = None,
                 nmses: Iterable["IspNms"] = (),
                 store: "Optional[ReplicatedBackend]" = None,
                 seed: int = 0) -> None:
        self.plan = plan
        self.network = network
        self.tcsp = tcsp
        self.nmses = list(nmses)
        self.store = store
        self.seed = seed
        self._loss_rng = derive_rng(seed, "faults", "message-loss")
        self.armed = False
        self.active: set[Fault] = set()
        # registry-backed tallies (unlabelled: one injector per world);
        # the legacy attributes are property views over these
        self._m_injected = _INJECTED.labelled()
        self._m_cleared = _CLEARED.labelled()
        self._m_skipped = _SKIPPED.labelled()
        self._m_messages_dropped = _MSG_DROPPED.labelled()
        self._m_messages_seen = _MSG_SEEN.labelled()

    # ------------------------------------------------------ legacy stat views
    @property
    def injected(self) -> int:
        return self._m_injected.value

    @injected.setter
    def injected(self, value: int) -> None:
        self._m_injected.value = value

    @property
    def cleared(self) -> int:
        return self._m_cleared.value

    @cleared.setter
    def cleared(self, value: int) -> None:
        self._m_cleared.value = value

    @property
    def skipped(self) -> int:
        return self._m_skipped.value

    @skipped.setter
    def skipped(self, value: int) -> None:
        self._m_skipped.value = value

    @property
    def messages_dropped(self) -> int:
        return self._m_messages_dropped.value

    @messages_dropped.setter
    def messages_dropped(self, value: int) -> None:
        self._m_messages_dropped.value = value

    @property
    def messages_seen(self) -> int:
        return self._m_messages_seen.value

    @messages_seen.setter
    def messages_seen(self, value: int) -> None:
        self._m_messages_seen.value = value

    # ---------------------------------------------------------------- arming
    def arm(self) -> None:
        """Schedule every fault; safe to call once per (reset) simulator."""
        if self.armed:
            raise FaultConfigError("injector already armed; reset() first")
        sim = self.network.sim
        for fault in self.plan:
            sim.schedule_at(fault.start, self._start, fault)
            sim.schedule_at(fault.end, self._clear, fault)
        for channel in self._channels():
            channel.injector = self
        sim.add_reset_hook(self.reset)
        self.armed = True

    def _channels(self):
        """Every control channel whose messages this injector may drop."""
        channels = []
        if self.tcsp is not None:
            channels.append(self.tcsp.channel)
        channels.extend(nms.channel for nms in self.nmses)
        return channels

    def reset(self) -> None:
        """Forget all transient fault state (simulator reset hook)."""
        for channel in self._channels():
            if channel.injector is self:
                channel.injector = None
        self.active.clear()
        self.armed = False
        reset_metrics((self._m_injected, self._m_cleared, self._m_skipped,
                       self._m_messages_dropped, self._m_messages_seen))
        self._loss_rng = derive_rng(self.seed, "faults", "message-loss")

    # -------------------------------------------------------------- handlers
    def _start(self, fault: Fault) -> None:
        kind = fault.kind
        try:
            if kind is FaultKind.DEVICE_CRASH:
                device = self._device(fault.target[0])
                if device is None or device.crashed:
                    self._m_skipped.value += 1
                    return
                device.crash()
            elif kind is FaultKind.LINK_FLAP:
                a, b = fault.target
                self.network.fail_link(a, b)
            elif kind is FaultKind.NMS_PARTITION:
                nms = self._nms(fault.target[0])
                if nms is None:
                    self._m_skipped.value += 1
                    return
                nms.partitioned = True
            elif kind is FaultKind.TCSP_OUTAGE:
                if self.tcsp is not None:
                    self.tcsp.reachable = False
            elif kind is FaultKind.STORE_REPLICA_CRASH:
                replica = int(fault.target[0])
                if (self.store is None
                        or replica >= self.store.n_replicas
                        or not self.store.replica_up(replica)):
                    self._m_skipped.value += 1
                    return
                self.store.crash_replica(replica)
            elif kind is FaultKind.NMS_SHARD_CRASH:
                nms = self._nms(fault.target[0])
                if nms is None:
                    self._m_skipped.value += 1
                    return
                nms.crash()
            # MESSAGE_LOSS is purely window-based: drop_message() consults
            # self.active, nothing to mutate here.
        except TopologyError:
            # e.g. the flap would partition the Internet — skip, keep going
            self._m_skipped.value += 1
            return
        self.active.add(fault)
        self._m_injected.value += 1

    def _clear(self, fault: Fault) -> None:
        if fault not in self.active:
            return
        self.active.discard(fault)
        self._m_cleared.value += 1
        kind = fault.kind
        if kind is FaultKind.DEVICE_CRASH:
            device = self._device(fault.target[0])
            if device is not None:
                device.restart()   # comes back *wiped* (Sec. 4.5)
        elif kind is FaultKind.LINK_FLAP:
            a, b = fault.target
            try:
                self.network.restore_link(a, b)
            except TopologyError:  # pragma: no cover - double-clear guard
                pass
        elif kind is FaultKind.NMS_PARTITION:
            nms = self._nms(fault.target[0])
            if nms is not None:
                nms.partitioned = False
        elif kind is FaultKind.TCSP_OUTAGE:
            if self.tcsp is not None and not any(
                    f.kind is FaultKind.TCSP_OUTAGE for f in self.active):
                self.tcsp.reachable = True
        elif kind is FaultKind.STORE_REPLICA_CRASH:
            if self.store is not None:
                self.store.restart_replica(int(fault.target[0]))
        elif kind is FaultKind.NMS_SHARD_CRASH:
            nms = self._nms(fault.target[0])
            if nms is not None:
                nms.restart()

    # -------------------------------------------------------------- messages
    def loss_rate_at(self, now: float) -> float:
        """Effective control-message loss probability at ``now``."""
        rate = 0.0
        for fault in self.active:
            if fault.kind is FaultKind.MESSAGE_LOSS:
                rate = max(rate, fault.param)
        return rate

    def drop_message(self, channel: str, op: str, now: float) -> bool:
        """Should this control-plane message be lost?  Called by
        :meth:`repro.core.rpc.ControlChannel.call` per attempt."""
        self._m_messages_seen.value += 1
        rate = self.loss_rate_at(now)
        if rate <= 0.0:
            return False
        dropped = bool(self._loss_rng.random() < rate)
        if dropped:
            self._m_messages_dropped.value += 1
        return dropped

    # --------------------------------------------------------------- lookups
    def _device(self, asn: int):
        for nms in self.nmses:
            device = nms.devices.get(asn)
            if device is not None:
                return device
        router = self.network.routers.get(asn)
        return getattr(router, "adaptive_device", None)

    def _nms(self, isp_id: str) -> "Optional[IspNms]":
        for nms in self.nmses:
            if nms.isp_id == isp_id:
                return nms
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultInjector(faults={len(self.plan)}, armed={self.armed}, "
                f"active={len(self.active)})")
