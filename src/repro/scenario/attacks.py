"""Deduplicated attack-flow and role-placement builders.

The fluid-model experiments each carried a private copy of "put a spoofed
flood / reflector fan-out / teardown attack on this topology".  Those
builders live here now, unchanged (regression-pinned by
tests/scenario/test_attacks.py against the historical inline versions):

* :func:`spoofed_flood_flows` — E3's direct spoofed flood (agents at
  random stubs, random claimed source ASes).
* :func:`reflector_roles` — the two historical stub-placement conventions
  for victim/agents/reflectors (E4's pick-victim-then-shuffle and E12's
  shuffle-then-slice), kept as distinct styles because each draws from the
  RNG in a different order and the tables are pinned to those draws.
* :func:`reflector_fanout` — the agents x reflectors request fan-out as a
  two-pass :class:`~repro.attack.reflector.ReflectorFluidModel`.
* :func:`teardown_setup` — E8's protocol-misuse world: a victim with
  established TCP connections, peers, and an attacker forging teardowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.attack.protocol_misuse import ConnectionPool, ProtocolMisuseAttack
from repro.attack.reflector import ReflectorFluidModel
from repro.net.fluid import Flow, FlowSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fluid import FluidNetwork
    from repro.net.network import Network
    from repro.net.node import Host
    from repro.net.topology import Topology

__all__ = ["spoofed_flood_flows", "ReflectorRoles", "reflector_roles",
           "reflector_fanout", "teardown_setup", "launch_teardown"]


def spoofed_flood_flows(topology: "Topology", victim_asn: int, n_agents: int,
                        rng) -> FlowSet:
    """Direct spoofed flood: agents at random stubs, random claimed ASes."""
    stubs = [a for a in topology.stub_ases if a != victim_asn]
    all_ases = topology.as_numbers
    flows = FlowSet()
    for i in range(n_agents):
        agent = int(stubs[int(rng.integers(0, len(stubs)))])
        claimed = agent
        while claimed == agent:
            claimed = int(all_ases[int(rng.integers(0, len(all_ases)))])
        flows.add(Flow(agent, victim_asn, 1e6, kind="attack",
                       claimed_src_asn=claimed, tag=f"agent{i}"))
    return flows


@dataclass(frozen=True)
class ReflectorRoles:
    """Who plays what in a reflector fan-out on stub ASes."""

    victim_asn: int
    agent_asns: tuple[int, ...]
    reflector_asns: tuple[int, ...]
    spare_asns: tuple[int, ...]     # remaining stubs, placement order


def reflector_roles(topology: "Topology", rng, n_agents: int,
                    n_reflectors: int, *, style: str = "pick-victim",
                    reflectors_from_tail: bool = False) -> ReflectorRoles:
    """Place victim/agents/reflectors on stub ASes.

    ``style="pick-victim"`` draws the victim uniformly, then shuffles the
    remaining stubs and slices agents/reflectors off the front (E4's
    convention).  ``style="shuffle"`` shuffles all stubs and takes the
    victim from position 0 (E12's convention); with
    ``reflectors_from_tail`` the reflectors come from the far end of the
    shuffle instead of right after the agents (E12b).  The two styles
    consume the RNG differently and are *not* interchangeable for pinned
    outputs.
    """
    stubs = list(topology.stub_ases)
    if style == "pick-victim":
        victim_asn = int(stubs[int(rng.integers(0, len(stubs)))])
        others = [a for a in stubs if a != victim_asn]
        rng.shuffle(others)
        agents = others[:n_agents]
        reflectors = others[n_agents:n_agents + n_reflectors]
        spare = others[n_agents + n_reflectors:]
    elif style == "shuffle":
        rng.shuffle(stubs)
        victim_asn = stubs[0]
        agents = stubs[1:1 + n_agents]
        if reflectors_from_tail:
            reflectors = stubs[-n_reflectors:]
            spare = stubs[1 + n_agents:-n_reflectors]
        else:
            reflectors = stubs[1 + n_agents:1 + n_agents + n_reflectors]
            spare = stubs[1 + n_agents + n_reflectors:]
    else:
        raise ValueError(f"unknown placement style {style!r}")
    return ReflectorRoles(victim_asn=int(victim_asn),
                          agent_asns=tuple(int(a) for a in agents),
                          reflector_asns=tuple(int(a) for a in reflectors),
                          spare_asns=tuple(int(a) for a in spare))


def reflector_fanout(fluid: "FluidNetwork", roles: ReflectorRoles, *,
                     rate_per_agent: float,
                     amplification: float) -> ReflectorFluidModel:
    """The agents x reflectors fan-out as a two-pass fluid model."""
    return ReflectorFluidModel(
        fluid, roles.victim_asn, list(roles.agent_asns),
        list(roles.reflector_asns), rate_per_agent=rate_per_agent,
        amplification=amplification)


def teardown_setup(net: "Network", *, n_peers: int = 4
                   ) -> tuple["Host", list["Host"], "Host", ConnectionPool]:
    """E8's protocol-misuse world: victim + established peers + attacker.

    Victim at the first stub, peers at the next ``n_peers`` stubs, the
    attacker right after them; every peer holds one established
    connection to the victim.  Returns (victim, peers, attacker, pool).
    """
    stubs = net.topology.stub_ases
    victim = net.add_host(stubs[0])
    peers = [net.add_host(a) for a in stubs[1:1 + n_peers]]
    attacker = net.add_host(stubs[1 + n_peers])
    pool = ConnectionPool(victim)
    for peer in peers:
        pool.establish(peer)
    return victim, peers, attacker, pool


def launch_teardown(net: "Network", attacker: "Host", pool: ConnectionPool,
                    *, rate_pps: float, duration: float = 0.5,
                    mode: str = "rst", seed: int = 0) -> ProtocolMisuseAttack:
    """Forge teardown packets against the pool's connections."""
    attack = ProtocolMisuseAttack(net, attacker, pool, rate_pps=rate_pps,
                                  duration=duration, mode=mode, seed=seed)
    attack.launch()
    return attack
