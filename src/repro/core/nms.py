"""Per-ISP network management systems (paper Figs. 3 and 5, Sec. 5.1).

Each ISP runs an NMS that (a) attaches adaptive devices to its routers,
(b) installs/configures service components on them when instructed by the
TCSP, and (c) — crucially for availability — accepts *direct* requests
from certificate-bearing network users, so the service stays controllable
"if the network conditions are such that the TCSP can no longer be
reached, e.g. because of an ongoing DDoS attack on the TCSP".  An NMS can
also forward configurations to peer NMSes on the user's behalf.

Resilience layer (DESIGN.md: failure model & recovery):

* every control-plane hop into this NMS goes through a retry-aware
  :class:`~repro.core.rpc.ControlChannel` (``self.channel``) which loses
  messages while the NMS is ``partitioned`` or a fault injector says so;
* the NMS remembers the *desired* configuration of every device
  (:class:`DesiredService`), so a watchdog heartbeat
  (:meth:`start_watchdog`) can detect crashed devices and — once they
  restart wiped, per Sec. 4.5 — re-install what should be present
  (:meth:`reconcile_device`, anti-entropy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, TYPE_CHECKING

from repro.errors import CertificateError, ControlPlaneUnavailable, \
    DeploymentError, ScopeViolation
from repro.core.certificates import CertificateAuthority, OwnershipCertificate
from repro.core.device import AdaptiveDevice, DeviceContext, attach_device
from repro.core.graph import ComponentGraph
from repro.core.ownership import NetworkUser, OwnershipRegistry
from repro.core.rpc import ControlChannel
from repro.core.storage import InMemoryBackend, StorageBackend, StoreTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["IspNms", "GraphFactory", "DesiredService"]

#: builds a stage graph specialised to one device's context
GraphFactory = Callable[[DeviceContext], ComponentGraph]

#: default watchdog heartbeat period (seconds, simulated)
WATCHDOG_INTERVAL = 0.25


@dataclass
class DesiredService:
    """What this NMS believes one user's deployment should look like —
    the source of truth for anti-entropy reconciliation."""

    cert: OwnershipCertificate
    user: NetworkUser
    target_asns: set[int] = field(default_factory=set)
    src_graph_factory: Optional[GraphFactory] = None
    dst_graph_factory: Optional[GraphFactory] = None
    active: bool = True


class IspNms:
    """The network management system of one ISP (a set of ASes)."""

    def __init__(self, isp_id: str, network: "Network", asns: Iterable[int],
                 ca: CertificateAuthority,
                 store: Optional[StorageBackend] = None) -> None:
        self.isp_id = isp_id
        self.network = network
        self.asns: set[int] = set(asns)
        self.ca = ca
        self.registry = OwnershipRegistry()
        self.devices: dict[int, AdaptiveDevice] = {}
        self.peers: list["IspNms"] = []
        self.deployments = 0
        self.direct_requests = 0
        #: True while this NMS is cut off from the control plane
        self.partitioned = False
        #: retry-aware channel every inbound control call goes through
        self.channel = ControlChannel(
            f"nms:{isp_id}", clock=lambda: network.sim.now,
            down_fn=lambda: self.partitioned,
        )
        #: storage backend the desired state lives on (DESIGN.md §9);
        #: process-local memory by default — which a shard crash wipes
        self.store: StorageBackend = store if store is not None \
            else InMemoryBackend()
        self._desired_table = f"nms.{isp_id}.desired"
        #: desired per-user deployment state (anti-entropy source of truth)
        self.desired: StoreTable = StoreTable(self.store, self._desired_table)
        # watchdog / reconciliation state
        self._watchdog_event = None
        self._seen_restarts: dict[int, int] = {}
        self.watchdog_ticks = 0
        self.devices_seen_down = 0
        self.reconciliations = 0
        self.services_reinstalled = 0
        self.forward_failures = 0
        #: shard-crash lifecycle (fault injection)
        self.nms_crashes = 0
        self.desired_lost_in_crashes = 0

    # ----------------------------------------------------------------- devices
    def attach_devices(self, asns: Optional[Iterable[int]] = None) -> None:
        """Attach adaptive devices to (a subset of) this ISP's routers."""
        for asn in (self.asns if asns is None else asns):
            if asn not in self.asns:
                raise DeploymentError(f"{self.isp_id}: AS {asn} is not ours")
            if asn not in self.devices:
                self.devices[asn] = attach_device(self.network, asn, self.registry)
                if self._watchdog_event is not None:
                    # a running watchdog must baseline the restart counter
                    # *now*: a crash+restart of this late-attached device
                    # before its first heartbeat would otherwise be
                    # invisible to anti-entropy
                    self._seen_restarts[asn] = self.devices[asn].restarts

    def device_at(self, asn: int) -> AdaptiveDevice:
        try:
            return self.devices[asn]
        except KeyError as exc:
            raise DeploymentError(f"{self.isp_id}: no device at AS {asn}") from exc

    # -------------------------------------------------------------- deployment
    def deploy(self, cert: OwnershipCertificate, user: NetworkUser,
               target_asns: Iterable[int],
               src_graph_factory: Optional[GraphFactory] = None,
               dst_graph_factory: Optional[GraphFactory] = None) -> list[int]:
        """Install a user's service on this ISP's devices (Fig. 5 step
        'deploy/configure service components').

        The certificate is verified, and the user identity must match —
        the ISP-side half of the safe-delegation contract.  Returns the
        ASes actually configured.
        """
        self.ca.verify(cert, self.network.sim.now)
        if cert.user_id != user.user_id:
            raise CertificateError(
                f"certificate for {cert.user_id!r} used by {user.user_id!r}"
            )
        for prefix in user.prefixes:
            if not cert.covers(prefix):
                raise ScopeViolation(
                    f"user {user.user_id!r} claims prefix {prefix} outside "
                    f"its certificate"
                )
        if any(self.registry.owner_of(prefix.first) is None
               for prefix in user.prefixes):
            # (re-)register whenever ANY claimed prefix is missing — a user
            # whose first prefix was registered earlier can still bring new
            # prefixes that need ownership entries of their own
            self.registry.register(user)
        configured = []
        for asn in sorted(set(target_asns) & self.asns):
            device = self.devices.get(asn)
            if device is None or device.crashed:
                continue  # no device here (yet), or it is down
            src_graph = src_graph_factory(device.context) if src_graph_factory else None
            dst_graph = dst_graph_factory(device.context) if dst_graph_factory else None
            if src_graph is None and dst_graph is None:
                continue
            device.install(user, src_graph=src_graph, dst_graph=dst_graph)
            configured.append(asn)
        self.deployments += 1
        if configured:
            self._remember(cert, user, configured,
                           src_graph_factory, dst_graph_factory)
        return configured

    def _remember(self, cert: OwnershipCertificate, user: NetworkUser,
                  configured: Iterable[int],
                  src_graph_factory: Optional[GraphFactory],
                  dst_graph_factory: Optional[GraphFactory]) -> None:
        """Record/extend the desired state a deployment establishes."""
        want = self.desired.get(user.user_id)
        if want is None:
            want = DesiredService(cert=cert, user=user)
            self.desired[user.user_id] = want
        want.cert = cert
        want.target_asns |= set(configured)
        if src_graph_factory is not None:
            want.src_graph_factory = src_graph_factory
        if dst_graph_factory is not None:
            want.dst_graph_factory = dst_graph_factory

    def deploy_direct(self, cert: OwnershipCertificate, user: NetworkUser,
                      target_asns: Iterable[int],
                      src_graph_factory: Optional[GraphFactory] = None,
                      dst_graph_factory: Optional[GraphFactory] = None,
                      forward_to_peers: bool = False) -> list[int]:
        """Direct user -> NMS path (TCSP unreachable, Sec. 5.1).

        With ``forward_to_peers`` the NMS relays the configuration to its
        peer NMSes "upon request of the network user" — through each
        peer's retry-aware channel, so a partitioned or lossy peer link is
        retried and, if exhausted, skipped (counted in
        ``forward_failures``) instead of aborting the whole request.
        """
        self.direct_requests += 1
        configured = self.deploy(cert, user, target_asns,
                                 src_graph_factory, dst_graph_factory)
        if forward_to_peers:
            for peer in self.peers:
                try:
                    configured += peer.channel.call(
                        "deploy", peer.deploy, cert, user, target_asns,
                        src_graph_factory, dst_graph_factory,
                    )
                except ControlPlaneUnavailable:
                    self.forward_failures += 1
        return configured

    # ------------------------------------------------------------- management
    def set_active(self, cert: OwnershipCertificate, user_id: str,
                   active: bool) -> int:
        """Activate/deactivate a user's service on all our devices."""
        self.ca.verify(cert, self.network.sim.now)
        if cert.user_id != user_id:
            raise CertificateError("certificate/user mismatch")
        touched = 0
        for device in self.devices.values():
            if user_id in device.services:
                device.set_active(user_id, active)
                touched += 1
        want = self.desired.get(user_id)
        if want is not None:
            want.active = active
        return touched

    def read_logs(self, cert: OwnershipCertificate, user_id: str) -> list[tuple]:
        """Collect the user's logger entries across our devices."""
        self.ca.verify(cert, self.network.sim.now)
        if cert.user_id != user_id:
            raise CertificateError("certificate/user mismatch")
        from repro.core.components import LoggerComponent

        entries: list[tuple] = []
        for device in self.devices.values():
            instance = device.services.get(user_id)
            if instance is None:
                continue
            for graph in (instance.src_graph, instance.dst_graph):
                if graph is None:
                    continue
                for component in graph.components():
                    if isinstance(component, LoggerComponent):
                        entries.extend(component.entries)
        return sorted(entries)

    def rule_count(self) -> int:
        return sum(d.rule_count() for d in self.devices.values())

    # --------------------------------------------------- watchdog / recovery
    def start_watchdog(self, interval: float = WATCHDOG_INTERVAL) -> None:
        """Begin the heartbeat that detects dead/restarted devices.

        Each tick polls every device: a crashed device is noted; a device
        whose restart counter advanced since the last tick restarted wiped
        (Sec. 4.5) and is reconciled against the desired state.  The timer
        handle is cleared by a simulator reset hook, so back-to-back
        trials on one simulator stay independent.
        """
        if self._watchdog_event is not None:
            return
        sim = self.network.sim
        self._seen_restarts = {asn: dev.restarts
                               for asn, dev in self.devices.items()}
        self._watchdog_event = sim.schedule_every(interval, self._heartbeat)
        sim.add_reset_hook(self.stop_watchdog)

    def stop_watchdog(self) -> None:
        """Cancel the heartbeat and forget liveness state."""
        if self._watchdog_event is not None:
            self._watchdog_event.cancel()
            self._watchdog_event = None
        self._seen_restarts = {}

    def _heartbeat(self) -> None:
        self.watchdog_ticks += 1
        for asn, device in self.devices.items():
            if device.crashed:
                self.devices_seen_down += 1
                continue
            if device.restarts != self._seen_restarts.get(asn, device.restarts):
                self.reconcile_device(asn)
            self._seen_restarts[asn] = device.restarts

    def reconcile_all(self) -> int:
        """Anti-entropy over every attached (live) device; returns the
        total number of re-installed services."""
        total = 0
        for asn in sorted(self.devices):
            total += self.reconcile_device(asn)
        return total

    # ------------------------------------------------------ crash / restart
    def crash(self) -> None:
        """The NMS process itself dies (an NMS-shard crash, E16e).

        The shard becomes unreachable and all *volatile* state dies with
        the process: watchdog liveness baselines always, and the desired
        state too when the storage backend is process-local
        (``store.durable`` False).  A durable backend — the replicated
        store — keeps the desired state, which is exactly the property the
        shard-crash sweep measures.
        """
        self.nms_crashes += 1
        self.partitioned = True
        self._seen_restarts = {}
        if not self.store.durable:
            self.desired_lost_in_crashes += len(self.desired)
            self.store.clear(self._desired_table)

    def restart(self) -> None:
        """The NMS shard comes back and rejoins the control plane.

        Whatever desired state survived (everything on a durable backend,
        nothing on a process-local one) is immediately replayed against
        the devices — one full anti-entropy pass — and the watchdog
        baselines are re-learned so later crashes are detected normally.
        """
        self.partitioned = False
        self.reconcile_all()
        self._seen_restarts = {asn: dev.restarts
                               for asn, dev in self.devices.items()}

    def reconcile_device(self, asn: int) -> int:
        """Anti-entropy: re-install every desired service missing from the
        device at ``asn``; returns how many services were re-installed."""
        device = self.device_at(asn)
        if device.crashed:
            return 0
        reinstalled = 0
        for user_id in sorted(self.desired):
            want = self.desired[user_id]
            if asn not in want.target_asns or user_id in device.services:
                continue
            src_graph = (want.src_graph_factory(device.context)
                         if want.src_graph_factory else None)
            dst_graph = (want.dst_graph_factory(device.context)
                         if want.dst_graph_factory else None)
            if src_graph is None and dst_graph is None:
                continue
            instance = device.install(want.user, src_graph=src_graph,
                                      dst_graph=dst_graph)
            instance.active = want.active
            reinstalled += 1
        if reinstalled:
            self.reconciliations += 1
            self.services_reinstalled += reinstalled
        return reinstalled
