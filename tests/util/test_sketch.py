"""Property tests for the sketch family (repro.util.sketch).

The contracts under test are the ones the flow-statistics backends and
the trigger heavy-hitter stream rely on:

* Count-Min never underestimates, and its overestimate stays within the
  eps*N band the (width, depth) sizing promises;
* Count-Sketch is unbiased — signed errors cancel across independent
  seeds;
* ``merge(a, b)`` equals one sketch fed the concatenated stream;
* ``update_batch`` equals the scalar ``update`` loop, byte for byte;
* SpaceSaving keeps ``count - error <= true <= count`` and monitors every
  key heavier than ``total / capacity``;
* everything is a pure function of (seed, stream): serial, parallel_map
  and a raw process pool produce byte-identical state.
"""

import hashlib
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments.common import parallel_map
from repro.util.sketch import (
    CountingBloom,
    CountMinSketch,
    CountSketch,
    SpaceSaving,
)


def _zipf_stream(seed, n=20_000, fan_in=3_000, a=1.2):
    rng = np.random.default_rng(seed)
    w = 1.0 / np.arange(1, fan_in + 1) ** a
    w /= w.sum()
    return rng.choice(fan_in, size=n, p=w).astype(np.uint64)


def _true_counts(keys):
    uniq, counts = np.unique(keys, return_counts=True)
    return dict(zip(uniq.tolist(), counts.tolist()))


class TestCountMin:
    def test_never_underestimates(self):
        keys = _zipf_stream(1)
        cms = CountMinSketch(1024, 4, seed=9)
        cms.update_batch(keys)
        for key, true in _true_counts(keys).items():
            assert cms.estimate(key) >= true

    def test_overestimate_within_eps_n(self):
        """Per-row error exceeds 2N/width with prob < 1/2; the min over
        ``depth`` independent rows exceeding 4x that band is vanishingly
        unlikely — and deterministic for this seed."""
        keys = _zipf_stream(2)
        cms = CountMinSketch(1024, 4, seed=9)
        cms.update_batch(keys)
        band = 8 * len(keys) / cms.width
        for key, true in _true_counts(keys).items():
            assert cms.estimate(key) - true <= band

    def test_batch_equals_scalar(self):
        keys = _zipf_stream(3, n=2_000)
        weights = np.random.default_rng(4).integers(1, 5, len(keys))
        a = CountMinSketch(512, 3, seed=5)
        b = CountMinSketch(512, 3, seed=5)
        a.update_batch(keys, weights)
        for k, w in zip(keys.tolist(), weights.tolist()):
            b.update(k, int(w))
        assert np.array_equal(a.table, b.table)
        assert (a.total, a.updates) == (b.total, b.updates)

    def test_merge_equals_union_stream(self):
        left, right = _zipf_stream(6, n=5_000), _zipf_stream(7, n=5_000)
        a = CountMinSketch(512, 4, seed=8)
        b = CountMinSketch(512, 4, seed=8)
        both = CountMinSketch(512, 4, seed=8)
        a.update_batch(left)
        b.update_batch(right)
        both.update_batch(np.concatenate([left, right]))
        a.merge(b)
        assert np.array_equal(a.table, both.table)
        assert (a.total, a.updates) == (both.total, both.updates)

    def test_merge_rejects_mismatched_shape(self):
        with pytest.raises(ReproError):
            CountMinSketch(512, 4, seed=1).merge(CountMinSketch(512, 4, seed=2))


class TestCountSketch:
    def test_unbiased_across_seeds(self):
        """The signed errors of independent hash seeds average out: the
        mean error across seeds is much smaller than the mean magnitude."""
        keys = _zipf_stream(10)
        true = _true_counts(keys)
        probes = sorted(true)[:50]
        errors = np.zeros((20, len(probes)))
        for s in range(20):
            cs = CountSketch(256, 5, seed=100 + s)
            cs.update_batch(keys)
            errors[s] = [cs.estimate(k) - true[k] for k in probes]
        magnitude = np.abs(errors).mean()
        assert magnitude > 0  # 256 columns for 3k keys: collisions exist
        assert abs(errors.mean()) < 0.2 * magnitude

    def test_batch_equals_scalar(self):
        keys = _zipf_stream(11, n=2_000)
        a = CountSketch(512, 3, seed=5)
        b = CountSketch(512, 3, seed=5)
        a.update_batch(keys)
        for k in keys.tolist():
            b.update(k)
        assert np.array_equal(a.table, b.table)

    def test_merge_equals_union_stream(self):
        left, right = _zipf_stream(12, n=4_000), _zipf_stream(13, n=4_000)
        a = CountSketch(512, 5, seed=3)
        b = CountSketch(512, 5, seed=3)
        both = CountSketch(512, 5, seed=3)
        a.update_batch(left)
        b.update_batch(right)
        both.update_batch(np.concatenate([left, right]))
        assert np.array_equal(a.merge(b).table, both.table)

    def test_negative_weights_supported(self):
        cs = CountSketch(128, 3, seed=1)
        cs.update(42, 10)
        cs.update(42, -4)
        assert cs.estimate(42) == 6


class TestCountingBloom:
    def test_batch_equals_scalar(self):
        keys = _zipf_stream(14, n=2_000)
        a = CountingBloom(1024, 4, seed=2)
        b = CountingBloom(1024, 4, seed=2)
        a.update_batch(keys)
        for k in keys.tolist():
            b.update(k)
        assert np.array_equal(a.cells, b.cells)

    def test_upper_bounds_true_count(self):
        keys = _zipf_stream(15)
        cb = CountingBloom(4096, 4, seed=3)
        cb.update_batch(keys)
        for key, true in _true_counts(keys).items():
            assert cb.estimate(key) >= true


class TestSpaceSaving:
    def test_count_bounds_true_frequency(self):
        keys = _zipf_stream(20, n=10_000, fan_in=500)
        ss = SpaceSaving(64)
        ss.update_batch(keys)
        true = _true_counts(keys)
        for key, count in ss.top():
            assert ss.guaranteed(key) <= true[key] <= count

    def test_heavy_keys_always_monitored(self):
        keys = _zipf_stream(21, n=10_000, fan_in=500)
        ss = SpaceSaving(64)
        ss.update_batch(keys)
        for key, t in _true_counts(keys).items():
            if t > ss.total / ss.capacity:
                assert ss.estimate(key) > 0, f"heavy key {key} evicted"

    def test_batch_equals_sorted_scalar_application(self):
        """The documented batch semantics: aggregate per key, then apply
        scalarly in ascending key order."""
        keys = _zipf_stream(22, n=5_000, fan_in=800)
        batched = SpaceSaving(32)
        batched.update_batch(keys)
        scalar = SpaceSaving(32)
        uniq, counts = np.unique(keys, return_counts=True)
        for k, c in zip(uniq.tolist(), counts.tolist()):
            scalar.update(k, c)
        assert batched.counts == scalar.counts
        assert batched.errors == scalar.errors
        assert batched.total == scalar.total

    def test_eviction_picks_min_count_smallest_key(self):
        ss = SpaceSaving(2)
        ss.update(5, 3)
        ss.update(9, 3)
        ss.update(1, 1)  # evicts key 5 (count tie 3/3 -> smaller key)
        assert set(ss.counts) == {9, 1}
        assert ss.counts[1] == 4 and ss.errors[1] == 3

    def test_merge_keeps_bounds(self):
        left = _zipf_stream(23, n=4_000, fan_in=300)
        right = _zipf_stream(24, n=4_000, fan_in=300)
        a, b = SpaceSaving(48), SpaceSaving(48)
        a.update_batch(left)
        b.update_batch(right)
        true = _true_counts(np.concatenate([left, right]))
        a.merge(b)
        for key, count in a.top():
            assert a.guaranteed(key) <= true.get(key, 0) <= count


def _state_fingerprint(seed):
    """Pool-worker entry point: every sketch fed one seeded stream."""
    keys = _zipf_stream(seed, n=8_000)
    cms = CountMinSketch(512, 4, seed=seed)
    cs = CountSketch(512, 5, seed=seed)
    cb = CountingBloom(1024, 4, seed=seed)
    ss = SpaceSaving(64)
    for sketch in (cms, cs, cb):
        sketch.update_batch(keys)
    ss.update_batch(keys)
    digest = hashlib.sha256()
    digest.update(cms.table.tobytes())
    digest.update(cs.table.tobytes())
    digest.update(cb.cells.tobytes())
    digest.update(repr(sorted(ss.counts.items())).encode())
    digest.update(repr(sorted(ss.errors.items())).encode())
    return digest.hexdigest()


class TestDeterminism:
    SEEDS = [1, 2, 3, 4]

    def test_two_runs_identical(self):
        assert _state_fingerprint(1) == _state_fingerprint(1)

    def test_parallel_map_matches_serial(self):
        serial = [_state_fingerprint(s) for s in self.SEEDS]
        assert parallel_map(_state_fingerprint, self.SEEDS, workers=2) == serial

    def test_process_pool_matches_serial(self):
        serial = [_state_fingerprint(s) for s in self.SEEDS]
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                pooled = list(pool.map(_state_fingerprint, self.SEEDS))
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process pool unavailable here: {exc}")
        assert pooled == serial
