"""Unidirectional links with bandwidth, propagation delay and a drop-tail
byte queue.

The queue is the *fluid-drain FIFO* model: backlog (in bytes) drains at line
rate; a packet arriving when backlog + size exceeds the buffer is dropped.
This yields exact FIFO departure times without per-byte events — the
standard scalable formulation for event-driven network simulators.

Link drop statistics also feed the pushback baseline ("observing packet drop
statistics in individual routers", Sec. 3.1).

Counters live in the ambient :mod:`repro.obs` registry (family per metric,
labelled by link name); ``link.tx_packets`` and friends are thin property
views over the registered instruments, so existing callers and experiment
tables are unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import SimulationError
from repro.net.packet import Packet, PacketBatch
from repro.obs.metrics import declare, reset_metrics
from repro.util.stats import WindowedCounter
from repro.util.units import BITS_PER_BYTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.net.simulator import Simulator

__all__ = ["Link"]

_TX_PACKETS = declare("net.link.tx_packets", "counter", labels=("link",),
                      help="packets accepted for transmission")
_TX_BYTES = declare("net.link.tx_bytes", "counter", labels=("link",),
                    help="bytes accepted for transmission")
_DROPPED_PACKETS = declare("net.link.dropped_packets", "counter",
                           labels=("link",), help="tail-dropped packets")
_DROPPED_BYTES = declare("net.link.dropped_bytes", "counter",
                         labels=("link",), help="tail-dropped bytes")


class Link:
    """One direction of an AS-AS (or host-AS) adjacency.

    Parameters
    ----------
    src, dst:
        Endpoint nodes; delivery calls ``dst.receive(packet, link)``.
    bandwidth:
        Line rate in bits/second.
    delay:
        Propagation delay in seconds.
    buffer_bytes:
        Drop-tail queue size in bytes.
    """

    __slots__ = (
        "src", "dst", "bandwidth", "delay", "buffer_bytes",
        "_backlog", "_last_update",
        "_m_tx_packets", "_m_tx_bytes", "_m_dropped_packets",
        "_m_dropped_bytes",
        "drop_window", "arrival_window", "drop_log",
    )

    def __init__(self, src: "Node", dst: "Node", bandwidth: float,
                 delay: float, buffer_bytes: int = 64_000,
                 stats_window: float = 1.0) -> None:
        if bandwidth <= 0 or delay < 0 or buffer_bytes <= 0:
            raise SimulationError(
                f"bad link parameters: bw={bandwidth}, delay={delay}, buf={buffer_bytes}"
            )
        self.src = src
        self.dst = dst
        self.bandwidth = float(bandwidth)
        self.delay = float(delay)
        self.buffer_bytes = int(buffer_bytes)
        self._backlog = 0.0
        self._last_update = 0.0
        # registry-backed counters; a freshly built link always starts at
        # zero even when an earlier same-named link registered first
        name = f"{src.name}->{dst.name}"
        self._m_tx_packets = _TX_PACKETS.labelled(link=name)
        self._m_tx_bytes = _TX_BYTES.labelled(link=name)
        self._m_dropped_packets = _DROPPED_PACKETS.labelled(link=name)
        self._m_dropped_bytes = _DROPPED_BYTES.labelled(link=name)
        # sliding windows for congestion detection (pushback) and stats
        self.drop_window = WindowedCounter(stats_window)
        self.arrival_window = WindowedCounter(stats_window)
        # recent drops as (time, packet) — pushback classifies these
        self.drop_log: list[tuple[float, Packet]] = []

    # ------------------------------------------------------ legacy stat views
    @property
    def tx_packets(self) -> int:
        return self._m_tx_packets.value

    @tx_packets.setter
    def tx_packets(self, value: int) -> None:
        self._m_tx_packets.value = value

    @property
    def tx_bytes(self) -> int:
        return self._m_tx_bytes.value

    @tx_bytes.setter
    def tx_bytes(self, value: int) -> None:
        self._m_tx_bytes.value = value

    @property
    def dropped_packets(self) -> int:
        return self._m_dropped_packets.value

    @dropped_packets.setter
    def dropped_packets(self, value: int) -> None:
        self._m_dropped_packets.value = value

    @property
    def dropped_bytes(self) -> int:
        return self._m_dropped_bytes.value

    @dropped_bytes.setter
    def dropped_bytes(self, value: int) -> None:
        self._m_dropped_bytes.value = value

    def _drain(self, now: float) -> None:
        if now > self._last_update:
            self._backlog = max(
                0.0, self._backlog - (now - self._last_update) * self.bandwidth / BITS_PER_BYTE
            )
            self._last_update = now

    @property
    def name(self) -> str:
        return f"{self.src.name}->{self.dst.name}"

    def queue_bytes(self, now: float) -> float:
        """Current backlog in bytes."""
        self._drain(now)
        return self._backlog

    def utilization(self, now: float) -> float:
        """Arrival rate over the stats window divided by capacity (can be > 1)."""
        return (self.arrival_window.rate(now) * BITS_PER_BYTE) / self.bandwidth

    def drop_rate(self, now: float) -> float:
        """Dropped bytes/second over the stats window."""
        return self.drop_window.rate(now)

    def send(self, packet: Packet, sim: "Simulator") -> bool:
        """Enqueue ``packet`` for transmission; returns False on tail drop."""
        now = sim.now
        self._drain(now)
        self.arrival_window.add(now, packet.size)
        if self._backlog + packet.size > self.buffer_bytes:
            self._m_dropped_packets.value += 1
            self._m_dropped_bytes.value += packet.size
            self.drop_window.add(now, packet.size)
            self.drop_log.append((now, packet))
            if len(self.drop_log) > 10_000:  # bound memory in long floods
                del self.drop_log[:5_000]
            return False
        self._backlog += packet.size
        serialization = self._backlog * BITS_PER_BYTE / self.bandwidth
        self._m_tx_packets.value += 1
        self._m_tx_bytes.value += packet.size
        sim.schedule(serialization + self.delay, self.dst.receive, packet, self)
        return True

    def transmit_batch(self, batch: PacketBatch,
                       sim: "Simulator") -> Optional[PacketBatch]:
        """Vectorised drop-tail enqueue of a whole batch.

        Applies the exact per-packet FIFO admission rule (drop packet i iff
        admitting it would push the backlog past the buffer) as array
        operations: a cumulative-sum prefix plus one ``searchsorted`` per
        *dropped* packet, so the common all-accepted case is O(1) in
        Python.  Accepted packets are delivered by ONE batch event at the
        serialization time of the full accepted backlog — for a batch of
        size 1 this is exactly :meth:`send`'s timing and accounting, so the
        scalar and batch engines agree byte for byte at B=1; at larger B
        the intra-batch departure spacing is coarsened by design.

        Returns the rejected sub-batch, or ``None`` when every packet was
        accepted.  The caller must not reuse ``batch`` afterwards
        (ownership transfers to the receiver).
        """
        n = len(batch)
        if n == 0:
            return None
        now = sim.now
        self._drain(now)
        sizes = batch.size
        total = int(sizes.sum())
        self.arrival_window.add(now, total)
        room = self.buffer_bytes - self._backlog
        if total <= room:
            accepted: Optional[PacketBatch] = batch
            rejected: Optional[PacketBatch] = None
            accepted_bytes, n_accepted = total, n
        else:
            csum = np.cumsum(sizes)
            keep = np.ones(n, dtype=bool)
            dropped_bytes = 0
            # first index whose running accepted backlog exceeds the room;
            # each iteration drops one packet, so this loops O(#drops)
            i = int(np.searchsorted(csum, room + dropped_bytes, side="right"))
            while i < n:
                keep[i] = False
                dropped_bytes += int(sizes[i])
                i = int(np.searchsorted(csum, room + dropped_bytes,
                                        side="right"))
            rejected = batch.select(~keep)
            n_rejected = len(rejected)
            self._m_dropped_packets.value += n_rejected
            self._m_dropped_bytes.value += dropped_bytes
            self.drop_window.add(now, dropped_bytes)
            # pushback reads drop_log packets; materialise the few drops
            for p in rejected.to_packets():
                self.drop_log.append((now, p))
            if len(self.drop_log) > 10_000:
                del self.drop_log[:5_000]
            accepted = batch.select(keep)
            accepted_bytes = total - dropped_bytes
            n_accepted = n - n_rejected
        if n_accepted == 0:
            return rejected
        self._backlog += accepted_bytes
        serialization = self._backlog * BITS_PER_BYTE / self.bandwidth
        self._m_tx_packets.value += n_accepted
        self._m_tx_bytes.value += accepted_bytes
        sim.schedule_batch(serialization + self.delay,
                           self.dst.receive_batch, accepted, self)
        return rejected

    def reset_stats(self) -> None:
        """Zero all counters (between experiment phases)."""
        reset_metrics((self._m_tx_packets, self._m_tx_bytes,
                       self._m_dropped_packets, self._m_dropped_bytes))
        self.drop_log.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, {self.bandwidth/1e6:.1f} Mbit/s)"
