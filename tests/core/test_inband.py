"""Tests for the in-band (packet-level) control plane."""


from repro.attack import DirectFlood
from repro.core import NumberAuthority, Tcsp
from repro.core.inband import InbandControlPlane
from repro.errors import ControlPlaneUnavailable
from repro.net import Network, TopologyBuilder


def world(seed=44, timeout=0.5, tcsp_pps=500.0):
    net = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=seed))
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, net)
    tcsp.contract_isp("isp", net.topology.as_numbers)
    stubs = net.topology.stub_ases
    user_host = net.add_host(stubs[0])
    plane = InbandControlPlane(net, tcsp, tcsp_asn=stubs[5],
                               user_host=user_host, timeout=timeout,
                               tcsp_processing_pps=tcsp_pps)
    return net, authority, tcsp, plane, stubs


class TestHappyPath:
    def test_ping_roundtrip(self):
        net, authority, tcsp, plane, stubs = world()
        req = plane.request("ping")
        net.run(until=1.0)
        assert req.completed_at is not None
        assert req.result == "pong"
        assert not req.timed_out
        assert req.latency > 0

    def test_register_over_the_wire(self):
        net, authority, tcsp, plane, stubs = world()
        prefix = net.topology.prefix_of(stubs[0])
        authority.record_allocation(prefix, "acme")
        req = plane.request("register", payload=("acme", [prefix]))
        net.run(until=1.0)
        user, cert = req.result
        assert user.user_id == "acme"
        assert tcsp.user("acme") is user

    def test_latency_reflects_network_path(self):
        net, authority, tcsp, plane, stubs = world()
        req = plane.request("ping")
        net.run(until=1.0)
        # at least the one-way propagation twice
        assert req.latency >= 2 * 0.002

    def test_failed_operation_still_answers(self):
        net, authority, tcsp, plane, stubs = world()
        prefix = net.topology.prefix_of(stubs[1])
        # not allocated to "evil" -> server-side RegistrationError
        req = plane.request("register", payload=("evil", [prefix]))
        net.run(until=1.0)
        assert req.completed_at is not None
        assert req.error is not None
        assert plane.success_fraction() == 0.0

    def test_callback_invoked(self):
        net, authority, tcsp, plane, stubs = world()
        done = []
        plane.request("ping", on_done=lambda r: done.append(r.result))
        net.run(until=1.0)
        assert done == ["pong"]

    def test_outcomes_and_stats(self):
        net, authority, tcsp, plane, stubs = world()
        plane.request("ping")
        plane.request("ping")
        net.run(until=1.0)
        outcomes = plane.outcomes()
        assert len(outcomes) == 2
        assert all(o.ok for o in outcomes)
        assert plane.success_fraction() == 1.0
        assert plane.mean_latency() > 0


class TestUnderAttack:
    def test_flood_on_tcsp_times_out_requests(self):
        """Sec. 5.1: a DDoS on the TCSP makes the control plane unusable."""
        net, authority, tcsp, plane, stubs = world(timeout=0.3, tcsp_pps=200.0)
        attackers = [net.add_host(a) for a in stubs[1:4]]
        DirectFlood(net, attackers, plane.tcsp_host, rate_pps=2000.0,
                    duration=1.0, spoof="none", seed=1).launch()
        # issue the request mid-flood
        req_holder = {}
        net.sim.schedule_at(0.3, lambda: req_holder.update(
            r=plane.request("ping")))
        net.run(until=2.0)
        req = req_holder["r"]
        assert req.timed_out
        assert isinstance(req.error, ControlPlaneUnavailable)
        assert plane.success_fraction() == 0.0

    def test_unknown_operation(self):
        net, authority, tcsp, plane, stubs = world()
        req = plane.request("frobnicate")
        net.run(until=1.0)
        assert isinstance(req.error, ControlPlaneUnavailable)

    def test_late_response_after_timeout_ignored(self):
        """A response arriving after the client gave up must not crash."""
        net, authority, tcsp, plane, stubs = world(timeout=0.001)
        req = plane.request("ping")
        net.run(until=1.0)
        assert req.timed_out
        # exactly one completion recorded despite the late response
        assert len(plane.completed) == 1
