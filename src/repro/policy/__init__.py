"""Policy IR and compiler for component graphs (paper Sec. 4.5 + 5.2).

The paper composes services out of declaratively specified components
(Sec. 5.2, via the Chameleon work it cites) and vets them against the
Sec. 4.5 security restrictions before deployment.  This package turns both
steps into a small compiler:

* :mod:`repro.policy.ir` — a typed intermediate representation lowered
  from :class:`~repro.core.graph.ComponentGraph` (one op per component,
  explicit PASS/DROP edges),
* :mod:`repro.policy.passes` — structural validation, Sec. 4.5 vetting and
  optimization passes emitting structured :class:`Diagnostic` records,
* :mod:`repro.policy.compiler` — :func:`compile_policy` producing a
  :class:`CompiledPolicy`: a scalar program byte-identical to the
  interpreted graph walk (kept as the differential oracle) plus a
  vectorized batch program running filter/blacklist/limit graphs over
  whole :class:`~repro.net.packet.PacketBatch` row sets.
"""

from repro.policy.compiler import CompiledPolicy, analyze, compile_policy
from repro.policy.ir import OpKind, Policy, PolicyOp, lower_graph
from repro.policy.passes import Diagnostic, Severity

__all__ = [
    "CompiledPolicy",
    "Diagnostic",
    "OpKind",
    "Policy",
    "PolicyOp",
    "Severity",
    "analyze",
    "compile_policy",
    "lower_graph",
]
