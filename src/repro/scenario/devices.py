"""Standalone adaptive-device builders for scalability scenarios.

:func:`build_device` (formerly private to E6) constructs a device serving
``n_subscribers`` users without any network around it — the unit under
test for the paper's Sec. 5.3 scaling claims and the E6/E13 micro
benchmarks.
"""

from __future__ import annotations

from repro.core import (
    AdaptiveDevice,
    ComponentGraph,
    DeviceContext,
    NetworkUser,
    OwnershipRegistry,
)
from repro.core.components import HeaderFilter, HeaderMatch
from repro.net import ASRole, Prefix, Protocol

__all__ = ["build_device"]


def build_device(n_subscribers: int, rules_per_subscriber: int = 2,
                 with_services: bool = True) -> tuple[AdaptiveDevice, list[NetworkUser]]:
    """A device serving ``n_subscribers`` users, each with a small graph.

    Subscribers own disjoint /16 prefixes under 10.0.0.0/8.
    """
    registry = OwnershipRegistry()
    users = []
    for i in range(n_subscribers):
        prefix = Prefix((i + 1) << 16, 16)  # disjoint /16s: 0.1/16, 0.2/16, ...
        user = NetworkUser(f"user-{i}", prefixes=[prefix])
        registry.register(user)
        users.append(user)
    device = AdaptiveDevice(
        DeviceContext(asn=1, role=ASRole.STUB,
                      local_prefix=Prefix.parse("192.168.0.0/16")),
        registry)
    if with_services:
        for user in users:
            graph = ComponentGraph(f"svc:{user.user_id}")
            graph.chain(*[
                HeaderFilter(f"r{j}", HeaderMatch(proto=Protocol.TCP, dport=7))
                for j in range(rules_per_subscriber)
            ])
            device.install(user, dst_graph=graph)
    return device, users
