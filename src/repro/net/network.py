"""The packet-level network: topology + routing + routers + hosts + links,
wired to one discrete-event simulator.

This is the substrate every packet-level experiment runs on.  Construction
is deterministic given the topology and parameters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import TopologyError
from repro.net.addressing import IPv4Address
from repro.net.link import Link
from repro.net.node import Host, Router
from repro.net.packet import Packet
from repro.net.routing import RoutingTable, as_path, build_routing
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.util.units import Mbps, ms

__all__ = ["LinkParams", "Network"]


@dataclass(frozen=True)
class LinkParams:
    """Bandwidth/delay/buffer for one link class."""

    bandwidth: float = Mbps(100)
    delay: float = ms(5)
    buffer_bytes: int = 256_000


#: Reasonable defaults per tier pairing; higher tiers get fatter pipes.
DEFAULT_BACKBONE = LinkParams(bandwidth=Mbps(1000), delay=ms(10), buffer_bytes=2_000_000)
DEFAULT_TRANSIT = LinkParams(bandwidth=Mbps(400), delay=ms(8), buffer_bytes=1_000_000)
DEFAULT_EDGE = LinkParams(bandwidth=Mbps(100), delay=ms(5), buffer_bytes=256_000)
DEFAULT_ACCESS = LinkParams(bandwidth=Mbps(20), delay=ms(2), buffer_bytes=64_000)


class Network:
    """A runnable packet-level internetwork.

    >>> from repro.net.topology import TopologyBuilder
    >>> net = Network(TopologyBuilder.line(3))
    >>> a = net.add_host(0); b = net.add_host(2)
    >>> from repro.net.packet import Packet
    >>> _ = a.send(Packet.udp(a.address, b.address, kind="legit"))
    >>> net.run()
    >>> b.received_packets
    1
    """

    def __init__(self, topology: Topology,
                 backbone: LinkParams = DEFAULT_BACKBONE,
                 transit: LinkParams = DEFAULT_TRANSIT,
                 edge: LinkParams = DEFAULT_EDGE,
                 access: LinkParams = DEFAULT_ACCESS,
                 link_params_fn: Optional[Callable[[int, int], LinkParams]] = None) -> None:
        self.topology = topology
        self.sim = Simulator()
        self.routing: dict[int, RoutingTable] = build_routing(topology)
        self.routers: dict[int, Router] = {}
        self.hosts: dict[int, Host] = {}  # address value -> Host
        self.links: dict[tuple[int, int], Link] = {}  # (src asn, dst asn)
        self._access = access
        self.drop_log_enabled = False
        self.global_drops: Counter[str] = Counter()
        # transport work: bytes x inter-AS hops actually traversed, by kind
        self.byte_hops_by_kind: Counter[str] = Counter()

        for asn in topology.as_numbers:
            self.routers[asn] = Router(self, asn)
        from repro.net.topology import ASRole  # local import to avoid cycle

        def tier_params(a: int, b: int) -> LinkParams:
            ra, rb = topology.role_of(a), topology.role_of(b)
            roles = {ra, rb}
            if roles == {ASRole.CORE}:
                return backbone
            if ASRole.STUB in roles:
                return edge
            return transit

        chooser = link_params_fn or tier_params
        for a, b in topology.graph.edges:
            params_ab = chooser(a, b)
            params_ba = chooser(b, a)
            self._add_link(a, b, params_ab)
            self._add_link(b, a, params_ba)

    def _add_link(self, a: int, b: int, params: LinkParams) -> None:
        link = Link(self.routers[a], self.routers[b], params.bandwidth,
                    params.delay, params.buffer_bytes)
        self.links[(a, b)] = link
        self.routers[a].links[b] = link

    # ------------------------------------------------------------------ hosts
    def add_host(self, asn: int, record: bool = False,
                 access: Optional[LinkParams] = None,
                 processing_pps: Optional[float] = None) -> Host:
        """Create a host in AS ``asn`` with its access links."""
        address = self.topology.add_host(asn)
        host = Host(self, address, asn, record=record,
                    processing_pps=processing_pps)
        params = access or self._access
        router = self.routers[asn]
        host.uplink = Link(host, router, params.bandwidth, params.delay, params.buffer_bytes)
        host.downlink = Link(router, host, params.bandwidth, params.delay, params.buffer_bytes)
        router.host_links[int(address)] = host.downlink
        self.hosts[int(address)] = host
        return host

    def host_at(self, address: IPv4Address | int) -> Host:
        value = int(address)
        try:
            return self.hosts[value]
        except KeyError as exc:
            raise TopologyError(f"no host at {IPv4Address(value)}") from exc

    # --------------------------------------------------------------- plumbing
    def note_drop(self, asn: int, packet: Packet, reason: str) -> None:
        """Router drop callback (byte-hop accounting happens per forwarded
        hop in :meth:`Router.forward`)."""
        self.global_drops[reason] += 1

    def note_drop_batch(self, asn: int, batch, reason: str) -> None:
        """Batch analogue of :meth:`note_drop`: one increment per batch."""
        self.global_drops[reason] += len(batch)

    def path(self, src_asn: int, dst_asn: int) -> list[int]:
        """AS path under the current routing tables."""
        return as_path(self.routing, src_asn, dst_asn)

    def link_between(self, a: int, b: int) -> Link:
        try:
            return self.links[(a, b)]
        except KeyError as exc:
            raise TopologyError(f"no link AS{a}->AS{b}") from exc

    # --------------------------------------------------------- topology change
    def fail_link(self, a: int, b: int) -> None:
        """Take the AS adjacency a<->b down and reconverge routing.

        Both directed links are removed, next-hop tables are recomputed,
        and every attached adaptive device is notified ("upon routing
        updates, the configuration of modules that depend on the topology
        can be either automatically adapted or ... temporarily disabled",
        Sec. 4.2).  Raises if the failure would disconnect the graph.
        """
        if not self.topology.graph.has_edge(a, b):
            raise TopologyError(f"no adjacency AS{a} <-> AS{b}")
        import networkx as nx

        self.topology.graph.remove_edge(a, b)
        if not nx.is_connected(self.topology.graph):
            self.topology.graph.add_edge(a, b)
            raise TopologyError(
                f"failing AS{a} <-> AS{b} would partition the Internet"
            )
        self._failed_links = getattr(self, "_failed_links", [])
        self._failed_links.append((a, b))
        for x, y in ((a, b), (b, a)):
            self.routers[x].links.pop(y, None)
            self.links.pop((x, y), None)
        self._reconverge()

    def restore_link(self, a: int, b: int,
                     params: Optional[LinkParams] = None) -> None:
        """Bring a previously failed adjacency back and reconverge."""
        failed = getattr(self, "_failed_links", [])
        if (a, b) not in failed and (b, a) not in failed:
            raise TopologyError(f"AS{a} <-> AS{b} was not failed")
        for pair in ((a, b), (b, a)):
            if pair in failed:
                failed.remove(pair)
        self.topology.graph.add_edge(a, b)
        p = params or DEFAULT_TRANSIT
        self._add_link(a, b, p)
        self._add_link(b, a, p)
        self._reconverge()

    def _reconverge(self) -> None:
        self.routing = build_routing(self.topology)
        for router in self.routers.values():
            device = router.adaptive_device
            if device is not None and hasattr(device, "on_routing_update"):
                device.on_routing_update()

    # -------------------------------------------------------------- execution
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until, max_events=max_events)

    def reset_stats(self) -> None:
        """Zero every counter in routers, links and hosts (keep topology)."""
        for router in self.routers.values():
            router.reset_stats()
        for link in self.links.values():
            link.reset_stats()
        for host in self.hosts.values():
            host.reset_stats()
            if host.uplink:
                host.uplink.reset_stats()
            if host.downlink:
                host.downlink.reset_stats()
        self.global_drops.clear()
        self.byte_hops_by_kind.clear()

    # -------------------------------------------------------------- summaries
    def total_received(self, kind: Optional[str] = None) -> int:
        """Packets delivered to all hosts (optionally of one ground-truth kind)."""
        if kind is None:
            return sum(h.received_packets for h in self.hosts.values())
        return sum(h.received_by_kind.get(kind, 0) for h in self.hosts.values())

    def total_dropped(self, reason_prefix: str = "") -> int:
        """Router drops whose reason starts with ``reason_prefix``."""
        return sum(
            count for reason, count in self.global_drops.items()
            if reason.startswith(reason_prefix)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(ases={len(self.routers)}, hosts={len(self.hosts)}, "
            f"links={len(self.links)}, t={self.sim.now:.3f}s)"
        )
