"""Tests for the engine-agnostic decision core (service/core.py).

The core is exercised here standalone, with registry-free
:class:`StatCell` counters — the device-side behaviour it was carved out
of stays pinned by tests/core/test_device.py and test_flow_cache.py,
which now run through the delegation.
"""

import pytest

from repro.core import (
    AdaptiveDevice,
    ComponentGraph,
    DeviceContext,
    NetworkUser,
    OwnershipRegistry,
)
from repro.core.components import (
    Capabilities,
    Component,
    HeaderFilter,
    HeaderMatch,
    PrefixBlacklist,
    Verdict,
)
from repro.errors import DeploymentError, SafetyViolation
from repro.net import ASRole, IPv4Address, Packet, Prefix, Protocol
from repro.service.core import DecisionCore, StatCell

A = IPv4Address.parse

CTX = DeviceContext(asn=1, role=ASRole.STUB,
                    local_prefix=Prefix.parse("192.168.0.0/16"))


def make_core(**kwargs):
    registry = OwnershipRegistry()
    acme = NetworkUser("acme", prefixes=[Prefix.parse("10.1.0.0/16")])
    registry.register(acme)
    return DecisionCore(CTX, registry, **kwargs), acme


def drop_udp_graph(name="g"):
    g = ComponentGraph(name)
    g.chain(HeaderFilter("udp", HeaderMatch(proto=Protocol.UDP)))
    return g


class TestConstruction:
    def test_bad_stage_order_rejected(self):
        registry = OwnershipRegistry()
        with pytest.raises(DeploymentError):
            DecisionCore(CTX, registry, stage_order="sideways")

    def test_default_counters_are_stat_cells(self):
        core, _ = make_core()
        assert isinstance(core.m_redirected, StatCell)
        assert core.m_redirected.value == 0

    def test_injected_counters_are_used(self):
        cell = StatCell()
        core, acme = make_core(counters={"flow_cache_misses": cell})
        core.wants(Packet.udp(A("10.1.0.1"), A("10.2.0.1")))
        assert cell.value == 1


class TestManagement:
    def test_install_requires_a_graph(self):
        core, acme = make_core()
        with pytest.raises(DeploymentError):
            core.install(acme)

    def test_set_active_unknown_user(self):
        core, _ = make_core()
        with pytest.raises(DeploymentError):
            core.set_active("nobody", True)

    def test_rule_count(self):
        core, acme = make_core()
        core.install(acme, src_graph=drop_udp_graph("s"),
                     dst_graph=drop_udp_graph("d"))
        assert core.rule_count() == 2


class TestFlowCache:
    def test_hits_and_misses(self):
        core, acme = make_core()
        core.install(acme, dst_graph=drop_udp_graph())
        pkt = Packet.udp(A("10.8.0.1"), A("10.1.0.1"))
        assert core.wants(pkt)
        assert core.wants(pkt)
        assert core.m_fc_misses.value == 1
        assert core.m_fc_hits.value == 1

    def test_lru_eviction_respects_capacity(self):
        core, acme = make_core(flow_cache_capacity=2)
        core.install(acme, dst_graph=drop_udp_graph())
        for i in range(4):
            core.wants(Packet.udp(A(f"10.8.0.{i + 1}"), A("10.1.0.1")))
        assert len(core.flow_cache) == 2

    def test_registry_change_invalidates(self):
        core, acme = make_core()
        core.install(acme, dst_graph=drop_udp_graph())
        core.wants(Packet.udp(A("10.8.0.1"), A("10.1.0.1")))
        assert len(core.flow_cache) == 1
        core.registry.register(
            NetworkUser("globex", prefixes=[Prefix.parse("10.2.0.0/16")]))
        assert len(core.synced_cache()) == 0

    def test_inactive_service_not_wanted_until_reactivated(self):
        core, acme = make_core()
        core.install(acme, dst_graph=drop_udp_graph())
        pkt = Packet.udp(A("10.8.0.1"), A("10.1.0.1"))
        assert core.wants(pkt)
        core.set_active("acme", False)
        assert not core.wants(pkt)
        core.set_active("acme", True)
        assert core.wants(pkt)


class TestPipeline:
    def test_process_drops_through_installed_graph(self):
        core, acme = make_core()
        core.install(acme, dst_graph=drop_udp_graph())
        out = core.process(Packet.udp(A("10.8.0.1"), A("10.1.0.1")), 0.0, None)
        assert out is None
        assert core.m_redirected.value == 1
        assert core.m_dropped.value == 1

    def test_unfiltered_packet_passes(self):
        core, acme = make_core()
        core.install(acme, dst_graph=drop_udp_graph())
        pkt = Packet.tcp_syn(A("10.8.0.1"), A("10.1.0.1"))
        assert core.process(pkt, 0.0, None) is pkt
        assert core.m_dropped.value == 0

    def test_stage_order_reversal(self):
        """dst-first runs the destination owner's graph before the source
        owner's — the E13 ablation knob, honoured core-side."""
        order = []

        class Probe(Component):
            capabilities = Capabilities()

            def process(self, packet, ctx):
                order.append(ctx.stage)
                return Verdict.PASS

        registry = OwnershipRegistry()
        src_user = NetworkUser("s", prefixes=[Prefix.parse("10.1.0.0/16")])
        dst_user = NetworkUser("d", prefixes=[Prefix.parse("10.2.0.0/16")])
        registry.register(src_user)
        registry.register(dst_user)
        core = DecisionCore(CTX, registry, stage_order="dst-first")
        sg = ComponentGraph("sg")
        sg.add(Probe("p1"))
        dg = ComponentGraph("dg")
        dg.add(Probe("p2"))
        core.install(src_user, src_graph=sg)
        core.install(dst_user, dst_graph=dg)
        core.process(Packet.udp(A("10.1.0.1"), A("10.2.0.1")), 0.0, None)
        assert order == ["dest", "source"]


class LyingMutator(Component):
    """Declares itself benign but rewrites the destination address."""

    capabilities = Capabilities()

    def process(self, packet, ctx):
        packet.dst = A("10.9.9.9")
        return Verdict.PASS


class TestSafetyContainment:
    def make_lying_core(self, strict):
        core, acme = make_core(strict=strict)
        g = ComponentGraph("lying")
        g.add(LyingMutator("liar"))
        core.install(acme, dst_graph=g)
        return core

    def test_strict_core_raises_and_disables(self):
        core = self.make_lying_core(strict=True)
        with pytest.raises(SafetyViolation):
            core.process(Packet.udp(A("10.8.0.1"), A("10.1.0.1")), 0.0, None)
        assert core.services["acme"].disabled_for_violation
        assert core.m_safety_disables.value == 1

    def test_contained_core_restores_the_packet(self):
        core = self.make_lying_core(strict=False)
        pkt = Packet.udp(A("10.8.0.1"), A("10.1.0.1"))
        out = core.process(pkt, 0.0, None)
        assert out is pkt
        assert pkt.dst == A("10.1.0.1")
        assert core.services["acme"].disabled_for_violation


class TestDeviceParity:
    """The delegating device and a standalone core agree exactly."""

    def world(self):
        registry = OwnershipRegistry()
        acme = NetworkUser("acme", prefixes=[Prefix.parse("10.1.0.0/16")])
        registry.register(acme)
        graph = ComponentGraph("blk")
        graph.chain(PrefixBlacklist("b", [Prefix.parse("10.8.0.0/24")]))
        return registry, acme, graph

    def packets(self):
        return [
            Packet.udp(A("10.8.0.1"), A("10.1.0.1")),   # owned, blacklisted
            Packet.udp(A("10.7.0.1"), A("10.1.0.2")),   # owned, clean
            Packet.udp(A("172.16.0.1"), A("172.16.9.9")),  # unowned
            Packet.udp(A("10.8.0.1"), A("10.1.0.1")),   # repeat (cache hit)
        ]

    def test_same_verdicts_and_counters(self):
        registry, acme, graph = self.world()
        device = AdaptiveDevice(CTX, registry, strict=False)
        device.install(acme, dst_graph=graph)

        registry2 = OwnershipRegistry()
        acme2 = NetworkUser("acme", prefixes=[Prefix.parse("10.1.0.0/16")])
        registry2.register(acme2)
        graph2 = ComponentGraph("blk")
        graph2.chain(PrefixBlacklist("b", [Prefix.parse("10.8.0.0/24")]))
        core = DecisionCore(CTX, registry2, strict=False)
        core.install(acme2, dst_graph=graph2)

        for pkt_d, pkt_c in zip(self.packets(), self.packets()):
            want_d = device.wants(pkt_d)
            want_c = core.wants(pkt_c)
            assert want_d == want_c
            if want_d:
                out_d = device.process(pkt_d, 0.0, None)
                out_c = core.process(pkt_c, 0.0, None)
                assert (out_d is None) == (out_c is None)
        assert device.redirected == core.m_redirected.value
        assert device.dropped == core.m_dropped.value
        assert device.flow_cache_hits == core.m_fc_hits.value
        assert device.flow_cache_misses == core.m_fc_misses.value

    def test_device_shares_one_services_dict_with_its_core(self):
        registry, acme, graph = self.world()
        device = AdaptiveDevice(CTX, registry)
        device.install(acme, dst_graph=graph)
        assert device.services is device._core.services
        assert "acme" in device._core.services
