"""Topology rendering: Graphviz DOT export and terminal summaries.

Visual inspection of the AS fabric (tiers, adjacency, deployments) is
useful when debugging experiments; this module renders a
:class:`~repro.net.topology.Topology` as Graphviz DOT text — feed it to
``dot -Tsvg`` offline — or as a compact per-tier text summary.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.net.topology import ASRole, Topology

__all__ = ["to_dot", "tier_summary"]

_ROLE_STYLE = {
    ASRole.CORE: ("box", "#e8788a"),
    ASRole.TRANSIT: ("ellipse", "#78a8e8"),
    ASRole.STUB: ("circle", "#8ed0a0"),
}


def to_dot(topology: Topology, highlight: Iterable[int] = (),
           title: Optional[str] = None, show_prefixes: bool = False) -> str:
    """Graphviz DOT text for the AS graph.

    ``highlight`` ASes (e.g. the ones a mitigation deployed to) get a bold
    border; tiers get distinct shapes/colours.
    """
    highlighted = set(highlight)
    lines = ["graph internet {"]
    if title:
        lines.append(f'  label="{title}";')
    lines.append("  layout=neato; overlap=false; splines=true;")
    for asn in topology.as_numbers:
        role = topology.role_of(asn)
        shape, color = _ROLE_STYLE[role]
        label = f"AS{asn}"
        if show_prefixes:
            label += f"\\n{topology.prefix_of(asn)}"
        attrs = [f'label="{label}"', f"shape={shape}",
                 f'fillcolor="{color}"', "style=filled"]
        if asn in highlighted:
            attrs += ["penwidth=3", 'color="#303030"']
        lines.append(f"  {asn} [{', '.join(attrs)}];")
    for a, b in sorted(topology.graph.edges):
        lines.append(f"  {a} -- {b};")
    lines.append("}")
    return "\n".join(lines)


def tier_summary(topology: Topology) -> str:
    """Multi-line text summary of the topology's tier structure."""
    lines = [f"{len(topology)} ASes, {topology.graph.number_of_edges()} links"]
    for role in (ASRole.CORE, ASRole.TRANSIT, ASRole.STUB):
        members = topology.by_role(role)
        if not members:
            lines.append(f"  {role.value:<8} none")
            continue
        degrees = sorted(topology.degree(a) for a in members)
        lines.append(
            f"  {role.value:<8} {len(members):>4} ASes, degree "
            f"{degrees[0]}..{degrees[-1]} (median {degrees[len(degrees) // 2]})"
        )
    hosts = sum(len(topology.ases[a].hosts) for a in topology.as_numbers)
    lines.append(f"  hosts    {hosts}")
    return "\n".join(lines)
