"""Tests for the mitigation base interface and deployment sampling."""

import pytest

from repro.errors import MitigationError
from repro.mitigation import IngressFiltering, deployment_sample
from repro.net import ASRole, Network, TopologyBuilder


class TestDeploymentSample:
    def test_fraction_zero_empty(self):
        t = TopologyBuilder.hierarchical(seed=1)
        assert deployment_sample(t, 0.0, seed=1) == set()

    def test_fraction_one_everything(self):
        t = TopologyBuilder.hierarchical(seed=1)
        assert deployment_sample(t, 1.0, seed=1) == set(t.as_numbers)

    def test_role_restriction(self):
        t = TopologyBuilder.hierarchical(seed=1)
        picked = deployment_sample(t, 1.0, seed=1, roles=[ASRole.STUB])
        assert picked == set(t.stub_ases)

    def test_always_include(self):
        t = TopologyBuilder.hierarchical(seed=1)
        picked = deployment_sample(t, 0.0, seed=1, always_include=[5])
        assert picked == {5}

    def test_fraction_counts(self):
        t = TopologyBuilder.powerlaw(n=100, seed=1)
        picked = deployment_sample(t, 0.3, seed=2)
        assert abs(len(picked) - 30) <= 1

    def test_deterministic(self):
        t = TopologyBuilder.powerlaw(n=50, seed=1)
        assert deployment_sample(t, 0.5, seed=9) == deployment_sample(t, 0.5, seed=9)

    def test_invalid_fraction(self):
        t = TopologyBuilder.star(3)
        with pytest.raises(MitigationError):
            deployment_sample(t, 1.5)


class TestMitigationLifecycle:
    def test_deploy_undeploy(self):
        net = Network(TopologyBuilder.line(3))
        ing = IngressFiltering()
        ing.deploy(net, [0, 2])
        assert ing.is_deployed_at(0)
        assert net.routers[0].has_filter("ingress")
        ing.undeploy(net)
        assert not ing.deployed_asns
        assert not net.routers[0].has_filter("ingress")
