"""Tests for ingress filtering and route-based packet filtering."""


from repro.attack import DirectFlood
from repro.mitigation import IngressFiltering, RouteBasedFiltering
from repro.net import (
    Flow,
    FlowSet,
    FluidNetwork,
    IPv4Address,
    Network,
    Packet,
    TopologyBuilder,
)


def flood_setup(spoof, topology_seed=1):
    net = Network(TopologyBuilder.hierarchical(2, 2, 4, seed=topology_seed))
    stubs = net.topology.stub_ases
    victim = net.add_host(stubs[0], record=True)
    agents = [net.add_host(a) for a in stubs[1:4]]
    flood = DirectFlood(net, agents, victim, rate_pps=50.0, duration=0.4,
                        spoof=spoof, seed=3)
    return net, victim, agents, flood


class TestIngressFilteringPacketLevel:
    def test_blocks_spoofed_at_source_as(self):
        net, victim, agents, flood = flood_setup("random")
        ing = IngressFiltering()
        ing.deploy(net, [a.asn for a in agents])
        flood.launch()
        net.run()
        assert victim.received_by_kind.get("attack", 0) == 0
        assert ing.dropped > 0

    def test_no_effect_on_unspoofed(self):
        """Botnet traffic with real sources passes ingress filtering."""
        net, victim, agents, flood = flood_setup("none")
        IngressFiltering().deploy(net, [a.asn for a in agents])
        flood.launch()
        net.run()
        assert victim.received_by_kind["attack"] > 0

    def test_only_deploying_ases_filter(self):
        net, victim, agents, flood = flood_setup("random")
        IngressFiltering().deploy(net, [agents[0].asn])  # one of three
        flood.launch()
        net.run()
        srcs_origin = {p.true_origin for _, p in victim.log if p.kind == "attack"}
        assert agents[0].name not in srcs_origin
        assert len(srcs_origin) == 2

    def test_transit_traffic_untouched(self):
        """Ingress filtering checks only locally injected packets."""
        net = Network(TopologyBuilder.line(4))
        a = net.add_host(0)
        b = net.add_host(3)
        IngressFiltering().deploy(net, [1, 2])  # transit ASes on the path
        # spoofed packet injected at AS0 (no filter there) transits 1 and 2
        a.send(Packet.udp(IPv4Address.parse("10.0.99.1"), b.address,
                          kind="attack", spoofed=True))
        net.run()
        # AS1/AS2 must NOT drop it: it did not enter from their customers
        assert net.total_dropped("filter:ingress") == 0

    def test_legit_local_traffic_passes(self):
        net, victim, agents, flood = flood_setup("random")
        ing = IngressFiltering()
        ing.deploy(net, net.topology.as_numbers)
        legit = net.add_host(net.topology.stub_ases[5])
        legit.send(Packet.udp(legit.address, victim.address, kind="legit"))
        net.run()
        assert victim.received_by_kind.get("legit", 0) == 1


class TestRouteBasedFilteringPacketLevel:
    def test_blocks_spoofed_on_transit_path(self):
        """RBF works at *any* deployed AS on the path, not just the edge."""
        net = Network(TopologyBuilder.line(5))
        agent = net.add_host(0)
        victim = net.add_host(4, record=True)
        # spoof an address belonging to AS3 — but inject at AS0:
        spoofed_src = IPv4Address(net.topology.prefix_of(3).base + 7)
        rbf = RouteBasedFiltering()
        rbf.deploy(net, [2])  # deployed mid-path only
        agent.send(Packet.udp(spoofed_src, victim.address, kind="attack", spoofed=True))
        net.run()
        # at AS2, traffic claiming source AS3 must come from AS3's side
        assert victim.received_packets == 0
        assert rbf.dropped == 1

    def test_consistent_traffic_passes(self):
        net = Network(TopologyBuilder.line(5))
        a = net.add_host(0)
        victim = net.add_host(4)
        RouteBasedFiltering().deploy(net, net.topology.as_numbers)
        a.send(Packet.udp(a.address, victim.address, kind="legit"))
        net.run()
        assert victim.received_packets == 1

    def test_bogon_source_dropped(self):
        net = Network(TopologyBuilder.line(3))
        a = net.add_host(0)
        victim = net.add_host(2)
        rbf = RouteBasedFiltering()
        rbf.deploy(net, [1])
        a.send(Packet.udp(IPv4Address.parse("203.0.113.9"), victim.address))
        net.run()
        assert victim.received_packets == 0

    def test_own_prefix_from_outside_dropped(self):
        net = Network(TopologyBuilder.line(3))
        a = net.add_host(0)
        victim = net.add_host(2, record=True)
        rbf = RouteBasedFiltering()
        rbf.deploy(net, [2])
        # spoof the victim's own prefix from a remote AS
        spoof = IPv4Address(net.topology.prefix_of(2).base + 9)
        a.send(Packet.udp(spoof, victim.address, kind="attack"))
        net.run()
        assert victim.received_packets == 0


class TestFluidFilters:
    def test_ingress_fluid_blocks_spoofed_at_source(self):
        topo = TopologyBuilder.line(4)
        fluid = FluidNetwork(topo)
        net = Network(topo)
        ing = IngressFiltering()
        ing.deployed_asns = {0}
        filt = ing.fluid_filter()
        flows = FlowSet([
            Flow(0, 3, 1e6, kind="attack", claimed_src_asn=2),
            Flow(0, 3, 1e6, kind="legit"),
        ])
        r = fluid.evaluate(flows, filters=[filt])
        assert r.survival_fraction("attack") == 0.0
        assert r.survival_fraction("legit") == 1.0
        del net

    def test_rbf_fluid_blocks_inconsistent_arrivals(self):
        topo = TopologyBuilder.line(5)
        fluid = FluidNetwork(topo)
        rbf = RouteBasedFiltering()
        rbf.deployed_asns = {2}
        filt = rbf.bind_fluid(fluid)
        # flow from AS0 claiming AS4 (victim side): at AS2 it arrives from
        # AS1, but traffic from AS4 should arrive from AS3.
        flows = FlowSet([Flow(0, 3, 1e6, kind="attack", claimed_src_asn=4)])
        r = fluid.evaluate(flows, filters=[filt])
        assert r.survival_fraction("attack") == 0.0

    def test_rbf_fluid_consistent_spoof_passes(self):
        """A spoof whose claimed source lies on the same shortest path
        direction is indistinguishable — RBF lets it through (known gap)."""
        topo = TopologyBuilder.line(5)
        fluid = FluidNetwork(topo)
        rbf = RouteBasedFiltering()
        rbf.deployed_asns = {2}
        filt = rbf.bind_fluid(fluid)
        flows = FlowSet([Flow(1, 4, 1e6, kind="attack", claimed_src_asn=0)])
        r = fluid.evaluate(flows, filters=[filt])
        assert r.survival_fraction("attack") == 1.0

    def test_rbf_fluid_ingress_check_at_source(self):
        topo = TopologyBuilder.line(4)
        fluid = FluidNetwork(topo)
        rbf = RouteBasedFiltering()
        rbf.deployed_asns = {0}
        filt = rbf.bind_fluid(fluid)
        r = fluid.evaluate(
            FlowSet([Flow(0, 3, 1e6, kind="attack", claimed_src_asn=2)]),
            filters=[filt])
        assert r.survival_fraction("attack") == 0.0

    def test_unbound_rbf_fluid_is_noop(self):
        topo = TopologyBuilder.line(4)
        fluid = FluidNetwork(topo)
        rbf = RouteBasedFiltering()
        rbf.deployed_asns = {1}
        filt = rbf.fluid_filter()  # not bound to a FluidNetwork
        r = fluid.evaluate(
            FlowSet([Flow(0, 3, 1e6, kind="attack", claimed_src_asn=2)]),
            filters=[filt])
        assert r.survival_fraction("attack") == 1.0
