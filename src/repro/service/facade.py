"""Live service facade over the decision core.

:class:`ServiceFacade` answers the question a live deployment asks on
every request — ``check(src, dst) -> Verdict`` — with exactly the
simulator's semantics: ownership LPM behind the per-flow LRU cache, the
two-stage owner pipeline, and Sec. 4.5 safety containment.  Unowned
traffic takes the fast path (one cache probe, a shared singleton
verdict); owned traffic is materialised as a :class:`Packet` and run
through the installed stage graphs.

:class:`TrafficController` adds the deployment-facing conveniences the
middleware adapters need: a default protected service address, and an
optional :class:`~repro.util.tokenbucket.TokenBucket` admission guard
(the live analogue of the device's rate-limit component).

Metric families (``service.*``) are emitted through the ambient
:mod:`repro.obs` registry, next to the simulator's ``device.*`` ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.device import DeviceContext
from repro.core.graph import ComponentGraph
from repro.errors import DeploymentError
from repro.core.ownership import NetworkUser, OwnershipRegistry
from repro.net.addressing import IPv4Address, Prefix, _as_int
from repro.net.packet import Packet, Protocol
from repro.net.topology import ASRole
from repro.obs.metrics import declare
from repro.policy.compiler import compile_policy
from repro.service.clock import Clock, WallClock
from repro.service.core import DecisionCore, FLOW_CACHE_CAPACITY
from repro.util.tokenbucket import TokenBucket

__all__ = ["Verdict", "ServiceFacade", "TrafficController"]

_CHECKS = declare("service.checks", "counter", labels=("verdict",),
                  help="live service checks by verdict (pass | drop)")
_REDIRECTED = declare("service.redirected", "counter",
                      help="checks that entered the two-stage pipeline")
_DROPPED = declare("service.dropped", "counter",
                   help="checks dropped by a processing stage")
_SAFETY_DISABLES = declare("service.safety_disables", "counter",
                           help="live services disabled for safety violations")
_CACHE_HITS = declare("service.cache_hits", "counter",
                      help="checks served from the per-flow verdict cache")
_CACHE_MISSES = declare("service.cache_misses", "counter",
                        help="checks resolved via the ownership LPM slow path")
_ADMISSION_REJECTED = declare("service.admission_rejected", "counter",
                              help="requests refused by the admission "
                                   "token bucket before any ownership check")
_POLICY_SWAPS = declare("service.policy.swaps", "counter",
                        help="atomic hot-swaps of a live service's "
                             "stage graphs")
_POLICY_GENERATION = declare("service.policy.generation", "gauge",
                             help="decision-core policy generation "
                                  "(bumped on every invalidation)")
_POLICY_COMPILE_FAILURES = declare("service.policy.compile_failures", "counter",
                                   help="hot-swap attempts rejected by the "
                                        "policy compiler (old policy kept)")


@dataclass(frozen=True)
class Verdict:
    """The outcome of one live check.

    (Distinct from the per-component :class:`repro.core.components.Verdict`
    enum: this is the end-to-end answer for one request/flow.)
    """

    allowed: bool
    #: True when the flow was owned by a subscriber with an active service
    #: here and therefore ran the two-stage pipeline; False means it took
    #: the direct path (or was refused at admission).
    redirected: bool
    #: "direct" | "processed" | "filtered" | "admission"
    reason: str = ""
    src_owner: Optional[str] = None
    dst_owner: Optional[str] = None

    @property
    def action(self) -> str:
        return "pass" if self.allowed else "drop"


#: Shared fast-path verdicts (the overwhelmingly common outcomes — "Most
#: traffic will use the direct path through the router", Sec. 4.1).
PASS_DIRECT = Verdict(allowed=True, redirected=False, reason="direct")
DROP_ADMISSION = Verdict(allowed=False, redirected=False, reason="admission")


class ServiceFacade:
    """``check(src, dst, now) -> Verdict`` over a :class:`DecisionCore`.

    ``clock`` supplies timestamps when the caller passes no explicit
    ``now`` — :class:`~repro.service.clock.WallClock` by default,
    ``sim.clock`` to drive the same facade from simulated time.
    """

    def __init__(self, registry: Optional[OwnershipRegistry] = None, *,
                 clock: Optional[Clock] = None,
                 context: Optional[DeviceContext] = None,
                 strict: bool = False, stage_order: str = "src-first",
                 flow_cache_capacity: int = FLOW_CACHE_CAPACITY) -> None:
        self.registry = registry if registry is not None else OwnershipRegistry()
        self.clock: Clock = clock if clock is not None else WallClock()
        if context is None:
            # a standalone facade fronts one site: stub role, no local
            # prefix bias (components that scope to the local prefix see
            # the catch-all)
            context = DeviceContext(asn=0, role=ASRole.STUB,
                                    local_prefix=Prefix(0, 0))
        self._m_pass = _CHECKS.labelled(verdict="pass")
        self._m_drop = _CHECKS.labelled(verdict="drop")
        self._m_redirected = _REDIRECTED.labelled()
        self._m_policy_swaps = _POLICY_SWAPS.labelled()
        self._m_policy_generation = _POLICY_GENERATION.labelled()
        self._m_policy_compile_failures = _POLICY_COMPILE_FAILURES.labelled()
        self.core = DecisionCore(
            context, self.registry, strict=strict, stage_order=stage_order,
            flow_cache_capacity=flow_cache_capacity,
            counters={
                "dropped": _DROPPED.labelled(),
                "safety_disables": _SAFETY_DISABLES.labelled(),
                "flow_cache_hits": _CACHE_HITS.labelled(),
                "flow_cache_misses": _CACHE_MISSES.labelled(),
            })

    # ------------------------------------------------------------- management
    def subscribe(self, user: NetworkUser,
                  src_graph: Optional[ComponentGraph] = None,
                  dst_graph: Optional[ComponentGraph] = None):
        """Register the user's prefixes (if new) and install their graphs."""
        if not any(u.user_id == user.user_id for u in self.registry.users):
            self.registry.register(user)
        return self.core.install(user, src_graph, dst_graph)

    def install(self, user: NetworkUser,
                src_graph: Optional[ComponentGraph] = None,
                dst_graph: Optional[ComponentGraph] = None):
        return self.core.install(user, src_graph, dst_graph)

    def uninstall(self, user_id: str) -> bool:
        return self.core.uninstall(user_id)

    def set_active(self, user_id: str, active: bool) -> None:
        self.core.set_active(user_id, active)

    def swap_policy(self, user_id: str,
                    src_graph: Optional[ComponentGraph] = None,
                    dst_graph: Optional[ComponentGraph] = None) -> int:
        """Atomically replace a live service's stage graphs.

        Every non-None graph is compiled (with Sec. 4.5 vetting) *before*
        anything is mutated, so a rejected swap leaves the old policy
        fully active — the compiler is the transaction guard.  On success
        the flow cache is invalidated and the policy generation advances;
        the new generation is returned so callers can verify the swap
        took effect.
        """
        if src_graph is None and dst_graph is None:
            raise DeploymentError(
                f"user {user_id!r}: nothing to swap")
        core = self.core
        instance = core.services.get(user_id)
        if instance is None:
            raise DeploymentError(f"no service for user {user_id!r} here")
        try:
            for graph in (src_graph, dst_graph):
                if graph is not None:
                    compile_policy(graph, vet=True)
        except Exception:
            self._m_policy_compile_failures.value += 1
            raise
        if src_graph is not None:
            instance.src_graph = src_graph
        if dst_graph is not None:
            instance.dst_graph = dst_graph
        # a swapped-in policy gets a clean safety slate, like install()
        instance.disabled_for_violation = False
        core.invalidate()
        self._m_policy_swaps.value += 1
        self._m_policy_generation.value = core.generation
        return core.generation

    # ------------------------------------------------------------------ check
    def check(self, src, dst, *, proto: Protocol = Protocol.TCP,
              sport: int = 0, dport: int = 0, size: int = 512,
              now: Optional[float] = None) -> Verdict:
        """The live redirect decision + pipeline for one flow.

        ``src``/``dst`` accept ints, :class:`IPv4Address`, or dotted
        strings (ints skip all coercion — the load-harness fast path).
        """
        src_i = src if type(src) is int else _as_int(src)
        dst_i = dst if type(dst) is int else _as_int(dst)
        core = self.core
        entry = core.flow_entry(src_i, dst_i, proto, dport)
        if not entry[2]:
            self._m_pass.value += 1
            return PASS_DIRECT
        src_owner, dst_owner = entry[0], entry[1]
        self._m_redirected.value += 1
        if now is None:
            now = self.clock.now()
        packet = Packet(IPv4Address(src_i), IPv4Address(dst_i), proto=proto,
                        size=size, sport=sport, dport=dport)
        out = core.run_stages(packet, src_owner, dst_owner, now, None)
        src_id = None if src_owner is None else src_owner.user_id
        dst_id = None if dst_owner is None else dst_owner.user_id
        if out is None:
            self._m_drop.value += 1
            return Verdict(allowed=False, redirected=True, reason="filtered",
                           src_owner=src_id, dst_owner=dst_id)
        self._m_pass.value += 1
        return Verdict(allowed=True, redirected=True, reason="processed",
                       src_owner=src_id, dst_owner=dst_id)

    def check_packet(self, packet: Packet,
                     now: Optional[float] = None) -> Verdict:
        """:meth:`check` for an already-materialised :class:`Packet`."""
        return self.check(packet.src.value, packet.dst.value,
                          proto=packet.proto, sport=packet.sport,
                          dport=packet.dport, size=packet.size, now=now)


class TrafficController:
    """Framework-free embedding: one ``allow(client)`` call per request.

    Wraps a :class:`ServiceFacade` with the protected service's address
    (the ``dst`` of every check) and an optional admission
    :class:`TokenBucket` consulted *before* any ownership work — the
    cheap front door that bounds total check rate under flood.
    """

    def __init__(self, facade: ServiceFacade, service_address, *,
                 proto: Protocol = Protocol.TCP, dport: int = 80,
                 admission: Optional[TokenBucket] = None) -> None:
        self.facade = facade
        self.service_address = _as_int(service_address)
        self.proto = proto
        self.dport = dport
        self.admission = admission
        self._m_admission_rejected = _ADMISSION_REJECTED.labelled()

    def allow(self, client, *, dst=None, cost: float = 1.0,
              now: Optional[float] = None) -> Verdict:
        """Admission bucket first, then the ownership/pipeline check."""
        if now is None:
            now = self.facade.clock.now()
        if self.admission is not None and not self.admission.admit(now, cost=cost):
            self._m_admission_rejected.value += 1
            return DROP_ADMISSION
        dst_addr = self.service_address if dst is None else dst
        return self.facade.check(client, dst_addr, proto=self.proto,
                                 dport=self.dport, now=now)

    def swap_policy(self, user_id: str,
                    src_graph: Optional[ComponentGraph] = None,
                    dst_graph: Optional[ComponentGraph] = None) -> int:
        """Delegate an atomic policy hot-swap to the wrapped facade."""
        return self.facade.swap_policy(user_id, src_graph=src_graph,
                                       dst_graph=dst_graph)
