"""The clock seam between simulated and wall-clock time.

Every time-dependent piece of the decision path (rate limiters, stateful
filters, trigger windows) already takes explicit ``now`` timestamps; the
:class:`Clock` protocol names the single place those timestamps come
from.  The simulator's side of the seam is
:class:`repro.net.simulator.SimClock` (``sim.clock`` reads ``sim.now``);
the live side is :class:`WallClock`; tests use :class:`ManualClock`.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "ManualClock", "WallClock"]


@runtime_checkable
class Clock(Protocol):
    """Anything that can answer "what time is it?" in seconds."""

    def now(self) -> float:
        """Current time in seconds (monotone, arbitrary epoch)."""
        ...  # pragma: no cover - protocol


class WallClock:
    """Monotonic wall-clock time, zeroed at construction.

    The zeroed epoch keeps live timestamps small and float-precise (token
    buckets and timing filters subtract timestamps; absolute epoch seconds
    would waste mantissa bits).
    """

    __slots__ = ("_epoch",)

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._epoch


class ManualClock:
    """Explicitly-advanced clock for tests and deterministic replay."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds!r}s")
        self._now += seconds
        return self._now
