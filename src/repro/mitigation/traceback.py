"""IP traceback baselines: probabilistic packet marking and SPIE.

* :class:`PPMTraceback` — Savage et al. [19] compressed edge sampling:
  each deployed router overwrites a single marking slot with probability
  ``p`` (edge start, distance 0); the next router completes the edge; all
  further routers increment the distance.  From enough attack packets the
  victim reconstructs the attack tree.

* :class:`SpieTraceback` — Snoeren et al. [21] hash-based traceback:
  deployed routers store packet digests in time-windowed Bloom filters; a
  single packet can later be traced hop by hop by querying which routers
  remember it.

Both are *identification* tools, not defenses — the paper's point: "it
deals with neither detecting attacks nor deploying any dispositions"
(Sec. 3.1), and against reflector attacks the reconstructed sources are
the *reflectors*.  The reactive combination "traceback, then filter the
identified sources" is provided by :class:`TracebackFilter` so E2 can
measure exactly that failure.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import MitigationError
from repro.mitigation.base import Mitigation
from repro.net.link import Link
from repro.net.network import Network
from repro.net.node import Host, Router
from repro.net.packet import Packet
from repro.util.bloom import BloomFilter
from repro.util.rng import derive_rng

__all__ = ["PPMTraceback", "MarkingCollector", "SpieTraceback",
           "SpieQueryResult", "TracebackFilter"]


class MarkingCollector:
    """Victim-side harvester of PPM markings.

    Attach with ``victim.add_responder(collector.on_packet)``; it records
    the (start, end, distance) edge fragments carried by attack packets.
    """

    def __init__(self, kinds_prefix: str = "attack") -> None:
        self.kinds_prefix = kinds_prefix
        self.markings: Counter[tuple[int, int, int]] = Counter()
        self.packets_seen = 0

    def on_packet(self, packet: Packet, host: Host, now: float) -> None:
        if not packet.kind.startswith(self.kinds_prefix):
            return None
        self.packets_seen += 1
        if packet.marking is not None:
            start, end, dist = packet.marking
            self.markings[(int(start), int(end), int(dist))] += 1
        return None


class PPMTraceback(Mitigation):
    """Probabilistic packet marking (edge sampling)."""

    name = "ppm"

    def __init__(self, p: float = 0.04, seed: int | None = None) -> None:
        super().__init__()
        if not (0.0 < p <= 1.0):
            raise MitigationError(f"marking probability must be in (0,1], got {p}")
        self.p = p
        self._rng = derive_rng(seed, "ppm")
        self.marked = 0

    def deploy(self, network: Network, asns: Iterable[int]) -> None:
        for asn in asns:
            router = network.routers[asn]

            def filt(packet: Packet, router: Router, link: Optional[Link],
                     now: float, asn=asn) -> bool:
                if self._rng.random() < self.p:
                    packet.marking = (asn, -1, 0)
                    self.marked += 1
                elif packet.marking is not None:
                    start, end, dist = packet.marking
                    if dist == 0 and end == -1:
                        packet.marking = (start, asn, 1)
                    else:
                        packet.marking = (start, end, dist + 1)
                return True

            router.add_filter(self.name, filt)
            self.deployed_asns.add(asn)

    # ----------------------------------------------------------- reconstruction
    @staticmethod
    def reconstruct(collector: MarkingCollector,
                    min_count: int = 1) -> dict[tuple[int, int], int]:
        """Edges of the attack tree: (upstream, downstream) -> distance.

        Edges seen fewer than ``min_count`` times are discarded as noise.
        """
        edges: dict[tuple[int, int], int] = {}
        for (start, end, dist), count in collector.markings.items():
            if count < min_count or end == -1:
                continue
            key = (start, end)
            if key not in edges or dist > edges[key]:
                edges[key] = dist
        return edges

    @staticmethod
    def identified_source_asns(collector: MarkingCollector,
                               min_count: int = 1) -> set[int]:
        """ASes the victim concludes the attack originates from.

        Leaves of the reconstructed tree: marking-edge *starts* that never
        appear as the downstream end of another edge.  For direct attacks
        these are the true agent ASes; for reflector attacks they are the
        reflector-side ASes — the paper's negative result.
        """
        edges = PPMTraceback.reconstruct(collector, min_count=min_count)
        starts = {s for s, _ in edges}
        ends = {e for _, e in edges}
        leaves = starts - ends
        # single-edge paths: the start is the source even if also an end elsewhere
        if not leaves and starts:
            max_d = max(edges.values())
            leaves = {s for (s, e), d in edges.items() if d == max_d}
        return leaves


@dataclass
class SpieQueryResult:
    """Outcome of tracing one packet through SPIE digests."""

    path: list[int] = field(default_factory=list)  # victim-adjacent ... origin
    origin_asn: Optional[int] = None
    complete: bool = False  # True when the walk terminated inside coverage


class SpieTraceback(Mitigation):
    """SPIE hash-based traceback with windowed Bloom digest stores."""

    name = "spie"

    def __init__(self, capacity_per_window: int = 50_000, window: float = 1.0,
                 fp_rate: float = 0.001, max_windows: int = 16) -> None:
        super().__init__()
        if window <= 0 or capacity_per_window <= 0:
            raise MitigationError("invalid SPIE parameters")
        self.capacity = capacity_per_window
        self.window = window
        self.fp_rate = fp_rate
        self.max_windows = max_windows
        # asn -> list of (window start time, bloom)
        self.stores: dict[int, list[tuple[float, BloomFilter]]] = defaultdict(list)
        self.network: Optional[Network] = None
        self.digests_stored = 0

    def deploy(self, network: Network, asns: Iterable[int]) -> None:
        self.network = network
        for asn in asns:
            router = network.routers[asn]

            def filt(packet: Packet, router: Router, link: Optional[Link],
                     now: float, asn=asn) -> bool:
                self._store(asn, packet.digest(), now)
                return True

            router.add_filter(self.name, filt)
            self.deployed_asns.add(asn)

    def _store(self, asn: int, digest: bytes, now: float) -> None:
        windows = self.stores[asn]
        start = (now // self.window) * self.window
        if not windows or windows[-1][0] != start:
            windows.append((start, BloomFilter(self.capacity, self.fp_rate, salt=asn % 255)))
            if len(windows) > self.max_windows:  # page out the oldest backlog
                del windows[0]
        windows[-1][1].add(digest)
        self.digests_stored += 1

    def saw(self, asn: int, packet: Packet, around: Optional[float] = None) -> bool:
        """Did the router of ``asn`` forward this packet (within the backlog)?"""
        digest = packet.digest()
        for start, bloom in self.stores.get(asn, []):
            if around is not None and not (start <= around < start + self.window):
                continue
            if digest in bloom:
                return True
        return False

    def trace(self, packet: Packet, victim_asn: int) -> SpieQueryResult:
        """Reverse-path walk from the victim's AS toward the packet's origin.

        At each step, move to the (unvisited) neighbour whose digest store
        remembers the packet.  The walk ends when no neighbour saw it: the
        current AS is the apparent origin — for reflected packets, the
        *reflector's* AS, because the reflector generated a fresh packet.
        """
        if self.network is None:
            raise MitigationError("SPIE not deployed")
        result = SpieQueryResult()
        current = victim_asn
        visited = {victim_asn}
        if current in self.deployed_asns and self.saw(current, packet):
            result.path.append(current)
        while True:
            candidates = [
                n for n in self.network.topology.neighbors(current)
                if n not in visited and n in self.deployed_asns and self.saw(n, packet)
            ]
            if not candidates:
                break
            current = candidates[0]
            visited.add(current)
            result.path.append(current)
        result.origin_asn = result.path[-1] if result.path else None
        result.complete = bool(result.path)
        return result


class TracebackFilter(Mitigation):
    """The reactive scheme built on traceback: block identified source ASes.

    Installs a source-prefix blacklist at the given ASes (typically the
    victim's ISP).  Feed it the output of PPM/SPIE identification — when
    the identified "sources" are reflectors, this is exactly the
    counterproductive filtering the paper warns about ("might block access
    to important services, because reflectors often host DNS or web
    servers", Sec. 3.1).
    """

    name = "traceback-filter"

    def __init__(self, blocked_asns: Iterable[int]) -> None:
        super().__init__()
        self.blocked_asns = set(blocked_asns)
        self.dropped = 0

    def deploy(self, network: Network, asns: Iterable[int]) -> None:
        prefixes = [network.topology.prefix_of(a) for a in self.blocked_asns]
        for asn in asns:
            router = network.routers[asn]

            def filt(packet: Packet, router: Router, link: Optional[Link],
                     now: float) -> bool:
                for prefix in prefixes:
                    if prefix.contains(packet.src):
                        self.dropped += 1
                        return False
                return True

            router.add_filter(self.name, filt)
            self.deployed_asns.add(asn)
