"""Typed, deterministic metric primitives and the hierarchical registry.

Four instrument kinds cover everything the simulator needs to account:

* :class:`Counter` — monotone event/byte tallies (packets sent, drops,
  retries).  ``value`` is a plain attribute so hot paths can do
  ``counter.value += 1`` with no call overhead.
* :class:`Gauge` — point-in-time values (scenario survival ratios,
  queue depths).
* :class:`Histogram` — fixed-bound bucket distributions (backoff delays).
  Buckets are chosen at declaration time, so the serialized shape is a
  deterministic function of the observations alone.
* :class:`SpanTimer` — accumulated durations from :meth:`MetricRegistry.span`
  scopes.  Timers may hold **wall-clock** readings, so they are excluded
  from the deterministic :meth:`MetricRegistry.snapshot` and reported
  separately via :meth:`MetricRegistry.timings`.

Instruments are grouped into label-keyed :class:`Family` objects inside a
:class:`MetricRegistry`.  The registry of record is *ambient*: components
resolve their instruments from :func:`get_registry` at construction time,
and :func:`scoped` pushes a fresh registry for the duration of one run —
the mechanism behind per-run isolation and the serial == parallel snapshot
contract (each pool worker builds its own scope and arrives at the same
bytes).

Metric *names* are declared once per process in the module-level
:data:`CATALOG` (via :func:`declare`), so the full schema is known from
imports alone — ``python -m repro obs`` dumps it without running anything.

Determinism contract: :meth:`MetricRegistry.snapshot` contains no
wall-clock values, its keys are sorted, and every value is derived from
the seeded simulation alone — so equal runs produce byte-equal JSON
whether executed serially, under ``parallel_map``, or on a process pool.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Union

from repro.errors import MetricError

__all__ = [
    "Counter", "Gauge", "Histogram", "SpanTimer",
    "Family", "MetricRegistry", "MetricDecl",
    "CATALOG", "declare",
    "get_registry", "default_registry", "scoped",
    "reset_metrics", "snapshot_delta",
]

#: Default cap on distinct label combinations per family.  High enough for
#: every simulated topology (hundreds of links/devices), low enough that a
#: label-cardinality bug (e.g. labelling by packet id) fails fast instead
#: of eating memory.
DEFAULT_MAX_SERIES = 65_536

Value = Union[int, float, dict]


class Counter:
    """Monotone tally.  ``value`` is public: hot paths increment it directly."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def get(self) -> Value:
        return self.value


class Gauge:
    """Point-in-time value; may go up or down."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0

    def get(self) -> Value:
        return self.value


#: Default histogram bucket upper bounds (seconds-ish scale; +inf implied).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class Histogram:
    """Fixed-bound bucket histogram with sum and count.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything above the last bound.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise MetricError(f"histogram bounds must be sorted and non-empty: {bounds!r}")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def get(self) -> Value:
        buckets = {f"le_{b:g}": c for b, c in zip(self.bounds, self.counts)}
        buckets["le_inf"] = self.counts[-1]
        return {"buckets": buckets, "sum": self.sum, "count": self.count}


class SpanTimer:
    """Accumulated span durations (count + total seconds).

    May hold wall-clock readings, so timers never enter the deterministic
    snapshot — see :meth:`MetricRegistry.timings`.
    """

    kind = "timer"
    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0

    def get(self) -> Value:
        return {"count": self.count, "total_s": self.total}


_KINDS: dict[str, type] = {cls.kind: cls for cls in (Counter, Gauge, Histogram, SpanTimer)}


class Family:
    """All instruments sharing one metric name, keyed by label values."""

    __slots__ = ("name", "kind", "labelnames", "help", "max_series",
                 "buckets", "_children")

    def __init__(self, name: str, kind: str, labelnames: tuple = (),
                 help: str = "", max_series: int = DEFAULT_MAX_SERIES,
                 buckets: tuple = DEFAULT_BUCKETS) -> None:
        if kind not in _KINDS:
            raise MetricError(f"unknown metric kind {kind!r}; known: {tuple(_KINDS)}")
        self.name = name
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.help = help
        self.max_series = max_series
        self.buckets = tuple(buckets)
        self._children: dict[tuple, Any] = {}

    def _new_child(self) -> Any:
        if self.kind == "histogram":
            return Histogram(self.buckets)
        return _KINDS[self.kind]()

    def labelled(self, fresh: bool = False, **labels: str) -> Any:
        """The child instrument for ``labels`` (created on first use).

        ``fresh=True`` replaces any existing child with a zeroed one — the
        idiom for per-object counters (a reconstructed Link or device must
        start from zero even when an earlier namesake registered first).
        """
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is not None and not fresh:
            return child
        if child is None and len(self._children) >= self.max_series:
            raise MetricError(
                f"metric {self.name!r} exceeded its label-cardinality "
                f"budget ({self.max_series} series); a label is probably "
                f"unbounded (packet ids, timestamps, ...)")
        child = self._new_child()
        self._children[key] = child
        return child

    def samples(self) -> Iterator[tuple[tuple, Any]]:
        return iter(self._children.items())

    def __len__(self) -> int:
        return len(self._children)


@dataclass(frozen=True)
class MetricDecl:
    """A process-wide metric name declaration (see :func:`declare`).

    Resolution happens per call against the *ambient* registry, so the
    same declaration yields independent instruments inside independent
    :func:`scoped` registries.
    """

    name: str
    kind: str
    labelnames: tuple = ()
    help: str = ""
    buckets: tuple = DEFAULT_BUCKETS

    def labelled(self, fresh: bool = True,
                 registry: "Optional[MetricRegistry]" = None,
                 **labels: str) -> Any:
        reg = registry if registry is not None else get_registry()
        family = reg.family(self.name, self.kind, self.labelnames,
                            help=self.help, buckets=self.buckets)
        return family.labelled(fresh=fresh, **labels)


#: Every metric name the codebase can emit, filled at import time.
CATALOG: dict[str, MetricDecl] = {}


def declare(name: str, kind: str, labels: tuple = (), help: str = "",
            buckets: tuple = DEFAULT_BUCKETS) -> MetricDecl:
    """Declare a metric name once per process and record it in :data:`CATALOG`.

    Re-declaring with identical shape returns the existing declaration
    (modules may be reloaded); a conflicting shape is a programming error.
    """
    if kind not in _KINDS:
        raise MetricError(f"unknown metric kind {kind!r}; known: {tuple(_KINDS)}")
    decl = MetricDecl(name, kind, tuple(labels), help, tuple(buckets))
    existing = CATALOG.get(name)
    if existing is not None:
        if (existing.kind, existing.labelnames) != (decl.kind, decl.labelnames):
            raise MetricError(
                f"metric {name!r} already declared as {existing.kind}"
                f"{existing.labelnames}, conflicting with {kind}{tuple(labels)}")
        return existing
    CATALOG[name] = decl
    return decl


def _sample_key(name: str, labelnames: tuple, labelvalues: tuple) -> str:
    if not labelnames:
        return name
    inner = ",".join(f"{n}={v}" for n, v in zip(labelnames, labelvalues))
    return f"{name}{{{inner}}}"


class MetricRegistry:
    """A hierarchy of metric families with cheap snapshot/delta views."""

    __slots__ = ("name", "_families")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._families: dict[str, Family] = {}

    # -------------------------------------------------------------- families
    def family(self, name: str, kind: str, labelnames: tuple = (), *,
               help: str = "", max_series: int = DEFAULT_MAX_SERIES,
               buckets: tuple = DEFAULT_BUCKETS) -> Family:
        """Get or create the family ``name``; shape mismatches raise."""
        family = self._families.get(name)
        if family is not None:
            if (family.kind, family.labelnames) != (kind, tuple(labelnames)):
                raise MetricError(
                    f"metric {name!r} exists as {family.kind}{family.labelnames}, "
                    f"conflicting with {kind}{tuple(labelnames)}")
            return family
        family = Family(name, kind, tuple(labelnames), help, max_series, buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, *, help: str = "", fresh: bool = False,
                **labels: str) -> Counter:
        return self.family(name, "counter", tuple(sorted(labels)),
                           help=help).labelled(fresh=fresh, **labels)

    def gauge(self, name: str, *, help: str = "", fresh: bool = False,
              **labels: str) -> Gauge:
        return self.family(name, "gauge", tuple(sorted(labels)),
                           help=help).labelled(fresh=fresh, **labels)

    def histogram(self, name: str, *, help: str = "",
                  buckets: tuple = DEFAULT_BUCKETS, fresh: bool = False,
                  **labels: str) -> Histogram:
        return self.family(name, "histogram", tuple(sorted(labels)),
                           help=help, buckets=buckets).labelled(fresh=fresh, **labels)

    def timer(self, name: str, *, help: str = "", fresh: bool = False,
              **labels: str) -> SpanTimer:
        return self.family(name, "timer", tuple(sorted(labels)),
                           help=help).labelled(fresh=fresh, **labels)

    # ----------------------------------------------------------------- spans
    @contextmanager
    def span(self, name: str, clock: Optional[Callable[[], float]] = None,
             **labels: str):
        """Scoped timing span recording into the ``name`` timer family.

        ``clock`` defaults to wall-clock ``time.perf_counter``; pass a
        simulation clock (``lambda: sim.now``) to measure simulated time.
        Either way the reading lands in a :class:`SpanTimer`, outside the
        deterministic snapshot.
        """
        if clock is None:
            from time import perf_counter as clock  # type: ignore[no-redef]
        timer = self.timer(name, **labels)
        started = clock()
        try:
            yield timer
        finally:
            timer.record(clock() - started)

    # ------------------------------------------------------------- snapshots
    def samples(self, include_timing: bool = False
                ) -> Iterator[tuple[str, str, dict, Value]]:
        """Yield ``(name, kind, labels, value)`` in sorted-name order."""
        for name in sorted(self._families):
            family = self._families[name]
            if family.kind == "timer" and not include_timing:
                continue
            for labelvalues, child in sorted(family.samples()):
                labels = dict(zip(family.labelnames, labelvalues))
                yield family.name, family.kind, labels, child.get()

    def snapshot(self, include_timing: bool = False) -> dict[str, Value]:
        """Flat ``{"name{k=v}": value}`` view, sorted keys, no wall clock.

        This is the deterministic view: equal runs give byte-equal
        ``json.dumps(snapshot(), sort_keys=True)`` regardless of execution
        mode.  ``include_timing=True`` adds timer samples for human
        consumption (and voids the determinism guarantee).
        """
        out: dict[str, Value] = {}
        for name, _kind, labels, value in self.samples(include_timing):
            family = self._families[name]
            key = _sample_key(name, family.labelnames,
                              tuple(labels[n] for n in family.labelnames))
            out[key] = value
        return out

    def timings(self) -> dict[str, Value]:
        """Timer samples only — the non-deterministic complement of
        :meth:`snapshot`."""
        out: dict[str, Value] = {}
        for name, kind, labels, value in self.samples(include_timing=True):
            if kind != "timer":
                continue
            family = self._families[name]
            key = _sample_key(name, family.labelnames,
                              tuple(labels[n] for n in family.labelnames))
            out[key] = value
        return out

    def delta(self, before: dict[str, Value],
              include_timing: bool = False) -> dict[str, Value]:
        """What changed since ``before`` (an earlier :meth:`snapshot`)."""
        return snapshot_delta(before, self.snapshot(include_timing))

    def reset(self, prefix: str = "") -> int:
        """Zero every instrument whose family name starts with ``prefix``;
        returns the number of instruments reset."""
        n = 0
        for name, family in self._families.items():
            if not name.startswith(prefix):
                continue
            for _labels, child in family.samples():
                child.reset()
                n += 1
        return n

    def schema(self) -> list[dict]:
        """The families present in *this* registry (see also :data:`CATALOG`
        for everything the process declared)."""
        return [{"name": f.name, "kind": f.kind, "labels": list(f.labelnames),
                 "help": f.help}
                for _n, f in sorted(self._families.items())]

    def to_jsonl(self, include_timing: bool = True) -> str:
        """One JSON object per sample, sorted — the uniform export format."""
        lines = []
        for name, kind, labels, value in self.samples(include_timing):
            lines.append(json.dumps(
                {"name": name, "kind": kind, "labels": labels, "value": value},
                sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricRegistry({self.name!r}, families={len(self._families)})")


def snapshot_delta(before: dict[str, Value],
                   after: dict[str, Value]) -> dict[str, Value]:
    """Numeric difference of two snapshots (new keys count from zero).

    Histogram samples diff per-field; keys missing from ``after`` are
    dropped (their instruments vanished, e.g. replaced ``fresh``).
    """
    out: dict[str, Value] = {}
    for key, now in after.items():
        prev = before.get(key)
        if isinstance(now, dict):
            prev_d = prev if isinstance(prev, dict) else {}
            prev_buckets = prev_d.get("buckets", {})
            if "buckets" in now:
                out[key] = {
                    "buckets": {b: c - prev_buckets.get(b, 0)
                                for b, c in now["buckets"].items()},
                    "sum": now["sum"] - prev_d.get("sum", 0.0),
                    "count": now["count"] - prev_d.get("count", 0),
                }
            else:
                out[key] = {k: v - prev_d.get(k, 0) for k, v in now.items()}
        else:
            out[key] = now - (prev if isinstance(prev, (int, float)) else 0)
    return out


def reset_metrics(instruments: tuple) -> None:
    """Zero a batch of instruments — the single reset path shared by
    ``Link.reset_stats`` and ``AdaptiveDevice.reset_stats``."""
    for instrument in instruments:
        instrument.reset()


# ------------------------------------------------------------------ ambient
_default = MetricRegistry("default")
_stack: list[MetricRegistry] = [_default]


def get_registry() -> MetricRegistry:
    """The ambient registry new instruments bind to."""
    return _stack[-1]


def default_registry() -> MetricRegistry:
    """The process-wide fallback registry (active outside any scope)."""
    return _default


@contextmanager
def scoped(registry: Optional[MetricRegistry] = None):
    """Push a fresh (or given) registry for the duration of the block.

    Everything constructed inside binds its instruments here, giving one
    run an isolated, deterministic snapshot::

        with scoped() as reg:
            run_scenario(spec)
            snap = reg.snapshot()
    """
    reg = registry if registry is not None else MetricRegistry("scoped")
    _stack.append(reg)
    try:
        yield reg
    finally:
        _stack.pop()
