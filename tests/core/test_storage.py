"""Control-plane storage layer: backend contract parity, replication
fault semantics, TCSP replica failover, and regressions for the resync /
deploy-registration / watchdog-baseline fixes (DESIGN.md §9).
"""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core import (
    DeploymentScope,
    InMemoryBackend,
    NumberAuthority,
    ReplicatedBackend,
    StoreLog,
    StoreTable,
    Tcsp,
    TcspReplicaSet,
    TrafficControlService,
)
from repro.core.ownership import NetworkUser
from repro.core.storage import shard_key
from repro.errors import StorageError
from repro.experiments.common import parallel_map
from repro.net import Network, TopologyBuilder
from repro.net.simulator import Simulator

from tests.core.test_resilience import build_world, drop_udp_factory


# ---------------------------------------------------------------------------
# backend contract: InMemoryBackend + the table/log views
# ---------------------------------------------------------------------------

class TestInMemoryBackend:
    def test_round_trip_and_order(self):
        b = InMemoryBackend()
        b.put("t", "b", 1)
        b.put("t", "a", 2)
        b.put("t", "b", 3)  # overwrite keeps first-insertion order
        assert b.get("t", "b") == 3
        assert b.keys("t") == ["b", "a"]
        assert b.items("t") == [("b", 3), ("a", 2)]
        assert b.length("t") == 2
        assert b.contains("t", "a") and not b.contains("t", "zz")

    def test_delete_and_clear(self):
        b = InMemoryBackend()
        b.put("t", "k", 1)
        assert b.delete("t", "k") and not b.delete("t", "k")
        b.put("t", "x", 1)
        b.clear("t")
        assert b.length("t") == 0

    def test_tables_are_independent(self):
        b = InMemoryBackend()
        b.put("t1", "k", 1)
        assert not b.contains("t2", "k")
        assert b.next_key("t1") == 0 and b.next_key("t1") == 1
        assert b.next_key("t2") == 0  # per-table sequences

    def test_not_durable(self):
        assert InMemoryBackend().durable is False
        assert ReplicatedBackend(3).durable is True


class TestStoreViews:
    def test_table_is_a_mutable_mapping(self):
        t = StoreTable(InMemoryBackend(), "t")
        t["a"] = 1
        t["b"] = 2
        assert t["a"] == 1 and "b" in t and len(t) == 2
        assert dict(t.items()) == {"a": 1, "b": 2}
        assert sorted(t) == ["a", "b"]
        assert t.get("zz") is None
        del t["a"]
        with pytest.raises(KeyError):
            t["a"]
        with pytest.raises(KeyError):
            del t["a"]
        t.clear()
        assert len(t) == 0

    def test_log_append_remove_replace(self):
        log = StoreLog(InMemoryBackend(), "log")
        log.append(("x", 1))
        log.append(("y", 2))
        log.append(("x", 1))
        assert list(log) == [("x", 1), ("y", 2), ("x", 1)]
        assert ("y", 2) in log and len(log) == 3
        assert log.remove(("x", 1))          # first match only
        assert list(log) == [("y", 2), ("x", 1)]
        assert not log.remove(("zz", 0))
        log.replace([("a", 0)])
        assert list(log) == [("a", 0)] and log[0] == ("a", 0)

    def test_two_logs_on_one_backend_never_collide(self):
        backend = InMemoryBackend()
        one, two = StoreLog(backend, "log"), StoreLog(backend, "log")
        one.append("from-one")
        two.append("from-two")  # key allocation lives in the backend
        assert list(one) == ["from-one", "from-two"] == list(two)


# ---------------------------------------------------------------------------
# sharding + replication semantics
# ---------------------------------------------------------------------------

class TestSharding:
    def test_prefix_like_keys_shard_by_top_byte(self):
        class P:
            def __init__(self, first):
                self.first = first

        assert shard_key(P(10 << 24)) == 10
        assert shard_key(P((10 << 24) + 999)) == 10  # adjacent -> same shard

    def test_plain_keys_hash_stably(self):
        assert shard_key("acme") == shard_key("acme")
        assert shard_key("acme") != shard_key("globex")

    def test_owner_is_deterministic(self):
        a, b = ReplicatedBackend(3), ReplicatedBackend(3)
        assert a.owner_of("t", "acme") == b.owner_of("t", "acme")

    def test_bad_configuration_rejected(self):
        with pytest.raises(StorageError):
            ReplicatedBackend(0)
        with pytest.raises(StorageError):
            ReplicatedBackend(3, loss_rate=1.5)
        with pytest.raises(StorageError):
            ReplicatedBackend(3, replication_lag=-1.0)
        with pytest.raises(StorageError):
            ReplicatedBackend(3).crash_replica(7)


def _apply_script(backend):
    """The shared op sequence for the parity tests."""
    backend.put("reg", "acme", {"p": 1})
    backend.put("reg", "globex", {"p": 2})
    backend.put("reg", "acme", {"p": 3})
    backend.put("contracts", "isp-0", "c0")
    backend.delete("reg", "globex")
    backend.put("reg", "initech", {"p": 4})
    return backend


def _snapshot(backend):
    return {t: backend.items(t) for t in ("reg", "contracts")}


class TestBackendParity:
    def test_healthy_replicated_matches_memory(self):
        mem = _apply_script(InMemoryBackend())
        rep = _apply_script(ReplicatedBackend(3, seed=7))
        assert _snapshot(mem) == _snapshot(rep)

    def test_healed_replicated_matches_memory(self):
        mem = _apply_script(InMemoryBackend())
        rep = ReplicatedBackend(3, seed=7)
        rep.crash_replica(1)
        _apply_script(rep)
        rep.restart_replica(1)
        rep.anti_entropy()
        assert _snapshot(mem) == _snapshot(rep)
        assert rep.permanently_lost() == 0
        assert rep.divergent_records() == 0


class TestReplicationFaults:
    def test_follower_down_loses_delivery_until_anti_entropy(self):
        rep = ReplicatedBackend(3, seed=1)
        owner = rep.owner_of("t", "k")
        follower = (owner + 1) % 3
        rep.crash_replica(follower)
        rep.put("t", "k", "v")
        assert rep.lost_writes == 1
        assert rep.get("t", "k") == "v"  # owner still serves
        rep.restart_replica(follower)
        assert rep.divergent_records() == 1
        assert rep.anti_entropy() >= 1
        assert rep.divergent_records() == 0

    def test_owner_down_is_a_counted_failover_write(self):
        rep = ReplicatedBackend(3, seed=1)
        owner = rep.owner_of("t", "k")
        rep.crash_replica(owner)
        rep.put("t", "k", "v")
        assert rep.failover_writes == 1
        assert rep.get("t", "k") == "v"  # the ring read finds it

    def test_stale_read_counted_when_serving_replica_lags(self):
        rep = ReplicatedBackend(3, seed=1)
        owner = rep.owner_of("t", "k")
        follower = (owner + 1) % 3
        rep.put("t", "k", "old")
        rep.crash_replica(follower)
        rep.put("t", "k", "new")    # follower misses the update
        rep.restart_replica(follower)
        rep.crash_replica(owner)    # reads now fall through to the follower
        before = rep.stale_reads
        assert rep.get("t", "k") == "old"
        assert rep.stale_reads == before + 1

    def test_all_replicas_down_unavailable_then_permanently_lost(self):
        rep = ReplicatedBackend(2, seed=1)
        rep.crash_replica(0)
        rep.crash_replica(1)
        rep.put("t", "k", "v")
        assert rep.lost_writes == 1
        assert rep.get("t", "k", "fallback") == "fallback"
        assert rep.permanently_lost() == 1  # no replica ever held it

    def test_crash_is_idempotent_and_counted_once(self):
        rep = ReplicatedBackend(3, seed=1)
        rep.crash_replica(1)
        rep.crash_replica(1)
        assert rep.replicas[1].crashes == 1
        assert rep.live_replicas == 2
        assert not rep.replica_up(1) and rep.replica_up(0)

    def test_replication_lag_with_simulator_converges(self):
        sim = Simulator()
        rep = ReplicatedBackend(3, seed=3, replication_lag=0.05, sim=sim)
        rep.put("t", "k", "v")
        # synchronous on the owner, async on the followers
        holders = sum(1 for r in rep.replicas if ("t", "k") in r.records)
        assert holders == 1
        sim.run(until=5.0)
        holders = sum(1 for r in rep.replicas if ("t", "k") in r.records)
        assert holders == 3
        assert rep.divergent_records() == 0


def _replicated_run(seed: int):
    """Top-level so the process-pool determinism test can pickle it."""
    rep = ReplicatedBackend(3, seed=seed, loss_rate=0.3)
    for i in range(20):
        rep.put("t", f"k{i % 7}", i)
    rep.crash_replica(seed % 3)
    for i in range(20, 30):
        rep.put("t", f"k{i % 7}", i)
    rep.restart_replica(seed % 3)
    rep.anti_entropy()
    return (rep.items("t"), rep.lost_writes, rep.stale_reads,
            rep.permanently_lost())


class TestDeterminism:
    SEEDS = [1, 2, 3, 4]

    def test_serial_vs_parallel_map_vs_process_pool(self):
        serial = [_replicated_run(s) for s in self.SEEDS]
        fanned = parallel_map(_replicated_run, self.SEEDS, workers=2)
        with ProcessPoolExecutor(max_workers=2) as pool:
            pooled = list(pool.map(_replicated_run, self.SEEDS))
        assert serial == fanned == pooled

    def test_same_seed_same_history(self):
        assert _replicated_run(5) == _replicated_run(5)


# ---------------------------------------------------------------------------
# TCSP replica set: leader lease + failover over a shared store
# ---------------------------------------------------------------------------

def _replica_world(store=None, seed=1):
    net = Network(TopologyBuilder.hierarchical(2, 2, 4, seed=seed))
    authority = NumberAuthority()
    tcsp = TcspReplicaSet("TCSP", authority, net, store=store, n_standbys=1)
    tcsp.start()
    nms = tcsp.contract_isp("isp", net.topology.as_numbers)
    victim_asn = net.topology.stub_ases[0]
    prefix = net.topology.prefix_of(victim_asn)
    authority.record_allocation(prefix, "acme")
    return net, tcsp, nms, prefix


class TestTcspReplicaSet:
    def test_failover_promotes_standby_after_lease_expiry(self):
        net, tcsp, nms, prefix = _replica_world()
        tcsp.register_user("acme", [prefix])
        tcsp.primary.reachable = False
        assert tcsp.leader_index == 0
        net.run(until=2.0)  # lease ticks lapse the lease and promote
        assert tcsp.leader_index == 1
        assert tcsp.failovers == 1
        assert tcsp.reachable

    def test_promoted_standby_sees_pre_crash_state(self):
        net, tcsp, nms, prefix = _replica_world()
        user, cert = tcsp.register_user("acme", [prefix])
        tcsp.primary.reachable = False
        net.run(until=2.0)
        # the standby serves registration and contract state written by
        # the old leader, through the shared store
        assert tcsp.user("acme").user_id == "acme"
        assert tcsp.leader.nmses == [nms]
        svc = TrafficControlService(tcsp, user, cert)
        result = svc.deploy(DeploymentScope.stub_borders(),
                            dst_graph_factory=drop_udp_factory)
        assert svc.fallback_used == 0  # no fallback needed: failover did it
        assert set(result["isp"]) == set(net.topology.stub_ases)

    def test_works_on_a_replicated_store_too(self):
        store = ReplicatedBackend(3, seed=9)
        net, tcsp, nms, prefix = _replica_world(store=store)
        tcsp.register_user("acme", [prefix])
        tcsp.primary.reachable = False
        net.run(until=2.0)
        assert tcsp.user("acme").user_id == "acme"
        assert store.writes > 0

    def test_no_promotion_while_lease_is_live(self):
        net, tcsp, nms, prefix = _replica_world()
        tcsp.primary.reachable = False
        tcsp._maybe_failover()  # now=0 < lease expiry
        assert tcsp.leader_index == 0

    def test_restore_revives_all_replicas(self):
        net, tcsp, nms, prefix = _replica_world()
        tcsp.primary.reachable = False
        net.run(until=2.0)
        assert tcsp.leader_index == 1
        tcsp.reachable = True  # the injector's clear path
        assert all(r.reachable for r in tcsp.replicas)


# ---------------------------------------------------------------------------
# satellite regressions
# ---------------------------------------------------------------------------

class TestResyncBookkeeping:
    def test_successful_resync_prunes_the_undelivered_ledger(self):
        net, tcsp, nmses, svc, victim_asn = build_world(n_isps=2)
        svc.deploy(DeploymentScope.stub_borders(),
                   dst_graph_factory=drop_udp_factory)
        nmses[1].partitioned = True
        svc.set_active(False)
        assert ("isp-1", "set_active") in tcsp.undelivered
        nmses[1].partitioned = False
        assert tcsp.resync() == 1
        # the ledger now reports outstanding work only
        assert ("isp-1", "set_active") not in tcsp.undelivered
        assert len(tcsp.undelivered) == 0

    def test_vanished_contract_is_counted_not_silently_dropped(self):
        net, tcsp, nmses, svc, victim_asn = build_world(n_isps=2)
        svc.deploy(DeploymentScope.stub_borders(),
                   dst_graph_factory=drop_udp_factory)
        nmses[1].partitioned = True
        svc.set_active(False)
        del tcsp.contracts["isp-1"]  # the ISP leaves mid-partition
        nmses[1].partitioned = False
        assert tcsp.resync() == 0
        assert tcsp.resync_dropped == 1
        assert len(tcsp.undelivered) == 0
        assert tcsp.resync() == 0  # nothing left pending either

    def test_still_partitioned_relay_stays_in_both_ledgers(self):
        net, tcsp, nmses, svc, victim_asn = build_world(n_isps=2)
        svc.deploy(DeploymentScope.stub_borders(),
                   dst_graph_factory=drop_udp_factory)
        nmses[1].partitioned = True
        svc.set_active(False)
        assert tcsp.resync() == 0  # still down: nothing delivered
        assert ("isp-1", "set_active") in tcsp.undelivered
        nmses[1].partitioned = False
        assert tcsp.resync() == 1


class TestDeployRegistersEveryPrefix:
    def test_later_prefixes_get_ownership_entries(self):
        net, tcsp, nmses, svc, victim_asn = build_world()
        nms = nmses[0]
        authority = tcsp.authority
        p1 = net.topology.prefix_of(victim_asn)
        p2 = net.topology.prefix_of(net.topology.stub_ases[1])
        authority.record_allocation(p2, "acme")
        # first deployment registers the single-prefix user
        user1, cert1 = tcsp.register_user("acme", [p1])
        nms.deploy(cert1, user1, [victim_asn],
                   dst_graph_factory=drop_udp_factory)
        assert nms.registry.owner_of(p1.first) is not None
        # the user re-registers with an additional prefix: p1 is already
        # owned, but p2 still needs its own ownership entry
        user2, cert2 = tcsp.register_user("acme", [p1, p2])
        nms.deploy(cert2, user2, [victim_asn],
                   dst_graph_factory=drop_udp_factory)
        owner = nms.registry.owner_of(p2.first)
        assert owner is not None and owner.user_id == "acme"


class TestWatchdogLateAttach:
    def test_device_attached_after_watchdog_start_is_baselined(self):
        net = Network(TopologyBuilder.hierarchical(2, 2, 4, seed=1))
        authority = NumberAuthority()
        tcsp = Tcsp("TCSP", authority, net)
        nms = tcsp.contract_isp("isp", net.topology.as_numbers,
                                attach_all=False)
        victim_asn = int(net.topology.stub_ases[0])
        late_asn = int(net.topology.stub_ases[1])
        nms.attach_devices([victim_asn])
        prefix = net.topology.prefix_of(victim_asn)
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        svc = TrafficControlService(tcsp, user, cert)
        svc.deploy(DeploymentScope.stub_borders(),
                   dst_graph_factory=drop_udp_factory)
        nms.start_watchdog(interval=0.5)

        def attach_and_deploy():
            nms.attach_devices([late_asn])
            svc.deploy(DeploymentScope.explicit([late_asn]),
                       dst_graph_factory=drop_udp_factory)

        net.sim.schedule_at(0.6, attach_and_deploy)
        # crash + wiped restart entirely before the device's first
        # heartbeat: only the attach-time baseline can catch this
        net.sim.schedule_at(0.7, lambda: nms.devices[late_asn].crash())
        net.sim.schedule_at(0.8, lambda: nms.devices[late_asn].restart())
        net.run(until=1.3)
        assert nms.services_reinstalled >= 1
        assert "acme" in nms.devices[late_asn].services


# ---------------------------------------------------------------------------
# store-backed Tcsp keeps its public semantics
# ---------------------------------------------------------------------------

class TestTcspOnExplicitStore:
    def test_state_lands_on_the_given_backend(self):
        net = Network(TopologyBuilder.hierarchical(2, 2, 4, seed=1))
        store = InMemoryBackend()
        authority = NumberAuthority()
        tcsp = Tcsp("TCSP", authority, net, store=store)
        tcsp.contract_isp("isp", net.topology.as_numbers)
        victim_asn = net.topology.stub_ases[0]
        prefix = net.topology.prefix_of(victim_asn)
        authority.record_allocation(prefix, "acme")
        tcsp.register_user("acme", [prefix])
        assert store.contains("tcsp.contracts", "isp")
        assert store.contains("tcsp.registered", "acme")
        # the contracted NMS shares the TCSP's backend
        assert tcsp.nmses[0].store is store
