"""Tests for topology rendering."""

from repro.net import TopologyBuilder
from repro.net.render import tier_summary, to_dot


class TestToDot:
    def test_contains_all_nodes_and_edges(self):
        topo = TopologyBuilder.star(3)
        dot = to_dot(topo)
        assert dot.startswith("graph internet {")
        assert dot.rstrip().endswith("}")
        for asn in topo.as_numbers:
            assert f'label="AS{asn}"' in dot
        assert dot.count(" -- ") == topo.graph.number_of_edges()

    def test_roles_styled_differently(self):
        topo = TopologyBuilder.hierarchical(2, 1, 1, seed=1)
        dot = to_dot(topo)
        assert "shape=box" in dot      # core
        assert "shape=ellipse" in dot  # transit
        assert "shape=circle" in dot   # stub

    def test_highlight_and_title(self):
        topo = TopologyBuilder.line(3)
        dot = to_dot(topo, highlight=[1], title="demo")
        assert 'label="demo";' in dot
        assert dot.count("penwidth=3") == 1

    def test_show_prefixes(self):
        topo = TopologyBuilder.line(2)
        dot = to_dot(topo, show_prefixes=True)
        assert str(topo.prefix_of(0)) in dot


class TestTierSummary:
    def test_summary_lines(self):
        topo = TopologyBuilder.hierarchical(2, 2, 3, seed=1)
        topo.add_hosts(topo.stub_ases[0], 4)
        text = tier_summary(topo)
        assert f"{len(topo)} ASes" in text
        assert "core" in text and "transit" in text and "stub" in text
        assert "hosts    4" in text

    def test_missing_tier_reported(self):
        topo = TopologyBuilder.line(2)  # stubs only
        text = tier_summary(topo)
        assert "core     none" in text
