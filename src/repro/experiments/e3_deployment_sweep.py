"""E3 — filtering effectiveness vs. AS deployment fraction (paper Sec. 3.2).

"In [15] the authors show that ingress filtering is already highly
effective against source address spoofing even if only approximately 20%
of the autonomous systems have it in place."

On power-law AS topologies (the Park & Lee setting), sweep the deployment
fraction of (a) RFC 2267 ingress filtering at random stub ASes and (b)
route-based packet filtering at the highest-degree ASes, and measure the
fraction of spoofed flood traffic that still reaches the victim.  The
fluid model lets this run at hundreds of ASes x hundreds of flows.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentConfig, parallel_map, register
from repro.mitigation import IngressFiltering, RouteBasedFiltering
from repro.net import FlowSet, FluidNetwork, TopologyBuilder
from repro.scenario.attacks import spoofed_flood_flows
from repro.util.rng import derive_rng
from repro.util.tables import Table

__all__ = ["run", "sweep_table", "spoofed_flood_flows"]

#: One parallelisable sweep point: (cfg, trial index, n_ases, n_agents).
_SweepPoint = tuple[ExperimentConfig, int, int, int]

FRACTIONS = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0)


def _sweep_trial(point: _SweepPoint) -> dict[float, tuple[float, float, float]]:
    """One topology trial of the deployment sweep (a parallel work unit).

    Everything stochastic comes from the trial's own derived rng, so trials
    can run in any process in any order and still reproduce the serial
    sweep exactly.
    """
    cfg, trial, n_ases, n_agents = point
    topo = TopologyBuilder.powerlaw(n=n_ases, m=2, seed=cfg.seed + trial)
    fluid = FluidNetwork(topo)
    rng = derive_rng(cfg.seed, "e3", trial)
    victim_asn = int(topo.stub_ases[int(rng.integers(0, len(topo.stub_ases)))])
    flows = spoofed_flood_flows(topo, victim_asn, n_agents, rng)
    by_degree = sorted(topo.as_numbers, key=lambda a: -topo.degree(a))
    stubs = list(topo.stub_ases)
    shuffled_all = list(topo.as_numbers)
    rng.shuffle(stubs)
    rng.shuffle(shuffled_all)
    result: dict[float, tuple[float, float, float]] = {}
    for fraction in FRACTIONS:
        # (a) ingress at a random `fraction` of stub ASes
        ing = IngressFiltering()
        ing.deployed_asns = set(stubs[: int(round(fraction * len(stubs)))])
        r_ing = fluid.evaluate(flows, filters=[ing.fluid_filter()],
                               congestion=False)
        # (b) route-based at the top-degree `fraction` of all ASes
        rbf = RouteBasedFiltering()
        rbf.deployed_asns = set(by_degree[: int(round(fraction * n_ases))])
        r_rbf = fluid.evaluate(flows, filters=[rbf.bind_fluid(fluid)],
                               congestion=False)
        # (c) route-based at random ASes (placement matters!)
        rbf_rand = RouteBasedFiltering()
        rbf_rand.deployed_asns = set(shuffled_all[: int(round(fraction * n_ases))])
        r_rand = fluid.evaluate(flows, filters=[rbf_rand.bind_fluid(fluid)],
                                congestion=False)
        result[fraction] = (r_ing.survival_fraction("attack"),
                            r_rbf.survival_fraction("attack"),
                            r_rand.survival_fraction("attack"))
    return result


def sweep_table(cfg: ExperimentConfig) -> Table:
    n_ases = cfg.scaled(400, minimum=60)
    n_agents = cfg.scaled(200, minimum=20)
    n_trials = cfg.scaled(5, minimum=2)
    table = Table(
        "E3: spoofed-traffic survival vs. deployment fraction "
        "(Sec. 3.2, Park & Lee [15] setting)",
        ["fraction", "ingress@random-stubs", "rbf@top-degree", "rbf@random"],
    )
    points: list[_SweepPoint] = [(cfg, trial, n_ases, n_agents)
                                 for trial in range(n_trials)]
    per_trial = parallel_map(_sweep_trial, points, workers=cfg.workers)
    rows: dict[float, list[list[float]]] = {f: [[], [], []] for f in FRACTIONS}
    for trial_result in per_trial:
        for fraction, (s_ing, s_rbf, s_rand) in trial_result.items():
            rows[fraction][0].append(s_ing)
            rows[fraction][1].append(s_rbf)
            rows[fraction][2].append(s_rand)
    for fraction in FRACTIONS:
        ing_mean, rbf_mean, rand_mean = (float(np.mean(v)) for v in rows[fraction])
        table.add_row(fraction, round(ing_mean, 3), round(rbf_mean, 3),
                      round(rand_mean, 3))
    table.add_note(f"power-law topology, {n_ases} ASes, {n_agents} spoofing "
                   f"agents, mean of {n_trials} trials; values are the "
                   f"fraction of spoofed traffic reaching the victim")
    table.add_note("expected shape: rbf at top-degree ASes is already highly "
                   "effective near 20% deployment (the paper's [15] claim)")
    return table


def routing_model_table(cfg: ExperimentConfig) -> Table:
    """E3b: does the routing model change the [15] result?

    Re-runs the rbf@top-degree sweep under valley-free (Gao-Rexford)
    policy routing — the result is robust: policy paths still funnel
    through the high-degree providers, so top-degree placement keeps its
    leverage.
    """
    from repro.net import FluidNetwork
    from repro.net.policy import PolicyRouting

    n_ases = cfg.scaled(300, minimum=60)
    n_agents = cfg.scaled(150, minimum=20)
    table = Table(
        "E3b: rbf@top-degree under shortest-path vs valley-free routing",
        ["fraction", "shortest_path", "valley_free"],
    )
    topo = TopologyBuilder.powerlaw(n=n_ases, m=2, seed=cfg.seed + 7)
    rng = derive_rng(cfg.seed, "e3b")
    victim_asn = int(topo.stub_ases[int(rng.integers(0, len(topo.stub_ases)))])
    flows = spoofed_flood_flows(topo, victim_asn, n_agents, rng)
    policy = PolicyRouting(topo)
    # keep only flows routable under the policy model, for a fair pairing
    routable = FlowSet([
        f for f in flows
        if policy.has_path(f.src_asn, f.dst_asn)
        and policy.has_path(f.source_address_asn, f.dst_asn)
    ])
    fluid_sp = FluidNetwork(topo)
    fluid_vf = FluidNetwork(topo, path_fn=policy.path)
    by_degree = sorted(topo.as_numbers, key=lambda a: -topo.degree(a))
    for fraction in (0.0, 0.1, 0.2, 0.5):
        deployed = set(by_degree[: int(round(fraction * n_ases))])
        row = [fraction]
        for fluid in (fluid_sp, fluid_vf):
            rbf = RouteBasedFiltering()
            rbf.deployed_asns = set(deployed)
            result = fluid.evaluate(routable, filters=[rbf.bind_fluid(fluid)],
                                    congestion=False)
            row.append(round(result.survival_fraction("attack"), 3))
        table.add_row(*row)
    table.add_note(f"{len(routable)} spoofed flows routable under both "
                   f"models on a {n_ases}-AS power-law graph")
    return table


@register("E3")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [sweep_table(cfg), routing_model_table(cfg)]
