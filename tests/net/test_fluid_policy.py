"""Tests for the fluid model under injected (valley-free) routing, plus
fluid-model conservation properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import Flow, FlowSet, FluidNetwork, TopologyBuilder
from repro.net.policy import PolicyRouting


@pytest.fixture(scope="module")
def hier():
    return TopologyBuilder.hierarchical(2, 2, 3, seed=5)


class TestPolicyFluid:
    def test_paths_come_from_path_fn(self, hier):
        policy = PolicyRouting(hier)
        fluid = FluidNetwork(hier, path_fn=policy.path)
        stubs = hier.stub_ases
        assert fluid.path(stubs[0], stubs[-1]) == policy.path(stubs[0], stubs[-1])

    def test_path_caching_returns_copies(self, hier):
        policy = PolicyRouting(hier)
        fluid = FluidNetwork(hier, path_fn=policy.path)
        stubs = hier.stub_ases
        p1 = fluid.path(stubs[0], stubs[1])
        p1.append(999)  # mutating the returned list must not poison the cache
        p2 = fluid.path(stubs[0], stubs[1])
        assert 999 not in p2

    def test_expected_ingress_single_path(self, hier):
        policy = PolicyRouting(hier)
        fluid = FluidNetwork(hier, path_fn=policy.path)
        stubs = hier.stub_ases
        src, dst = stubs[0], stubs[-1]
        path = policy.path(src, dst)
        ingress = fluid.expected_ingress(dst, src)
        assert ingress == frozenset({path[-2]})

    def test_expected_ingress_unroutable_is_empty(self):
        import networkx as nx

        from repro.net import ASRole
        from repro.net.topology import Topology

        g = nx.Graph()
        g.add_node(0, role=ASRole.STUB)
        g.add_node(1, role=ASRole.STUB)
        g.add_node(2, role=ASRole.STUB)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        topo = Topology(g)
        policy = PolicyRouting(topo)
        fluid = FluidNetwork(topo, path_fn=policy.path)
        # stub 1 will not transit between its two peers: 0 -> 2 unroutable
        assert fluid.expected_ingress(2, 0) == frozenset()

    def test_evaluation_respects_policy_paths(self, hier):
        """Traffic volumes land on policy links, not shortest-path links."""
        policy = PolicyRouting(hier)
        fluid_vf = FluidNetwork(hier, path_fn=policy.path)
        stubs = hier.stub_ases
        flow = Flow(stubs[0], stubs[-1], 1e6)
        result = fluid_vf.evaluate(FlowSet([flow]), congestion=False)
        path = policy.path(stubs[0], stubs[-1])
        for a, b in zip(path, path[1:]):
            assert result.link_load[(a, b)] == pytest.approx(1e6)


class TestFluidConservation:
    @given(
        n_flows=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=30),
        keep=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_delivered_never_exceeds_sent(self, n_flows, seed, keep):
        import numpy as np

        topo = TopologyBuilder.powerlaw(n=30, m=2, seed=seed)
        fluid = FluidNetwork(topo)
        rng = np.random.default_rng(seed)
        nodes = topo.as_numbers
        flows = FlowSet([
            Flow(int(rng.choice(nodes)), int(rng.choice(nodes)),
                 float(rng.uniform(1e5, 1e7)))
            for _ in range(n_flows)
        ])

        class Thin:
            def pass_fraction(self, flow, asn, prev_asn, pos, path):
                return keep

        result = fluid.evaluate(flows, filters=[Thin()])
        for i, flow in enumerate(result.flows):
            assert result.delivered[i] <= flow.rate + 1e-6
            assert result.filtered[i] >= -1e-6
            assert result.congestion_lost[i] >= -1e-6
            total = (result.delivered[i] + result.filtered[i]
                     + result.congestion_lost[i])
            assert total == pytest.approx(flow.rate, rel=1e-6)

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_congested_links_never_exceed_capacity_materially(self, seed):
        import numpy as np

        topo = TopologyBuilder.powerlaw(n=25, m=2, seed=seed)
        fluid = FluidNetwork(topo, capacity_fn=lambda a, b: 1e6)
        rng = np.random.default_rng(seed + 1)
        nodes = topo.as_numbers
        flows = FlowSet([
            Flow(int(rng.choice(nodes)), int(rng.choice(nodes)), 5e6)
            for _ in range(15)
        ])
        result = fluid.evaluate(flows, congestion=True, congestion_iters=12)
        for load in result.link_load.values():
            assert load <= 1e6 * 1.15  # iterative scaling converges closely
