"""Pushback: aggregate-based congestion control (Mahajan et al. [13], the
pushback protocol [8]).

Reproduced mechanism (paper Sec. 3.1):

1. *Detection* — each deployed router periodically inspects its links'
   drop statistics; a link whose drop rate exceeds a threshold signals an
   attack ("Pushback performs monitoring by observing packet drop
   statistics in individual routers").
2. *Aggregate identification* — dropped packets are classified by **source
   address prefix**; the heaviest class is taken to be the attack
   aggregate ("The class of source addresses with the highest dropped
   packet count is then considered to originate from the attacker").
3. *Rate limiting + upstream propagation* — a rate limit for the aggregate
   is installed locally, and deployed upstream neighbours (those on the
   routing path from the aggregate) are asked to install it too, up to
   ``max_depth`` hops.  Propagation stops at non-deploying routers ("If a
   router on a path between attacker(s) and victim does not speak the
   protocol, the pushback of filter rules stops").

The paper's criticisms fall straight out of this mechanism: spoofed
sources make step 2 identify innocent prefixes (collateral damage), and in
reflector attacks the identified aggregates are the *reflectors*.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import MitigationError
from repro.mitigation.base import Mitigation
from repro.net.addressing import Prefix
from repro.net.link import Link
from repro.net.network import Network
from repro.net.node import Router
from repro.net.packet import Packet
from repro.util.tokenbucket import TokenBucket

__all__ = ["PushbackConfig", "Pushback"]


@dataclass(frozen=True)
class PushbackConfig:
    """Tunables of the pushback control loop."""

    check_interval: float = 0.05       # seconds between drop-stat inspections
    drop_rate_threshold: float = 10_000.0  # bytes/s of drops that signal congestion
    limit_fraction: float = 0.05       # aggregate limit as fraction of link bandwidth
    max_depth: int = 3                 # upstream propagation hops
    top_aggregates: int = 1            # how many source-prefix classes to limit
    min_drops_to_classify: int = 5     # don't act on a handful of drops

    def __post_init__(self) -> None:
        if self.check_interval <= 0 or self.max_depth < 0:
            raise MitigationError("invalid pushback config")


class Pushback(Mitigation):
    """The pushback baseline, driven by the event simulator."""

    name = "pushback"

    def __init__(self, config: PushbackConfig | None = None) -> None:
        super().__init__()
        self.config = config or PushbackConfig()
        self.network: Optional[Network] = None
        # active rate limits: asn -> {aggregate prefix -> token bucket (bytes)}
        self.limits: dict[int, dict[Prefix, TokenBucket]] = {}
        self.identified_aggregates: set[Prefix] = set()
        self.rate_limited_drops = 0
        self.activations = 0

    # ------------------------------------------------------------------ deploy
    def deploy(self, network: Network, asns: Iterable[int],
               until: float = 60.0) -> None:
        """Install pushback on the given ASes.

        ``until`` bounds the periodic detection loop in simulation time —
        without a bound, the recurring checks would keep the event queue
        non-empty forever and ``network.run()`` would never drain.
        """
        self.network = network
        for asn in asns:
            router = network.routers[asn]
            router.add_filter(self.name, self._make_filter(asn))
            self.deployed_asns.add(asn)
            network.sim.schedule_every(self.config.check_interval, self._check,
                                       asn, until=until)

    def _make_filter(self, asn: int):
        def filt(packet: Packet, router: Router, link: Optional[Link], now: float) -> bool:
            buckets = self.limits.get(asn)
            if not buckets:
                return True
            for prefix, bucket in buckets.items():
                if prefix.contains(packet.src):
                    if bucket.admit(now, cost=packet.size):
                        return True
                    self.rate_limited_drops += 1
                    return False
            return True

        return filt

    # --------------------------------------------------------------- detection
    def _check(self, asn: int) -> None:
        assert self.network is not None
        router = self.network.routers[asn]
        now = self.network.sim.now
        links = list(router.links.values()) + list(router.host_links.values())
        for link in links:
            if link.drop_rate(now) < self.config.drop_rate_threshold:
                continue
            aggregates = self._classify(link)
            for prefix in aggregates:
                limit = self.config.limit_fraction * link.bandwidth / 8.0  # bytes/s
                self._install(asn, prefix, limit, self.config.max_depth)

    def _classify(self, link: Link) -> list[Prefix]:
        """Heaviest source-prefix classes among recently dropped packets."""
        assert self.network is not None
        counts: Counter[Prefix] = Counter()
        for _, packet in link.drop_log[-500:]:
            src_asn = self.network.topology.as_of(packet.src)
            if src_asn is not None:
                counts[self.network.topology.prefix_of(src_asn)] += 1
        total = sum(counts.values())
        if total < self.config.min_drops_to_classify:
            return []
        return [p for p, _ in counts.most_common(self.config.top_aggregates)]

    # ------------------------------------------------------------- propagation
    def _install(self, asn: int, prefix: Prefix, limit_bytes_s: float, depth: int) -> None:
        assert self.network is not None
        buckets = self.limits.setdefault(asn, {})
        if prefix not in buckets:
            buckets[prefix] = TokenBucket(rate=limit_bytes_s,
                                          burst=max(limit_bytes_s * 0.1, 1500.0))
            self.identified_aggregates.add(prefix)
            self.activations += 1
        if depth <= 0:
            return
        # ask deployed upstream neighbours (toward the aggregate source)
        aggregate_asn = self.network.topology.prefix_table.lookup(prefix.first)
        if aggregate_asn is None or aggregate_asn == asn:
            return
        table = self.network.routing[asn]
        for neighbour in table.expected_ingress(aggregate_asn):
            if neighbour in self.deployed_asns and prefix not in self.limits.get(neighbour, {}):
                self._install(neighbour, prefix, limit_bytes_s, depth - 1)

    # ----------------------------------------------------------------- queries
    def identified_asns(self) -> set[int]:
        """ASes of the prefixes pushback decided were "the attacker"."""
        assert self.network is not None
        out = set()
        for prefix in self.identified_aggregates:
            asn = self.network.topology.prefix_table.lookup(prefix.first)
            if asn is not None:
                out.add(asn)
        return out

    def limits_installed(self) -> int:
        return sum(len(b) for b in self.limits.values())
