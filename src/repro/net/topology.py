"""AS-level Internet topologies.

The paper targets the Internet's autonomous-system structure (Sec. 5.3
discusses "roughly 18'000 autonomous systems"; the route-based filtering
result it cites [15] is stated on *power-law* AS graphs).  We model one
router per AS, links between adjacent ASes, and hosts attached to stub ASes
— the granularity at which every claim in the paper (filter placement,
ingress filtering at "peripheral ISPs", transit vs customer traffic) lives.

Three families of builders:

* ``hierarchical`` — explicit core / transit / stub tiers (the textbook ISP
  hierarchy used in the paper's Figs. 1-3),
* ``powerlaw`` — Barabási–Albert preferential attachment, degree-classified
  into tiers (matches the Park & Lee power-law Internet setting),
* ``internet_like`` — networkx's ``random_internet_as_graph`` (Elmokashfi et
  al. model) with its native tier labels.

Plus ``line``/``star``/``tree`` micro-topologies for tests and examples.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

import networkx as nx
import numpy as np

from repro.errors import TopologyError
from repro.net.addressing import (
    AddressAllocator,
    HostAddressPool,
    IPv4Address,
    Prefix,
    PrefixTable,
)
from repro.util.rng import derive_rng

__all__ = ["ASRole", "ASInfo", "Topology", "TopologyBuilder",
           "parse_as_rel2", "synthesize_as_rel2"]


class ASRole(enum.Enum):
    """Tier of an autonomous system."""

    CORE = "core"        # tier-1 / backbone service provider (BSP)
    TRANSIT = "transit"  # regional transit ISP
    STUB = "stub"        # peripheral ISP / edge network with customers


@dataclass
class ASInfo:
    """Static data of one autonomous system."""

    asn: int
    role: ASRole
    prefix: Prefix
    hosts: list[IPv4Address] = field(default_factory=list)

    @property
    def is_stub(self) -> bool:
        return self.role is ASRole.STUB


class Topology:
    """An AS graph plus address plan.

    ``graph`` is an undirected :class:`networkx.Graph` whose nodes are AS
    numbers.  Each AS owns one prefix; hosts are addresses inside it.
    """

    def __init__(self, graph: nx.Graph, prefix_length: int = 24,
                 pool: str = "10.0.0.0/8") -> None:
        if graph.number_of_nodes() == 0:
            raise TopologyError("empty topology")
        if not nx.is_connected(graph):
            raise TopologyError("topology graph must be connected")
        self.graph = graph
        self.ases: dict[int, ASInfo] = {}
        self.prefix_table: PrefixTable[int] = PrefixTable()
        self._host_pools: dict[int, HostAddressPool] = {}
        self._host_table: dict[int, int] = {}  # address value -> asn
        allocator = AddressAllocator(pool)
        for asn in sorted(graph.nodes):
            role = graph.nodes[asn].get("role", ASRole.STUB)
            prefix = allocator.allocate_prefix(prefix_length)
            info = ASInfo(asn=asn, role=role, prefix=prefix)
            self.ases[asn] = info
            self.prefix_table.insert(prefix, asn)
            self._host_pools[asn] = HostAddressPool(prefix)

    # ------------------------------------------------------------------ hosts
    def add_host(self, asn: int) -> IPv4Address:
        """Attach a new host to ``asn`` and return its address."""
        if asn not in self.ases:
            raise TopologyError(f"unknown AS {asn}")
        addr = self._host_pools[asn].next_address()
        self.ases[asn].hosts.append(addr)
        self._host_table[int(addr)] = asn
        return addr

    def add_hosts(self, asn: int, count: int) -> list[IPv4Address]:
        """Attach ``count`` hosts to ``asn``."""
        return [self.add_host(asn) for _ in range(count)]

    # ---------------------------------------------------------------- queries
    def as_of(self, addr: IPv4Address | int | str) -> Optional[int]:
        """The AS owning ``addr`` (longest-prefix match), or None."""
        return self.prefix_table.lookup(addr)

    def as_of_many(self, addrs) -> np.ndarray:
        """Vectorised :meth:`as_of`: an int64 array of AS numbers aligned
        with ``addrs``, with -1 where no AS owns the address."""
        return self.prefix_table.lookup_many_int(addrs, default=-1)

    def role_of(self, asn: int) -> ASRole:
        return self.ases[asn].role

    def prefix_of(self, asn: int) -> Prefix:
        return self.ases[asn].prefix

    def neighbors(self, asn: int) -> list[int]:
        return list(self.graph.neighbors(asn))

    def degree(self, asn: int) -> int:
        return self.graph.degree[asn]

    @property
    def as_numbers(self) -> list[int]:
        return sorted(self.ases)

    def by_role(self, role: ASRole) -> list[int]:
        return [asn for asn, info in sorted(self.ases.items()) if info.role is role]

    @property
    def stub_ases(self) -> list[int]:
        return self.by_role(ASRole.STUB)

    @property
    def transit_ases(self) -> list[int]:
        return self.by_role(ASRole.TRANSIT)

    @property
    def core_ases(self) -> list[int]:
        return self.by_role(ASRole.CORE)

    def is_transit_for(self, asn: int) -> bool:
        """True when the AS carries third-party traffic (core or transit tier).

        The paper's adaptive device needs this contextual information to
        apply anti-spoofing only at peripheral ISPs (Sec. 4.2: "we can e.g.
        only prevent source spoofing effectively, if the adaptive device is
        aware of whether it processes transit traffic ... or only traffic
        from customers of a peripheral ISP").
        """
        return self.ases[asn].role is not ASRole.STUB

    def __len__(self) -> int:
        return len(self.ases)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(ases={len(self.ases)}, links={self.graph.number_of_edges()}, "
            f"core={len(self.core_ases)}, transit={len(self.transit_ases)}, "
            f"stub={len(self.stub_ases)})"
        )


class TopologyBuilder:
    """Factory methods for the topology families used in the experiments."""

    @staticmethod
    def hierarchical(n_core: int = 4, transit_per_core: int = 2,
                     stub_per_transit: int = 4, prefix_length: int = 24,
                     seed: int | None = None) -> Topology:
        """Three-tier ISP hierarchy.

        Core ASes form a full mesh; each core AS feeds ``transit_per_core``
        transit ASes; each transit AS feeds ``stub_per_transit`` stub ASes.
        Extra randomised peering links between transits add path diversity.
        """
        if n_core < 1 or transit_per_core < 0 or stub_per_transit < 0:
            raise TopologyError("hierarchical: all tier sizes must be >= 0 (core >= 1)")
        rng = derive_rng(seed, "topo-hier")
        g = nx.Graph()
        asn = 0
        cores = []
        for _ in range(n_core):
            g.add_node(asn, role=ASRole.CORE)
            cores.append(asn)
            asn += 1
        for i, a in enumerate(cores):
            for b in cores[i + 1:]:
                g.add_edge(a, b)
        transits = []
        for core in cores:
            for _ in range(transit_per_core):
                g.add_node(asn, role=ASRole.TRANSIT)
                g.add_edge(core, asn)
                transits.append(asn)
                asn += 1
        for transit in transits:
            for _ in range(stub_per_transit):
                g.add_node(asn, role=ASRole.STUB)
                g.add_edge(transit, asn)
                asn += 1
        # sprinkle a few transit-transit peering links for path diversity
        if len(transits) >= 2:
            n_peer = max(1, len(transits) // 3)
            for _ in range(n_peer):
                a, b = rng.choice(transits, size=2, replace=False)
                g.add_edge(int(a), int(b))
        return Topology(g, prefix_length=prefix_length)

    @staticmethod
    def powerlaw(n: int = 100, m: int = 2, prefix_length: int = 24,
                 seed: int | None = None) -> Topology:
        """Barabási–Albert power-law AS graph, degree-classified into tiers.

        Top 5% of nodes by degree become core, nodes of degree > m become
        transit, the rest are stubs — the standard reading of power-law AS
        maps (and the setting of the Park & Lee route-based filtering claim
        the paper leans on in Sec. 3.2).
        """
        if n < m + 1:
            raise TopologyError(f"powerlaw needs n > m (n={n}, m={m})")
        rng = derive_rng(seed, "topo-ba")
        g = nx.barabasi_albert_graph(n, m, seed=int(rng.integers(0, 2**31)))
        degrees = dict(g.degree())
        order = sorted(degrees, key=lambda v: -degrees[v])
        n_core = max(1, n // 20)
        core_set = set(order[:n_core])
        for v in g.nodes:
            if v in core_set:
                g.nodes[v]["role"] = ASRole.CORE
            elif degrees[v] > m:
                g.nodes[v]["role"] = ASRole.TRANSIT
            else:
                g.nodes[v]["role"] = ASRole.STUB
        # ensure at least one stub exists (tiny graphs may classify all as transit)
        if not any(g.nodes[v]["role"] is ASRole.STUB for v in g.nodes):
            tail = order[-max(1, n // 4):]
            for v in tail:
                g.nodes[v]["role"] = ASRole.STUB
        return Topology(g, prefix_length=prefix_length)

    @staticmethod
    def internet_like(n: int = 200, prefix_length: int = 24,
                      seed: int | None = None) -> Topology:
        """networkx ``random_internet_as_graph`` with native tier labels.

        The generator labels nodes T (tier-1), M (mid-level), CP (content
        provider) and C (customer); we map T -> core, M -> transit and
        CP/C -> stub.
        """
        rng = derive_rng(seed, "topo-inet")
        g = nx.random_internet_as_graph(n, seed=int(rng.integers(0, 2**31)))
        mapping = {"T": ASRole.CORE, "M": ASRole.TRANSIT, "CP": ASRole.STUB, "C": ASRole.STUB}
        for v in g.nodes:
            g.nodes[v]["role"] = mapping.get(g.nodes[v].get("type", "C"), ASRole.STUB)
        if not nx.is_connected(g):  # pragma: no cover - generator is connected by design
            giant = max(nx.connected_components(g), key=len)
            g = g.subgraph(giant).copy()
            g = nx.convert_node_labels_to_integers(g)
        return Topology(g, prefix_length=prefix_length)

    @staticmethod
    def line(n: int = 3, prefix_length: int = 24) -> Topology:
        """A path of ``n`` ASes; the two endpoints are stubs."""
        if n < 1:
            raise TopologyError("line needs n >= 1")
        g = nx.path_graph(n)
        for v in g.nodes:
            g.nodes[v]["role"] = ASRole.STUB if v in (0, n - 1) or n <= 2 else ASRole.TRANSIT
        return Topology(g, prefix_length=prefix_length)

    @staticmethod
    def star(leaves: int = 4, prefix_length: int = 24) -> Topology:
        """A hub AS (transit) with ``leaves`` stub ASes around it."""
        if leaves < 1:
            raise TopologyError("star needs >= 1 leaf")
        g = nx.star_graph(leaves)
        g.nodes[0]["role"] = ASRole.TRANSIT
        for v in range(1, leaves + 1):
            g.nodes[v]["role"] = ASRole.STUB
        return Topology(g, prefix_length=prefix_length)

    @staticmethod
    def tree(branching: int = 2, height: int = 3, prefix_length: int = 24) -> Topology:
        """Balanced tree: root is core, leaves are stubs, middle is transit."""
        g = nx.balanced_tree(branching, height)
        for v in g.nodes:
            deg = g.degree[v]
            if v == 0:
                g.nodes[v]["role"] = ASRole.CORE
            elif deg == 1:
                g.nodes[v]["role"] = ASRole.STUB
            else:
                g.nodes[v]["role"] = ASRole.TRANSIT
        return Topology(g, prefix_length=prefix_length)

    @staticmethod
    def from_graph(graph: nx.Graph, roles: Optional[dict[int, ASRole]] = None,
                   prefix_length: int = 24) -> Topology:
        """Wrap an arbitrary connected graph; unlabelled nodes become stubs."""
        g = graph.copy()
        for v in g.nodes:
            g.nodes[v]["role"] = (roles or {}).get(v, g.nodes[v].get("role", ASRole.STUB))
        return Topology(g, prefix_length=prefix_length)

    @staticmethod
    def from_as_rel2(source: Union[str, os.PathLike, Iterable[str]],
                     prefix_length: int = 24,
                     pool: str = "10.0.0.0/8") -> Topology:
        """Build a topology from CAIDA ``as-rel2`` relationship data.

        ``source`` is a path (:class:`os.PathLike`), the file *content* as
        one string, or an iterable of lines — see :func:`parse_as_rel2`.
        ASes keep their original AS numbers.  At CAIDA scale a /24 per AS
        exhausts the 10.0.0.0/8 pool beyond 65k ASes; pass a longer
        ``prefix_length`` for larger snapshots.
        """
        return Topology(parse_as_rel2(source), prefix_length=prefix_length,
                        pool=pool)

    @staticmethod
    def caida_like(n: int = 1000, seed: int | None = None,
                   prefix_length: int = 24,
                   p2p_fraction: float = 0.12) -> Topology:
        """A deterministic synthetic AS graph in CAIDA ``as-rel2`` shape.

        Convenience wrapper: :func:`synthesize_as_rel2` then
        :meth:`from_as_rel2`, so the synthetic path exercises exactly the
        parser the real-snapshot path uses.
        """
        return TopologyBuilder.from_as_rel2(
            synthesize_as_rel2(n, seed=seed, p2p_fraction=p2p_fraction),
            prefix_length=prefix_length)


def parse_as_rel2(source: Union[str, os.PathLike, Iterable[str]]) -> nx.Graph:
    """Parse CAIDA ``as-rel2`` (serial-2) AS relationship data into a graph.

    The format is one relationship per line — ``<a>|<b>|-1`` meaning *a is a
    provider of b*, ``<a>|<b>|0`` meaning *a and b peer* — with ``#`` comment
    lines interspersed.  ``source`` may be a filesystem path
    (:class:`os.PathLike`), the file content as a single string, or any
    iterable of lines.

    Returns an undirected :class:`networkx.Graph` whose nodes carry a
    ``role`` (:class:`ASRole`) classified from the relationship structure —
    an AS with no customers is a STUB, one with customers but no providers
    is CORE (tier-1), anything in between is TRANSIT — and whose edges carry
    ``rel`` (``"p2c"`` or ``"p2p"``) plus, for p2c edges, ``provider``.
    Disconnected snapshots are reduced to their giant component so the
    result is always a valid :class:`Topology` graph.
    """
    if isinstance(source, os.PathLike):
        with open(source, encoding="utf-8") as fh:
            lines: Iterable[str] = fh.read().splitlines()
    elif isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = source
    g = nx.Graph()
    providers_of: dict[int, set[int]] = {}
    customers_of: dict[int, set[int]] = {}
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) < 3:
            raise TopologyError(f"as-rel2 line {lineno}: malformed {line!r}")
        try:
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError as exc:
            raise TopologyError(f"as-rel2 line {lineno}: malformed {line!r}") from exc
        if a == b:
            continue
        if rel == -1:
            g.add_edge(a, b, rel="p2c", provider=a)
            customers_of.setdefault(a, set()).add(b)
            providers_of.setdefault(b, set()).add(a)
        elif rel == 0:
            if not g.has_edge(a, b):  # p2c takes precedence over duplicate p2p
                g.add_edge(a, b, rel="p2p")
        else:
            raise TopologyError(
                f"as-rel2 line {lineno}: unknown relationship {rel} in {line!r}"
            )
    if g.number_of_nodes() == 0:
        raise TopologyError("as-rel2 source contains no relationships")
    for v in g.nodes:
        has_customers = bool(customers_of.get(v))
        has_providers = bool(providers_of.get(v))
        if not has_customers:
            role = ASRole.STUB
        elif not has_providers:
            role = ASRole.CORE
        else:
            role = ASRole.TRANSIT
        g.nodes[v]["role"] = role
    if not nx.is_connected(g):
        giant = max(nx.connected_components(g), key=len)
        g = g.subgraph(giant).copy()
    return g


def synthesize_as_rel2(n: int, seed: int | None = None,
                       tier1: int | None = None,
                       p2p_fraction: float = 0.12) -> str:
    """Generate a deterministic synthetic AS graph as ``as-rel2`` text.

    Shape follows the CAIDA serial-2 snapshots the paper's scale argument
    rests on (Sec. 5.3, "roughly 18'000 autonomous systems"): a small
    tier-1 clique of mutual peers, every later AS buying transit from one
    or two existing providers chosen by preferential attachment (degree-
    proportional, via an O(n) target-list sampler), plus a sprinkle of
    lateral peering links.  ASNs are 1-based and contiguous; output is
    reproducible for a given ``(n, seed)``.
    """
    if n < 2:
        raise TopologyError(f"synthesize_as_rel2 needs n >= 2 (n={n})")
    rng = derive_rng(seed, "as-rel2-synth")
    n_tier1 = tier1 if tier1 is not None else max(2, min(8, n // 50))
    n_tier1 = min(n_tier1, n)
    lines = [
        "# synthetic as-rel2 (CAIDA serial-2 shaped), not a real snapshot",
        f"# generator: repro.net.topology.synthesize_as_rel2(n={n}, seed={seed})",
        "# format: <provider-as>|<customer-as>|-1 | <peer-as>|<peer-as>|0",
    ]
    # tier-1 clique: mutual peers, no providers
    for i in range(1, n_tier1 + 1):
        for j in range(i + 1, n_tier1 + 1):
            lines.append(f"{i}|{j}|0")
    # preferential attachment over a target list: each p2c edge appends the
    # provider once, so sampling uniformly from `targets` is degree-biased
    targets = list(range(1, n_tier1 + 1))
    p2c: list[tuple[int, int]] = []
    for asn in range(n_tier1 + 1, n + 1):
        n_providers = 2 if rng.random() < 0.3 else 1
        chosen: set[int] = set()
        while len(chosen) < min(n_providers, asn - 1):
            chosen.add(targets[int(rng.integers(0, len(targets)))])
        for provider in sorted(chosen):
            p2c.append((provider, asn))
            targets.append(provider)
        targets.append(asn)
    lines.extend(f"{p}|{c}|-1" for p, c in p2c)
    # lateral p2p links between non-tier-1 ASes for path diversity
    n_p2p = int(p2p_fraction * max(0, n - n_tier1))
    seen = {tuple(sorted(e)) for e in p2c}
    for _ in range(n_p2p):
        a = int(rng.integers(n_tier1 + 1, n + 1))
        b = int(rng.integers(n_tier1 + 1, n + 1))
        if a == b or tuple(sorted((a, b))) in seen:
            continue
        seen.add(tuple(sorted((a, b))))
        lines.append(f"{min(a, b)}|{max(a, b)}|0")
    return "\n".join(lines) + "\n"


def stub_sample(topology: Topology, count: int, rng: np.random.Generator,
                exclude: Iterable[int] = ()) -> list[int]:
    """Sample ``count`` distinct stub ASes, excluding the given ones.

    Helper used by attack scenario builders to place agents/reflectors.
    """
    candidates = [a for a in topology.stub_ases if a not in set(exclude)]
    if len(candidates) < count:
        raise TopologyError(
            f"need {count} stub ASes but only {len(candidates)} available"
        )
    picked = rng.choice(len(candidates), size=count, replace=False)
    return [candidates[i] for i in sorted(picked)]
