"""E12 — deployment incentives for ISPs (paper Sec. 4.6).

"Malicious or illegitimate traffic can now be filtered closer to the
source.  This frees valuable bandwidth resources ...  Collateral damage is
limited mostly to poorly managed access networks where infected or
compromised machines are hooked up."

Measured with the fluid model on a power-law Internet:

* attack load carried per link *tier* (core, transit, edge) with and
  without the TCS — the freed bandwidth is the ISPs' incentive,
* where the attack dies: the fraction of filtered traffic killed inside
  the offending access network itself (drop distance 0) — the containment
  claim,
* the premium-service proxy: devices a full deployment needs per tier.
"""

from __future__ import annotations

from collections import Counter

from repro.core.apps import TcsAntiSpoofMitigation
from repro.experiments.common import ExperimentConfig, register
from repro.net import ASRole, FluidNetwork
from repro.scenario import TopologySpec
from repro.scenario.attacks import reflector_fanout, reflector_roles
from repro.util.rng import derive_rng
from repro.util.tables import Table

__all__ = ["run", "incentive_table"]


def _tier_of_link(topology, a: int, b: int) -> str:
    roles = {topology.role_of(a), topology.role_of(b)}
    if roles == {ASRole.CORE}:
        return "core"
    if ASRole.STUB in roles:
        return "edge"
    return "transit"


def _tier_loads(topology, result) -> Counter:
    loads: Counter[str] = Counter()
    for (a, b), load in result.link_load.items():
        loads[_tier_of_link(topology, a, b)] += load
    return loads


def incentive_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E12: bandwidth freed per ISP tier by source-side filtering (Sec. 4.6)",
        ["tier", "attack_load_no_tcs_mbps", "attack_load_tcs_mbps", "freed_%"],
    )
    n_ases = cfg.scaled(300, minimum=60)
    topo = TopologySpec(kind="powerlaw", n=n_ases, m=2).build(cfg.seed)
    fluid = FluidNetwork(topo)
    rng = derive_rng(cfg.seed, "e12")
    n_agents = cfg.scaled(60, minimum=10)
    n_reflectors = cfg.scaled(30, minimum=5)
    roles = reflector_roles(topo, rng, n_agents, n_reflectors,
                            style="shuffle")
    victim_asn = roles.victim_asn
    model = reflector_fanout(fluid, roles, rate_per_agent=2e6,
                             amplification=5.0)

    def attack_tier_loads(filters):
        req, res = model.evaluate(filters=filters, congestion=False)
        loads = Counter()
        for result in (req, res):
            # only attack flows contribute in this model (no extra flows)
            loads += _tier_loads(topo, result)
        return loads

    baseline = attack_tier_loads([])
    mit = TcsAntiSpoofMitigation([topo.prefix_of(victim_asn)], [victim_asn])
    mit.deployed_asns = set(topo.stub_ases)
    defended = attack_tier_loads([mit.fluid_filter()])
    for tier in ("core", "transit", "edge"):
        before = baseline.get(tier, 0.0)
        after = defended.get(tier, 0.0)
        freed = (1 - after / before) * 100 if before > 0 else 0.0
        table.add_row(tier, round(before / 1e6, 1), round(after / 1e6, 1),
                      round(freed, 1))
    table.add_note(f"{n_agents} agents, {n_reflectors} reflectors, "
                   f"{n_ases}-AS power-law Internet; loads summed over links "
                   f"of each tier")
    table.add_note("with full stub-border deployment the attack never leaves "
                   "the offending access networks: every other tier is freed "
                   "completely")
    return table


def containment_table(cfg: ExperimentConfig) -> Table:
    """Where filtered attack traffic dies, vs. deployment fraction."""
    table = Table(
        "E12b: containment — attack traffic killed inside the offending "
        "access network (Sec. 4.6)",
        ["stub_deployment", "killed_at_source_as_%", "escaped_to_core_%"],
    )
    n_ases = cfg.scaled(300, minimum=60)
    topo = TopologySpec(kind="powerlaw", n=n_ases, m=2,
                        seed_offset=1).build(cfg.seed)
    fluid = FluidNetwork(topo)
    rng = derive_rng(cfg.seed, "e12b")
    roles = reflector_roles(topo, rng, cfg.scaled(60, minimum=10),
                            cfg.scaled(30, minimum=5), style="shuffle",
                            reflectors_from_tail=True)
    victim_asn = roles.victim_asn
    model = reflector_fanout(fluid, roles, rate_per_agent=2e6,
                             amplification=5.0)
    total_attack = len(roles.agent_asns) * 2e6
    deploy_order = list(topo.stub_ases)
    derive_rng(cfg.seed, "e12b-deploy").shuffle(deploy_order)
    for fraction in (0.25, 0.5, 1.0):
        mit = TcsAntiSpoofMitigation([topo.prefix_of(victim_asn)], [victim_asn])
        mit.deployed_asns = set(deploy_order[: int(round(fraction * len(deploy_order)))])
        req, res = model.evaluate(filters=[mit.fluid_filter()],
                                  congestion=False)
        filtered = float(req.filtered.sum())
        killed_at_source = filtered / total_attack * 100
        core_load = sum(load for (a, b), load in {**req.link_load}.items()
                        if _tier_of_link(topo, a, b) == "core")
        base_req, _ = model.evaluate(congestion=False)
        base_core = sum(load for (a, b), load in base_req.link_load.items()
                        if _tier_of_link(topo, a, b) == "core")
        escaped = core_load / base_core * 100 if base_core > 0 else 0.0
        table.add_row(fraction, round(killed_at_source, 1), round(escaped, 1))
    table.add_note("killed_at_source: share of the request rate filtered at "
                   "the agents' own stub ASes (drop distance 0)")
    return table


@register("E12")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [incentive_table(cfg), containment_table(cfg)]
