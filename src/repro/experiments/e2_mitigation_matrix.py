"""E2 — the mitigation-effectiveness matrix (paper Sec. 3 + 4.3).

For each attack class {direct-spoofed, direct-unspoofed, reflector} and
each defense {none, ingress, route-based, pushback, traceback+filter, SOS,
i3, last-hop, TCS}, run the packet-level scenario and report:

* attack traffic reaching the victim (relative to the undefended run),
* legitimate goodput,
* collateral damage caused *by the defense itself*,
* identified attack sources: true (real agent ASes) vs false (innocents,
  e.g. reflectors).

The paper's Sec. 3 conclusions appear as the matrix's shape: pushback
misfires under spoofing, traceback names the reflectors, overlays cut off
non-participating clients, ingress only helps where agents' ISPs deploy
it, and the TCS stops the reflector attack with zero collateral.

Each cell is one :class:`~repro.scenario.ScenarioSpec` run on the packet
engine; the defense wiring lives in :mod:`repro.scenario.defenses`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, register
from repro.scenario import (
    AttackSpec,
    DefenseSpec,
    PacketEngine,
    ScenarioSpec,
    TopologySpec,
)
from repro.util.tables import Table

__all__ = ["run", "matrix_table", "run_cell", "cell_spec", "CellResult"]

ATTACKS = ("direct-spoofed", "direct-unspoofed", "reflector")
MITIGATIONS = ("none", "ingress", "rbf", "pushback", "traceback-filter",
               "sos", "i3", "lasthop", "tcs")


@dataclass
class CellResult:
    attack_kind: str
    mitigation: str
    attack_pkts: int
    legit_goodput: float
    collateral: float
    identified_true: int
    identified_false: int
    notes: str = ""


def cell_spec(attack_kind: str, mitigation: str, cfg: ExperimentConfig,
              rate: float = 1500.0) -> ScenarioSpec:
    """The declarative spec for one (attack, defense) matrix cell."""
    defense = (DefenseSpec.of("rbf", fraction=0.3) if mitigation == "rbf"
               else DefenseSpec.of(mitigation))
    return ScenarioSpec(
        name=f"e2-{attack_kind}-{mitigation}", seed=cfg.seed,
        topology=TopologySpec(kind="hierarchical", n_core=2,
                              transit_per_core=2, stub_per_transit=8),
        attack=AttackSpec(
            kind=attack_kind, n_agents=cfg.scaled(8),
            n_reflectors=cfg.scaled(6), n_legit_clients=4,
            attack_rate_pps=rate, request_size=100, amplification=10.0,
            reflector_mode="dns", duration=0.6, attack_start=0.1,
            seed_offset=1,
        ),
        defense=defense,
    )


def run_cell(attack_kind: str, mitigation: str,
             cfg: ExperimentConfig) -> CellResult:
    """Run one (attack, defense) cell of the matrix."""
    m = PacketEngine().run(cell_spec(attack_kind, mitigation, cfg))
    return CellResult(
        attack_kind=attack_kind, mitigation=mitigation,
        attack_pkts=int(m.attack_delivered),
        legit_goodput=m.legit_goodput,
        collateral=m.collateral,
        identified_true=m.identified_true,
        identified_false=m.identified_false,
        notes=m.notes,
    )


def matrix_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E2: mitigation x attack-class effectiveness matrix (Sec. 3 / 4.3)",
        ["attack", "mitigation", "attack_frac", "legit_goodput",
         "collateral", "ids_true", "ids_false", "notes"],
    )
    for attack_kind in ATTACKS:
        baseline = run_cell(attack_kind, "none", cfg)
        base_pkts = max(1, baseline.attack_pkts)
        for mitigation in MITIGATIONS:
            cell = (baseline if mitigation == "none"
                    else run_cell(attack_kind, mitigation, cfg))
            table.add_row(
                attack_kind, mitigation,
                round(cell.attack_pkts / base_pkts, 3),
                round(cell.legit_goodput, 3),
                round(cell.collateral, 3),
                cell.identified_true, cell.identified_false, cell.notes,
            )
    table.add_note("attack_frac = attack packets at victim relative to the "
                   "undefended run of the same attack")
    table.add_note("SOS/i3 'collateral' counts non-participating legit "
                   "clients cut off at the perimeter")
    return table


@register("E2")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [matrix_table(cfg)]
