"""E5 — misuse prevention (paper Sec. 4.5).

Enumerates concrete misuse attempts against the service and shows each is
refused by the designed mechanism: registration checks, certificate
verification, static vetting, runtime conservation monitoring, and
structural scope confinement.  "Any misuse of such a novel service must be
prevented from the very beginning."
"""

from __future__ import annotations

from repro.core import (
    AdaptiveDevice,
    ComponentGraph,
    DeviceContext,
    NetworkUser,
    OwnershipRegistry,
    vet_component,
)
from repro.core.components import Capabilities, Component, Verdict
from repro.errors import (
    CertificateError,
    RegistrationError,
    SafetyViolation,
    ScopeViolation,
    VettingError,
)
from repro.experiments.common import ExperimentConfig, register
from repro.net import ASRole, IPv4Address, Network, Packet, Prefix
from repro.scenario import TopologySpec
from repro.scenario.tcs import build_tcs_world
from repro.util.tables import Table

__all__ = ["run", "safety_table"]


def _world(cfg: ExperimentConfig):
    net = Network(TopologySpec(kind="hierarchical", n_core=2,
                               transit_per_core=2,
                               stub_per_transit=4).build(cfg.seed))
    world = build_tcs_world(net)
    return (net, world.authority, world.tcsp, world.nms, world.user,
            world.cert, world.owner_asn)


def safety_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E5: misuse attempts vs. the Sec. 4.5 protections",
        ["attempt", "mechanism", "blocked", "error/observation"],
    )
    net, authority, tcsp, nms, user, cert, victim_asn = _world(cfg)

    def attempt(label: str, mechanism: str, fn) -> None:
        try:
            observation = fn()
            blocked = observation is not None and observation.startswith("contained")
            table.add_row(label, mechanism, blocked, observation or "NOT BLOCKED")
        except (RegistrationError, CertificateError, VettingError,
                ScopeViolation, SafetyViolation) as exc:
            table.add_row(label, mechanism, True, type(exc).__name__)

    attempt("register someone else's prefix", "number-authority check",
            lambda: tcsp.register_user("evil", [net.topology.prefix_of(victim_asn)]) and "")

    attempt("register with unverified identity", "CA identity check",
            lambda: tcsp.register_user("shady", [net.topology.prefix_of(1)],
                                       identity_verified=False) and "")

    def forged_cert():
        forged = tcsp.ca.issue("evil", [net.topology.prefix_of(1)], now=net.sim.now)
        import dataclasses

        tampered = dataclasses.replace(forged, prefixes=(Prefix.parse("0.0.0.0/0"),))
        tcsp.ca.verify(tampered, net.sim.now)
        return ""

    attempt("tamper with certificate prefixes", "HMAC signature", forged_cert)

    class TtlRewriter(Component):
        capabilities = Capabilities(modifies_headers=frozenset({"ttl"}))

        def process(self, packet, ctx):
            return Verdict.PASS

    attempt("deploy TTL-modifying component", "static vetting",
            lambda: vet_component(TtlRewriter("x")) or "")

    class Duplicator(Component):
        capabilities = Capabilities(max_outputs_per_input=4)

        def process(self, packet, ctx):
            return Verdict.PASS

    attempt("deploy rate-amplifying component", "static vetting",
            lambda: vet_component(Duplicator("x")) or "")

    class Inflater(Component):
        capabilities = Capabilities(max_size_ratio=3.0)

        def process(self, packet, ctx):
            return Verdict.PASS

    attempt("deploy byte-amplifying component", "static vetting",
            lambda: vet_component(Inflater("x")) or "")

    class Chatty(Component):
        capabilities = Capabilities(extra_traffic_bps=1e9)

        def process(self, packet, ctx):
            return Verdict.PASS

    attempt("request 1 Gbit/s logging side channel", "static vetting",
            lambda: vet_component(Chatty("x")) or "")

    # runtime: a component that lies about its capabilities
    def lying_component():
        registry = OwnershipRegistry()
        registry.register(user)
        device = AdaptiveDevice(
            DeviceContext(asn=1, role=ASRole.STUB,
                          local_prefix=net.topology.prefix_of(1)),
            registry, strict=False)

        class Liar(Component):
            capabilities = Capabilities()  # claims to be a pure observer

            def process(self, packet, ctx):
                packet.dst = IPv4Address.parse("10.99.0.1")  # reroute!
                return Verdict.PASS

        graph = ComponentGraph("liar")
        graph.add(Liar("liar"))
        device.install(user, dst_graph=graph)
        pkt = Packet.udp(IPv4Address.parse("10.50.0.1"), user.prefixes[0].first)
        original_dst = pkt.dst
        out = device.process(pkt, 0.0, None)
        if (out is not None and out.dst == original_dst
                and device.services[user.user_id].disabled_for_violation):
            return "contained: mutation undone, service disabled"
        return "NOT BLOCKED"

    attempt("runtime address rewrite by lying component",
            "safety monitor + containment", lying_component)

    # structural scope confinement
    def scope_confinement():
        registry = OwnershipRegistry()
        registry.register(user)
        device = AdaptiveDevice(
            DeviceContext(asn=1, role=ASRole.STUB,
                          local_prefix=net.topology.prefix_of(1)),
            registry)

        class DropEverything(Component):
            capabilities = Capabilities(may_drop=True)

            def process(self, packet, ctx):
                return Verdict.DROP

        graph = ComponentGraph("greedy")
        graph.add(DropEverything("greedy"))
        device.install(user, src_graph=graph, dst_graph=graph)
        foreign = Packet.udp(IPv4Address.parse("10.200.0.1"),
                             IPv4Address.parse("10.201.0.1"))
        out = device.process(foreign, 0.0, None)
        if out is foreign and graph.packets_in == 0:
            return "contained: foreign packet never entered the user's graph"
        return "NOT BLOCKED"

    attempt("drop-everything rule applied to foreign traffic",
            "structural scope confinement", scope_confinement)

    # deploying beyond the certificate
    def cert_scope():
        greedy = NetworkUser("acme", prefixes=[net.topology.prefix_of(2)])
        nms.deploy(cert, greedy, [victim_asn])
        return ""

    attempt("deploy rules for a prefix outside the certificate",
            "NMS certificate coverage check", cert_scope)

    table.add_note("hypothesis-based property tests of the same invariants "
                   "live in tests/core/test_graph_safety.py and "
                   "tests/integration/test_safety_properties.py")
    return table


@register("E5")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [safety_table(cfg)]
