"""Tests for the live service facade and traffic controller."""

import pytest

from repro.core import ComponentGraph, NetworkUser, OwnershipRegistry
from repro.core.components import PrefixBlacklist, RateLimiterComponent
from repro.net import IPv4Address, Prefix, Simulator
from repro.service import ManualClock, ServiceFacade, TrafficController
from repro.service.facade import DROP_ADMISSION, PASS_DIRECT
from repro.util import TokenBucket

A = IPv4Address.parse


def blacklist_graph(prefix="203.0.113.0/24", name="blk"):
    g = ComponentGraph(name)
    g.chain(PrefixBlacklist("b", [Prefix.parse(prefix)]))
    return g


def make_facade(**kwargs):
    facade = ServiceFacade(clock=ManualClock(), **kwargs)
    user = NetworkUser("acme", prefixes=[Prefix.parse("10.1.0.0/16")])
    facade.subscribe(user, dst_graph=blacklist_graph())
    return facade, user


class TestCheck:
    def test_unowned_flow_returns_the_shared_direct_verdict(self):
        facade, _ = make_facade()
        verdict = facade.check("172.16.0.1", "172.16.9.9")
        assert verdict is PASS_DIRECT
        assert verdict.allowed and not verdict.redirected
        assert verdict.action == "pass"

    def test_owned_clean_flow_is_processed_and_passes(self):
        facade, _ = make_facade()
        verdict = facade.check("198.51.100.7", "10.1.0.5")
        assert verdict.allowed and verdict.redirected
        assert verdict.reason == "processed"
        assert verdict.dst_owner == "acme"
        assert verdict.src_owner is None

    def test_owned_blacklisted_flow_is_filtered(self):
        facade, _ = make_facade()
        verdict = facade.check("203.0.113.9", "10.1.0.5")
        assert not verdict.allowed and verdict.redirected
        assert verdict.reason == "filtered"
        assert verdict.action == "drop"

    def test_address_coercion_int_str_and_object_agree(self):
        facade, _ = make_facade()
        as_str = facade.check("203.0.113.9", "10.1.0.5")
        as_int = facade.check(int(A("203.0.113.9")), int(A("10.1.0.5")))
        as_obj = facade.check(A("203.0.113.9"), A("10.1.0.5"))
        assert as_str.reason == as_int.reason == as_obj.reason == "filtered"

    def test_check_packet_matches_check(self):
        from repro.net import Packet

        facade, _ = make_facade()
        pkt = Packet.udp(A("203.0.113.9"), A("10.1.0.5"))
        assert facade.check_packet(pkt).reason == "filtered"

    def test_counters_track_verdicts(self):
        facade, _ = make_facade()
        facade.check("172.16.0.1", "172.16.9.9")   # direct
        facade.check("198.51.100.7", "10.1.0.5")   # processed
        facade.check("203.0.113.9", "10.1.0.5")    # filtered
        assert facade._m_pass.value == 2
        assert facade._m_drop.value == 1
        assert facade._m_redirected.value == 2


class TestLiveReconfiguration:
    """Regression: management actions must invalidate cached verdicts.

    A flow whose redirect verdict is already cached would otherwise keep
    being filtered after ``set_active(False)`` (or keep bypassing a fresh
    install after ``uninstall``) for as long as the LRU held the entry.
    """

    def test_set_active_false_clears_cached_redirect_verdicts(self):
        facade, _ = make_facade()
        assert facade.check("203.0.113.9", "10.1.0.5").reason == "filtered"
        facade.set_active("acme", False)
        verdict = facade.check("203.0.113.9", "10.1.0.5")
        assert verdict is PASS_DIRECT

    def test_reactivation_restores_filtering(self):
        facade, _ = make_facade()
        facade.set_active("acme", False)
        assert facade.check("203.0.113.9", "10.1.0.5") is PASS_DIRECT
        facade.set_active("acme", True)
        assert facade.check("203.0.113.9", "10.1.0.5").reason == "filtered"

    def test_uninstall_clears_cached_redirect_verdicts(self):
        facade, _ = make_facade()
        assert facade.check("203.0.113.9", "10.1.0.5").reason == "filtered"
        assert facade.uninstall("acme")
        assert facade.check("203.0.113.9", "10.1.0.5") is PASS_DIRECT

    def test_reinstall_after_uninstall_filters_again(self):
        facade, user = make_facade()
        facade.uninstall("acme")
        assert facade.check("203.0.113.9", "10.1.0.5") is PASS_DIRECT
        facade.install(user, dst_graph=blacklist_graph(name="blk2"))
        assert facade.check("203.0.113.9", "10.1.0.5").reason == "filtered"


class TestClockSeam:
    def test_injected_clock_drives_time_dependent_components(self):
        """A rate limiter inside the pipeline sees facade-clock time: the
        same flow passes or drops depending only on advanced time."""
        clock = ManualClock()
        facade = ServiceFacade(clock=clock)
        user = NetworkUser("acme", prefixes=[Prefix.parse("10.1.0.0/16")])
        g = ComponentGraph("rl")
        g.chain(RateLimiterComponent("limit", rate_bps=8 * 512.0,
                                     burst_bytes=512.0))
        facade.subscribe(user, dst_graph=g)
        assert facade.check("172.16.0.1", "10.1.0.5", size=512).allowed
        # bucket empty, no time has passed
        assert not facade.check("172.16.0.1", "10.1.0.5", size=512).allowed
        clock.advance(1.0)  # refills 512 bytes
        assert facade.check("172.16.0.1", "10.1.0.5", size=512).allowed

    def test_sim_clock_drives_the_same_facade(self):
        sim = Simulator()
        facade = ServiceFacade(clock=sim.clock)
        user = NetworkUser("acme", prefixes=[Prefix.parse("10.1.0.0/16")])
        g = ComponentGraph("rl")
        g.chain(RateLimiterComponent("limit", rate_bps=8 * 512.0,
                                     burst_bytes=512.0))
        facade.subscribe(user, dst_graph=g)
        assert facade.check("172.16.0.1", "10.1.0.5", size=512).allowed
        assert not facade.check("172.16.0.1", "10.1.0.5", size=512).allowed
        sim.schedule(1.0, int)
        sim.run()
        assert facade.check("172.16.0.1", "10.1.0.5", size=512).allowed

    def test_explicit_now_overrides_the_clock(self):
        facade, _ = make_facade()
        # no exception, verdict computed at the caller's timestamp
        assert facade.check("198.51.100.7", "10.1.0.5", now=123.0).allowed


class TestSubscribe:
    def test_subscribe_registers_ownership_once(self):
        facade = ServiceFacade()
        user = NetworkUser("acme", prefixes=[Prefix.parse("10.1.0.0/16")])
        facade.subscribe(user, dst_graph=blacklist_graph())
        facade.subscribe(user, src_graph=blacklist_graph(name="blk2"))
        assert len(facade.registry) == 1
        assert facade.core.services["acme"].src_graph is not None

    def test_existing_registry_is_respected(self):
        registry = OwnershipRegistry()
        user = NetworkUser("acme", prefixes=[Prefix.parse("10.1.0.0/16")])
        registry.register(user)
        facade = ServiceFacade(registry)
        facade.subscribe(user, dst_graph=blacklist_graph())
        assert len(registry) == 1


class TestTrafficController:
    def make_controller(self, admission=None):
        facade, _ = make_facade()
        return TrafficController(facade, "10.1.0.5", admission=admission)

    def test_allow_checks_client_against_service_address(self):
        controller = self.make_controller()
        assert controller.allow("198.51.100.7").reason == "processed"
        assert controller.allow("203.0.113.9").reason == "filtered"

    def test_admission_bucket_rejects_before_ownership(self):
        controller = self.make_controller(
            admission=TokenBucket(rate=0.0, burst=1.0))
        assert controller.allow("198.51.100.7").allowed
        verdict = controller.allow("198.51.100.7")
        assert verdict is DROP_ADMISSION
        assert verdict.reason == "admission"
        assert controller._m_admission_rejected.value == 1

    def test_admission_refills_with_facade_time(self):
        facade, _ = make_facade()
        clock = facade.clock
        controller = TrafficController(
            facade, "10.1.0.5", admission=TokenBucket(rate=1.0, burst=1.0))
        assert controller.allow("198.51.100.7").allowed
        assert not controller.allow("198.51.100.7").allowed
        clock.advance(1.0)
        assert controller.allow("198.51.100.7").allowed

    def test_dst_override(self):
        controller = self.make_controller()
        verdict = controller.allow("172.16.0.1", dst="172.16.9.9")
        assert verdict is PASS_DIRECT
