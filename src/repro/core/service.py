"""The network user's facade over the traffic control service.

:class:`TrafficControlService` is the public API a subscriber programs
against after registering (Fig. 4): deploy component graphs into the
network under a scope, flip services on/off, change parameters, read logs
— via the TCSP while it is reachable, or directly against a home-ISP NMS
(with peer forwarding) when it is not (Sec. 5.1).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ControlPlaneUnavailable, DeploymentError
from repro.core.certificates import OwnershipCertificate
from repro.core.deployment import DeploymentScope
from repro.core.nms import GraphFactory, IspNms
from repro.core.ownership import NetworkUser
from repro.core.tcsp import Tcsp, TcspReplicaSet

__all__ = ["TrafficControlService"]


class TrafficControlService:
    """One registered user's handle on the distributed traffic control
    service."""

    def __init__(self, tcsp: "Tcsp | TcspReplicaSet", user: NetworkUser,
                 cert: OwnershipCertificate,
                 home_nms: Optional[IspNms] = None) -> None:
        self.tcsp = tcsp
        self.user = user
        self.cert = cert
        #: the NMS of the user's own ISP — the Sec. 5.1 fallback path
        self.home_nms = home_nms
        self.fallback_used = 0

    # --------------------------------------------------------------- deploy
    def deploy(self, scope: DeploymentScope,
               src_graph_factory: Optional[GraphFactory] = None,
               dst_graph_factory: Optional[GraphFactory] = None
               ) -> dict[str, list[int]]:
        """Deploy stage graphs under a scope, via TCSP or NMS fallback.

        Returns {isp_id: [configured ASes]} (the fallback path reports
        under the home NMS's id).
        """
        if src_graph_factory is None and dst_graph_factory is None:
            raise DeploymentError("nothing to deploy")
        try:
            return self.tcsp.deploy_service(
                self.cert, scope, src_graph_factory, dst_graph_factory,
            )
        except ControlPlaneUnavailable:
            if self.home_nms is None:
                raise
            self.fallback_used += 1
            target = scope.resolve(self.tcsp.network.topology)
            configured = self.home_nms.deploy_direct(
                self.cert, self.user, target,
                src_graph_factory, dst_graph_factory, forward_to_peers=True,
            )
            return {self.home_nms.isp_id: configured}

    # ------------------------------------------------------------ management
    def set_active(self, active: bool) -> int:
        """Activate or deactivate this user's services network-wide."""
        try:
            return self.tcsp.set_active(self.cert, active)
        except ControlPlaneUnavailable:
            if self.home_nms is None:
                raise
            self.fallback_used += 1
            touched = self.home_nms.set_active(self.cert, self.user.user_id, active)
            for peer in self.home_nms.peers:
                touched += peer.set_active(self.cert, self.user.user_id, active)
            return touched

    def read_logs(self) -> list[tuple]:
        """Fetch this user's log entries from every device."""
        try:
            return self.tcsp.read_logs(self.cert)
        except ControlPlaneUnavailable:
            if self.home_nms is None:
                raise
            self.fallback_used += 1
            entries = self.home_nms.read_logs(self.cert, self.user.user_id)
            for peer in self.home_nms.peers:
                entries.extend(peer.read_logs(self.cert, self.user.user_id))
            return sorted(entries)
