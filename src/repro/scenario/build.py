"""The spec -> live-world pipeline.

:func:`build` is the single place a :class:`~repro.scenario.spec
.ScenarioSpec` becomes simulator state.  It performs exactly the calls the
hand-written experiments used to make — topology, then network, then
:class:`~repro.attack.scenarios.AttackScenario`, then defense deployment,
then the optional fault plan — in that order, so every random draw happens
in the historical sequence and migrated experiments keep byte-identical
outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.attack.scenarios import AttackScenario
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.network import Network
from repro.net.topology import Topology
from repro.scenario.spec import ScenarioSpec

__all__ = ["BuiltScenario", "build"]


@dataclass
class BuiltScenario:
    """A spec plus the live objects it denotes (one engine run's world)."""

    spec: ScenarioSpec
    topology: Topology
    network: Network
    scenario: AttackScenario
    defense: "Optional[object]" = None      # DefenseHandle, set by build()
    fault_plan: Optional[FaultPlan] = None
    injector: Optional[FaultInjector] = None
    extras: dict = field(default_factory=dict)

    @property
    def victim_asn(self) -> int:
        return self.scenario.victim_asn

    @property
    def agent_asns(self) -> set[int]:
        return {a.asn for a in self.scenario.agents}

    @property
    def horizon(self) -> float:
        return self.spec.horizon


def build(spec: ScenarioSpec) -> BuiltScenario:
    """Construct the live world for ``spec`` (deterministic in the seed)."""
    from repro.scenario import defenses

    topology = spec.topology.build(spec.seed)
    network = Network(topology)
    scenario = AttackScenario(network, spec.attack.to_config(spec.seed))
    built = BuiltScenario(spec=spec, topology=topology, network=network,
                          scenario=scenario)
    built.defense = defenses.deploy(built, spec.defense)
    if spec.faults is not None and not spec.faults.empty:
        built.fault_plan = spec.faults.plan(
            spec.seed, horizon=spec.horizon,
            device_asns=topology.stub_ases,
            links=[tuple(sorted(e)) for e in topology.graph.edges()])
        built.injector = FaultInjector(built.fault_plan, network,
                                       seed=spec.seed)
        built.injector.arm()
    return built
