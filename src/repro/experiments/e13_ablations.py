"""E13 — ablations of the design choices DESIGN.md calls out.

Three design decisions of the paper's architecture, each measured against
its alternative:

* **stage ordering** (Sec. 4.1): source-owner stage before destination-
  owner stage ("analogous to ... first sending ... and then receiving").
  The ablation shows the observable difference: with src-first, a sender's
  drop rule fires before the receiver's logger sees the packet.
* **redirect only owned traffic** (Sec. 4.1: "Most traffic will use the
  direct path through the router") vs. redirecting everything through the
  device — the per-packet cost of giving up the ownership check.
* **stateless vs. stateful teardown filtering** (Sec. 4.3): dropping every
  RST also kills legitimate resets; the connection-aware filter does not.
"""

from __future__ import annotations

import time

from repro.core import (
    AdaptiveDevice,
    ComponentGraph,
    DeviceContext,
    NetworkUser,
    OwnershipRegistry,
    StatefulTeardownFilter,
)
from repro.core.components import (
    HeaderFilter,
    HeaderMatch,
    LoggerComponent,
)
from repro.experiments.common import ExperimentConfig, register
from repro.scenario.devices import build_device
from repro.net import ASRole, IPv4Address, Packet, Prefix, Protocol, TCPFlags
from repro.util.tables import Table

__all__ = ["run", "stage_order_table", "redirect_policy_table",
           "teardown_filter_table"]


def _two_owner_device(stage_order: str):
    registry = OwnershipRegistry()
    sender = NetworkUser("sender", prefixes=[Prefix.parse("10.1.0.0/16")])
    receiver = NetworkUser("receiver", prefixes=[Prefix.parse("10.2.0.0/16")])
    registry.register(sender)
    registry.register(receiver)
    device = AdaptiveDevice(
        DeviceContext(asn=5, role=ASRole.TRANSIT,
                      local_prefix=Prefix.parse("10.9.0.0/16")),
        registry, stage_order=stage_order)
    # the sender drops its own outbound UDP; the receiver logs its inbound
    src_graph = ComponentGraph("sender-drop")
    src_graph.add(HeaderFilter("drop-udp", HeaderMatch(proto=Protocol.UDP)))
    dst_graph = ComponentGraph("receiver-log")
    logger = LoggerComponent("rx-log")
    dst_graph.add(logger)
    device.install(sender, src_graph=src_graph)
    device.install(receiver, dst_graph=dst_graph)
    return device, logger


def stage_order_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E13a: stage-order ablation (Sec. 4.1: source stage first)",
        ["order", "delivered", "receiver_logged", "semantics"],
    )
    for order in ("src-first", "dst-first"):
        device, logger = _two_owner_device(order)
        pkt = Packet.udp(IPv4Address.parse("10.1.0.1"),
                         IPv4Address.parse("10.2.0.1"))
        out = device.process(pkt, 0.0, None)
        table.add_row(
            order, out is not None, len(logger.entries),
            ("sender's will enforced before the receiver observes"
             if order == "src-first" else
             "receiver observes traffic the sender then retracts"),
        )
    table.add_note("the paper's order mirrors send-then-receive: a packet "
                   "dropped by its sender's stage never existed for the "
                   "receiver — dst-first leaks it into the receiver's logs")
    return table


class _RedirectAllDevice(AdaptiveDevice):
    """Ablation: skip the ownership check and redirect every packet."""

    def wants(self, packet: Packet) -> bool:  # pragma: no cover - trivial
        return True


def redirect_policy_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E13b: redirect policy ablation (Sec. 4.1: only owned traffic "
        "enters the device)",
        ["policy", "owned_share_%", "mean_per_packet_us", "slowdown_x"],
    )
    reps = cfg.scaled(2000, minimum=300)
    device, users = build_device(200)
    redirect_all = _RedirectAllDevice(device.context, device.registry)
    for user_id, instance in device.services.items():
        redirect_all.services[user_id] = instance
    owned = Packet.udp(IPv4Address.parse("172.16.0.1"),
                       IPv4Address(users[0].prefixes[0].base + 3))
    unowned = Packet.udp(IPv4Address.parse("172.16.0.1"),
                         IPv4Address.parse("172.16.0.9"))

    def cost(dev, owned_share: float) -> float:
        n_owned = int(reps * owned_share)
        start = time.perf_counter()
        for i in range(reps):
            pkt = owned if i < n_owned else unowned
            if dev.wants(pkt):
                dev.process(pkt, 0.0, None)
        return (time.perf_counter() - start) / reps * 1e6

    for share in (0.01, 0.10):
        t_selective = cost(device, share)
        t_all = cost(redirect_all, share)
        table.add_row("redirect-owned-only", share * 100,
                      round(t_selective, 2), 1.0)
        table.add_row("redirect-everything", share * 100, round(t_all, 2),
                      round(t_all / t_selective, 2))
    table.add_note("in this software model both policies pay the LPM lookup, "
                   "so the gap is modest; on real hardware (paper Fig. 2) "
                   "redirect-everything would detour *all* line-rate traffic "
                   "through the device — the ownership check is what keeps "
                   "'most traffic ... on the direct path through the router'")
    return table


def teardown_filter_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E13c: stateless vs stateful teardown filtering (Sec. 4.3)",
        ["filter", "forged_rst_blocked_%", "legit_rst_blocked_%"],
    )
    from repro.core.components import ComponentContext, Verdict

    owner = NetworkUser("victim", prefixes=[Prefix.parse("10.2.0.0/16")])

    def ctx(now):
        return ComponentContext(now=now, asn=1, is_transit=False,
                                local_prefix=Prefix.parse("10.9.0.0/16"),
                                stage="dest", owner=owner)

    victim = IPv4Address.parse("10.2.0.1")
    peer = IPv4Address.parse("10.5.0.1")
    forger = IPv4Address.parse("10.7.0.1")
    n = cfg.scaled(100, minimum=20)

    def drive(component):
        forged_blocked = legit_blocked = 0
        now = 0.0
        for i in range(n):
            now += 0.05
            # a real connection's data packet, then its legitimate RST
            data = Packet(src=peer, dst=victim, proto=Protocol.TCP,
                          sport=40000 + i, dport=80)
            component(data, ctx(now))
            legit_rst = Packet.tcp_rst(peer, victim, sport=40000 + i, dport=80)
            if component(legit_rst, ctx(now + 0.01)) is Verdict.DROP:
                legit_blocked += 1
            # a forged RST from a host the victim never talked to
            forged = Packet.tcp_rst(forger, victim, sport=i, dport=80)
            if component(forged, ctx(now + 0.02)) is Verdict.DROP:
                forged_blocked += 1
        return forged_blocked / n * 100, legit_blocked / n * 100

    stateless = HeaderFilter("block-all-rst",
                             HeaderMatch(proto=Protocol.TCP,
                                         flags_any=TCPFlags.RST))
    forged_pct, legit_pct = drive(stateless)
    table.add_row("stateless block-all-rst", round(forged_pct, 1),
                  round(legit_pct, 1))
    stateful = StatefulTeardownFilter()
    forged_pct, legit_pct = drive(stateful)
    table.add_row("stateful connection-aware", round(forged_pct, 1),
                  round(legit_pct, 1))
    table.add_note("both block 100% of the forged teardowns; only the "
                   "stateful variant spares legitimate resets")
    return table


@register("E13")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [stage_order_table(cfg), redirect_policy_table(cfg),
            teardown_filter_table(cfg)]
