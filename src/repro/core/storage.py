"""Pluggable control-plane state storage (DESIGN.md: failure model).

The paper's availability story (Sec. 5.1) is that the *service* stays
controllable while individual control-plane entities are attacked.  That
only holds if registration, contract and desired-deployment state outlive
the process that wrote it — otherwise "failover" covers reachability but
not durability.  This module makes the storage of that state an explicit,
swappable dependency:

* :class:`StorageBackend` — the protocol every store implements: named
  tables of key -> value records plus an append-log primitive, with a
  deterministic iteration order (first-insertion order, exactly like the
  plain dicts this layer replaced).
* :class:`InMemoryBackend` — process-local dicts.  Semantics (and the
  resulting experiment tables) are byte-identical to the pre-storage-layer
  code; state dies with the owning instance (``durable = False``), which
  is precisely the failure mode E16e measures.
* :class:`ReplicatedBackend` — a simulated eventually-consistent replica
  set.  Every record is *sharded* to a deterministic owner replica (prefix
  ranges / stable key hash), written synchronously to the owner and
  asynchronously — after an injectable replication lag, with injectable
  write loss — to the followers.  Replicas crash and restart via
  :class:`~repro.net.faults.FaultInjector` events; anti-entropy
  (:meth:`ReplicatedBackend.anti_entropy`) repairs divergence by copying
  the highest version of each record across live replicas.  All
  randomness derives from ``derive_rng(seed, "storage", ...)``, so runs
  are byte-identical serially, under ``parallel_map`` or on a process
  pool.

Observability: the replicated backend reports under ``control.store.*``
(replication-lag histogram, stale-read / lost-write / repair counters).
The in-memory backend registers *no* instruments, so every pre-existing
experiment's registry snapshot is unchanged by this module existing.

:class:`StoreTable` and :class:`StoreLog` are the thin mapping / append-
log views :class:`~repro.core.tcsp.Tcsp` and :class:`~repro.core.nms
.IspNms` hold their state through — swapping the backend never touches
the call sites.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator, MutableMapping
from typing import Any, Iterable, Optional, Protocol, runtime_checkable

from repro.errors import StorageError
from repro.obs.metrics import declare
from repro.util.rng import derive_rng

__all__ = [
    "StorageBackend", "InMemoryBackend", "ReplicatedBackend",
    "StoreTable", "StoreLog", "shard_key",
]

_WRITES = declare("control.store.writes", "counter",
                  help="records written through the storage backend")
_REPL_WRITES = declare("control.store.replicated_writes", "counter",
                       help="asynchronous follower-replication deliveries")
_LOST_WRITES = declare("control.store.lost_writes", "counter",
                       help="replication deliveries lost (loss window or "
                            "down follower) — repaired by anti-entropy")
_FAILOVER_WRITES = declare("control.store.failover_writes", "counter",
                           help="writes redirected because the shard's "
                                "owner replica was down")
_STALE_READS = declare("control.store.stale_reads", "counter",
                       help="reads served a version older than the newest "
                            "acknowledged write")
_UNAVAILABLE_READS = declare("control.store.unavailable_reads", "counter",
                             help="reads with no live replica to serve them")
_REPAIRS = declare("control.store.repairs", "counter",
                   help="records copied between replicas by anti-entropy")
_REPLICA_CRASHES = declare("control.store.replica_crashes", "counter",
                           help="storage replica crash events")
_LAG_HIST = declare(
    "control.store.replication_lag_s", "histogram",
    help="distribution of follower replication delays",
    buckets=(0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0))


def shard_key(key: Any) -> int:
    """Deterministic integer shard key for a record key.

    Prefix-like keys (anything exposing an integer-convertible ``first``
    address, e.g. :class:`~repro.net.addressing.Prefix`) shard by the top
    byte of their address range, so adjacent prefixes land on the same
    shard — the "sharded by prefix range" layout.  Everything else hashes
    its string form through blake2b (stable across processes, unlike
    ``hash()``).
    """
    first = getattr(key, "first", None)
    if first is not None:
        try:
            return (int(first) >> 24) & 0xFF
        except (TypeError, ValueError):
            pass
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@runtime_checkable
class StorageBackend(Protocol):
    """Named tables of ordered key -> value records.

    ``durable`` declares whether the state survives the crash of the
    control-plane process that owns the store (False for process-local
    memory, True for an external replica set).
    """

    durable: bool

    def put(self, table: str, key: Any, value: Any) -> None: ...

    def get(self, table: str, key: Any, default: Any = None) -> Any: ...

    def delete(self, table: str, key: Any) -> bool: ...

    def contains(self, table: str, key: Any) -> bool: ...

    def keys(self, table: str) -> list: ...

    def items(self, table: str) -> list[tuple[Any, Any]]: ...

    def length(self, table: str) -> int: ...

    def clear(self, table: str) -> None: ...

    def next_key(self, table: str) -> int: ...


class StoreTable(MutableMapping):
    """Dict-shaped view over one backend table.

    Preserves every mapping idiom the control plane already used
    (``in``, ``.get``, ``.items()``, ``sorted(...)``, subscript
    assignment), so moving state onto a backend is invisible to callers.
    """

    __slots__ = ("_backend", "_table")

    def __init__(self, backend: StorageBackend, table: str) -> None:
        self._backend = backend
        self._table = table

    def __getitem__(self, key: Any) -> Any:
        missing = object()
        value = self._backend.get(self._table, key, missing)
        if value is missing:
            raise KeyError(key)
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        self._backend.put(self._table, key, value)

    def __delitem__(self, key: Any) -> None:
        if not self._backend.delete(self._table, key):
            raise KeyError(key)

    def __contains__(self, key: Any) -> bool:
        return self._backend.contains(self._table, key)

    def __iter__(self) -> Iterator:
        return iter(self._backend.keys(self._table))

    def __len__(self) -> int:
        return self._backend.length(self._table)

    def items(self):  # type: ignore[override]
        return self._backend.items(self._table)

    def values(self):  # type: ignore[override]
        return [v for _, v in self._backend.items(self._table)]

    def clear(self) -> None:
        self._backend.clear(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StoreTable({self._table!r}, {dict(self.items())!r})"


class StoreLog:
    """Append-log view over one backend table (monotone integer keys).

    The list-shaped state the TCSP keeps (``undelivered`` relays, pending
    replay queue) becomes an ordered log; ``remove``/``replace`` cover the
    resync bookkeeping.  Key allocation lives in the *backend*
    (:meth:`StorageBackend.next_key`), so two TCSP replicas sharing one
    store never collide.
    """

    __slots__ = ("_backend", "_table")

    def __init__(self, backend: StorageBackend, table: str) -> None:
        self._backend = backend
        self._table = table

    def append(self, value: Any) -> None:
        self._backend.put(self._table, self._backend.next_key(self._table),
                          value)

    def remove(self, value: Any) -> bool:
        """Delete the first entry equal to ``value``; False if absent."""
        for key, existing in self._backend.items(self._table):
            if existing == value:
                self._backend.delete(self._table, key)
                return True
        return False

    def replace(self, values: Iterable[Any]) -> None:
        """Atomically swap the log contents for ``values`` (in order)."""
        self._backend.clear(self._table)
        for value in values:
            self.append(value)

    def __iter__(self) -> Iterator:
        return iter([v for _, v in self._backend.items(self._table)])

    def __contains__(self, value: Any) -> bool:
        return any(v == value for _, v in self._backend.items(self._table))

    def __len__(self) -> int:
        return self._backend.length(self._table)

    def __getitem__(self, index: int) -> Any:
        return [v for _, v in self._backend.items(self._table)][index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StoreLog({self._table!r}, {list(self)!r})"


class InMemoryBackend:
    """Process-local storage: plain insertion-ordered dicts.

    Byte-identical to the attributes it replaced and exactly as fragile:
    ``durable`` is False, so an owning process crash takes the state with
    it (:meth:`~repro.core.nms.IspNms.crash` wipes its tables).  Registers
    no metrics — pre-existing registry snapshots are unchanged.
    """

    durable = False

    def __init__(self) -> None:
        self._tables: dict[str, dict] = {}
        self._seq: dict[str, int] = {}

    def _table(self, table: str) -> dict:
        existing = self._tables.get(table)
        if existing is None:
            existing = self._tables[table] = {}
        return existing

    def put(self, table: str, key: Any, value: Any) -> None:
        self._table(table)[key] = value

    def get(self, table: str, key: Any, default: Any = None) -> Any:
        return self._table(table).get(key, default)

    def delete(self, table: str, key: Any) -> bool:
        return self._table(table).pop(key, _MISSING) is not _MISSING

    def contains(self, table: str, key: Any) -> bool:
        return key in self._table(table)

    def keys(self, table: str) -> list:
        return list(self._table(table))

    def items(self, table: str) -> list[tuple[Any, Any]]:
        return list(self._table(table).items())

    def length(self, table: str) -> int:
        return len(self._table(table))

    def clear(self, table: str) -> None:
        self._table(table).clear()

    def next_key(self, table: str) -> int:
        nxt = self._seq.get(table, 0)
        self._seq[table] = nxt + 1
        return nxt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InMemoryBackend(tables={len(self._tables)})"


_MISSING = object()


class _Replica:
    """One storage replica: versioned records plus liveness."""

    __slots__ = ("index", "up", "records", "crashes")

    def __init__(self, index: int) -> None:
        self.index = index
        self.up = True
        #: (table, key) -> (version, value)
        self.records: dict[tuple[str, Any], tuple[int, Any]] = {}
        self.crashes = 0


class ReplicatedBackend:
    """Simulated eventually-consistent replica set.

    * **Sharding.**  ``owner_of(table, key)`` maps each record to a
      deterministic owner replica via :func:`shard_key` — prefix-range
      partitioning for address keys, a stable hash otherwise.
    * **Writes** apply synchronously to the owner replica (or, when the
      owner is down, to the next live replica — a counted *failover
      write*), then replicate to every follower after a seeded
      exponential lag drawn around ``replication_lag``; while a
      follower is down, or with probability ``loss_rate``, the delivery
      is *lost* (counted) and the follower stays stale until
      anti-entropy repairs it.  With no simulator attached, replication
      is synchronous — the degenerate-but-deterministic mode the parity
      tests pin against :class:`InMemoryBackend`.
    * **Reads** prefer the owner; with the owner down they fall through
      the replica ring in deterministic order, counting a *stale read*
      whenever the version served is older than the newest acknowledged
      write, and an *unavailable read* when no replica is live.
    * **Anti-entropy** copies the highest version of every record to
      every live replica; :meth:`permanently_lost` counts records whose
      newest acknowledged version survives on *no* replica — the E16
      acceptance number that must be zero after heal.

    Iteration order is first-insertion order of each key (tracked as
    backend metadata), matching dict semantics, so tables read back in
    the same order regardless of which replicas served the reads.
    """

    durable = True

    def __init__(self, n_replicas: int = 3, *, seed: int = 0,
                 replication_lag: float = 0.02, loss_rate: float = 0.0,
                 sim: Any = None) -> None:
        if n_replicas < 1:
            raise StorageError(f"need at least one replica, got {n_replicas}")
        if not 0.0 <= loss_rate <= 1.0:
            raise StorageError(f"loss rate outside [0,1]: {loss_rate}")
        if replication_lag < 0.0:
            raise StorageError(f"negative replication lag: {replication_lag}")
        self.n_replicas = n_replicas
        self.replication_lag = replication_lag
        self.loss_rate = loss_rate
        self.sim = sim
        self.seed = seed
        self._rng = derive_rng(seed, "storage", "replication")
        self.replicas = [_Replica(i) for i in range(n_replicas)]
        self._version = 0
        #: newest acknowledged version per record (accounting only — the
        #: repair path never consults it, only replica-held versions)
        self._latest: dict[tuple[str, Any], int] = {}
        self._order: dict[str, list] = {}
        self._seq: dict[str, int] = {}
        self._m_writes = _WRITES.labelled()
        self._m_repl_writes = _REPL_WRITES.labelled()
        self._m_lost_writes = _LOST_WRITES.labelled()
        self._m_failover_writes = _FAILOVER_WRITES.labelled()
        self._m_stale_reads = _STALE_READS.labelled()
        self._m_unavailable_reads = _UNAVAILABLE_READS.labelled()
        self._m_repairs = _REPAIRS.labelled()
        self._m_replica_crashes = _REPLICA_CRASHES.labelled()
        self._lag_hist = _LAG_HIST.labelled()

    # ------------------------------------------------------------- accounting
    @property
    def writes(self) -> int:
        return self._m_writes.value

    @property
    def lost_writes(self) -> int:
        return self._m_lost_writes.value

    @property
    def stale_reads(self) -> int:
        return self._m_stale_reads.value

    @property
    def repairs(self) -> int:
        return self._m_repairs.value

    @property
    def failover_writes(self) -> int:
        return self._m_failover_writes.value

    # --------------------------------------------------------------- sharding
    def owner_of(self, table: str, key: Any) -> int:
        """Deterministic owner replica index for one record."""
        return shard_key(key) % self.n_replicas

    def _ring(self, start: int) -> Iterable[_Replica]:
        for off in range(self.n_replicas):
            yield self.replicas[(start + off) % self.n_replicas]

    def _live(self, start: int) -> Optional[_Replica]:
        for replica in self._ring(start):
            if replica.up:
                return replica
        return None

    # ----------------------------------------------------------------- writes
    def put(self, table: str, key: Any, value: Any) -> None:
        self._m_writes.value += 1
        self._version += 1
        version = self._version
        self._latest[(table, key)] = version
        order = self._order.setdefault(table, [])
        if key not in order:
            order.append(key)
        owner = self.owner_of(table, key)
        primary = self._live(owner)
        if primary is None:
            # no replica can take the write at all: permanently lost
            # unless a later write supersedes it
            self._m_lost_writes.value += 1
            return
        if primary.index != owner:
            self._m_failover_writes.value += 1
        primary.records[(table, key)] = (version, value)
        for replica in self.replicas:
            if replica.index == primary.index:
                continue
            self._replicate(replica.index, table, key, version, value)

    def _replicate(self, index: int, table: str, key: Any, version: int,
                   value: Any) -> None:
        if self.sim is None:
            self._deliver(index, table, key, version, value)
            return
        lag = float(self._rng.exponential(self.replication_lag)) \
            if self.replication_lag > 0 else 0.0
        self._lag_hist.observe(lag)
        self.sim.schedule(lag, self._deliver, index, table, key, version,
                          value)

    def _deliver(self, index: int, table: str, key: Any, version: int,
                 value: Any) -> None:
        replica = self.replicas[index]
        lost = not replica.up or (
            self.loss_rate > 0.0 and float(self._rng.random()) < self.loss_rate)
        if lost:
            self._m_lost_writes.value += 1
            return
        current = replica.records.get((table, key))
        if current is None or current[0] < version:
            replica.records[(table, key)] = (version, value)
        self._m_repl_writes.value += 1

    # ------------------------------------------------------------------ reads
    def _read(self, table: str, key: Any) -> tuple[bool, Any]:
        """(found, value) through the owner-then-ring read path."""
        serving = self._live(self.owner_of(table, key))
        if serving is None:
            self._m_unavailable_reads.value += 1
            return False, None
        record = serving.records.get((table, key))
        latest = self._latest.get((table, key))
        if record is None:
            if latest is not None:
                self._m_stale_reads.value += 1
            return False, None
        version, value = record
        if latest is not None and version < latest:
            self._m_stale_reads.value += 1
        return True, value

    def get(self, table: str, key: Any, default: Any = None) -> Any:
        found, value = self._read(table, key)
        return value if found else default

    def contains(self, table: str, key: Any) -> bool:
        found, _ = self._read(table, key)
        return found

    def delete(self, table: str, key: Any) -> bool:
        found, _ = self._read(table, key)
        if not found:
            return False
        # a delete is a write of a tombstone: drop the record everywhere
        # reachable and forget the accounting entry
        self._m_writes.value += 1
        self._latest.pop((table, key), None)
        order = self._order.get(table)
        if order is not None and key in order:
            order.remove(key)
        for replica in self.replicas:
            if replica.up:
                replica.records.pop((table, key), None)
        return True

    def keys(self, table: str) -> list:
        return [key for key in self._order.get(table, ())
                if self.contains(table, key)]

    def items(self, table: str) -> list[tuple[Any, Any]]:
        out = []
        for key in self._order.get(table, ()):
            found, value = self._read(table, key)
            if found:
                out.append((key, value))
        return out

    def length(self, table: str) -> int:
        return len(self.keys(table))

    def clear(self, table: str) -> None:
        for key in list(self._order.get(table, ())):
            self.delete(table, key)

    def next_key(self, table: str) -> int:
        nxt = self._seq.get(table, 0)
        self._seq[table] = nxt + 1
        return nxt

    # -------------------------------------------------------------- liveness
    def _replica(self, index: int) -> _Replica:
        if not 0 <= index < self.n_replicas:
            raise StorageError(f"no replica {index} (have {self.n_replicas})")
        return self.replicas[index]

    def crash_replica(self, index: int) -> None:
        """Take one replica down; deliveries to it are lost until restart."""
        replica = self._replica(index)
        if replica.up:
            replica.up = False
            replica.crashes += 1
            self._m_replica_crashes.value += 1

    def restart_replica(self, index: int) -> None:
        """Bring a crashed replica back (stale until anti-entropy runs)."""
        self._replica(index).up = True

    def replica_up(self, index: int) -> bool:
        return self._replica(index).up

    @property
    def live_replicas(self) -> int:
        return sum(1 for r in self.replicas if r.up)

    # ---------------------------------------------------------- anti-entropy
    def anti_entropy(self) -> int:
        """Copy the newest replica-held version of every record to every
        live replica; returns how many copies were installed."""
        best: dict[tuple[str, Any], tuple[int, Any]] = {}
        for replica in self.replicas:
            if not replica.up:
                continue
            for record_key, (version, value) in replica.records.items():
                current = best.get(record_key)
                if current is None or current[0] < version:
                    best[record_key] = (version, value)
        repaired = 0
        for record_key, (version, value) in best.items():
            for replica in self.replicas:
                if not replica.up:
                    continue
                current = replica.records.get(record_key)
                if current is None or current[0] < version:
                    replica.records[record_key] = (version, value)
                    repaired += 1
        self._m_repairs.value += repaired
        return repaired

    def start_anti_entropy(self, interval: float) -> None:
        """Schedule periodic :meth:`anti_entropy` passes on the simulator."""
        if self.sim is None:
            raise StorageError("anti-entropy loop needs an attached simulator")
        self.sim.schedule_every(interval, self.anti_entropy)

    # ------------------------------------------------------------ consistency
    def divergent_records(self) -> int:
        """Records where some live replica lags the newest live version."""
        divergent = 0
        for record_key in self._latest:
            versions = []
            for replica in self.replicas:
                if replica.up:
                    record = replica.records.get(record_key)
                    versions.append(record[0] if record else -1)
            if versions and any(v < max(max(versions), 0) for v in versions):
                divergent += 1
        return divergent

    def permanently_lost(self) -> int:
        """Records whose newest acknowledged version no replica (up *or*
        down) holds — unrecoverable by any amount of anti-entropy."""
        lost = 0
        for record_key, latest in self._latest.items():
            held = max((replica.records.get(record_key, (-1, None))[0]
                        for replica in self.replicas), default=-1)
            if held < latest:
                lost += 1
        return lost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ReplicatedBackend(replicas={self.n_replicas}, "
                f"live={self.live_replicas}, records={len(self._latest)})")
