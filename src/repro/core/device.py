"""The adaptive device (paper Figs. 2 and 6, Secs. 4.1-4.2, 5.2).

A programmable traffic-processing device attached to a router.  The router
redirects a packet to the device **only** when the packet is owned by a
registered network user ("Most traffic will use the direct path through
the router"); the device then runs up to two processing stages:

1. the *source-owner* stage — the graph installed by the owner of the
   packet's source address,
2. the *destination-owner* stage — the graph installed by the owner of the
   destination address,

"analogous to the high-level communication process of first sending an
Internet packet by the source (and hence under its control) and then
receiving it by the destination" (Sec. 4.1).

Scope confinement is structural: a user's graphs only ever see packets
that user owns, so "a network user can only get control over the IP
packets he or she owns".  Every stage runs under the
:class:`~repro.core.safety.SafetyMonitor`; a violating service is disabled
on the spot.

The decision path itself — redirect decision behind the per-flow LRU
cache, the two-stage pipeline, and the safety containment — lives in the
engine-agnostic :class:`repro.service.core.DecisionCore`; this class owns
everything simulator-specific around it (crash/fail-policy lifecycle,
routing-update reactions, the vectorised batch path) and injects its
``device.*`` registry counters into the shared core, so the extraction
is invisible to every experiment table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.errors import DeploymentError
from repro.core.components import ComponentContext
from repro.core.graph import ComponentGraph
from repro.core.ownership import NetworkUser, OwnershipRegistry
from repro.core.safety import SafetyMonitor
from repro.net.addressing import Prefix
from repro.net.packet import Packet, Protocol
from repro.net.topology import ASRole
from repro.obs.metrics import declare, reset_metrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network
    from repro.net.packet import PacketBatch
    from repro.service.core import DecisionCore

__all__ = ["DeviceContext", "ServiceInstance", "AdaptiveDevice",
           "FLOW_CACHE_CAPACITY"]

#: Default per-device LRU flow-cache capacity (distinct 4-tuples); the
#: authoritative constant is :data:`repro.service.core.FLOW_CACHE_CAPACITY`
#: (duplicated here because the service package is imported lazily).
FLOW_CACHE_CAPACITY = 4096

_REDIRECTED = declare("device.redirected", "counter", labels=("asn",),
                      help="packets redirected into the device's stages")
_DROPPED = declare("device.dropped", "counter", labels=("asn",),
                   help="packets dropped by a processing stage (or fail-closed)")
_SAFETY_DISABLES = declare("device.safety_disables", "counter", labels=("asn",),
                           help="services disabled for safety violations")
_CRASHES = declare("device.crashes", "counter", labels=("asn",),
                   help="injected device crashes")
_RESTARTS = declare("device.restarts", "counter", labels=("asn",),
                    help="post-crash restarts (wiped, Sec. 4.5)")
_FC_HITS = declare("device.flow_cache_hits", "counter", labels=("asn",),
                   help="redirect decisions served from the flow cache")
_FC_MISSES = declare("device.flow_cache_misses", "counter", labels=("asn",),
                     help="redirect decisions resolved via the slow path")


@dataclass(frozen=True)
class DeviceContext:
    """Where the device sits — the Sec. 4.2 contextual information."""

    asn: int
    role: ASRole
    local_prefix: Prefix

    @property
    def is_transit(self) -> bool:
        return self.role is not ASRole.STUB


@dataclass
class ServiceInstance:
    """One network user's installed service on one device.

    ``src_graph`` runs in the source-owner stage, ``dst_graph`` in the
    destination-owner stage (either may be absent); ``active`` supports the
    instant activate/deactivate of Sec. 4.2 ("activated instantly",
    "triggers can automatically activate predefined additional
    configurations").
    """

    user: NetworkUser
    src_graph: Optional[ComponentGraph] = None
    dst_graph: Optional[ComponentGraph] = None
    active: bool = True
    disabled_for_violation: bool = False
    monitor: SafetyMonitor = field(default_factory=SafetyMonitor)

    def rule_count(self) -> int:
        n = 0
        for graph in (self.src_graph, self.dst_graph):
            if graph is not None:
                n += len(graph)
        return n


class AdaptiveDevice:
    """The programmable device co-located with one AS's router."""

    def __init__(self, context: DeviceContext, registry: OwnershipRegistry,
                 strict: bool = True, stage_order: str = "src-first") -> None:
        # lazy import: repro.service.core imports repro.core modules, so a
        # module-level import here would deadlock whichever package is
        # imported first; at construction time both are fully loaded
        from repro.service.core import DecisionCore

        if stage_order not in ("src-first", "dst-first"):
            raise DeploymentError(f"unknown stage order {stage_order!r}")
        self.context = context
        self.registry = registry
        # registry-backed counters, labelled by this device's AS number;
        # the legacy attributes below are property views over these
        asn = str(context.asn)
        self._m_redirected = _REDIRECTED.labelled(asn=asn)
        self._m_dropped = _DROPPED.labelled(asn=asn)
        self._m_safety_disables = _SAFETY_DISABLES.labelled(asn=asn)
        self._m_crashes = _CRASHES.labelled(asn=asn)
        self._m_restarts = _RESTARTS.labelled(asn=asn)
        self._m_fc_hits = _FC_HITS.labelled(asn=asn)
        self._m_fc_misses = _FC_MISSES.labelled(asn=asn)
        #: the shared decision path (flow cache + ownership LPM + two-stage
        #: pipeline + safety containment), accounting into this device's
        #: ``device.*`` counters
        self._core: "DecisionCore" = DecisionCore(
            context, registry, strict=strict, stage_order=stage_order,
            flow_cache_capacity=FLOW_CACHE_CAPACITY,
            counters={
                "redirected": self._m_redirected,
                "dropped": self._m_dropped,
                "safety_disables": self._m_safety_disables,
                "flow_cache_hits": self._m_fc_hits,
                "flow_cache_misses": self._m_fc_misses,
            })
        #: the same dict object as ``self._core.services`` — mutations
        #: through either alias are seen by both
        self.services: dict[str, ServiceInstance] = self._core.services
        #: crash/restart lifecycle (fault injection): a crashed device holds
        #: no usable configuration.  ``fail_policy`` picks the Sec. 4.5
        #: stance while down: "fail-open" lets owned traffic take the
        #: router's direct path unfiltered; "fail-closed" drops owned
        #: traffic until the NMS re-installs services after restart.
        self.crashed = False
        self.fail_policy = "fail-open"

    # ----------------------------------------------------- decision-core views
    @property
    def strict(self) -> bool:
        """strict=True re-raises safety violations (library/API use);
        strict=False contains them (live network: restore the packet,
        disable the service, keep forwarding)."""
        return self._core.strict

    @strict.setter
    def strict(self, value: bool) -> None:
        self._core.strict = value

    @property
    def stage_order(self) -> str:
        """"src-first" per the paper ("first sending ... and then
        receiving", Sec. 4.1); "dst-first" exists only for the E13
        ablation."""
        return self._core.stage_order

    @stage_order.setter
    def stage_order(self, value: str) -> None:
        self._core.stage_order = value

    @property
    def flow_cache_capacity(self) -> int:
        return self._core.flow_cache_capacity

    @flow_cache_capacity.setter
    def flow_cache_capacity(self, value: int) -> None:
        self._core.flow_cache_capacity = value

    @property
    def _flow_cache(self):
        return self._core.flow_cache

    # ------------------------------------------------------ legacy stat views
    @property
    def redirected(self) -> int:
        return self._m_redirected.value

    @redirected.setter
    def redirected(self, value: int) -> None:
        self._m_redirected.value = value

    @property
    def dropped(self) -> int:
        return self._m_dropped.value

    @dropped.setter
    def dropped(self, value: int) -> None:
        self._m_dropped.value = value

    @property
    def safety_disables(self) -> int:
        return self._m_safety_disables.value

    @safety_disables.setter
    def safety_disables(self, value: int) -> None:
        self._m_safety_disables.value = value

    @property
    def crashes(self) -> int:
        return self._m_crashes.value

    @crashes.setter
    def crashes(self, value: int) -> None:
        self._m_crashes.value = value

    @property
    def restarts(self) -> int:
        return self._m_restarts.value

    @restarts.setter
    def restarts(self, value: int) -> None:
        self._m_restarts.value = value

    @property
    def flow_cache_hits(self) -> int:
        return self._m_fc_hits.value

    @flow_cache_hits.setter
    def flow_cache_hits(self, value: int) -> None:
        self._m_fc_hits.value = value

    @property
    def flow_cache_misses(self) -> int:
        return self._m_fc_misses.value

    @flow_cache_misses.setter
    def flow_cache_misses(self, value: int) -> None:
        self._m_fc_misses.value = value

    def reset_stats(self) -> None:
        """Zero all counters (between experiment phases) — the mirror of
        :meth:`repro.net.link.Link.reset_stats`, via the same registry
        reset path.  Installed services, crash state and the flow cache's
        *contents* are untouched; only the accounting is zeroed."""
        reset_metrics((self._m_redirected, self._m_dropped,
                       self._m_safety_disables, self._m_crashes,
                       self._m_restarts, self._m_fc_hits, self._m_fc_misses))

    # -------------------------------------------------------------- management
    def install(self, user: NetworkUser, src_graph: Optional[ComponentGraph] = None,
                dst_graph: Optional[ComponentGraph] = None) -> ServiceInstance:
        """Install (after vetting) a user's stage graphs on this device."""
        return self._core.install(user, src_graph, dst_graph)

    def uninstall(self, user_id: str) -> bool:
        return self._core.uninstall(user_id)

    def set_active(self, user_id: str, active: bool) -> None:
        self._core.set_active(user_id, active)

    def rule_count(self) -> int:
        """Total installed components — the Sec. 5.3 scaling quantity."""
        return self._core.rule_count()

    # ------------------------------------------------------- crash lifecycle
    def crash(self) -> None:
        """Take the device down (fault injection).

        While crashed the device processes nothing; what happens to owned
        traffic is decided by ``fail_policy`` in :meth:`wants`.
        """
        self.crashed = True
        self._m_crashes.value += 1
        self.invalidate_flow_cache()

    def restart(self) -> None:
        """Bring the device back up **with empty configuration**.

        Sec. 4.5: a restarting device must never resume filtering with
        state its owners no longer control, so every installed service is
        wiped; the NMS watchdog's anti-entropy pass re-installs what should
        be present (:meth:`repro.core.nms.IspNms.reconcile_device`).
        """
        self.services.clear()
        self.crashed = False
        self._m_restarts.value += 1
        self.invalidate_flow_cache()

    # -------------------------------------------------------- routing updates
    def on_routing_update(self) -> list[str]:
        """React to a routing/topology change (Sec. 4.2).

        With ``routing_update_policy == "adapt"`` (default) the device
        re-derives its context and keeps running; with ``"disable"`` every
        service containing a topology-dependent component is deactivated
        until :meth:`reconfirm_topology` (the NMS pushing fresh
        configuration) re-enables it.  Returns the affected user ids.
        """
        self.routing_updates = getattr(self, "routing_updates", 0) + 1
        policy = getattr(self, "routing_update_policy", "adapt")
        affected: list[str] = []
        for user_id, instance in self.services.items():
            has_topo = any(
                component.topology_dependent
                for graph in (instance.src_graph, instance.dst_graph)
                if graph is not None
                for component in graph.components()
            )
            if has_topo:
                affected.append(user_id)
                if policy == "disable":
                    instance.active = False
        if policy == "disable":
            pending = getattr(self, "pending_routing_reconfig", set())
            pending.update(affected)
            self.pending_routing_reconfig = pending
            if affected:
                self.invalidate_flow_cache()
        return affected

    def reconfirm_topology(self, user_id: Optional[str] = None) -> int:
        """Re-enable services disabled by a routing update; returns count."""
        pending: set[str] = getattr(self, "pending_routing_reconfig", set())
        targets = [user_id] if user_id is not None else list(pending)
        revived = 0
        for uid in targets:
            if uid in pending and uid in self.services:
                self.services[uid].active = True
                pending.discard(uid)
                revived += 1
        if revived:
            self.invalidate_flow_cache()
        return revived

    # -------------------------------------------------------------- fast path
    def invalidate_flow_cache(self) -> None:
        """Drop every cached per-flow decision (service set changed)."""
        self._core.invalidate()

    @property
    def flow_cache_hit_rate(self) -> float:
        """Fraction of flow lookups served from the cache so far."""
        total = self.flow_cache_hits + self.flow_cache_misses
        return self.flow_cache_hits / total if total else 0.0

    def wants(self, packet: Packet) -> bool:
        """Redirect decision: does a registered user with a service here own
        this packet?  Everything else takes the router's direct path.

        A crashed device claims nothing under "fail-open" (owned traffic
        takes the router's direct path, unfiltered) and claims every owned
        packet under "fail-closed" (:meth:`process` then drops it).
        """
        if self.crashed:
            if self.fail_policy == "fail-open":
                return False
            src_owner, dst_owner = self.registry.owners_of_packet(packet)
            return src_owner is not None or dst_owner is not None
        return self._core.wants(packet)

    def process(self, packet: Packet, now: float,
                ingress_asn: Optional[int]) -> Optional[Packet]:
        """Run the two processing stages; None means the packet was dropped."""
        if self.crashed:
            # only reachable under "fail-closed": owned traffic is blocked
            # until the NMS reconciles the restarted device
            self._m_dropped.value += 1
            return None
        return self._core.process(packet, now, ingress_asn)

    def process_batch(self, batch: "PacketBatch", now: float,
                      ingress_asn: Optional[int]
                      ) -> tuple[Optional["PacketBatch"],
                                 Optional["PacketBatch"]]:
        """Vectorised redirect decision + two-stage pipeline over a batch.

        The pipeline has two vectorised stages and a scalar residue:

        1. flow resolution — the batch's 4-tuples collapse to unique flows
           (``np.unique`` over packed uint64 key columns); cached flows are
           resolved with one dict probe each, and the *miss set only* is
           batch-fed through the ownership registry's compiled LPM
           (:meth:`OwnershipRegistry.owners_of_many`),
        2. redirect decision — a boolean take over the per-flow verdicts,
        3. residual scalar path — only packets an active service actually
           claims are materialised and run through the core's
           :meth:`~repro.service.core.DecisionCore.run_stages`, exactly as
           the scalar engine would.

        Returns ``(passed, dropped)`` sub-batches (either may be ``None``).
        Counter totals (redirected / dropped / cache hits / misses) equal
        the scalar loop's for any packet order, provided the batch's
        distinct flows fit the flow cache (no LRU churn mid-batch) — the
        property pinned by tests/core/test_device_batch.py.
        """
        n = len(batch)
        if n == 0:
            return batch, None
        if self.crashed:
            if self.fail_policy == "fail-open":
                return batch, None
            # fail-closed: every *owned* packet is blocked, counters match
            # wants() + process() on the scalar path
            src_owners = self.registry.owners_of_many(batch.src)
            dst_owners = self.registry.owners_of_many(batch.dst)
            owned = np.fromiter(
                (s is not None or d is not None
                 for s, d in zip(src_owners, dst_owners)),
                dtype=bool, count=n)
            if not owned.any():
                return batch, None
            dropped = batch.select(owned)
            self._m_dropped.value += len(dropped)
            passed = batch.select(~owned) if not owned.all() else None
            return passed, dropped

        core = self._core
        cache = core.synced_cache()
        key_a, key_b = batch.flow_keys()
        pairs = np.empty(n, dtype=[("a", np.uint64), ("b", np.uint64)])
        pairs["a"] = key_a
        pairs["b"] = key_b
        unique_flows, first_idx, inverse, counts = np.unique(
            pairs, return_index=True, return_inverse=True, return_counts=True)
        n_unique = len(unique_flows)
        entries: list[tuple] = [()] * n_unique
        hits = 0
        misses: list[tuple[int, tuple, int]] = []  # (slot, key, row)
        for j in range(n_unique):
            row = int(first_idx[j])
            key = (int(batch.src[row]), int(batch.dst[row]),
                   Protocol(int(batch.proto[row])), int(batch.dport[row]))
            entry = cache.get(key)
            if entry is not None:
                # scalar parity: first packet of the flow hits, and so do
                # its count-1 repeats
                hits += int(counts[j])
                cache.move_to_end(key)
                entries[j] = entry
            else:
                # scalar parity: first packet misses, repeats then hit
                hits += int(counts[j]) - 1
                misses.append((j, key, row))
        if misses:
            miss_rows = np.array([row for _, _, row in misses],
                                 dtype=np.int64)
            src_owners = self.registry.owners_of_many(batch.src[miss_rows])
            dst_owners = self.registry.owners_of_many(batch.dst[miss_rows])
            services = self.services
            capacity = core.flow_cache_capacity
            for k, (j, key, _row) in enumerate(misses):
                src_owner, dst_owner = src_owners[k], dst_owners[k]
                src_inst = (None if src_owner is None
                            else services.get(src_owner.user_id))
                dst_inst = (None if dst_owner is None
                            else services.get(dst_owner.user_id))
                wants = ((src_inst is not None and src_inst.active)
                         or (dst_inst is not None and dst_inst.active))
                entry = (src_owner, dst_owner, wants)
                entries[j] = entry
                cache[key] = entry
                if len(cache) > capacity:
                    cache.popitem(last=False)
        self._m_fc_hits.value += hits
        self._m_fc_misses.value += len(misses)

        wants_flow = np.fromiter((e[2] for e in entries), dtype=bool,
                                 count=n_unique)
        wanted = wants_flow[inverse]
        n_wanted = int(wanted.sum())
        if n_wanted == 0:
            return batch, None
        # scalar parity: each redirected packet re-probes the cache inside
        # process() (one extra hit) before running its stages
        self._m_redirected.value += n_wanted
        self._m_fc_hits.value += n_wanted

        # vectorised policy fast path: flows whose every active stage
        # graph compiles to a batch program (repro.policy) skip per-packet
        # materialisation entirely — filter/blacklist/limit graphs run as
        # row-mask programs, pure-observer chains as one vectorised update
        # per component.  Flows with non-vectorizable stages take the
        # scalar residue, and order-sensitive policies (token buckets,
        # bounded logs) only run batched when all their traffic lands in a
        # single owner-pair group — otherwise group-by-group execution
        # would reorder the component's view of the packet stream relative
        # to the scalar row order.
        residual = wanted.copy()
        keep = np.ones(n, dtype=bool)
        groups: dict[tuple, list[int]] = {}
        for j in range(n_unique):
            if not wants_flow[j]:
                continue
            src_owner, dst_owner, _ = entries[j]
            gkey = (None if src_owner is None else src_owner.user_id,
                    None if dst_owner is None else dst_owner.user_id)
            groups.setdefault(gkey, []).append(j)
        group_programs = {
            gkey: self._batch_stage_programs(
                *entries[flow_js[0]][:2])
            for gkey, flow_js in groups.items()}
        poisoned = self._order_sensitive_overlaps(groups, group_programs)
        for gkey, flow_js in groups.items():
            programs = group_programs[gkey]
            if programs is None or (poisoned and not poisoned.isdisjoint(
                    uid for uid in gkey if uid is not None)):
                continue
            member = np.zeros(n_unique, dtype=bool)
            member[flow_js] = True
            in_group = member[inverse] & wanted
            group_rows = np.nonzero(in_group)[0]
            survivors = self._run_batch_stages(batch, group_rows, programs,
                                               now, ingress_asn)
            if len(survivors) < len(group_rows):
                self._m_dropped.value += len(group_rows) - len(survivors)
                keep[group_rows] = False
                keep[survivors] = True
            residual &= ~in_group

        for i in np.nonzero(residual)[0]:
            i = int(i)
            src_owner, dst_owner, _ = entries[int(inverse[i])]
            pkt = batch.packet_at(i)
            out = core.run_stages(pkt, src_owner, dst_owner, now,
                                  ingress_asn)
            if out is None:
                keep[i] = False
            else:
                batch.write_back(i, out)
        if keep.all():
            return batch, None
        dropped = batch.select(~keep)
        passed = batch.select(keep) if keep.any() else None
        return passed, dropped

    def _batch_stage_programs(self, src_owner: Optional[NetworkUser],
                              dst_owner: Optional[NetworkUser]
                              ) -> Optional[list[tuple]]:
        """Compiled batch programs for both stages of one owner pair.

        Returns ``(owner, stage, instance, graph, compiled)`` per active
        stage graph, in scalar stage order — or ``None`` when any stage
        has no batch program (non-vectorizable ops) or the two stages
        share component state (batching one whole stage before the other
        would reorder that component's packet stream vs. the per-packet
        walk); the scalar residue then keeps exact semantics.
        """
        stages = [(src_owner, "source"), (dst_owner, "dest")]
        if self.stage_order == "dst-first":  # E13 ablation only
            stages.reverse()
        programs: list[tuple] = []
        for owner, stage in stages:
            if owner is None:
                continue
            instance = self.services.get(owner.user_id)
            if (instance is None or not instance.active
                    or instance.disabled_for_violation):
                continue
            graph = (instance.src_graph if stage == "source"
                     else instance.dst_graph)
            if graph is None:
                continue
            compiled = graph.compiled()
            if not compiled.batch_supported:
                return None
            programs.append((owner, stage, instance, graph, compiled))
        if (len(programs) == 2
                and programs[0][4].shares_state_with(programs[1][4])):
            return None
        return programs

    def _order_sensitive_overlaps(self, groups: dict, group_programs: dict
                                  ) -> set[str]:
        """User ids whose order-sensitive stage policies span more than
        one owner-pair group this batch — their groups must take the
        scalar residue to preserve the component's packet order."""
        seen: dict[str, int] = {}
        sensitive: set[str] = set()
        for gkey in groups:
            for uid in gkey:
                if uid is None:
                    continue
                seen[uid] = seen.get(uid, 0) + 1
                instance = self.services.get(uid)
                if instance is None:
                    continue
                for graph in (instance.src_graph, instance.dst_graph):
                    if graph is not None and graph.compiled().order_sensitive:
                        sensitive.add(uid)
        return {uid for uid in sensitive if seen.get(uid, 0) > 1}

    def _run_batch_stages(self, batch: "PacketBatch", rows: np.ndarray,
                          programs: list[tuple], now: float,
                          ingress_asn: Optional[int]) -> np.ndarray:
        """Run ``batch[rows]`` through compiled stage programs; returns the
        surviving row indices.

        Counter parity with the scalar walk is exact: graph/component
        tallies advance inside :meth:`CompiledPolicy.run_batch`, and the
        per-packet safety-monitor snapshot collapses to aggregate in/out
        accounting (the compiled kernels implement each component's
        declared semantics directly, so no violation is possible).
        """
        local_origin = ingress_asn is None
        for owner, stage, instance, graph, compiled in programs:
            n = len(rows)
            if n == 0:
                break
            ctx = ComponentContext(
                now=now, asn=self.context.asn,
                is_transit=self.context.is_transit,
                local_prefix=self.context.local_prefix, stage=stage,
                owner=owner, ingress_asn=ingress_asn,
                local_origin=local_origin,
            )
            monitor = instance.monitor
            sizes = batch.size[rows]
            monitor.packets_in += n
            monitor.bytes_in += int(sizes.sum())
            alive = compiled.run_batch(batch, rows, ctx)
            monitor.packets_out += int(alive.sum())
            monitor.bytes_out += int(sizes[alive].sum())
            rows = rows[alive]
        return rows


def attach_device(network: "Network", asn: int,
                  registry: OwnershipRegistry) -> AdaptiveDevice:
    """Create an adaptive device and hook it to the AS's router (Fig. 2).

    Live-network devices run in containment mode (strict=False): a safety
    violation disables the offending service instead of halting forwarding.
    """
    topo = network.topology
    context = DeviceContext(asn=asn, role=topo.role_of(asn),
                            local_prefix=topo.prefix_of(asn))
    device = AdaptiveDevice(context, registry, strict=False)
    network.routers[asn].adaptive_device = device
    return device
