"""Shared TCS control-plane wiring for scenarios.

Eight experiments used to open with the same boilerplate: create the
number authority, the TCSP, contract one or more ISPs, record the owner's
address allocation, register the owner, and (sometimes) build a
:class:`~repro.core.service.TrafficControlService` — the paper's Sec. 4.1
bootstrap sequence.  :func:`build_tcs_world` is that sequence, once.

ISP contracting matches the two historical shapes exactly: a single NMS
named ``"isp"`` covering every AS (``n_isps=1``), or ``n_isps`` NMSes
named ``"isp-0" .. "isp-{n-1}"`` over contiguous chunks of the AS list
with the remainder on the last one (the E7/E16 shape).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.core import (
    NumberAuthority,
    Tcsp,
    TcspReplicaSet,
    TrafficControlService,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.nms import IspNms
    from repro.core.storage import StorageBackend
    from repro.net.network import Network

__all__ = ["TcsWorld", "build_tcs_world"]


@dataclass
class TcsWorld:
    """The control-plane objects one bootstrap produces."""

    net: "Network"
    authority: NumberAuthority
    tcsp: "Tcsp | TcspReplicaSet"
    nmses: list = field(default_factory=list)
    owner: str = "acme"
    owner_asn: int = 0
    prefix: object = None
    user: object = None
    cert: object = None
    service: Optional[TrafficControlService] = None

    @property
    def nms(self) -> "IspNms":
        """The (first) contracted NMS — the whole Internet when n_isps=1."""
        return self.nmses[0]


def build_tcs_world(net: "Network", *, owner: str = "acme",
                    owner_asn: Optional[int] = None, n_isps: int = 1,
                    allocate: bool = True, register: bool = True,
                    service: bool = False,
                    home_nms_index: Optional[int] = None,
                    store: "Optional[StorageBackend]" = None,
                    tcsp_standbys: int = 0) -> TcsWorld:
    """Bootstrap the TCS control plane over an existing network.

    ``owner_asn`` defaults to the first stub AS (the usual victim);
    ``allocate`` records the owner's prefix with the number authority;
    ``register`` additionally creates the owner's user + certificate;
    ``service`` additionally builds the TrafficControlService (homed on
    ``nmses[home_nms_index]`` when given, else un-homed).

    ``store`` selects the control-plane storage backend (default:
    process-local memory, byte-identical to the pre-storage-layer
    bootstrap); ``tcsp_standbys > 0`` runs the TCSP as a
    :class:`~repro.core.tcsp.TcspReplicaSet` with that many warm standbys
    sharing the store, lease loop already started.
    """
    authority = NumberAuthority()
    tcsp: Tcsp | TcspReplicaSet
    if tcsp_standbys > 0:
        replica_set = TcspReplicaSet("TCSP", authority, net, store=store,
                                     n_standbys=tcsp_standbys)
        replica_set.start()
        tcsp = replica_set
    else:
        tcsp = Tcsp("TCSP", authority, net, store=store)
    ases = net.topology.as_numbers
    if n_isps <= 1:
        nmses = [tcsp.contract_isp("isp", ases)]
    else:
        chunk = max(1, len(ases) // n_isps)
        nmses = []
        for i in range(n_isps):
            part = (ases[i * chunk:] if i == n_isps - 1
                    else ases[i * chunk:(i + 1) * chunk])
            nmses.append(tcsp.contract_isp(f"isp-{i}", part))
    if owner_asn is None:
        owner_asn = net.topology.stub_ases[0]
    prefix = net.topology.prefix_of(owner_asn)
    if allocate:
        authority.record_allocation(prefix, owner)
    world = TcsWorld(net=net, authority=authority, tcsp=tcsp, nmses=nmses,
                     owner=owner, owner_asn=int(owner_asn), prefix=prefix)
    if allocate and register:
        world.user, world.cert = tcsp.register_user(owner, [prefix])
        if service:
            home = (nmses[home_nms_index]
                    if home_nms_index is not None else None)
            world.service = TrafficControlService(tcsp, world.user,
                                                  world.cert, home_nms=home)
    return world
