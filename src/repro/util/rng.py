"""Deterministic random-number management.

All stochastic parts of the library take a :class:`numpy.random.Generator`.
Experiments derive independent, reproducible child generators from a single
root seed with :func:`derive_rng` so that adding randomness to one subsystem
never perturbs another (a standard trick for reproducible parallel/HPC
simulation codes).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["derive_rng", "spawn_rngs"]


def derive_rng(seed: int | np.random.Generator | None, *keys: object) -> np.random.Generator:
    """Return a Generator deterministically derived from ``seed`` and ``keys``.

    ``keys`` are arbitrary hashable labels (strings, ints) identifying the
    consumer, e.g. ``derive_rng(42, "attack", agent_id)``.  The same
    ``(seed, keys)`` pair always yields the same stream.

    If ``seed`` is already a Generator it is returned unchanged (the keys are
    ignored); this lets internal code accept either form.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    material = [0 if seed is None else int(seed)]
    for key in keys:
        # Stable, platform-independent mixing of the label into the seed.
        if isinstance(key, int):
            material.append(key & 0xFFFFFFFF)
        else:
            acc = 2166136261
            for ch in str(key).encode():
                acc = ((acc ^ ch) * 16777619) & 0xFFFFFFFF
            material.append(acc)
    return np.random.default_rng(np.random.SeedSequence(material))


def spawn_rngs(seed: int | None, n: int, *keys: object) -> Sequence[np.random.Generator]:
    """Return ``n`` independent generators derived from ``seed`` and ``keys``."""
    return [derive_rng(seed, *keys, i) for i in range(n)]
