"""Declarative scenario layer: specs in, metrics out.

One :class:`ScenarioSpec` describes a complete experiment cell (topology,
role placement, attack, defense, optional faults); :func:`run_scenario`
executes it on either the packet-level simulator or the fluid model, and
both report the same :class:`MetricSet`.  Experiments become a spec plus a
table formatter — see DESIGN.md's "scenario layer" section.
"""

from repro.scenario.build import BuiltScenario, build
from repro.scenario.engine import (
    ENGINES,
    Engine,
    FluidEngine,
    PacketEngine,
    run_scenario,
)
from repro.scenario.metrics import METRIC_NAMES, MetricSet, MetricSink
from repro.scenario.presets import PRESETS, preset, preset_names
from repro.scenario.spec import (
    AttackSpec,
    DefenseSpec,
    FaultSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
)

__all__ = [
    "AttackSpec",
    "BuiltScenario",
    "DefenseSpec",
    "ENGINES",
    "Engine",
    "FaultSpec",
    "FluidEngine",
    "METRIC_NAMES",
    "MetricSet",
    "MetricSink",
    "PRESETS",
    "PacketEngine",
    "ScenarioSpec",
    "SpecError",
    "TopologySpec",
    "build",
    "preset",
    "preset_names",
    "run_scenario",
]
