"""repro — reproduction of "Adaptive Distributed Traffic Control Service for
DDoS Attack Mitigation" (Duebendorfer, Bossardt, Plattner; IPPS 2005).

Subpackages:

* :mod:`repro.net`        — AS-level Internet substrate (packets, topology,
  routing, event simulation, fluid flow model).
* :mod:`repro.attack`     — DDoS attack framework (Fig. 1 roles, floods,
  reflector attacks, protocol misuse, worm recruitment).
* :mod:`repro.mitigation` — the Sec. 3 baselines (ingress filtering,
  pushback, traceback, secure overlays, i3, last-hop filtering).
* :mod:`repro.core`       — the paper's contribution: the distributed
  Traffic Control Service (ownership, TCSP, adaptive devices, safety).
* :mod:`repro.experiments`— the harness regenerating every claim table.
"""

__version__ = "1.0.0"
