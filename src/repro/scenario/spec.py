"""Declarative, seed-deterministic scenario specifications.

A :class:`ScenarioSpec` is a frozen value object describing one complete
experiment cell: the topology to generate, the attack to place on it, the
defense to deploy against it, and (optionally) a fault schedule to inject
while it runs.  The spec carries *no* live objects — everything an engine
needs is reconstructed from the spec plus its ``seed``, so the same spec
produces byte-identical worlds whether it is built serially, inside a
:func:`~repro.experiments.common.parallel_map` worker, or in a separate
process pool (pinned by tests/scenario/test_determinism.py).

Sub-specs carry a ``seed_offset`` rather than an absolute seed: the
experiments historically seed the topology from ``cfg.seed`` and the
attack from ``cfg.seed + k`` (k in {0..3} depending on the module), and
offsets let one spec be re-run under any base seed without editing its
parts.  ``build()`` performs exactly the constructor calls the hand
written experiments used to make, in the same order, so migrating an
experiment onto a spec never changes its random draws.

Specs serialize to/from plain JSON dicts (:meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict`) for the ``repro scenario run --spec
file.json`` CLI path.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Sequence

from repro.attack.scenarios import ATTACK_KINDS, ScenarioConfig
from repro.errors import ReproError
from repro.net.faults import FaultPlan
from repro.net.topology import Topology, TopologyBuilder

__all__ = [
    "SpecError",
    "TopologySpec",
    "AttackSpec",
    "DefenseSpec",
    "FaultSpec",
    "ScenarioSpec",
]

TOPOLOGY_KINDS = ("hierarchical", "powerlaw", "internet", "line", "star",
                  "tree", "caida")


class SpecError(ReproError):
    """A scenario spec is malformed or references unknown parts."""


@dataclass(frozen=True)
class TopologySpec:
    """How to generate the AS graph.

    ``kind`` selects the :class:`~repro.net.topology.TopologyBuilder`
    classmethod; the remaining fields are its knobs (unused ones are
    ignored by the other kinds).  The effective topology seed is
    ``base_seed + seed_offset``.
    """

    kind: str = "hierarchical"
    # hierarchical knobs
    n_core: int = 2
    transit_per_core: int = 2
    stub_per_transit: int = 8
    # powerlaw / internet / line / star knobs
    n: int = 100
    m: int = 2
    # tree knobs
    branching: int = 2
    height: int = 3
    prefix_length: int = 24
    seed_offset: int = 0

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise SpecError(
                f"topology kind must be one of {TOPOLOGY_KINDS}, "
                f"got {self.kind!r}")

    def build(self, base_seed: int) -> Topology:
        """Generate the topology — the same call the experiments made."""
        seed = base_seed + self.seed_offset
        if self.kind == "hierarchical":
            return TopologyBuilder.hierarchical(
                self.n_core, self.transit_per_core, self.stub_per_transit,
                prefix_length=self.prefix_length, seed=seed)
        if self.kind == "powerlaw":
            return TopologyBuilder.powerlaw(
                n=self.n, m=self.m, prefix_length=self.prefix_length,
                seed=seed)
        if self.kind == "internet":
            return TopologyBuilder.internet_like(n=self.n, seed=seed)
        if self.kind == "line":
            return TopologyBuilder.line(self.n)
        if self.kind == "star":
            return TopologyBuilder.star(self.n)
        if self.kind == "tree":
            return TopologyBuilder.tree(self.branching, self.height)
        if self.kind == "caida":
            return TopologyBuilder.caida_like(
                n=self.n, seed=seed, prefix_length=self.prefix_length)
        raise SpecError(f"unknown topology kind {self.kind!r}")


@dataclass(frozen=True)
class AttackSpec:
    """The attack half of a scenario — mirrors
    :class:`~repro.attack.scenarios.ScenarioConfig` field-for-field, minus
    the absolute seed (replaced by ``seed_offset``)."""

    kind: str = "reflector"
    n_masters: int = 2
    n_agents: int = 8
    n_reflectors: int = 6
    n_legit_clients: int = 4
    attack_rate_pps: float = 200.0
    legit_rate_pps: float = 20.0
    attack_packet_size: int = 512
    request_size: int = 40
    amplification: float = 3.0
    reflector_mode: str = "dns"
    duration: float = 1.0
    attack_start: float = 0.1
    seed_offset: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ATTACK_KINDS:
            raise SpecError(
                f"attack kind must be one of {ATTACK_KINDS}, got {self.kind!r}")

    def to_config(self, base_seed: int) -> ScenarioConfig:
        """The :class:`ScenarioConfig` this spec denotes under a seed."""
        return ScenarioConfig(
            attack_kind=self.kind,
            n_masters=self.n_masters,
            n_agents=self.n_agents,
            n_reflectors=self.n_reflectors,
            n_legit_clients=self.n_legit_clients,
            attack_rate_pps=self.attack_rate_pps,
            legit_rate_pps=self.legit_rate_pps,
            attack_packet_size=self.attack_packet_size,
            request_size=self.request_size,
            amplification=self.amplification,
            reflector_mode=self.reflector_mode,
            duration=self.duration,
            attack_start=self.attack_start,
            seed=base_seed + self.seed_offset,
        )

    def scaled(self, scale: float) -> "AttackSpec":
        """Scale the population knobs the way experiments scale theirs."""
        def s(n: int) -> int:
            return max(1, int(round(n * scale)))

        return replace(self, n_agents=s(self.n_agents),
                       n_reflectors=s(self.n_reflectors))


@dataclass(frozen=True)
class DefenseSpec:
    """Which defense to deploy, by registry name, plus its parameters.

    ``params`` is a tuple of ``(key, value)`` pairs (kept as a tuple so the
    spec stays hashable/frozen); :meth:`get` reads them like a mapping.
    Defense names resolve against :mod:`repro.scenario.defenses`.
    """

    name: str = "none"
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, **params: Any) -> "DefenseSpec":
        return cls(name=name, params=tuple(sorted(params.items())))

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(self.params)


@dataclass(frozen=True)
class FaultSpec:
    """A declarative fault schedule: the knobs of
    :meth:`~repro.net.faults.FaultPlan.random`, drawn under the scenario's
    seed.  ``horizon`` defaults to the engine's run horizon when 0."""

    n_crashes: int = 0
    n_flaps: int = 0
    n_partitions: int = 0
    tcsp_outages: int = 0
    n_loss_windows: int = 0
    loss_rate: float = 0.5
    n_store_crashes: int = 0
    n_shard_crashes: int = 0
    mean_downtime: float = 0.4
    horizon: float = 0.0
    seed_offset: int = 0

    def plan(self, base_seed: int, *, horizon: float,
             device_asns: Sequence[int] = (),
             links: Sequence[tuple[int, int]] = (),
             nms_ids: Sequence[str] = (),
             store_replicas: Sequence[int] = ()) -> FaultPlan:
        """Draw the concrete :class:`FaultPlan` for a built world."""
        return FaultPlan.random(
            base_seed + self.seed_offset,
            horizon=self.horizon or horizon,
            device_asns=device_asns, links=links, nms_ids=nms_ids,
            store_replicas=store_replicas,
            n_crashes=self.n_crashes, n_flaps=self.n_flaps,
            n_partitions=self.n_partitions,
            n_loss_windows=self.n_loss_windows, loss_rate=self.loss_rate,
            tcsp_outages=self.tcsp_outages,
            n_store_crashes=self.n_store_crashes,
            n_shard_crashes=self.n_shard_crashes,
            mean_downtime=self.mean_downtime)

    @property
    def empty(self) -> bool:
        return not (self.n_crashes or self.n_flaps or self.n_partitions
                    or self.tcsp_outages or self.n_loss_windows
                    or self.n_store_crashes or self.n_shard_crashes)


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, declarative experiment cell.

    ``build()`` (see :mod:`repro.scenario.build`) turns the spec into a
    live world; :class:`~repro.scenario.engine.PacketEngine` and
    :class:`~repro.scenario.engine.FluidEngine` both accept the spec via
    ``run(spec) -> MetricSet``.
    """

    name: str = ""
    seed: int = 42
    topology: TopologySpec = field(default_factory=TopologySpec)
    attack: AttackSpec = field(default_factory=AttackSpec)
    defense: DefenseSpec = field(default_factory=DefenseSpec)
    faults: Optional[FaultSpec] = None
    settle: float = 0.5
    metrics: tuple[str, ...] = ()       # () = every standard metric
    description: str = ""

    # ------------------------------------------------------------- derivation
    def with_seed(self, seed: int) -> "ScenarioSpec":
        return replace(self, seed=seed)

    def with_defense(self, defense: DefenseSpec) -> "ScenarioSpec":
        return replace(self, defense=defense)

    def scaled(self, scale: float) -> "ScenarioSpec":
        if scale == 1.0:
            return self
        return replace(self, attack=self.attack.scaled(scale))

    @property
    def horizon(self) -> float:
        """Time the packet engine runs to: attack end plus settle."""
        return self.attack.attack_start + self.attack.duration + self.settle

    def build(self):
        """Build the live world (see :func:`repro.scenario.build.build`)."""
        from repro.scenario.build import build

        return build(self)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        out["defense"]["params"] = self.defense.as_dict()
        out["metrics"] = list(self.metrics)
        if self.faults is None:
            del out["faults"]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        data = dict(data)
        try:
            topo = TopologySpec(**data.pop("topology", {}))
            attack = AttackSpec(**data.pop("attack", {}))
            defense_data = dict(data.pop("defense", {}))
            params = defense_data.pop("params", {})
            defense = DefenseSpec.of(defense_data.get("name", "none"),
                                     **params)
            faults_data = data.pop("faults", None)
            faults = FaultSpec(**faults_data) if faults_data else None
            data["metrics"] = tuple(data.get("metrics", ()))
            return cls(topology=topo, attack=attack, defense=defense,
                       faults=faults, **data)
        except TypeError as exc:
            raise SpecError(f"bad scenario spec: {exc}") from exc

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SpecError("spec JSON must be an object")
        return cls.from_dict(data)
