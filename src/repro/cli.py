"""Command-line interface.

Usage::

    python -m repro topology --kind powerlaw --size 100
    python -m repro attack --kind reflector --agents 8 --rate 300
    python -m repro defend --attack reflector --defense tcs
    python -m repro scenario list
    python -m repro scenario run --spec reflector-tcs --engine both
    python -m repro experiments E2 E4 --scale 0.5 -j 4
    python -m repro serve --block 203.0.113.0/24 --admit-rate 500
    python -m repro obs --json

``--seed``, ``--scale``, ``--workers/-j`` and ``--metrics-out`` are
threaded uniformly through every subcommand.  The ``experiments``
subcommand forwards to :mod:`repro.experiments`; ``scenario`` runs
declarative :class:`~repro.scenario.ScenarioSpec` presets or JSON spec
files on the packet and/or fluid engine; ``obs`` dumps the telemetry
schema (every metric the codebase can emit).  ``--metrics-out FILE``
wraps the command in a fresh :mod:`repro.obs` registry scope and writes
everything it recorded as JSONL when the command finishes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def _version() -> str:
    """Package version from installed metadata, else the source tree."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from repro import __version__

        return __version__

TOPOLOGY_KINDS = ("hierarchical", "powerlaw", "internet", "line", "star")
DEFENSES = ("none", "ingress", "rbf", "pushback", "traceback-filter",
            "sos", "i3", "lasthop", "tcs", "tcs-spec")


def _build_topology(kind: str, size: int, seed: int):
    from repro.net import TopologyBuilder

    if kind == "hierarchical":
        stubs = max(1, size // 6)
        return TopologyBuilder.hierarchical(2, 2, max(1, stubs // 4) + 1,
                                            seed=seed)
    if kind == "powerlaw":
        return TopologyBuilder.powerlaw(n=size, seed=seed)
    if kind == "internet":
        return TopologyBuilder.internet_like(n=size, seed=seed)
    if kind == "line":
        return TopologyBuilder.line(size)
    if kind == "star":
        return TopologyBuilder.star(max(1, size - 1))
    raise ValueError(f"unknown topology kind {kind!r}")


def cmd_topology(args: argparse.Namespace) -> int:
    size = max(4, int(round(args.size * args.scale)))
    topo = _build_topology(args.kind, size, args.seed)
    print(f"topology: {args.kind}, {len(topo)} ASes, "
          f"{topo.graph.number_of_edges()} links")
    print(f"  core   : {len(topo.core_ases)}")
    print(f"  transit: {len(topo.transit_ases)}")
    print(f"  stub   : {len(topo.stub_ases)}")
    degrees = sorted((topo.degree(a) for a in topo.as_numbers), reverse=True)
    print(f"  degree : max={degrees[0]}, median={degrees[len(degrees) // 2]}, "
          f"min={degrees[-1]}")
    if args.verbose:
        for asn in topo.as_numbers:
            info = topo.ases[asn]
            print(f"  AS{asn:<5} {info.role.value:<8} {info.prefix} "
                  f"deg={topo.degree(asn)}")
    return 0


def _run_cell(args: argparse.Namespace, attack: str, defense: str = "none"):
    from repro.experiments.common import ExperimentConfig
    from repro.experiments.e2_mitigation_matrix import run_cell

    cfg = ExperimentConfig(seed=args.seed,
                           scale=args.scale * max(0.125, args.agents / 8),
                           workers=args.workers)
    return run_cell(attack, defense, cfg)


def cmd_attack(args: argparse.Namespace) -> int:
    cell = _run_cell(args, args.kind)
    print(f"attack: {args.kind} ({args.agents} agents)")
    print(f"  attack packets delivered to victim: {cell.attack_pkts}")
    print(f"  legitimate goodput                : {cell.legit_goodput:.0%}")
    return 0


def cmd_defend(args: argparse.Namespace) -> int:
    base = _run_cell(args, args.attack, "none")
    cell = _run_cell(args, args.attack, args.defense)
    denom = max(1, base.attack_pkts)
    print(f"attack: {args.attack}   defense: {args.defense}")
    print(f"  attack at victim  : {base.attack_pkts} -> {cell.attack_pkts} "
          f"({cell.attack_pkts / denom:.0%} of undefended)")
    print(f"  legitimate goodput: {base.legit_goodput:.0%} -> "
          f"{cell.legit_goodput:.0%}")
    print(f"  collateral damage : {cell.collateral:.0%}")
    if cell.identified_true or cell.identified_false:
        print(f"  identified sources: {cell.identified_true} real, "
              f"{cell.identified_false} innocent")
    if cell.notes:
        print(f"  note: {cell.notes}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    forwarded = list(args.ids)
    forwarded += ["--scale", str(args.scale), "--seed", str(args.seed)]
    if args.markdown:
        forwarded.append("--markdown")
    if args.workers > 1:
        forwarded += ["--parallel", str(args.workers)]
    return experiments_main(forwarded)


def _load_spec(name_or_path: str):
    from pathlib import Path

    from repro.scenario import PRESETS, ScenarioSpec, preset

    if name_or_path in PRESETS:
        return preset(name_or_path)
    path = Path(name_or_path)
    if path.suffix == ".json" or path.exists():
        return ScenarioSpec.from_json(path.read_text())
    from repro.scenario import SpecError

    raise SpecError(f"{name_or_path!r} is neither a preset "
                    f"(see 'scenario list') nor a spec file")


def cmd_scenario(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.scenario import ENGINES, PRESETS, run_scenario

    if args.action == "list":
        for name, spec in PRESETS.items():
            defense = spec.defense.name
            faults = " +faults" if spec.faults is not None else ""
            print(f"{name:<24} attack={spec.attack.kind:<16} "
                  f"defense={defense:<8}{faults} {spec.description}")
        return 0

    try:
        spec = _load_spec(args.spec)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.seed is not None:
        spec = spec.with_seed(args.seed)
    spec = spec.scaled(args.scale)
    engines = tuple(ENGINES) if args.engine == "both" else (args.engine,)
    status = 0
    for engine in engines:
        try:
            metrics = run_scenario(spec, engine=engine)
        except ReproError as exc:
            print(f"{engine}: cannot run: {exc}", file=sys.stderr)
            status = 1
            continue
        print(f"scenario {spec.name!r} on the {engine} engine "
              f"(seed={spec.seed}):")
        for key, value in metrics.select(spec.metrics).items():
            if isinstance(value, float):
                value = round(value, 4)
            print(f"  {key:<18}: {value}")
    return status


def _build_serve_app(protect: str, blocks: Sequence[str],
                     admit_rate: Optional[float],
                     admit_burst: Optional[float] = None):
    """Wire up the live service stack for ``repro serve``.

    Returns ``(facade, controller, wsgi_app)``: an
    :class:`~repro.service.ServiceFacade` whose ownership registry holds
    one subscriber (the owner of the ``--protect`` prefix), a destination
    stage graph blacklisting the ``--block`` source prefixes, and a demo
    WSGI app wrapped in :class:`~repro.service.WsgiTrafficMiddleware`.
    """
    from repro.core.components import PrefixBlacklist
    from repro.core.graph import ComponentGraph
    from repro.core.ownership import NetworkUser, OwnershipRegistry
    from repro.net.addressing import Prefix
    from repro.service import (ServiceFacade, TrafficController,
                               WsgiTrafficMiddleware)
    from repro.util.tokenbucket import TokenBucket

    prefix = Prefix.parse(protect)
    registry = OwnershipRegistry()
    facade = ServiceFacade(registry)
    user = NetworkUser(user_id="protected", display_name="protected service",
                       prefixes=[prefix])
    if blocks:
        graph = ComponentGraph("serve-blacklist")
        graph.chain(PrefixBlacklist(
            "blocked-sources", [Prefix.parse(b) for b in blocks]))
        facade.subscribe(user, dst_graph=graph)
    else:
        # no filters to install: register ownership only, every check
        # takes the direct fast path
        registry.register(user)
    admission = None
    if admit_rate is not None:
        burst = admit_rate if admit_burst is None else admit_burst
        admission = TokenBucket(rate=admit_rate, burst=burst)
    controller = TrafficController(facade, prefix.base, admission=admission)

    def demo_app(environ, start_response):
        body = b"ok\n"
        start_response("200 OK", [("Content-Type", "text/plain"),
                                  ("Content-Length", str(len(body)))])
        return [body]

    return facade, controller, WsgiTrafficMiddleware(demo_app, controller)


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a demo app behind the live traffic-control middleware."""
    from wsgiref.simple_server import WSGIRequestHandler, make_server

    facade, controller, app = _build_serve_app(
        args.protect, args.block, args.admit_rate, args.admit_burst)

    class _QuietHandler(WSGIRequestHandler):
        def log_message(self, *a):  # pragma: no cover - silence stderr noise
            pass

    with make_server(args.host, args.port, app,
                     handler_class=_QuietHandler) as httpd:
        print(f"serving on http://{args.host}:{httpd.server_port}/ "
              f"(protecting {args.protect}, "
              f"{len(args.block)} blocked prefix(es), "
              f"admit-rate={'off' if args.admit_rate is None else args.admit_rate})")
        sys.stdout.flush()
        try:
            if args.max_requests > 0:
                for _ in range(args.max_requests):
                    httpd.handle_request()
            else:  # pragma: no cover - interactive mode
                httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive mode
            pass
    passed = facade._m_pass.value
    dropped = facade._m_drop.value
    rejected = controller._m_admission_rejected.value
    print(f"served {passed + dropped} checks: {passed} passed, "
          f"{dropped} dropped, {rejected} admission-rejected")
    return 0


def _load_service_spec(path: Optional[str]):
    """A :class:`ServiceSpec` from a JSON file, or the built-in demo spec
    (which exercises every optimization pass: fusable filters, an
    observer run, a blacklist, a rate limit)."""
    import json as _json
    from pathlib import Path

    from repro.core.compose import RuleSpec, ServiceSpec

    if path is None:
        return ServiceSpec(name="demo", rules=(
            RuleSpec(action="drop", proto="tcp", tcp_flags="rst",
                     label="block-rst"),
            RuleSpec(action="drop", proto="udp", dport_not_in=(53, 80),
                     label="offservice-udp"),
            RuleSpec(action="log", label="audit"),
            RuleSpec(action="collect-stats", label="stats"),
            RuleSpec(action="blacklist", prefixes=("203.0.113.0/24",),
                     label="known-bad"),
            RuleSpec(action="rate-limit", rate_bps=2_000_000.0,
                     label="limit"),
        ))
    raw = _json.loads(Path(path).read_text())
    rules = tuple(
        RuleSpec(**{**r, "prefixes": tuple(r.get("prefixes", ())),
                    "dport_not_in": tuple(r.get("dport_not_in", ()))})
        for r in raw.get("rules", ()))
    return ServiceSpec(name=raw.get("name", Path(path).stem), rules=rules)


def cmd_policy(args: argparse.Namespace) -> int:
    """``repro policy {show,verify,bench}`` over a service spec."""
    from repro.core.compose import build_graph
    from repro.core.device import DeviceContext
    from repro.errors import ReproError
    from repro.net import ASRole, Prefix
    from repro.policy import Severity, analyze, compile_policy

    try:
        spec = _load_service_spec(args.spec)
        device_ctx = DeviceContext(asn=0, role=ASRole.STUB,
                                   local_prefix=Prefix.parse("10.0.0.0/8"))
        graph = build_graph(spec, device_ctx)
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "verify":
        policy, diags = analyze(graph)
        for diag in diags:
            print(diag)
        errors = [d for d in diags if d.severity is Severity.ERROR]
        if not errors:
            print(f"ok: {len(policy)} op(s), no errors")
        return 1 if errors else 0

    try:
        compiled = compile_policy(graph, vet=True)
    except ReproError as exc:
        print(f"error: {exc} (run 'policy verify' for the full list)",
              file=sys.stderr)
        return 1

    if args.action == "show":
        pol = compiled.policy
        print(f"policy {pol.name!r}: {len(pol)} op(s), entry={pol.entry}")
        for op in pol.ops:
            edges = []
            if op.pass_to is not None:
                edges.append(f"pass->{op.pass_to}")
            if op.drop_to is not None:
                edges.append(f"drop->{op.drop_to}")
            print(f"  [{op.index}] {op.name:<18} {op.kind.name:<14} "
                  f"{type(op.component).__name__:<20} "
                  f"{' '.join(edges) or 'exit'}")
        print(f"signature      : {compiled.signature}")
        print(f"batch program  : "
              f"{'yes' if compiled.batch_supported else 'no'}")
        print(f"order-sensitive: "
              f"{'yes' if compiled.order_sensitive else 'no'}")
        for diag in compiled.diagnostics:
            print(f"  {diag}")
        return 0

    # bench: interpreted walk vs compiled programs over one random burst
    import time

    import numpy as np

    from repro.core.components import ComponentContext
    from repro.core.ownership import NetworkUser
    from repro.net import IPv4Address, Packet, PacketBatch

    n = args.batch
    rng = np.random.default_rng(args.seed if args.seed is not None else 42)
    packets = [
        Packet.udp(IPv4Address(int(rng.integers(0, 2**32))),
                   IPv4Address(int(rng.integers(0, 2**32))),
                   dport=int(rng.integers(0, 1024)))
        for _ in range(n)
    ]
    batch = PacketBatch.from_packets(packets)
    rows = np.arange(n)
    ctx = ComponentContext(
        now=0.0, asn=0, is_transit=False,
        local_prefix=device_ctx.local_prefix, stage="dest",
        owner=NetworkUser("policy-bench", "bench",
                          [device_ctx.local_prefix]),
        ingress_asn=None, local_origin=True)

    def pkts_per_s(fn) -> float:
        fn()  # warm up (JIT caches, first-touch allocations)
        reps = 1
        while True:
            t0 = time.perf_counter()
            for _ in range(reps):
                fn()
            elapsed = time.perf_counter() - t0
            if elapsed > 0.1:
                return (reps * n) / elapsed
            reps *= 2

    r_interp = pkts_per_s(lambda: [graph.process(p, ctx) for p in packets])
    r_scalar = pkts_per_s(lambda: [compiled.process(p, ctx) for p in packets])
    print(f"spec {spec.name!r}, {len(compiled.policy)} op(s), "
          f"batch size {n}:")
    print(f"  interpreted walk : {r_interp:>12,.0f} pkts/s")
    print(f"  compiled scalar  : {r_scalar:>12,.0f} pkts/s  "
          f"({r_scalar / r_interp:.2f}x)")
    if compiled.batch_supported:
        r_batch = pkts_per_s(lambda: compiled.run_batch(batch, rows, ctx))
        print(f"  compiled batch   : {r_batch:>12,.0f} pkts/s  "
              f"({r_batch / r_interp:.2f}x)")
    else:
        print("  compiled batch   : unsupported (see 'policy show' "
              "diagnostics)")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Print every metric the codebase can emit (name, kind, labels)."""
    import json as _json

    from repro.obs import full_catalog

    catalog = full_catalog()
    if args.json:
        print(_json.dumps(
            [{"name": d.name, "kind": d.kind, "labels": list(d.labelnames),
              "help": d.help} for d in catalog.values()],
            indent=2))
        return 0
    print(f"{'metric':<34} {'kind':<10} {'labels':<18} help")
    for decl in catalog.values():
        labels = ",".join(decl.labelnames) or "-"
        print(f"{decl.name:<34} {decl.kind:<10} {labels:<18} {decl.help}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Adaptive Distributed Traffic Control Service — "
                    "reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_version()}")
    def common(seed_default: Optional[int] = 42) -> argparse.ArgumentParser:
        """A fresh --seed/--scale/--workers parent (argparse shares action
        objects between parsers, so each subcommand needs its own copy)."""
        p = argparse.ArgumentParser(add_help=False)
        p.add_argument("--seed", type=int, default=seed_default)
        p.add_argument("--scale", type=float, default=1.0,
                       help="size multiplier for workload knobs")
        p.add_argument("--workers", "-j", type=int, default=1, metavar="N",
                       help="worker processes for parallelisable sweeps")
        p.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="export the run's in-process repro.obs registry "
                            "as JSONL to FILE on exit (worker-process "
                            "registries stay in their workers)")
        return p

    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser("topology", parents=[common()],
                            help="generate and describe an AS topology")
    p_topo.add_argument("--kind", choices=TOPOLOGY_KINDS, default="hierarchical")
    p_topo.add_argument("--size", type=int, default=60)
    p_topo.add_argument("--verbose", action="store_true")
    p_topo.set_defaults(fn=cmd_topology)

    p_attack = sub.add_parser("attack", parents=[common()],
                              help="run an undefended DDoS scenario")
    p_attack.add_argument("--kind", choices=("direct-spoofed",
                                             "direct-unspoofed", "reflector"),
                          default="reflector")
    p_attack.add_argument("--agents", type=int, default=8)
    p_attack.add_argument("--reflectors", type=int, default=6)
    p_attack.add_argument("--rate", type=float, default=300.0)
    p_attack.add_argument("--duration", type=float, default=0.5)
    p_attack.set_defaults(fn=cmd_attack)

    p_defend = sub.add_parser("defend", parents=[common()],
                              help="run an attack against a defense")
    p_defend.add_argument("--attack", choices=("direct-spoofed",
                                               "direct-unspoofed", "reflector"),
                          default="reflector")
    p_defend.add_argument("--defense", choices=DEFENSES, default="tcs")
    p_defend.add_argument("--agents", type=int, default=8)
    p_defend.add_argument("--reflectors", type=int, default=6)
    p_defend.add_argument("--rate", type=float, default=300.0)
    p_defend.add_argument("--duration", type=float, default=0.5)
    p_defend.set_defaults(fn=cmd_defend)

    p_scen = sub.add_parser("scenario",
                            help="list or run declarative scenario specs")
    scen_sub = p_scen.add_subparsers(dest="action", required=True)
    p_list = scen_sub.add_parser("list", help="list the named presets")
    p_list.set_defaults(fn=cmd_scenario)
    p_run = scen_sub.add_parser("run", parents=[common(seed_default=None)],
                                help="run one spec on an engine")
    p_run.add_argument("--spec", required=True,
                       help="preset name or path to a spec .json file")
    p_run.add_argument("--engine", choices=("packet", "fluid", "both"),
                       default="packet")
    p_run.set_defaults(fn=cmd_scenario)

    p_exp = sub.add_parser("experiments", parents=[common()],
                           help="run the claim-reproduction suite")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    p_exp.add_argument("--markdown", action="store_true")
    p_exp.set_defaults(fn=cmd_experiments)

    p_serve = sub.add_parser(
        "serve", help="serve a demo WSGI app behind the live TCS middleware")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8008,
                         help="listen port (0 = ephemeral)")
    p_serve.add_argument("--protect", default="10.0.0.0/24", metavar="CIDR",
                         help="prefix of the protected service (its owner "
                              "becomes the sole subscriber)")
    p_serve.add_argument("--block", action="append", default=[],
                         metavar="CIDR",
                         help="blacklist a source prefix (repeatable; "
                              "installed as the subscriber's dest-stage "
                              "graph)")
    p_serve.add_argument("--admit-rate", type=float, default=None,
                         metavar="RPS",
                         help="admission token-bucket rate consulted before "
                              "any ownership check (default: off)")
    p_serve.add_argument("--admit-burst", type=float, default=None,
                         help="admission bucket burst (default: rate)")
    p_serve.add_argument("--max-requests", type=int, default=0, metavar="N",
                         help="exit after N requests (0 = serve forever)")
    p_serve.set_defaults(fn=cmd_serve)

    p_policy = sub.add_parser(
        "policy", help="inspect, verify, or benchmark compiled policies")
    pol_sub = p_policy.add_subparsers(dest="action", required=True)
    for act, hlp in (
            ("show", "dump the lowered IR, signature, and diagnostics"),
            ("verify", "run every compiler pass; nonzero exit on errors"),
            ("bench", "compiled vs interpreted throughput")):
        pp = pol_sub.add_parser(act, parents=[common()], help=hlp)
        pp.add_argument("--spec", default=None, metavar="FILE",
                        help="service-spec JSON file "
                             "(default: a built-in demo spec)")
        if act == "bench":
            pp.add_argument("--batch", type=int, default=1024,
                            help="packets per burst")
        pp.set_defaults(fn=cmd_policy)

    p_obs = sub.add_parser("obs",
                           help="dump the telemetry schema (repro.obs)")
    p_obs.add_argument("--json", action="store_true",
                       help="machine-readable JSON instead of a table")
    p_obs.set_defaults(fn=cmd_obs)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out is None:
        return args.fn(args)
    from pathlib import Path

    from repro.obs import scoped

    with scoped() as registry:
        status = args.fn(args)
    Path(metrics_out).write_text(registry.to_jsonl())
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
