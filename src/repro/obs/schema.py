"""The process-wide metric schema: every name the codebase can emit.

Metric names are declared at import time (:func:`repro.obs.metrics.declare`),
so the full schema is a function of *imports*, not of any run.
:func:`full_catalog` imports every emitting module and returns the
resulting :data:`~repro.obs.metrics.CATALOG` — the source of truth behind
``python -m repro obs`` and the bench schema-regression check.
"""

from __future__ import annotations

import importlib

from repro.obs.metrics import CATALOG, MetricDecl

__all__ = ["EMITTING_MODULES", "full_catalog"]

#: Modules that declare metrics at import time.  Adding a new emitting
#: module?  List it here so the schema dump and the CI schema check see it.
EMITTING_MODULES = (
    "repro.net.simulator",
    "repro.net.link",
    "repro.net.faults",
    "repro.core.device",
    "repro.core.rpc",
    "repro.core.components",
    "repro.core.graph",
    "repro.core.apps.statistics",
    "repro.scenario.metrics",
    "repro.service.facade",
)


def full_catalog() -> dict[str, MetricDecl]:
    """Import every emitting module, then return the complete catalog."""
    for module in EMITTING_MODULES:
        importlib.import_module(module)
    return dict(sorted(CATALOG.items()))
