"""Lowering component graphs into the typed policy IR."""

from repro.core.components import (
    Capabilities,
    Component,
    HeaderFilter,
    HeaderMatch,
    LoggerComponent,
    PayloadHashFilter,
    PayloadScrubber,
    PrefixBlacklist,
    RateLimiterComponent,
    SourceAntiSpoof,
    StatisticsCollector,
    Verdict,
)
from repro.core.graph import ComponentGraph
from repro.net import Prefix, Protocol
from repro.policy import OpKind, lower_graph
from repro.policy.ir import ORDER_SENSITIVE_KINDS, VECTORIZABLE_KINDS, classify


class TestClassify:
    def test_known_components(self):
        cases = [
            (HeaderFilter("f", HeaderMatch(proto=Protocol.UDP)), OpKind.FILTER),
            (PrefixBlacklist("b", [Prefix.parse("10.0.0.0/8")]),
             OpKind.BLACKLIST),
            (SourceAntiSpoof("a", [Prefix.parse("10.0.0.0/8")]),
             OpKind.ANTISPOOF),
            (RateLimiterComponent("r", 1e6), OpKind.RATE_LIMIT),
            (LoggerComponent("l"), OpKind.LOGGER),
            (StatisticsCollector("s"), OpKind.OBSERVER_BATCH),
            (PayloadScrubber("p"), OpKind.SCRUB),
            (PayloadHashFilter("h", [b"\x00" * 8]), OpKind.HASH_FILTER),
        ]
        for component, kind in cases:
            assert classify(component) is kind, component.name

    def test_unknown_component_is_opaque(self):
        class Custom(Component):
            capabilities = Capabilities(may_drop=True)

            def process(self, packet, ctx):
                return Verdict.PASS

        assert classify(Custom("x")) is OpKind.OPAQUE

    def test_vectorizable_and_order_sensitive_sets(self):
        assert OpKind.FILTER in VECTORIZABLE_KINDS
        assert OpKind.OPAQUE not in VECTORIZABLE_KINDS
        assert OpKind.SCRUB not in VECTORIZABLE_KINDS
        assert ORDER_SENSITIVE_KINDS == {OpKind.RATE_LIMIT, OpKind.LOGGER}


class TestLowerGraph:
    def build(self) -> ComponentGraph:
        graph = ComponentGraph("g")
        graph.add(HeaderFilter("f", HeaderMatch(proto=Protocol.UDP)))
        graph.add(LoggerComponent("log"))
        graph.add(LoggerComponent("droplog"))
        graph.connect("f", "log", Verdict.PASS)
        graph.connect("f", "droplog", Verdict.DROP)
        return graph

    def test_ops_and_edges(self):
        policy = lower_graph(self.build())
        assert policy.name == "g"
        assert len(policy) == 3
        assert policy.entry == 0
        f, log, droplog = policy.ops
        assert (f.name, log.name, droplog.name) == ("f", "log", "droplog")
        assert f.pass_to == log.index
        assert f.drop_to == droplog.index
        assert log.pass_to is None and log.drop_to is None
        # edge_list preserves connect() insertion order
        assert policy.edge_list == [(0, Verdict.PASS, 1), (0, Verdict.DROP, 2)]

    def test_live_component_references(self):
        graph = self.build()
        policy = lower_graph(graph)
        assert policy.op("f").component is graph.component("f")

    def test_may_drop_follows_capabilities(self):
        policy = lower_graph(self.build())
        assert policy.op("f").may_drop
        assert not policy.op("log").may_drop
