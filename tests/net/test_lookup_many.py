"""Edge cases of the vectorised LPM batch lookups.

``lookup_many`` feeds the batched data plane (ownership decisions, AS
resolution), so its behaviour on empty batches, unmatched addresses and
awkward input dtypes is pinned here — including the int64 fast path
``lookup_many_int`` that the forwarding loop uses.
"""

import numpy as np
import pytest

from repro.errors import AddressError
from repro.net import Prefix, PrefixTable


@pytest.fixture()
def table() -> PrefixTable:
    t = PrefixTable()
    t.insert(Prefix.parse("10.0.0.0/8"), "ten")
    t.insert(Prefix.parse("10.1.0.0/16"), "ten-one")
    t.insert(Prefix.parse("192.168.0.0/16"), "private")
    return t


def addr(s: str) -> int:
    from repro.net import IPv4Address

    return int(IPv4Address.parse(s))


class TestEmptyAndNoMatch:
    def test_empty_input(self, table):
        out = table.compile().lookup_many(np.empty(0, dtype=np.int64))
        assert out.shape == (0,)
        assert out.dtype == object

    def test_empty_list_input(self, table):
        assert len(table.compile().lookup_many([])) == 0

    def test_no_match_is_none(self, table):
        out = table.compile().lookup_many([addr("172.16.0.1"), addr("10.1.2.3")])
        assert list(out) == [None, "ten-one"]

    def test_all_unmatched(self, table):
        out = table.compile().lookup_many([0, 2**32 - 1])
        assert list(out) == [None, None]

    def test_empty_table_no_match(self):
        out = PrefixTable().compile().lookup_many([addr("10.0.0.1")])
        assert list(out) == [None]


class TestDtypes:
    def test_object_array_of_strings(self, table):
        arr = np.array(["10.1.2.3", "192.168.5.5"], dtype=object)
        assert list(table.compile().lookup_many(arr)) == ["ten-one", "private"]

    def test_plain_python_list_of_strings(self, table):
        out = table.compile().lookup_many(["10.2.0.1", "172.16.0.1"])
        assert list(out) == ["ten", None]

    def test_integral_floats_accepted(self, table):
        arr = np.array([float(addr("10.1.0.9")), float(addr("8.8.8.8"))])
        assert list(table.compile().lookup_many(arr)) == ["ten-one", None]

    def test_fractional_floats_rejected(self, table):
        with pytest.raises(AddressError):
            table.compile().lookup_many(np.array([1.5, 2.0]))

    def test_uint64_in_range(self, table):
        arr = np.array([addr("10.1.2.3")], dtype=np.uint64)
        assert list(table.compile().lookup_many(arr)) == ["ten-one"]

    def test_uint32_accepted(self, table):
        arr = np.array([addr("192.168.0.1")], dtype=np.uint32)
        assert list(table.compile().lookup_many(arr)) == ["private"]


class TestRangeValidation:
    def test_negative_rejected(self, table):
        """A -1 must raise, not wrap around to the last interval."""
        with pytest.raises(AddressError):
            table.compile().lookup_many(np.array([-1], dtype=np.int64))

    def test_above_32_bits_rejected(self, table):
        with pytest.raises(AddressError):
            table.compile().lookup_many(np.array([2**32], dtype=np.int64))

    def test_huge_uint64_rejected(self, table):
        """Values past 2^32 must not alias after an int64 cast."""
        with pytest.raises(AddressError):
            table.compile().lookup_many(np.array([2**63], dtype=np.uint64))


class TestLookupManyInt:
    def test_int_values_round_trip(self):
        t = PrefixTable()
        t.insert(Prefix.parse("10.0.0.0/8"), 7)
        t.insert(Prefix.parse("10.1.0.0/16"), 8)
        out = t.lookup_many_int(
            [addr("10.1.2.3"), addr("10.9.9.9"), addr("8.8.8.8")])
        assert out.dtype == np.int64
        assert list(out) == [8, 7, -1]

    def test_custom_default(self):
        t = PrefixTable()
        t.insert(Prefix.parse("10.0.0.0/8"), 1)
        out = t.lookup_many_int([addr("11.0.0.1")], default=-999)
        assert list(out) == [-999]

    def test_empty_input(self):
        t = PrefixTable()
        t.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert len(t.lookup_many_int([])) == 0

    def test_non_int_values_raise(self, table):
        with pytest.raises(AddressError):
            table.lookup_many_int([addr("10.0.0.1")])

    def test_matches_scalar_lookup(self):
        t = PrefixTable()
        rng = np.random.default_rng(3)
        for _ in range(200):
            v = int(rng.integers(0, 2**32))
            t.insert(Prefix.make(v, int(rng.integers(8, 25))), v % 1000)
        queries = rng.integers(0, 2**32, 512)
        batch = t.lookup_many_int(queries, default=-1)
        for q, got in zip(queries, batch):
            want = t.lookup(int(q))
            assert got == (-1 if want is None else want)
