"""E8 — protocol-misuse teardown attacks and the TCS firewall (Sec. 4.3).

"Attacks based on protocol misuse like e.g. sending ICMP unreachable or
TCP reset messages to tear down TCP connections can also be filtered out."

Sweep the forged-teardown injection rate and measure connection survival
with and without the victim's distributed-firewall rules; both RST and
ICMP variants.
"""

from __future__ import annotations

from repro.core import DeploymentScope
from repro.core.apps import DistributedFirewallApp, FirewallRule
from repro.experiments.common import ExperimentConfig, register
from repro.net import Network
from repro.scenario import TopologySpec
from repro.scenario.attacks import launch_teardown, teardown_setup
from repro.scenario.tcs import build_tcs_world
from repro.util.tables import Table

__all__ = ["run", "misuse_table"]


def _world(cfg: ExperimentConfig, firewall: bool, mode: str, rate: float):
    net = Network(TopologySpec(kind="hierarchical", n_core=2,
                               transit_per_core=2,
                               stub_per_transit=5).build(cfg.seed))
    victim, peers, attacker, pool = teardown_setup(net, n_peers=4)
    fw = None
    if firewall:
        world = build_tcs_world(net, owner_asn=victim.asn, service=True)
        fw = DistributedFirewallApp(
            world.service, [FirewallRule.block_teardown_rst(),
                            FirewallRule.block_icmp_unreachable()])
        fw.deploy(DeploymentScope.everywhere())
    launch_teardown(net, attacker, pool, rate_pps=rate, duration=0.5,
                    mode=mode, seed=cfg.seed)
    net.run(until=1.0)
    return pool, fw


def misuse_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E8: connection survival under forged teardown attacks (Sec. 4.3)",
        ["mode", "inject_pps", "survival_no_defense", "survival_with_tcs_fw",
         "fw_drops"],
    )
    for mode in ("rst", "icmp"):
        for rate in (5.0, 20.0, 100.0):
            pool_bare, _ = _world(cfg, firewall=False, mode=mode, rate=rate)
            pool_fw, fw = _world(cfg, firewall=True, mode=mode, rate=rate)
            table.add_row(mode, rate,
                          round(pool_bare.survival_fraction, 2),
                          round(pool_fw.survival_fraction, 2),
                          fw.dropped())
    table.add_note("4 established connections per run; the firewall rules "
                   "run in the victim's destination-owner stage on every "
                   "adaptive device")
    return table


@register("E8")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [misuse_table(cfg)]
