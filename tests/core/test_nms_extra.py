"""Additional NMS and TCSP edge-case tests."""

import pytest

from repro.core import ComponentGraph, NumberAuthority, Tcsp
from repro.core.components import LoggerComponent
from repro.core.nms import IspNms
from repro.errors import CertificateError, DeploymentError
from repro.net import Network, TopologyBuilder


def world(seed=26):
    net = Network(TopologyBuilder.hierarchical(2, 2, 3, seed=seed))
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, net)
    return net, authority, tcsp


def log_factory(device_ctx):
    g = ComponentGraph("log")
    g.add(LoggerComponent("log"))
    return g


class TestNmsDeviceManagement:
    def test_attach_devices_subset(self):
        net, authority, tcsp = world()
        nms = IspNms("isp", net, net.topology.as_numbers, ca=tcsp.ca)
        nms.attach_devices(net.topology.stub_ases[:2])
        assert set(nms.devices) == set(net.topology.stub_ases[:2])
        # second attach is idempotent
        nms.attach_devices(net.topology.stub_ases[:2])
        assert len(nms.devices) == 2

    def test_device_at_missing(self):
        net, authority, tcsp = world()
        nms = IspNms("isp", net, [0], ca=tcsp.ca)
        with pytest.raises(DeploymentError):
            nms.device_at(0)

    def test_deploy_skips_deviceless_routers(self):
        net, authority, tcsp = world()
        nms = tcsp.contract_isp("isp", net.topology.as_numbers,
                                attach_all=False)
        nms.attach_devices([net.topology.stub_ases[0]])
        prefix = net.topology.prefix_of(net.topology.stub_ases[0])
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        configured = nms.deploy(cert, user, net.topology.as_numbers,
                                dst_graph_factory=log_factory)
        assert configured == [net.topology.stub_ases[0]]

    def test_deploy_requires_some_graph(self):
        """A deploy with factories returning nothing configures nothing."""
        net, authority, tcsp = world()
        nms = tcsp.contract_isp("isp", net.topology.as_numbers)
        prefix = net.topology.prefix_of(net.topology.stub_ases[0])
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        configured = nms.deploy(cert, user, net.topology.as_numbers)
        assert configured == []

    def test_read_logs_without_service_is_empty(self):
        net, authority, tcsp = world()
        nms = tcsp.contract_isp("isp", net.topology.as_numbers)
        prefix = net.topology.prefix_of(net.topology.stub_ases[0])
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        assert nms.read_logs(cert, "acme") == []

    def test_read_logs_wrong_user(self):
        net, authority, tcsp = world()
        nms = tcsp.contract_isp("isp", net.topology.as_numbers)
        prefix = net.topology.prefix_of(net.topology.stub_ases[0])
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        with pytest.raises(CertificateError):
            nms.read_logs(cert, "other")

    def test_set_active_wrong_user(self):
        net, authority, tcsp = world()
        nms = tcsp.contract_isp("isp", net.topology.as_numbers)
        prefix = net.topology.prefix_of(net.topology.stub_ases[0])
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        with pytest.raises(CertificateError):
            nms.set_active(cert, "other", True)


class TestCertificateExpiryInDeployment:
    def test_expired_certificate_blocks_deployment(self):
        net, authority, tcsp = world()
        nms = tcsp.contract_isp("isp", net.topology.as_numbers)
        asn = net.topology.stub_ases[0]
        prefix = net.topology.prefix_of(asn)
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix], validity=0.5)
        # let simulated time pass beyond the validity window
        net.sim.schedule_at(1.0, lambda: None)
        net.run()
        with pytest.raises(CertificateError):
            nms.deploy(cert, user, [asn], dst_graph_factory=log_factory)

    def test_revoked_certificate_blocks_management(self):
        net, authority, tcsp = world()
        nms = tcsp.contract_isp("isp", net.topology.as_numbers)
        asn = net.topology.stub_ases[0]
        prefix = net.topology.prefix_of(asn)
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        nms.deploy(cert, user, [asn], dst_graph_factory=log_factory)
        tcsp.ca.revoke(cert)
        with pytest.raises(CertificateError):
            nms.set_active(cert, "acme", False)


class TestTcspRuleAccounting:
    def test_total_rule_count_across_isps(self):
        net, authority, tcsp = world()
        half = len(net.topology.as_numbers) // 2
        tcsp.contract_isp("isp1", net.topology.as_numbers[:half])
        tcsp.contract_isp("isp2", net.topology.as_numbers[half:])
        asn = net.topology.stub_ases[0]
        prefix = net.topology.prefix_of(asn)
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        from repro.core import DeploymentScope

        tcsp.deploy_service(cert, DeploymentScope.everywhere(),
                            dst_graph_factory=log_factory)
        assert tcsp.total_rule_count() == len(net.topology.as_numbers)
