"""Shape tests for the E12 (incentives) and E13 (ablation) experiments."""

import pytest

from repro.experiments.common import ExperimentConfig

CFG = ExperimentConfig(seed=42, scale=0.25)


class TestE12:
    @pytest.fixture(scope="class")
    def tables(self):
        from repro.experiments import e12_incentives

        return e12_incentives.run(CFG)

    def test_full_deployment_frees_all_tiers(self, tables):
        incentives = tables[0]
        assert {row[0] for row in incentives.rows} == {"core", "transit", "edge"}
        for row in incentives.rows:
            assert row[1] > 0        # attack loaded every tier before
            assert row[2] == 0.0     # nothing left after
            assert row[3] == 100.0

    def test_containment_scales_with_deployment(self, tables):
        containment = tables[1]
        killed = containment.column("killed_at_source_as_%")
        escaped = containment.column("escaped_to_core_%")
        assert killed == sorted(killed)
        assert escaped == sorted(escaped, reverse=True)
        assert killed[-1] == 100.0 and escaped[-1] == 0.0

    def test_containment_roughly_tracks_fraction(self, tables):
        containment = tables[1]
        for fraction, killed in zip(containment.column("stub_deployment"),
                                    containment.column("killed_at_source_as_%")):
            assert killed == pytest.approx(fraction * 100, abs=20)


class TestE13:
    @pytest.fixture(scope="class")
    def tables(self):
        from repro.experiments import e13_ablations

        return e13_ablations.run(CFG)

    def test_stage_order_semantics(self, tables):
        rows = {row[0]: row for row in tables[0].rows}
        # the packet is dropped by the sender's stage either way ...
        assert rows["src-first"][1] is False
        assert rows["dst-first"][1] is False
        # ... but dst-first leaks it into the receiver's logs
        assert rows["src-first"][2] == 0
        assert rows["dst-first"][2] == 1

    def test_redirect_policy_rows_present(self, tables):
        policies = {row[0] for row in tables[1].rows}
        assert policies == {"redirect-owned-only", "redirect-everything"}
        for row in tables[1].rows:
            assert row[2] > 0  # measured a real per-packet cost

    def test_stateful_filter_spares_legit_resets(self, tables):
        rows = {row[0]: row for row in tables[2].rows}
        stateless = rows["stateless block-all-rst"]
        stateful = rows["stateful connection-aware"]
        assert stateless[1] == 100.0 and stateless[2] == 100.0
        assert stateful[1] == 100.0 and stateful[2] == 0.0


class TestStageOrderDeviceOption:
    def test_invalid_order_rejected(self):
        from repro.core import AdaptiveDevice, DeviceContext, OwnershipRegistry
        from repro.errors import DeploymentError
        from repro.net import ASRole, Prefix

        with pytest.raises(DeploymentError):
            AdaptiveDevice(
                DeviceContext(asn=1, role=ASRole.STUB,
                              local_prefix=Prefix.parse("10.0.0.0/16")),
                OwnershipRegistry(), stage_order="sideways")
