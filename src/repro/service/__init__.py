"""Live traffic-control service layer (ROADMAP item 3).

The paper's central artifact — the redirect decision plus the two-stage
verification/filtering pipeline gated by ownership and safety checks —
is packaged here as an engine-agnostic service:

* :mod:`clock`      — the :class:`Clock` protocol with wall-clock and
  manual implementations (the simulator side of the seam is
  :class:`repro.net.simulator.SimClock`),
* :mod:`core`       — :class:`DecisionCore`, the decision path shared by
  the simulator's :class:`~repro.core.device.AdaptiveDevice` and the
  live facade (flow cache, ownership LPM, two-stage pipeline, safety
  containment),
* :mod:`facade`     — :class:`ServiceFacade` (``check(src, dst) ->
  Verdict``) and :class:`TrafficController` (facade + token-bucket
  admission) for direct embedding,
* :mod:`middleware` — framework-free ASGI and WSGI middleware adapters.

The simulator keeps emitting ``device.*`` metric families; the live path
emits ``service.*`` families through the same :mod:`repro.obs` registry.
"""

from repro.service.clock import Clock, ManualClock, WallClock
from repro.service.core import DecisionCore, FLOW_CACHE_CAPACITY
from repro.service.facade import ServiceFacade, TrafficController, Verdict
from repro.service.middleware import (
    AsgiTrafficMiddleware,
    WsgiTrafficMiddleware,
)

__all__ = [
    "Clock",
    "ManualClock",
    "WallClock",
    "DecisionCore",
    "FLOW_CACHE_CAPACITY",
    "ServiceFacade",
    "TrafficController",
    "Verdict",
    "AsgiTrafficMiddleware",
    "WsgiTrafficMiddleware",
]
