"""Deterministic discrete-event simulation engine.

A minimal but complete event loop: a binary heap of ``(time, seq, event)``
tuples where ``seq`` is a monotone tiebreaker, so runs are bit-for-bit
reproducible regardless of callback identity.  All network elements (links,
hosts, attack processes, trigger components) schedule callbacks here.

Hot-path notes: heap entries are plain tuples so every sift comparison runs
in C (no Python ``__lt__`` dispatch), :class:`Event` is a ``__slots__``
class rather than a dataclass, and cancelled-event tombstones are swept out
by periodic heap compaction instead of lingering until their pop time.
Compaction filters the backing list and re-heapifies; because ``(time,
seq)`` is a total order, the pop sequence — and therefore simulation
output — is unchanged bit for bit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.obs.metrics import declare

__all__ = ["Event", "SimClock", "Simulator"]

#: Compact the heap once at least this many tombstones have accumulated
#: *and* they outnumber the live events.
_COMPACT_MIN_CANCELLED = 64

_EVENTS = declare("sim.events_processed", "counter",
                  help="events popped and executed by the event loop")
_CANCELLED = declare("sim.events_cancelled", "counter",
                     help="events cancelled before firing")
_COMPACTIONS = declare("sim.heap_compactions", "counter",
                       help="tombstone-compaction sweeps of the event heap")
_BATCH_EVENTS = declare("sim.batch_events", "counter",
                        help="packet-batch event slots scheduled")
_BATCH_PACKETS = declare("sim.batch_packets", "counter",
                         help="packets carried inside batch event slots")


class SimClock:
    """A :class:`repro.service.clock.Clock` view of a simulator's time —
    the simulated side of the service layer's clock seam."""

    __slots__ = ("_sim",)

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim

    def now(self) -> float:
        return self._sim._now


class Event:
    """A scheduled callback.  Ordered by (time, seq)."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple = (), cancelled: bool = False,
                 _sim: "Optional[Simulator]" = None) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = cancelled
        self._sim = _sim

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); it stays in the heap until
        the next compaction sweep or its pop time)."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, seq={self.seq}{state})"


class Simulator:
    """Discrete-event simulator with deterministic ordering.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> _ = sim.schedule(0.5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._now = 0.0
        # registry-backed counters (unlabelled: the most recently built
        # simulator owns the family's live series — one world per run)
        self._m_processed = _EVENTS.labelled()
        self._m_cancelled = _CANCELLED.labelled()
        self._m_compactions = _COMPACTIONS.labelled()
        # batch-slot counters are created lazily on the first
        # schedule_batch(), so scalar-only runs keep byte-identical
        # registry snapshots (no extra zero-valued series)
        self._m_batch_events = None
        self._m_batch_packets = None
        self._cancelled_pending = 0
        self.running = False
        self._reset_hooks: list[Callable[[], None]] = []

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def clock(self) -> "SimClock":
        """This simulator as a :class:`repro.service.clock.Clock` — hand it
        to a :class:`~repro.service.facade.ServiceFacade` to drive the live
        decision path from simulated time."""
        return SimClock(self)

    @property
    def events_processed(self) -> int:
        return self._m_processed.value

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones
        not yet swept by compaction)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time:.6f} < now {self._now:.6f}")
        ev = Event(time, next(self._seq), fn, args, False, self)
        heapq.heappush(self._heap, (time, ev.seq, ev))
        return ev

    @property
    def batch_events(self) -> int:
        """Batch event slots scheduled so far (0 if none ever were)."""
        return 0 if self._m_batch_events is None else self._m_batch_events.value

    @property
    def batch_packets(self) -> int:
        """Packets carried by batch event slots so far."""
        return 0 if self._m_batch_packets is None else self._m_batch_packets.value

    def schedule_batch(self, delay: float, fn: Callable[..., Any], batch: Any,
                       *args: Any) -> Event:
        """Schedule a packet-batch event slot: ``fn(batch, *args)`` fires as
        ONE heap event carrying the whole batch.

        This is the batching analogue of per-packet :meth:`schedule` — the
        heap cost is amortised over ``len(batch)`` packets.  Accounting
        (``sim.batch_events`` / ``sim.batch_packets``) is registered on
        first use only, so a scalar-only run's registry snapshot is
        unchanged by this method existing.
        """
        if self._m_batch_events is None:
            self._m_batch_events = _BATCH_EVENTS.labelled()
            self._m_batch_packets = _BATCH_PACKETS.labelled()
        self._m_batch_events.value += 1
        self._m_batch_packets.value += len(batch)
        return self.schedule(delay, fn, batch, *args)

    def schedule_every(self, interval: float, fn: Callable[..., Any], *args: Any,
                       until: Optional[float] = None, start: Optional[float] = None) -> Event:
        """Schedule a periodic callback (first firing at ``start`` or now+interval).

        The callback may return False to stop the recurrence.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be > 0, got {interval}")
        first = self._now + interval if start is None else start

        def tick() -> None:
            if until is not None and self._now > until:
                return
            result = fn(*args)
            if result is False:
                return
            if until is None or self._now + interval <= until:
                self.schedule(interval, tick)

        return self.schedule_at(first, tick)

    def _note_cancelled(self) -> None:
        self._m_cancelled.value += 1
        self._cancelled_pending += 1
        if (self._cancelled_pending >= _COMPACT_MIN_CANCELLED
                and self._cancelled_pending * 2 >= len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled tombstones and re-heapify.

        ``(time, seq)`` totally orders entries, so rebuilding the heap
        cannot change the order live events pop in.
        """
        # in-place so aliases held by a running `run()` loop stay valid
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self._m_compactions.value += 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events processed."""
        processed = self._m_processed
        processed_before = processed.value
        heap = self._heap
        self.running = True
        try:
            while heap:
                if max_events is not None and processed.value - processed_before >= max_events:
                    break
                time, _, ev = heap[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(heap)
                if ev.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._now = time
                ev.fn(*ev.args)
                processed.value += 1
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self.running = False
        return processed.value - processed_before

    def add_reset_hook(self, fn: Callable[[], None]) -> None:
        """Register a callback run (then discarded) by :meth:`reset`.

        Stateful subsystems hanging off the simulator — fault injectors,
        NMS watchdogs — register here so that back-to-back trials in one
        process start independent: :meth:`reset` both drains the heap *and*
        tells them to forget injected faults / timer handles.
        """
        self._reset_hooks.append(fn)

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero.

        Also restarts the ``seq`` tiebreaker, so a reset simulator
        reproduces a fresh one bit for bit (same-timestamp events fire in
        the same order and carry the same ``seq`` values).  Reset hooks
        (:meth:`add_reset_hook`) run once and are then discarded — a
        re-armed subsystem must re-register.
        """
        self._heap.clear()
        self._now = 0.0
        self._m_processed.reset()
        if self._m_batch_events is not None:
            self._m_batch_events.reset()
            self._m_batch_packets.reset()
        self._cancelled_pending = 0
        self._seq = itertools.count()
        hooks, self._reset_hooks = self._reset_hooks, []
        for fn in hooks:
            fn()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={len(self._heap)})"
