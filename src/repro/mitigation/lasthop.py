"""Last-hop filtering: the attacked host sets filter rules at its last-hop
IP router (Lakshminarayanan et al. [11], discussed in Sec. 3.1).

"The idea is that the network infrastructure is able to deal with traffic
bursts ... while the attacked host is not able to process incoming
traffic.  An interesting open question is, whether a host is still able to
configure filter rules, if its computing or memory resources are exhausted
under a DDoS attack."

We reproduce both the mechanism and the open question: configuration
attempts *fail* when the victim's inbound packet rate already exceeds its
processing capacity at the moment it tries to install rules — so last-hop
filtering only helps if configured before (or early in) the attack.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import ControlPlaneUnavailable, MitigationError
from repro.mitigation.base import Mitigation
from repro.net.link import Link
from repro.net.network import Network
from repro.net.node import Host, Router
from repro.net.packet import Packet
from repro.util.stats import WindowedCounter

__all__ = ["LastHopFilter"]

RulePredicate = Callable[[Packet], bool]  # True => drop


class LastHopFilter(Mitigation):
    """Victim-configured filter rules on the victim's own last-hop router."""

    name = "lasthop"

    def __init__(self, victim: Host, drop_predicate: RulePredicate,
                 processing_capacity_pps: float = 2_000.0,
                 window: float = 0.25) -> None:
        super().__init__()
        self.victim = victim
        self.drop_predicate = drop_predicate
        self.capacity_pps = processing_capacity_pps
        self.inbound = WindowedCounter(window)
        self.configured = False
        self.dropped = 0
        self.failed_attempts = 0
        self.network: Optional[Network] = None
        # observe inbound load regardless of configuration state
        victim.add_responder(self._observe)

    def _observe(self, packet: Packet, host: Host, now: float):
        self.inbound.add(now)
        return None

    def inbound_pps(self, now: float) -> float:
        return self.inbound.rate(now)

    # ------------------------------------------------------------------ deploy
    def deploy(self, network: Network, asns: Iterable[int] = ()) -> None:
        """Record the network; rules are installed via :meth:`try_configure`."""
        self.network = network

    def try_configure(self) -> bool:
        """The victim attempts to push its rules to the last-hop router.

        Succeeds only while the victim can still process its inbound load;
        under overload the attempt raises the paper's open question and
        returns False.
        """
        if self.network is None:
            raise MitigationError("call deploy() first")
        now = self.network.sim.now
        if self.inbound_pps(now) > self.capacity_pps:
            self.failed_attempts += 1
            return False
        self._install()
        return True

    def configure_or_raise(self) -> None:
        """Like :meth:`try_configure` but raising on overload."""
        if not self.try_configure():
            raise ControlPlaneUnavailable(
                f"victim {self.victim.name} overloaded "
                f"({self.inbound_pps(self.network.sim.now):.0f} pps > "
                f"{self.capacity_pps:.0f} pps): cannot set filter rules"
            )

    def _install(self) -> None:
        assert self.network is not None
        victim_addr = int(self.victim.address)

        def filt(packet: Packet, router: Router, link: Optional[Link],
                 now: float) -> bool:
            if int(packet.dst) != victim_addr:
                return True
            if self.drop_predicate(packet):
                self.dropped += 1
                return False
            return True

        self.network.routers[self.victim.asn].add_filter(self.name, filt)
        self.deployed_asns.add(self.victim.asn)
        self.configured = True
