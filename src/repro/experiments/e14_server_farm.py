"""E14 — the server-farm failure mode of congestion-based detection
(paper Sec. 3.1).

"Pushback assumes that DDoS attacks result in overloaded links.  In many
cases, however, an attacked server's resources are exhausted before its
uplink is overloaded.  In particular, this is the case for servers that
are hosted in farms, where the communication link is provisioned to feed
a large number of servers."

Setup: the victim sits behind a generously provisioned farm link (1 Gbit/s)
but can only *service* a bounded packet rate (CPU model).  A moderate
botnet flood exhausts the server while the link stays nearly idle:
pushback's drop-statistics detector never fires.  The TCS, whose rules are
deployed by the *victim* rather than triggered by congestion, still kills
the flood near its sources.
"""

from __future__ import annotations

from repro.attack import DirectFlood
from repro.experiments.common import ExperimentConfig, register
from repro.mitigation import Pushback, PushbackConfig
from repro.net import LinkParams, Network
from repro.scenario import TopologySpec
from repro.util.tables import Table
from repro.util.units import Mbps, ms

__all__ = ["run", "farm_table"]

FARM_LINK = LinkParams(bandwidth=Mbps(1000), delay=ms(2), buffer_bytes=4_000_000)


def _run_once(cfg: ExperimentConfig, defense: str):
    net = Network(TopologySpec(kind="hierarchical", n_core=2,
                               transit_per_core=2,
                               stub_per_transit=6).build(cfg.seed))
    stubs = net.topology.stub_ases
    # farm-hosted victim: fat pipe, bounded service rate
    victim = net.add_host(stubs[0], access=FARM_LINK, processing_pps=1_500.0)
    agents = [net.add_host(a) for a in stubs[1:1 + cfg.scaled(8, minimum=4)]]
    clients = [net.add_host(a) for a in stubs[10:13]]

    pushback = None
    if defense == "pushback":
        pushback = Pushback(PushbackConfig(top_aggregates=3))
        pushback.deploy(net, net.topology.as_numbers, until=1.2)
    elif defense == "tcs":
        victim_prefix = net.topology.prefix_of(victim.asn)
        agent_prefixes = [net.topology.prefix_of(a.asn) for a in agents]
        for asn in {a.asn for a in agents}:
            prefix = net.topology.prefix_of(asn)

            def filt(pkt, router, link, now, prefix=prefix,
                     victim_prefix=victim_prefix):
                return not (victim_prefix.contains(pkt.dst)
                            and prefix.contains(pkt.src))

            net.routers[asn].add_filter("tcs-blacklist", filt)
        del agent_prefixes

    DirectFlood(net, agents, victim, rate_pps=500.0, duration=0.8,
                spoof="none", seed=cfg.seed).launch()
    legit_sent = 30
    for i, client in enumerate(clients):
        for j in range(legit_sent // len(clients)):
            net.sim.schedule_at(0.05 + j * 0.08 + i * 0.01, client.send,
                                __import__("repro.net", fromlist=["Packet"])
                                .Packet.udp(client.address, victim.address,
                                            dport=80, size=256, kind="legit"))
    net.run(until=1.3)
    farm_link_util = victim.downlink.tx_bytes * 8 / FARM_LINK.bandwidth / 0.8
    legit_serviced = victim.received_by_kind.get("legit", 0)
    legit_total = legit_serviced + victim.cpu_dropped_by_kind.get("legit", 0)
    return {
        "farm_link_util_%": round(farm_link_util * 100, 1),
        "cpu_dropped": victim.cpu_dropped,
        "pushback_activations": pushback.activations if pushback else "-",
        "legit_serviced_%": round(
            legit_serviced / legit_total * 100 if legit_total else 100.0, 1),
    }


def farm_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E14: server-farm failure mode — CPU dies before the link (Sec. 3.1)",
        ["defense", "farm_link_util_%", "victim_cpu_drops",
         "pushback_activations", "legit_serviced_%"],
    )
    for defense in ("none", "pushback", "tcs"):
        row = _run_once(cfg, defense)
        table.add_row(defense, row["farm_link_util_%"], row["cpu_dropped"],
                      row["pushback_activations"], row["legit_serviced_%"])
    table.add_note("the farm link never congests (utilisation ~2%), so "
                   "pushback's drop-statistics detector has nothing to see; "
                   "the victim-deployed TCS blacklist works regardless")
    return table


@register("E14")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [farm_table(cfg)]
