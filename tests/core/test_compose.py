"""Tests for declarative service specification and composition."""

import pytest

from repro.core.compose import RuleSpec, ServiceSpec, compile_spec, spec_factory
from repro.core.components import (
    ComponentContext,
    HeaderFilter,
    LoggerComponent,
    PrefixBlacklist,
    RateLimiterComponent,
    SourceAntiSpoof,
    TriggerComponent,
    Verdict,
)
from repro.core.device import DeviceContext
from repro.core import NetworkUser
from repro.errors import DeploymentError
from repro.net import ASRole, IPv4Address, Packet, Prefix

A = IPv4Address.parse
CTX = DeviceContext(asn=3, role=ASRole.STUB,
                    local_prefix=Prefix.parse("10.3.0.0/16"))
OWNER = NetworkUser("acme", prefixes=[Prefix.parse("10.1.0.0/16")])


def comp_ctx(now=0.0):
    return ComponentContext(now=now, asn=3, is_transit=False,
                            local_prefix=Prefix.parse("10.3.0.0/16"),
                            stage="dest", owner=OWNER)


class TestValidation:
    def test_unknown_action(self):
        with pytest.raises(DeploymentError):
            RuleSpec(action="teleport").validate()

    def test_rate_limit_requires_rate(self):
        with pytest.raises(DeploymentError):
            RuleSpec(action="rate-limit").validate()

    def test_blacklist_requires_prefixes(self):
        with pytest.raises(DeploymentError):
            RuleSpec(action="blacklist").validate()

    def test_trigger_requires_threshold(self):
        with pytest.raises(DeploymentError):
            RuleSpec(action="trigger").validate()

    def test_empty_spec(self):
        with pytest.raises(DeploymentError):
            ServiceSpec(name="empty").validate()

    def test_unknown_protocol_rejected_at_compile(self):
        spec = ServiceSpec("s", (RuleSpec(action="drop", proto="sctp"),))
        with pytest.raises(DeploymentError):
            compile_spec(spec, CTX)


class TestCompilation:
    def test_component_families(self):
        spec = ServiceSpec("kitchen-sink", (
            RuleSpec(action="drop", proto="tcp", tcp_flags="rst"),
            RuleSpec(action="rate-limit", rate_bps=1e6),
            RuleSpec(action="blacklist", prefixes=("10.200.0.0/16",)),
            RuleSpec(action="anti-spoof", prefixes=("10.1.0.0/16",)),
            RuleSpec(action="log"),
            RuleSpec(action="collect-stats"),
            RuleSpec(action="trigger", threshold_pps=100.0),
            RuleSpec(action="scrub-payload"),
        ))
        graph = compile_spec(spec, CTX)
        types = [type(c) for c in graph.components()]
        assert HeaderFilter in types
        assert RateLimiterComponent in types
        assert PrefixBlacklist in types
        assert SourceAntiSpoof in types
        assert LoggerComponent in types
        assert TriggerComponent in types
        assert len(graph) == 8

    def test_graph_name_carries_device(self):
        spec = ServiceSpec("fw", (RuleSpec(action="log"),))
        assert compile_spec(spec, CTX).name == "fw@AS3"

    def test_compiled_graph_is_vetted_and_runs(self):
        spec = ServiceSpec("fw", (
            RuleSpec(action="drop", proto="udp", dport=53, label="no-dns"),
            RuleSpec(action="log"),
        ))
        graph = compile_spec(spec, CTX)
        dns = Packet.udp(A("10.9.0.1"), A("10.1.0.1"), dport=53)
        web = Packet.udp(A("10.9.0.1"), A("10.1.0.1"), dport=80)
        assert graph.process(dns, comp_ctx()) is Verdict.DROP
        assert graph.process(web, comp_ctx()) is Verdict.PASS

    def test_rule_labels_used(self):
        spec = ServiceSpec("fw", (RuleSpec(action="log", label="audit"),))
        graph = compile_spec(spec, CTX)
        assert graph.component("audit")

    def test_trigger_action_bound(self):
        fired = []
        spec = ServiceSpec("t", (RuleSpec(action="trigger", threshold_pps=5.0),))
        graph = compile_spec(spec, CTX,
                             trigger_action=lambda ctx, rate: fired.append(rate))
        pkt = Packet.udp(A("10.9.0.1"), A("10.1.0.1"))
        for i in range(40):
            graph.process(pkt, comp_ctx(now=i * 0.01))
        assert fired

    def test_icmp_and_flag_vocabulary(self):
        spec = ServiceSpec("fw", (
            RuleSpec(action="drop", proto="icmp", icmp_type="host-unreachable"),
            RuleSpec(action="drop", proto="tcp", tcp_flags="synack"),
        ))
        graph = compile_spec(spec, CTX)
        from repro.net import ICMPType

        icmp = Packet.icmp(A("10.9.0.1"), A("10.1.0.1"),
                           ICMPType.HOST_UNREACHABLE)
        synack = Packet.tcp_synack(A("10.9.0.1"), A("10.1.0.1"))
        assert graph.process(icmp, comp_ctx()) is Verdict.DROP
        assert graph.process(synack, comp_ctx()) is Verdict.DROP


class TestEndToEndDeployment:
    def test_spec_factory_deploys_through_tcsp(self):
        from repro.core import (
            DeploymentScope,
            NumberAuthority,
            Tcsp,
            TrafficControlService,
        )
        from repro.net import Network, TopologyBuilder

        net = Network(TopologyBuilder.hierarchical(2, 2, 3, seed=8))
        authority = NumberAuthority()
        tcsp = Tcsp("TCSP", authority, net)
        tcsp.contract_isp("isp", net.topology.as_numbers)
        victim_asn = net.topology.stub_ases[0]
        prefix = net.topology.prefix_of(victim_asn)
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        svc = TrafficControlService(tcsp, user, cert)
        spec = ServiceSpec("block-dns", (RuleSpec(action="drop", proto="udp",
                                                  dport=53),))
        svc.deploy(DeploymentScope.everywhere(),
                   dst_graph_factory=spec_factory(spec))
        victim = net.add_host(victim_asn)
        client = net.add_host(net.topology.stub_ases[1])
        client.send(Packet.udp(client.address, victim.address, dport=53))
        client.send(Packet.udp(client.address, victim.address, dport=80))
        net.run()
        assert victim.received_packets == 1
