"""Common mitigation interface and report structure.

A mitigation deploys onto a set of ASes of a packet-level network (and
optionally exposes a fluid-model filter).  Experiments drive all baselines
— and the paper's traffic control service — through this one interface, so
the E2 effectiveness matrix compares like with like.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import MitigationError
from repro.net.fluid import FluidFilter
from repro.net.network import Network
from repro.net.topology import ASRole, Topology
from repro.util.rng import derive_rng

__all__ = ["Mitigation", "MitigationReport", "deployment_sample"]


class Mitigation(abc.ABC):
    """A deployable DDoS mitigation scheme."""

    #: short identifier used in router filter names and result tables
    name: str = "mitigation"

    def __init__(self) -> None:
        self.deployed_asns: set[int] = set()

    @abc.abstractmethod
    def deploy(self, network: Network, asns: Iterable[int]) -> None:
        """Install the scheme on the given ASes of a packet-level network."""

    def undeploy(self, network: Network) -> None:
        """Remove this scheme's router filters."""
        for asn in self.deployed_asns:
            network.routers[asn].remove_filter(self.name)
        self.deployed_asns.clear()

    def fluid_filter(self) -> Optional[FluidFilter]:
        """Fluid-model equivalent, when the scheme has one (else None)."""
        return None

    def is_deployed_at(self, asn: int) -> bool:
        return asn in self.deployed_asns


@dataclass(frozen=True)
class MitigationReport:
    """Uniform outcome record for the mitigation-effectiveness matrix (E2)."""

    mitigation: str
    attack_kind: str
    victim_attack_fraction: float   # attack traffic reaching victim / sent toward it
    legit_goodput: float            # legit delivered / legit sent
    collateral_fraction: float      # legit killed by the mitigation itself
    identified_true_sources: int    # ground-truth attack origins identified
    identified_false_sources: int   # innocent parties identified as sources
    notes: str = ""

    def as_row(self) -> tuple:
        return (
            self.mitigation, self.attack_kind,
            round(self.victim_attack_fraction, 3),
            round(self.legit_goodput, 3),
            round(self.collateral_fraction, 3),
            self.identified_true_sources, self.identified_false_sources,
            self.notes,
        )


def deployment_sample(topology: Topology, fraction: float,
                      seed: int | np.random.Generator | None = None,
                      roles: Sequence[ASRole] | None = None,
                      always_include: Iterable[int] = ()) -> set[int]:
    """Sample the ASes that deploy a scheme.

    ``fraction`` of the eligible ASes (optionally restricted to ``roles``)
    are drawn uniformly; ``always_include`` ASes are added unconditionally
    (e.g. the victim's own ISP, which has every incentive to participate).
    """
    if not (0.0 <= fraction <= 1.0):
        raise MitigationError(f"deployment fraction must be in [0,1], got {fraction}")
    rng = derive_rng(seed, "deployment")
    eligible = [
        asn for asn in topology.as_numbers
        if roles is None or topology.role_of(asn) in roles
    ]
    k = int(round(fraction * len(eligible)))
    chosen: set[int] = set(always_include)
    if k > 0 and eligible:
        picked = rng.choice(len(eligible), size=min(k, len(eligible)), replace=False)
        chosen.update(eligible[i] for i in picked)
    return chosen
