"""Cross-validation: the packet-level simulator and the fluid model are
independent implementations of the same network semantics — on scenarios
both can express, they must agree (within discretisation noise).

This is the repository's internal replication check: every sweep result
(E3/E4/E12) rests on the fluid model, and every matrix result (E2) on the
packet model; this file pins them together.
"""

import pytest

from repro.attack import DirectFlood
from repro.mitigation import IngressFiltering
from repro.net import (
    Flow,
    FlowSet,
    FluidNetwork,
    LinkParams,
    Network,
    Packet,
    TopologyBuilder,
)
from repro.util.units import Mbps, ms


class TestBottleneckAgreement:
    @pytest.mark.parametrize("offered_mbps", [5.0, 15.0, 40.0])
    def test_delivery_through_a_bottleneck(self, offered_mbps):
        """Delivered rate == min(offered, capacity) in both models."""
        capacity = Mbps(10)
        topo = TopologyBuilder.line(3)
        # fluid model
        fluid = FluidNetwork(topo, capacity_fn=lambda a, b: capacity)
        flows = FlowSet([Flow(0, 2, Mbps(offered_mbps))])
        fluid_delivered = fluid.evaluate(flows).delivered_rate()
        # packet model: same bottleneck on the inter-AS links
        net = Network(
            topo if False else TopologyBuilder.line(3),
            link_params_fn=lambda a, b: LinkParams(
                bandwidth=capacity, delay=ms(1), buffer_bytes=40_000),
        )
        fat = LinkParams(bandwidth=Mbps(1000), delay=ms(1), buffer_bytes=10**7)
        src = net.add_host(0, access=fat)
        dst = net.add_host(2, access=fat)
        size = 1000
        rate_pps = Mbps(offered_mbps) / (size * 8)
        duration = 1.0
        DirectFlood(net, [src], dst, rate_pps=rate_pps, packet_size=size,
                    duration=duration, spoof="none", seed=1).launch()
        net.run(until=duration + 0.5)
        packet_delivered = dst.received_bytes * 8 / duration
        expected = min(Mbps(offered_mbps), capacity)
        assert fluid_delivered == pytest.approx(expected, rel=0.02)
        # the packet model carries queueing/startup transients: 12% slack
        assert packet_delivered == pytest.approx(expected, rel=0.12)
        assert packet_delivered == pytest.approx(fluid_delivered, rel=0.12)


class TestFilteringAgreement:
    @pytest.mark.parametrize("deployed_fraction", [0.0, 0.5, 1.0])
    def test_partial_ingress_deployment(self, deployed_fraction):
        """Survival under partial ingress filtering matches across models."""
        topo = TopologyBuilder.hierarchical(2, 2, 6, seed=33)
        stubs = topo.stub_ases
        victim_asn = stubs[0]
        agent_asns = stubs[1:9]
        n_deployed = int(round(deployed_fraction * len(agent_asns)))
        deployed = set(agent_asns[:n_deployed])

        # fluid: spoofed flows, ingress filter at the deployed stubs
        fluid = FluidNetwork(topo)
        ing = IngressFiltering()
        ing.deployed_asns = set(deployed)
        flows = FlowSet([
            Flow(a, victim_asn, 1e6, kind="attack", claimed_src_asn=victim_asn)
            for a in agent_asns
        ])
        fluid_survival = fluid.evaluate(
            flows, filters=[ing.fluid_filter()], congestion=False
        ).survival_fraction("attack")

        # packet level: same layout, light rate (no congestion)
        net = Network(TopologyBuilder.hierarchical(2, 2, 6, seed=33))
        victim = net.add_host(victim_asn)
        agents = [net.add_host(a) for a in agent_asns]
        ing_pkt = IngressFiltering()
        ing_pkt.deploy(net, deployed)
        DirectFlood(net, agents, victim, rate_pps=40.0, duration=0.5,
                    spoof="random", seed=2).launch()
        # force the spoof to always claim the victim (match the fluid flows)
        net.reset_stats()
        for agent in agents:
            agent.send(Packet.udp(victim.address, victim.address,
                                  kind="probe", spoofed=True,
                                  true_origin=agent.name))
        net.run()
        delivered = victim.received_by_kind.get("probe", 0)
        packet_survival = delivered / len(agents)
        expected = 1.0 - deployed_fraction
        assert fluid_survival == pytest.approx(expected, abs=0.01)
        assert packet_survival == pytest.approx(expected, abs=0.01)


class TestPathAgreement:
    def test_paths_identical_across_models(self):
        topo = TopologyBuilder.powerlaw(n=60, m=2, seed=9)
        net = Network(topo)
        fluid = FluidNetwork(net.topology)
        nodes = net.topology.as_numbers
        for src in nodes[:6]:
            for dst in nodes[-6:]:
                assert len(net.path(src, dst)) == len(fluid.path(src, dst))
