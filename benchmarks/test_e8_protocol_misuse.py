"""Benchmark regenerating E8: protocol-misuse teardown defense (Sec. 4.3)."""

from repro.experiments import e8_protocol_misuse

from conftest import run_and_print


def test_e8(benchmark, exp_cfg):
    """E8: protocol-misuse teardown defense (Sec. 4.3)"""
    run_and_print(benchmark, e8_protocol_misuse.run, exp_cfg)
