"""Test-suite configuration: stable hypothesis settings for CI."""

from hypothesis import HealthCheck, settings

# Experiments and simulators make individual examples comparatively slow;
# disable wall-clock deadlines and the too-slow health check so the suite
# is deterministic across machines and load conditions.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
