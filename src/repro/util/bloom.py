"""Bloom filter over byte strings.

The SPIE hash-based traceback system [Snoeren et al., SIGCOMM'01] — which the
paper cites both as related work (Sec. 3.1) and as an application of the
traffic control service (Sec. 4.4, "storing a backlog of packet hashes") —
stores packet digests in Bloom filters at each router.  This implementation
is deterministic (seeded double hashing over blake2b) and supports the
standard membership/saturation queries.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.errors import ReproError

__all__ = ["BloomFilter"]


class BloomFilter:
    """Fixed-size Bloom filter with ``k`` hash functions via double hashing.

    >>> bf = BloomFilter(capacity=100, fp_rate=0.01)
    >>> bf.add(b"packet-digest")
    >>> b"packet-digest" in bf
    True
    >>> b"other" in bf
    False
    """

    __slots__ = ("n_bits", "n_hashes", "_bits", "count", "_salt")

    def __init__(self, capacity: int, fp_rate: float = 0.01, salt: int = 0) -> None:
        if capacity <= 0 or not (0.0 < fp_rate < 1.0):
            raise ReproError(f"invalid bloom parameters: capacity={capacity}, fp_rate={fp_rate}")
        # Standard sizing: m = -n ln p / (ln 2)^2 ; k = m/n ln 2.
        m = max(8, int(math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))))
        self.n_bits = m
        self.n_hashes = max(1, int(round(m / capacity * math.log(2))))
        self._bits = np.zeros(m, dtype=bool)
        self.count = 0
        self._salt = salt

    def _indices(self, item: bytes) -> np.ndarray:
        digest = hashlib.blake2b(item, digest_size=16, salt=self._salt.to_bytes(8, "little")).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        ks = np.arange(self.n_hashes, dtype=np.uint64)
        return ((h1 + ks * h2) % np.uint64(self.n_bits)).astype(np.int64)

    def add(self, item: bytes) -> bool:
        """Insert ``item``; returns True when any bit was newly set.

        A duplicate insert (or a full hash collision with earlier items)
        flips no bit, so it no longer inflates ``count`` — keeping the
        saturation/capacity estimates honest under repeated inserts.
        """
        idx = self._indices(item)
        novel = not self._bits[idx].all()
        if novel:
            self._bits[idx] = True
            self.count += 1
        return novel

    def __contains__(self, item: bytes) -> bool:
        return bool(self._bits[self._indices(item)].all())

    @property
    def saturation(self) -> float:
        """Fraction of bits set — a proxy for the achieved false-positive rate."""
        return float(self._bits.mean())

    @property
    def estimated_fp_rate(self) -> float:
        """Estimated false-positive probability at the current saturation."""
        return float(self.saturation**self.n_hashes)

    def clear(self) -> None:
        """Drop all entries (used when a router pages out an old digest window)."""
        self._bits[:] = False
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BloomFilter(bits={self.n_bits}, k={self.n_hashes}, count={self.count})"
