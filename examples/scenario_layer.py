#!/usr/bin/env python3
"""Scenario layer: one declarative spec, two simulation backends.

Shows the `repro.scenario` workflow end to end:

1. declare a scenario as data — topology + attack + defense in one
   frozen, JSON-serialisable :class:`ScenarioSpec`,
2. run it on the packet engine (discrete-event simulator),
3. run the *same spec* on the fluid engine (flow-level model),
4. compare the uniform ``MetricSet`` the two backends return,
5. derive variants (new seed, different defense) without rebuilding
   anything by hand.

Run:  python examples/scenario_layer.py
"""

from repro.scenario import (
    AttackSpec,
    DefenseSpec,
    ScenarioSpec,
    TopologySpec,
    run_scenario,
)

# --- 1. a scenario is a value: declare it, don't wire it -------------------
spec = ScenarioSpec(
    name="example-reflector",
    seed=42,
    topology=TopologySpec(kind="hierarchical", n_core=2, transit_per_core=2,
                          stub_per_transit=8),
    attack=AttackSpec(kind="reflector", n_agents=8, n_reflectors=6,
                      n_legit_clients=4, attack_rate_pps=1500.0,
                      amplification=10.0, reflector_mode="dns",
                      duration=0.6, attack_start=0.1),
    defense=DefenseSpec.of("tcs"),
    description="DNS reflector flood vs. TCS anti-spoofing",
)

print(f"spec: {spec.name!r} — {spec.description}")
print(f"  attack : {spec.attack.kind}, {spec.attack.n_agents} agents, "
      f"{spec.attack.n_reflectors} reflectors, "
      f"x{spec.attack.amplification:.0f} amplification")
print(f"  defense: {spec.defense.name}")
print(f"  JSON round-trips: "
      f"{ScenarioSpec.from_json(spec.to_json()) == spec}")
print()

# --- 2+3. the same spec on both engines ------------------------------------
results = {engine: run_scenario(spec, engine=engine)
           for engine in ("packet", "fluid")}

# --- 4. one metric schema, directly comparable across backends -------------
print(f"{'metric':<16} {'packet':>12} {'fluid':>14}")
for key in ("attack_survival", "legit_goodput", "collateral"):
    row = [getattr(results[e], key) for e in ("packet", "fluid")]
    print(f"{key:<16} {row[0]:>12.3f} {row[1]:>14.3f}")
print()
print("both engines agree: the TCS anti-spoofing rules kill the reflector")
print("flood at the stub borders (attack survival 0.0, no collateral).")
print()

# --- 5. specs derive: reseed, swap the defense, rescale --------------------
undefended = spec.with_defense(DefenseSpec.of("none"))
baseline = run_scenario(undefended, engine="packet")
print(f"derived variant {undefended.defense.name!r}: "
      f"attack survival {baseline.attack_survival:.3f} "
      f"({baseline.attack_delivered:.0f} of {baseline.attack_sent:.0f} "
      f"packets reach the victim undefended)")
reseeded = run_scenario(spec.with_seed(7), engine="packet")
print(f"reseeded (seed=7): deterministic signature "
      f"{reseeded.signature()[:16]}…")
