"""Flow-statistics backends and the collector that drives them.

Covers the :class:`~repro.core.flowstats.FlowStatsBackend` contract for
all four kinds, the exact backend's byte-identical-ordering guarantee
(batch vs scalar), the sketch backends' constant-state/heavy-hitter
behaviour, and the TrafficMatrixCollector's scalar-vs-batched parity
plus its resolver LRU.
"""

import numpy as np
import pytest

from repro.core.apps.statistics import (
    TrafficMatrixCollector,
    decode_flow_key,
    encode_flow_key,
)
from repro.core.components import ComponentContext
from repro.core.flowstats import (
    BACKEND_KINDS,
    ExactFlowStats,
    FlowStatsBackend,
    make_flow_stats,
)
from repro.errors import ReproError
from repro.net import IPv4Address, Packet, PacketBatch, Prefix, Protocol
from repro.obs import scoped


def _stream(seed, n=3_000, fan_in=400):
    rng = np.random.default_rng(seed)
    w = 1.0 / np.arange(1, fan_in + 1) ** 1.2
    w /= w.sum()
    keys = rng.choice(fan_in, size=n, p=w).astype(np.uint64)
    sizes = rng.integers(64, 1500, size=n).astype(np.int64)
    return keys, sizes


class TestFlowKeyEncoding:
    def test_round_trip(self):
        for asn, proto in [(0, Protocol.UDP), (7, Protocol.TCP),
                           (2**31, Protocol.ICMP)]:
            key = encode_flow_key(asn, proto.value)
            assert decode_flow_key(key) == (asn, proto.name)

    def test_unresolved_asn_round_trips_as_minus_one(self):
        key = encode_flow_key(-1, Protocol.UDP.value)
        assert decode_flow_key(key) == (-1, "UDP")


class TestBackendContract:
    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_satisfies_protocol(self, kind):
        assert isinstance(make_flow_stats(kind, seed=1), FlowStatsBackend)

    def test_ready_backend_passes_through(self):
        stats = ExactFlowStats()
        assert make_flow_stats(stats) is stats

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            make_flow_stats("hyperloglog")

    def test_exact_takes_no_params(self):
        with pytest.raises(ReproError):
            make_flow_stats("exact", width=64)


class TestExactBackend:
    def test_batch_matches_scalar_including_order(self):
        keys, sizes = _stream(1)
        scalar, batched = ExactFlowStats(), ExactFlowStats()
        for k, s in zip(keys.tolist(), sizes.tolist()):
            scalar.add(k, 1, s)
        batched.add_batch(keys, nbytes=sizes)
        assert list(scalar.items()) == list(batched.items())
        assert scalar.updates == batched.updates

    def test_state_grows_with_keys(self):
        small, big = ExactFlowStats(), ExactFlowStats()
        small.add_batch(np.arange(10, dtype=np.uint64))
        big.add_batch(np.arange(10_000, dtype=np.uint64))
        assert big.state_bytes() > 10 * small.state_bytes()

    def test_merge_sums_counts(self):
        a, b = ExactFlowStats(), ExactFlowStats()
        a.add(1, 2, 100)
        b.add(1, 3, 50)
        b.add(2, 1, 10)
        a.merge(b)
        assert a.packet_count(1) == 5 and a.byte_count(1) == 150
        assert a.packet_count(2) == 1


class TestSketchBackends:
    @pytest.mark.parametrize("kind", ["cmsketch", "countsketch"])
    def test_state_constant_across_fan_in(self, kind):
        small = make_flow_stats(kind, seed=1)
        big = make_flow_stats(kind, seed=1)
        small.add_batch(np.arange(100, dtype=np.uint64))
        big.add_batch(np.arange(50_000, dtype=np.uint64))
        assert small.state_bytes() == big.state_bytes()

    def test_cmsketch_never_underestimates(self):
        keys, sizes = _stream(2)
        stats = make_flow_stats("cmsketch", seed=3)
        stats.add_batch(keys, nbytes=sizes)
        uniq, counts = np.unique(keys, return_counts=True)
        for k, c in zip(uniq.tolist(), counts.tolist()):
            assert stats.packet_count(k) >= c

    @pytest.mark.parametrize("kind", ["cmsketch", "countsketch"])
    def test_top_recovers_heavy_hitters(self, kind):
        keys, sizes = _stream(3)
        stats = make_flow_stats(kind, seed=4)
        stats.add_batch(keys, nbytes=sizes)
        uniq, counts = np.unique(keys, return_counts=True)
        true_top = {int(k) for k, _ in sorted(
            zip(uniq.tolist(), counts.tolist()),
            key=lambda kv: (-kv[1], kv[0]))[:10]}
        found = {k for k, _ in stats.top(10, by="packets")}
        assert len(found & true_top) >= 9

    @pytest.mark.parametrize("kind", ["cmsketch", "countsketch"])
    def test_enumeration_bounded_by_track(self, kind):
        stats = make_flow_stats(kind, seed=5, track=16)
        stats.add_batch(np.arange(10_000, dtype=np.uint64))
        assert len(list(stats.items())) <= 16

    def test_merge_requires_same_kind(self):
        with pytest.raises(ReproError):
            make_flow_stats("cmsketch", seed=1).merge(
                make_flow_stats("countsketch", seed=1))

    def test_scalar_and_batch_sketch_tables_agree(self):
        keys, sizes = _stream(4, n=800)
        a = make_flow_stats("cmsketch", seed=6)
        b = make_flow_stats("cmsketch", seed=6)
        a.add_batch(keys, nbytes=sizes)
        for k, s in zip(keys.tolist(), sizes.tolist()):
            b.add(k, 1, s)
        assert np.array_equal(a.packet_sketch.table, b.packet_sketch.table)
        assert np.array_equal(a.byte_sketch.table, b.byte_sketch.table)

    def test_bloom_counts_but_cannot_enumerate(self):
        keys, sizes = _stream(5)
        stats = make_flow_stats("bloom", seed=7)
        stats.add_batch(keys, nbytes=sizes)
        assert list(stats.items()) == [] and stats.top(5) == []
        uniq, counts = np.unique(keys, return_counts=True)
        for k, c in zip(uniq.tolist()[:50], counts.tolist()[:50]):
            assert stats.packet_count(k) >= c


def _ctx(now=0.0):
    return ComponentContext(now=now, asn=1, is_transit=False,
                            local_prefix=Prefix.make(0, 8), stage="dest",
                            owner=None)


def _traffic(n=400, hosts=37):
    rng = np.random.default_rng(11)
    srcs = rng.integers(1, hosts + 1, n).astype(np.int64)
    sizes = rng.integers(64, 1500, n).astype(np.int64)
    protos = np.where(rng.random(n) < 0.5, Protocol.TCP.value,
                      Protocol.UDP.value).astype(np.int64)
    batch = PacketBatch(src=srcs, dst=np.full(n, 10 << 24, dtype=np.int64),
                        proto=protos, size=sizes)
    packets = [Packet(src=IPv4Address(int(s)), dst=IPv4Address(10 << 24),
                      proto=Protocol(int(p)), size=int(z))
               for s, p, z in zip(srcs, protos, sizes)]
    return batch, packets


class TestCollectorParity:
    def test_scalar_vs_batch_exact_backend(self):
        resolver = lambda addr: int(addr) % 5  # noqa: E731
        batch, packets = _traffic()
        with scoped():
            scalar = TrafficMatrixCollector(resolver=resolver)
            for p in packets:
                scalar.process(p, _ctx())
            batched = TrafficMatrixCollector(
                resolver=resolver,
                resolver_many=lambda a: np.asarray(a, dtype=np.int64) % 5)
            batched.process_batch(batch, np.arange(len(packets)), _ctx())
            assert list(scalar.packets.items()) == list(batched.packets.items())
            assert list(scalar.bytes.items()) == list(batched.bytes.items())

    def test_lru_fallback_batch_matches_vectorised(self):
        resolver = lambda addr: int(addr) % 5  # noqa: E731
        batch, packets = _traffic()
        rows = np.arange(len(packets))
        with scoped():
            lru = TrafficMatrixCollector(resolver=resolver)
            lru.process_batch(batch, rows, _ctx())
            vec = TrafficMatrixCollector(
                resolver=resolver,
                resolver_many=lambda a: np.asarray(a, dtype=np.int64) % 5)
            vec.process_batch(batch, rows, _ctx())
            assert lru.packets == vec.packets

    def test_resolver_lru_hits_and_misses(self):
        calls = []

        def resolver(addr):
            calls.append(addr)
            return 7

        with scoped():
            collector = TrafficMatrixCollector(resolver=resolver)
            pkt = Packet(src=IPv4Address(42), dst=IPv4Address(10 << 24),
                         proto=Protocol.UDP, size=100)
            for _ in range(5):
                collector.process(pkt, _ctx())
            assert len(calls) == 1  # one miss, four LRU hits
            assert collector.resolver_cache_misses == 1
            assert collector.resolver_cache_hits == 4

    def test_lru_capacity_evicts(self):
        with scoped():
            collector = TrafficMatrixCollector(
                resolver=lambda a: 1, resolver_cache=2)
            for addr in (1, 2, 3, 1):  # 1 evicted by 3, re-resolved
                collector.process(
                    Packet(src=IPv4Address(addr), dst=IPv4Address(9),
                           proto=Protocol.UDP, size=10), _ctx())
            assert collector.resolver_cache_misses == 4

    @pytest.mark.parametrize("kind", ["cmsketch", "countsketch"])
    def test_sketch_backend_counts_match_exact_totals(self, kind):
        batch, packets = _traffic()
        rows = np.arange(len(packets))
        with scoped():
            exact = TrafficMatrixCollector(resolver=lambda a: int(a) % 5)
            exact.process_batch(batch, rows, _ctx())
            sk = TrafficMatrixCollector(
                resolver=lambda a: int(a) % 5, backend=kind, seed=9)
            sk.process_batch(batch, rows, _ctx())
            # the handful of (asn x proto) keys are far below capacity:
            # sketch estimates are exact here
            for key, pkts, nbytes in exact.stats.items():
                assert sk.stats.packet_count(key) == pkts
                assert sk.stats.byte_count(key) == nbytes
