"""Compile component graphs into executable policies.

:func:`compile_policy` lowers a graph to IR, runs the pass pipeline
(structure → Sec. 4.5 vetting → optimizations) and produces a
:class:`CompiledPolicy` with two programs over the *same* live components
and counters:

* a **scalar program** — the verdict walk with edge lookups precomputed
  into index arrays; byte-identical counters and verdicts to
  :meth:`ComponentGraph.process` (the interpreter stays available as the
  differential oracle),
* a **batch program** — row-mask partitioning over
  :class:`~repro.net.packet.PacketBatch` columns: each op receives the
  mask of rows that reach it (with per-row sticky-DROP flags), evaluates
  its drop decisions vectorized, accounts ``processed``/``dropped``
  exactly like the scalar walk, and routes rows along its PASS/DROP edges.

Mutable component state (blacklist prefixes, token buckets, collector
dicts) is read at execution time, so runtime reconfiguration never
requires a recompile; only structural graph mutation does
(:meth:`ComponentGraph.compiled` re-lowers on version bumps).
"""

from __future__ import annotations

import enum
import hashlib
from typing import Iterable, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.core.components import (
    Component,
    HeaderFilter,
    HeaderMatch,
    LoggerComponent,
    PrefixBlacklist,
    RateLimiterComponent,
    SourceAntiSpoof,
    Verdict,
)
from repro.core.components import ComponentContext
from repro.errors import ComponentGraphError, VettingError
from repro.net.packet import Packet, Protocol
from repro.policy.ir import (
    ORDER_SENSITIVE_KINDS,
    VECTORIZABLE_KINDS,
    OpKind,
    Policy,
    PolicyOp,
    lower_graph,
)
from repro.policy.passes import (
    Diagnostic,
    Severity,
    dead_op_pass,
    fuse_filter_runs,
    reorder_observer_runs,
    structural_pass,
    topo_order,
    vetting_pass,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.graph import ComponentGraph
    from repro.net.packet import PacketBatch

__all__ = ["CompiledPolicy", "analyze", "compile_policy"]


# ------------------------------------------------------------------- kernels
def _filter_vectorizable(match: HeaderMatch) -> bool:
    """All predicate fields must map onto batch columns (enum-valued)."""
    for value in (match.proto, match.flags_any, match.icmp_type):
        if value is not None and not isinstance(value, enum.Enum):
            return False
    return True


def _match_mask(match: HeaderMatch, batch: "PacketBatch",
                rows: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`HeaderMatch.matches` over ``batch[rows]``."""
    m = np.ones(len(rows), dtype=bool)
    if match.proto is not None:
        m &= batch.proto[rows] == int(match.proto.value)
    if match.sport is not None:
        m &= batch.sport[rows] == match.sport
    if match.dport is not None:
        m &= batch.dport[rows] == match.dport
    if match.dport_not_in:
        m &= ~np.isin(batch.dport[rows], list(match.dport_not_in))
    if match.flags_any is not None:
        m &= (batch.flags[rows] & int(match.flags_any.value)) != 0
    if match.src_prefix is not None:
        p = match.src_prefix
        m &= (batch.src[rows] & p.mask()) == p.base
    if match.dst_prefix is not None:
        p = match.dst_prefix
        m &= (batch.dst[rows] & p.mask()) == p.base
    if match.min_size is not None:
        m &= batch.size[rows] >= match.min_size
    if match.max_size is not None:
        m &= batch.size[rows] <= match.max_size
    if match.icmp_type is not None:
        m &= batch.icmp[rows] == int(match.icmp_type.value)
    return m


def _prefix_mask(prefixes: Iterable, src: np.ndarray) -> np.ndarray:
    m = np.zeros(len(src), dtype=bool)
    for p in prefixes:
        m |= (src & p.mask()) == p.base
    return m


class _BatchStep:
    """One schedule entry: a component run plus its outgoing routing.

    ``members`` execute in schedule order over the step's incoming row
    mask; ``drop_decisions`` returns the mask of rows leaving with a DROP
    verdict (``None`` when no member can drop).  Fused/merged runs always
    have unwired internal DROP edges, so ``drop_to`` only applies to
    single-member steps.
    """

    __slots__ = ("members", "pass_to", "drop_to")

    def __init__(self, members: Sequence[PolicyOp], pass_to: Optional[int],
                 drop_to: Optional[int]) -> None:
        self.members = list(members)
        self.pass_to = pass_to
        self.drop_to = drop_to

    def drop_decisions(self, batch: "PacketBatch", rows: np.ndarray,
                       m: np.ndarray,
                       ctx: ComponentContext) -> Optional[np.ndarray]:
        alive = m
        dropped_any = False
        for op in self.members:
            comp = op.component
            n_here = int(alive.sum())
            comp._m_processed.value += n_here
            kind = op.kind
            if kind is OpKind.FILTER:
                d = _match_mask(comp.match, batch, rows) & alive
            elif kind is OpKind.BLACKLIST:
                d = _prefix_mask(comp.prefixes, batch.src[rows]) & alive
            elif kind is OpKind.ANTISPOOF:
                if ctx.is_transit or not ctx.local_origin:
                    d = np.zeros(len(rows), dtype=bool)
                else:
                    foreign = [p for p in comp.protected
                               if not ctx.local_prefix.overlaps(p)]
                    d = _prefix_mask(foreign, batch.src[rows]) & alive
            elif kind is OpKind.RATE_LIMIT:
                d = np.zeros(len(rows), dtype=bool)
                bucket = comp.bucket
                sizes = batch.size[rows]
                for i in np.flatnonzero(alive):
                    if not bucket.admit(ctx.now, cost=int(sizes[i])):
                        d[i] = True
            elif kind is OpKind.LOGGER:
                entries = comp.entries
                if len(entries) < comp.max_entries:
                    srcs = batch.src[rows]
                    dsts = batch.dst[rows]
                    protos = batch.proto[rows]
                    for i in np.flatnonzero(alive):
                        if len(entries) >= comp.max_entries:
                            break
                        entries.append((ctx.now, ctx.asn,
                                        Protocol(int(protos[i])).name,
                                        int(srcs[i]), int(dsts[i])))
                continue  # pure observer: no drops
            else:  # OBSERVER_BATCH
                if n_here:
                    comp.process_batch(batch, rows[alive], ctx)
                continue
            n_drop = int(d.sum())
            if n_drop:
                comp._m_dropped.value += n_drop
                alive = alive & ~d
                dropped_any = True
        if not dropped_any:
            return None
        return m & ~alive


class CompiledPolicy:
    """The compiler's output: IR + diagnostics + two executable programs."""

    __slots__ = ("graph", "policy", "diagnostics", "signature",
                 "order_sensitive", "batch_unsupported",
                 "_comps", "_pass_next", "_drop_next", "_entry",
                 "_steps", "_slot_of", "_g_in", "_g_dropped",
                 "_component_ids")

    def __init__(self, graph: "ComponentGraph", policy: Policy,
                 diagnostics: Sequence[Diagnostic]) -> None:
        self.graph = graph
        self.policy = policy
        self.diagnostics = tuple(diagnostics)
        self.signature = _signature_of(policy)
        self._g_in = graph._m_packets_in
        self._g_dropped = graph._m_packets_dropped
        self._component_ids = frozenset(id(op.component) for op in policy.ops)
        self._build_scalar()
        self.order_sensitive = False
        self.batch_unsupported: Optional[str] = None
        self._steps: Optional[list[_BatchStep]] = None
        self._slot_of: dict[int, int] = {}
        if not self.errors:
            extra = self._build_batch()
            self.diagnostics = self.diagnostics + tuple(extra)

    # ------------------------------------------------------------ properties
    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.ERROR)

    @property
    def batch_supported(self) -> bool:
        return self._steps is not None

    def shares_state_with(self, other: "CompiledPolicy") -> bool:
        """True when the two policies execute any common component object —
        batching one before the other would reorder that component's view
        of the packet stream."""
        return bool(self._component_ids & other._component_ids)

    # -------------------------------------------------------- scalar program
    def _build_scalar(self) -> None:
        ops = self.policy.ops
        self._comps = [op.component for op in ops]
        self._pass_next = [-1 if op.pass_to is None else op.pass_to
                           for op in ops]
        self._drop_next = [-1 if op.drop_to is None else op.drop_to
                           for op in ops]
        self._entry = -1 if self.policy.entry is None else self.policy.entry

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        """Scalar execution — verdicts and counters byte-identical to
        :meth:`ComponentGraph.process` on a validated graph."""
        if self._entry < 0:
            raise ComponentGraphError(f"graph {self.policy.name!r} is empty")
        self._g_in.value += 1
        comps, pn, dn = self._comps, self._pass_next, self._drop_next
        doomed = False
        i = self._entry
        while i >= 0:
            verdict = comps[i](packet, ctx)
            if verdict is Verdict.DROP:
                doomed = True
                i = dn[i]
            elif verdict is Verdict.PASS:
                i = pn[i]
            else:  # pragma: no cover - foreign verdicts exit like the walk
                i = -1
        if doomed:
            self._g_dropped.value += 1
            return Verdict.DROP
        return Verdict.PASS

    # --------------------------------------------------------- batch program
    def _build_batch(self) -> list[Diagnostic]:
        policy = self.policy
        assert policy.entry is not None
        live, diags = dead_op_pass(policy)
        self.order_sensitive = any(
            policy.ops[i].kind in ORDER_SENSITIVE_KINDS for i in live)
        unsupported = sorted(
            policy.ops[i].name for i in live
            if policy.ops[i].kind not in VECTORIZABLE_KINDS
            or (policy.ops[i].kind is OpKind.FILTER
                and not _filter_vectorizable(policy.ops[i].component.match)))
        if unsupported:
            self.batch_unsupported = (
                f"op(s) without a batch kernel: {', '.join(unsupported)}")
            diags.append(Diagnostic(
                Severity.INFO, "batch.unsupported",
                self.batch_unsupported, tuple(unsupported)))
            return diags
        order = topo_order(policy, live)
        groups, fuse_diags = fuse_filter_runs(policy, order, live)
        diags.extend(fuse_diags)
        runs, reorder_diags = reorder_observer_runs(policy, groups, live)
        diags.extend(reorder_diags)
        steps: list[_BatchStep] = []
        slot_of: dict[int, int] = {}
        for exec_order, tail in runs:
            head = policy.ops[tail]
            members = [policy.ops[i] for i in exec_order]
            drop_to = head.drop_to if len(members) == 1 else None
            if drop_to is not None and drop_to not in live:
                drop_to = None  # infeasible edge: target is dead
            step = _BatchStep(members, head.pass_to, drop_to)
            slot = len(steps)
            steps.append(step)
            for i in exec_order:
                slot_of[i] = slot
        self._steps = steps
        self._slot_of = slot_of
        return diags

    def run_batch(self, batch: "PacketBatch", rows: np.ndarray,
                  ctx: ComponentContext) -> np.ndarray:
        """Vectorized execution of ``batch[rows]``; returns the boolean
        keep-mask over ``rows`` (True = final verdict PASS).

        Counter totals (graph, per-component) match running the scalar
        walk over the same rows in ascending order.
        """
        steps = self._steps
        if steps is None:
            raise ComponentGraphError(
                f"graph {self.policy.name!r} has no batch program "
                f"({self.batch_unsupported})")
        n = len(rows)
        self._g_in.value += n
        n_slots = len(steps)
        reach: list[Optional[np.ndarray]] = [None] * n_slots
        doom: list[Optional[np.ndarray]] = [None] * n_slots
        alive_out = np.zeros(n, dtype=bool)

        def route(target: Optional[int], mask: np.ndarray,
                  doomed: np.ndarray) -> None:
            nonlocal alive_out
            if not mask.any():
                return
            if target is None:
                alive_out |= mask & ~doomed
                return
            slot = self._slot_of[target]
            if reach[slot] is None:
                reach[slot] = mask.copy()
                doom[slot] = doomed & mask
            else:
                reach[slot] |= mask
                doom[slot] |= doomed & mask

        entry_slot = self._slot_of[self.policy.entry]  # type: ignore[index]
        reach[entry_slot] = np.ones(n, dtype=bool)
        doom[entry_slot] = np.zeros(n, dtype=bool)
        for slot, step in enumerate(steps):
            m = reach[slot]
            if m is None or not m.any():
                continue
            doomed_in = doom[slot]
            assert doomed_in is not None
            d = step.drop_decisions(batch, rows, m, ctx)
            if d is None:
                route(step.pass_to, m, doomed_in)
            else:
                route(step.pass_to, m & ~d, doomed_in)
                route(step.drop_to, d, np.ones(n, dtype=bool))
        self._g_dropped.value += n - int(alive_out.sum())
        return alive_out


# ------------------------------------------------------------------ signature
def _caps_key(component: Component) -> tuple:
    caps = component.capabilities
    return (caps.may_drop, caps.may_shrink, tuple(sorted(caps.modifies_headers)),
            caps.max_outputs_per_input, caps.max_size_ratio,
            caps.extra_traffic_bps)


def _params_key(op: PolicyOp) -> tuple:
    comp = op.component
    if op.kind is OpKind.FILTER:
        m = comp.match
        return (
            m.proto.name if m.proto is not None else None,
            m.sport, m.dport, tuple(m.dport_not_in),
            int(m.flags_any.value) if isinstance(m.flags_any, enum.Enum) else None,
            (m.src_prefix.base, m.src_prefix.length) if m.src_prefix else None,
            (m.dst_prefix.base, m.dst_prefix.length) if m.dst_prefix else None,
            m.min_size, m.max_size,
            getattr(m.icmp_type, "name", None) if m.icmp_type is not None else None,
        )
    if op.kind is OpKind.BLACKLIST:
        return tuple((p.base, p.length) for p in comp.prefixes)
    if op.kind is OpKind.ANTISPOOF:
        return tuple((p.base, p.length) for p in comp.protected)
    if op.kind is OpKind.RATE_LIMIT:
        return (comp.bucket.rate, comp.bucket.burst)
    if op.kind is OpKind.LOGGER:
        return (comp.max_entries,)
    if op.kind is OpKind.HASH_FILTER:
        return tuple(sorted(d.hex() for d in comp.banned))
    if op.kind is OpKind.TRIGGER:
        return (comp.threshold_pps, comp.window_span, comp.rearm)
    return ()


def _signature_of(policy: Policy) -> str:
    """Deterministic sha256 over structure + per-op parameters.

    Excludes the graph name (so the same spec compiled for different
    devices signs identically) and never iterates unordered sets.
    """
    h = hashlib.sha256()
    for op in policy.ops:
        h.update(repr((
            op.index, op.name, op.kind.value, type(op.component).__name__,
            _caps_key(op.component), _params_key(op),
            op.pass_to, op.drop_to,
        )).encode())
        h.update(b"\n")
    h.update(repr(("entry", policy.entry)).encode())
    return h.hexdigest()


# ------------------------------------------------------------------- drivers
def analyze(graph: "ComponentGraph") -> tuple[Policy, list[Diagnostic]]:
    """Lower + run validation/vetting passes; never raises — for tooling
    (``repro policy verify``) that wants *all* findings."""
    policy = lower_graph(graph)
    diags = structural_pass(policy)
    if not any(d.severity is Severity.ERROR for d in diags):
        diags.extend(vetting_pass(policy))
    return policy, diags


def compile_policy(graph: "ComponentGraph", vet: bool = True) -> CompiledPolicy:
    """Compile ``graph``; raises exactly like the pre-compiler paths.

    Structural errors raise :class:`ComponentGraphError` and (with
    ``vet=True``) vetting errors raise :class:`VettingError`, each carrying
    the first diagnostic's message — byte-identical to
    ``graph.validate()`` / ``vet_graph(graph)``.  ``vet=False`` is the
    runtime path (:meth:`ComponentGraph.compiled`): execution of an
    already-installed graph must never start failing vetting the
    interpreter would have tolerated.
    """
    policy = lower_graph(graph)
    diags = structural_pass(policy)
    structural_errors = [d for d in diags if d.severity is Severity.ERROR]
    if structural_errors:
        raise ComponentGraphError(structural_errors[0].message)
    if vet:
        vet_diags = vetting_pass(policy)
        vet_errors = [d for d in vet_diags if d.severity is Severity.ERROR]
        if vet_errors:
            raise VettingError(vet_errors[0].message)
        diags.extend(vet_diags)
    compiled = CompiledPolicy(graph, policy, diags)
    # prime the graph's cache so execution layers (device/decision core)
    # reuse this compilation instead of re-lowering
    graph._compiled = compiled
    graph._compiled_version = graph.version
    return compiled
