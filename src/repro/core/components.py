"""Packet-processing components for the adaptive device (paper Sec. 4.2).

"In the context of DDoS attack mitigation, we think of firewall-like
services like anti-spoofing filtering, packet dropping, payload deletion,
source IP blacklisting or traffic rate limiting.  Rules that match traffic
by header fields, payload (or payload hashes), or timing characteristics
etc. can be installed, configured and activated instantly."

Every component **declares its capabilities** (may it drop? shrink? which
header fields does it write? how much side-channel traffic does it emit?).
Static vetting (:mod:`repro.core.safety`) admits only declarations that
respect the Sec. 4.5 restrictions, and the runtime monitor catches
components whose behaviour contradicts their declaration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import ReproError
from repro.net.addressing import Prefix
from repro.net.packet import IP_HEADER_BYTES, Packet, Protocol, TCPFlags
from repro.obs.metrics import declare
from repro.util.bloom import BloomFilter
from repro.util.sketch import SpaceSaving
from repro.util.stats import WindowedCounter
from repro.util.tokenbucket import TokenBucket

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.ownership import NetworkUser
    from repro.net.packet import PacketBatch

_HEAVY_HITTERS = declare(
    "trigger.heavy_hitters", "counter", labels=("asn",),
    help="offending sources identified at trigger firings")
_PROCESSED = declare(
    "component.processed", "counter", labels=("component",),
    help="packets processed per component")
_DROPPED = declare(
    "component.dropped", "counter", labels=("component",),
    help="packets dropped per component")

__all__ = [
    "Verdict", "Capabilities", "ComponentContext", "Component",
    "HeaderMatch", "HeaderFilter", "PrefixBlacklist", "RateLimiterComponent",
    "PayloadHashFilter", "PayloadScrubber", "SourceAntiSpoof",
    "LoggerComponent", "StatisticsCollector", "TriggerComponent",
    "DigestStoreComponent",
]


class Verdict(enum.Enum):
    """Outcome of one component's processing of one packet."""

    PASS = "pass"
    DROP = "drop"


@dataclass(frozen=True)
class Capabilities:
    """A component's declared behaviour, checked by static vetting.

    * ``modifies_headers`` — header fields the component writes.  Sec. 4.5
      forbids ``src``, ``dst`` and ``ttl`` outright.
    * ``max_outputs_per_input`` — must be <= 1: "The traffic control must
      not allow the packet rate to increase."
    * ``max_size_ratio`` — must be <= 1: "packet size may only stay the
      same or become smaller."
    * ``extra_traffic_bps`` — side-channel budget for logging/statistics/
      trigger events ("we will allow a reasonable amount of additional
      traffic", footnote 1).
    """

    may_drop: bool = False
    may_shrink: bool = False
    modifies_headers: frozenset[str] = frozenset()
    max_outputs_per_input: int = 1
    max_size_ratio: float = 1.0
    extra_traffic_bps: float = 0.0


@dataclass
class ComponentContext:
    """Everything a component may know about where/when it runs.

    Carries the device's network context (Sec. 4.2: "each such device must
    provide contextual information depending on where it is attached") and
    the processing stage ("source" = the packet's source-owner stage,
    "dest" = destination-owner stage, Fig. 6).
    """

    now: float
    asn: int
    is_transit: bool                   # device sees third-party transit traffic
    local_prefix: Prefix               # the attached AS's own address space
    stage: str                         # "source" | "dest"
    owner: "NetworkUser"
    ingress_asn: Optional[int] = None  # neighbour AS the packet arrived from
    local_origin: bool = False         # packet entered from this AS's customers
    router_drop_rate: float = 0.0      # router state exposed by the operator


class Component:
    """Base class: named, capability-declaring packet processor."""

    capabilities: Capabilities = Capabilities()
    #: Sec. 4.2: components whose behaviour depends on the routing topology
    #: must be adapted or temporarily disabled on routing updates.
    topology_dependent: bool = False
    #: Pure observers that implement :meth:`process_batch` set this; the
    #: device then feeds them whole sub-batches (one vectorised update
    #: instead of per-packet calls) when every stage in the graph qualifies.
    batch_capable: bool = False

    def __init__(self, name: str) -> None:
        self.name = name
        # registry-backed tallies; ``processed``/``dropped`` remain
        # available as attribute views below
        self._m_processed = _PROCESSED.labelled(component=name)
        self._m_dropped = _DROPPED.labelled(component=name)

    @property
    def processed(self) -> int:
        return self._m_processed.value

    @processed.setter
    def processed(self, value: int) -> None:
        self._m_processed.value = value

    @property
    def dropped(self) -> int:
        return self._m_dropped.value

    @dropped.setter
    def dropped(self, value: int) -> None:
        self._m_dropped.value = value

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:  # pragma: no cover
        raise NotImplementedError

    def process_batch(self, batch: "PacketBatch", rows: np.ndarray,
                      ctx: ComponentContext) -> None:  # pragma: no cover
        """Vectorised observe-only path over ``batch[rows]``.

        Only meaningful for ``batch_capable`` components whose capabilities
        declare neither drops nor mutations — the caller passes every
        packet and accounts ``processed`` itself.
        """
        raise NotImplementedError

    def __call__(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        self._m_processed.value += 1
        verdict = self.process(packet, ctx)
        if verdict is Verdict.DROP:
            self._m_dropped.value += 1
        return verdict

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


# --------------------------------------------------------------------- filters
@dataclass(frozen=True)
class HeaderMatch:
    """Declarative header predicate ("rules that match traffic by header
    fields", Sec. 4.2).  All given conditions must hold."""

    proto: Optional[Protocol] = None
    sport: Optional[int] = None
    dport: Optional[int] = None
    #: negative port condition: match only when dport is NOT one of these
    #: (e.g. "all UDP except my service ports")
    dport_not_in: tuple[int, ...] = ()
    flags_any: Optional[TCPFlags] = None
    src_prefix: Optional[Prefix] = None
    dst_prefix: Optional[Prefix] = None
    min_size: Optional[int] = None
    max_size: Optional[int] = None
    icmp_type: Optional[object] = None

    def matches(self, packet: Packet) -> bool:
        if self.proto is not None and packet.proto is not self.proto:
            return False
        if self.sport is not None and packet.sport != self.sport:
            return False
        if self.dport is not None and packet.dport != self.dport:
            return False
        if self.dport_not_in and packet.dport in self.dport_not_in:
            return False
        if self.flags_any is not None and not (packet.flags & self.flags_any):
            return False
        if self.src_prefix is not None and not self.src_prefix.contains(packet.src):
            return False
        if self.dst_prefix is not None and not self.dst_prefix.contains(packet.dst):
            return False
        if self.min_size is not None and packet.size < self.min_size:
            return False
        if self.max_size is not None and packet.size > self.max_size:
            return False
        if self.icmp_type is not None and packet.icmp_type is not self.icmp_type:
            return False
        return True


class HeaderFilter(Component):
    """Drop packets matching a header predicate (firewall rule)."""

    capabilities = Capabilities(may_drop=True)

    def __init__(self, name: str, match: HeaderMatch) -> None:
        super().__init__(name)
        self.match = match

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        return Verdict.DROP if self.match.matches(packet) else Verdict.PASS


class PrefixBlacklist(Component):
    """Drop packets whose source lies in any blacklisted prefix
    ("source IP blacklisting", Sec. 4.2)."""

    capabilities = Capabilities(may_drop=True)

    def __init__(self, name: str, prefixes: Iterable[Prefix] = ()) -> None:
        super().__init__(name)
        self.prefixes: list[Prefix] = list(prefixes)

    def add(self, prefix: Prefix) -> None:
        if prefix not in self.prefixes:
            self.prefixes.append(prefix)

    def remove(self, prefix: Prefix) -> None:
        self.prefixes = [p for p in self.prefixes if p != prefix]

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        for prefix in self.prefixes:
            if prefix.contains(packet.src):
                return Verdict.DROP
        return Verdict.PASS


class RateLimiterComponent(Component):
    """Token-bucket byte-rate limiter ("traffic rate limiting")."""

    capabilities = Capabilities(may_drop=True)

    def __init__(self, name: str, rate_bps: float, burst_bytes: float = 15_000.0) -> None:
        super().__init__(name)
        self.bucket = TokenBucket(rate=rate_bps / 8.0, burst=burst_bytes)

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        return Verdict.PASS if self.bucket.admit(ctx.now, cost=packet.size) else Verdict.DROP


class PayloadHashFilter(Component):
    """Drop packets carrying a banned payload digest ("payload hashes") —
    e.g. a worm's signature."""

    capabilities = Capabilities(may_drop=True)

    def __init__(self, name: str, banned_digests: Iterable[bytes] = ()) -> None:
        super().__init__(name)
        self.banned: set[bytes] = set(banned_digests)

    def ban(self, digest: bytes) -> None:
        self.banned.add(digest)

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        if packet.payload_digest and packet.payload_digest in self.banned:
            return Verdict.DROP
        return Verdict.PASS


class PayloadScrubber(Component):
    """Delete the payload, keeping the header ("payload deletion").

    Shrinking is explicitly allowed by Sec. 4.5 ("packet size may only stay
    the same or become smaller").
    """

    capabilities = Capabilities(may_shrink=True)

    def __init__(self, name: str = "scrubber") -> None:
        super().__init__(name)
        self.scrubbed_bytes = 0

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        removed = packet.size - IP_HEADER_BYTES
        if removed > 0:
            self.scrubbed_bytes += removed
            packet.size = IP_HEADER_BYTES
            packet.payload_digest = b""
        return Verdict.PASS


class SourceAntiSpoof(Component):
    """Context-aware anti-spoofing for the owner's prefixes (Sec. 4.3).

    Deployed by the *owner of the protected prefix*, worldwide: a device at
    a peripheral (non-transit) ISP drops packets that (a) enter the
    Internet there — i.e. come from that ISP's own customers — and (b)
    carry a source address inside the protected prefix even though the
    prefix does not belong to that ISP.  Transit traffic and the owner's
    own uplink are never touched ("Of course, transit traffic, the traffic
    of the peripheral ISP where this web site is attached to ... must not
    be blocked").

    Requires the device context — exactly why Sec. 4.2 says the device must
    know "whether it processes transit traffic ... or only traffic from
    customers of a peripheral ISP".
    """

    capabilities = Capabilities(may_drop=True)
    topology_dependent = True  # relies on the device's stub/transit context

    def __init__(self, name: str, protected: Iterable[Prefix]) -> None:
        super().__init__(name)
        self.protected: list[Prefix] = list(protected)

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        if ctx.is_transit or not ctx.local_origin:
            return Verdict.PASS
        for prefix in self.protected:
            if prefix.contains(packet.src) and not ctx.local_prefix.overlaps(prefix):
                return Verdict.DROP
        return Verdict.PASS


# ----------------------------------------------------------------- observation
class LoggerComponent(Component):
    """Record per-packet log lines (bounded) — "logging data" services."""

    capabilities = Capabilities(extra_traffic_bps=8_000.0)

    def __init__(self, name: str = "logger", max_entries: int = 10_000) -> None:
        super().__init__(name)
        self.max_entries = max_entries
        self.entries: list[tuple[float, int, str, int, int]] = []

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        if len(self.entries) < self.max_entries:
            self.entries.append(
                (ctx.now, ctx.asn, packet.proto.name, int(packet.src), int(packet.dst))
            )
        return Verdict.PASS


class StatisticsCollector(Component):
    """Aggregate traffic statistics ("collecting traffic statistics").

    Counts packets/bytes by protocol and tracks a windowed arrival rate —
    the inputs for triggers and for the network-debugging application.
    """

    capabilities = Capabilities(extra_traffic_bps=1_000.0)
    batch_capable = True

    def __init__(self, name: str = "stats", window: float = 1.0) -> None:
        super().__init__(name)
        self.packets_by_proto: dict[str, int] = {}
        self.bytes_by_proto: dict[str, int] = {}
        self.rate = WindowedCounter(window)
        self.byte_rate = WindowedCounter(window)

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        proto = packet.proto.name
        self.packets_by_proto[proto] = self.packets_by_proto.get(proto, 0) + 1
        self.bytes_by_proto[proto] = self.bytes_by_proto.get(proto, 0) + packet.size
        self.rate.add(ctx.now)
        self.byte_rate.add(ctx.now, packet.size)
        return Verdict.PASS

    def process_batch(self, batch: "PacketBatch", rows: np.ndarray,
                      ctx: ComponentContext) -> None:
        n = len(rows)
        if n == 0:
            return
        protos = batch.proto[rows]
        sizes = batch.size[rows]
        uniq, first, inverse = np.unique(protos, return_index=True,
                                         return_inverse=True)
        pkts = np.bincount(inverse, minlength=len(uniq))
        octets = np.bincount(inverse, weights=sizes,
                             minlength=len(uniq)).astype(np.int64)
        # first-appearance order keeps dict insertion order equal to the
        # scalar per-packet path
        for j in np.argsort(first, kind="stable"):
            proto = Protocol(int(uniq[j])).name
            self.packets_by_proto[proto] = (
                self.packets_by_proto.get(proto, 0) + int(pkts[j]))
            self.bytes_by_proto[proto] = (
                self.bytes_by_proto.get(proto, 0) + int(octets[j]))
        self.rate.add(ctx.now, n)
        self.byte_rate.add(ctx.now, int(sizes.sum()))


class TriggerComponent(Component):
    """Fire an event when a traffic condition exceeds a threshold
    (Sec. 4.4: "Triggers generate events if a specific condition is met and
    thus can be used to signal the activation of a traffic filter
    function").

    ``predicate`` selects which packets count; when the windowed rate
    crosses ``threshold_pps`` the ``action`` callback runs once; the
    trigger re-arms after the rate falls below ``threshold_pps * rearm``.

    ``track_sources`` (> 0) adds a heavy-hitter stream: a SpaceSaving
    tracker over source addresses, reset each tumbling window, so a
    firing identifies *who* is offending (``last_sources``), not just the
    aggregate rate.  With ``per_source_threshold`` set, the trigger also
    fires once per source whose own windowed rate exceeds it — the
    "rate of connection attempts from ... a particular server" reading
    of Sec. 4.4 — independent of the aggregate threshold.
    """

    capabilities = Capabilities(extra_traffic_bps=1_000.0)

    def __init__(self, name: str, threshold_pps: float,
                 action: Callable[[ComponentContext, float], None],
                 predicate: Optional[Callable[[Packet], bool]] = None,
                 window: float = 0.5, rearm: float = 0.5,
                 track_sources: int = 0,
                 per_source_threshold: Optional[float] = None,
                 hh_min_share: float = 0.05) -> None:
        super().__init__(name)
        if threshold_pps <= 0:
            raise ReproError(f"trigger threshold must be > 0, got {threshold_pps}")
        if per_source_threshold is not None and track_sources <= 0:
            raise ReproError("per_source_threshold requires track_sources > 0")
        self.threshold_pps = threshold_pps
        self.action = action
        self.predicate = predicate
        self.window = WindowedCounter(window)
        self.window_span = float(window)
        self.rearm = rearm
        self.armed = True
        self.fired = 0
        self.fired_at: list[float] = []
        self.sources = SpaceSaving(track_sources) if track_sources > 0 else None
        self.per_source_threshold = per_source_threshold
        self.hh_min_share = hh_min_share
        #: sources identified at the most recent firing
        self.last_sources: tuple[int, ...] = ()
        self._fired_sources: set[int] = set()
        self._epoch: Optional[float] = None
        self._m_hh = None

    def _fire(self, ctx: ComponentContext, rate: float,
              sources: tuple[int, ...]) -> None:
        self.fired += 1
        self.fired_at.append(ctx.now)
        self.last_sources = sources
        if sources:
            if self._m_hh is None:
                # triggers on one device share the asn series: join the
                # running total rather than zeroing a namesake's count
                self._m_hh = _HEAVY_HITTERS.labelled(fresh=False,
                                                     asn=str(ctx.asn))
            self._m_hh.value += len(sources)
        self.action(ctx, rate)

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        if self.predicate is None or self.predicate(packet):
            self.window.add(ctx.now)
            tracker = self.sources
            if tracker is not None:
                epoch = ctx.now // self.window_span if self.window_span > 0 else 0.0
                if epoch != self._epoch:
                    self._epoch = epoch
                    tracker.clear()
                tracker.update(int(packet.src))
            rate = self.window.rate(ctx.now)
            if self.armed and rate > self.threshold_pps:
                self.armed = False
                hitters: tuple[int, ...] = ()
                if tracker is not None:
                    hitters = tuple(
                        k for k, _c in tracker.heavy_hitters(self.hh_min_share))
                    self._fired_sources.update(hitters)
                self._fire(ctx, rate, hitters)
            elif not self.armed and rate < self.threshold_pps * self.rearm:
                self.armed = True
            if (self.per_source_threshold is not None
                    and tracker is not None):
                src = int(packet.src)
                if src not in self._fired_sources and self.window_span > 0:
                    src_rate = tracker.estimate(src) / self.window_span
                    if src_rate > self.per_source_threshold:
                        self._fired_sources.add(src)
                        self._fire(ctx, src_rate, (src,))
        return Verdict.PASS


class DigestStoreComponent(Component):
    """SPIE-style packet-digest backlog on the TCS (Sec. 4.4: "Our system
    could be used to implement a worldwide packet traceback service such as
    SPIE by storing a backlog of packet hashes")."""

    capabilities = Capabilities(extra_traffic_bps=1_000.0)

    def __init__(self, name: str = "digests", capacity: int = 50_000,
                 window: float = 1.0, max_windows: int = 16) -> None:
        super().__init__(name)
        self.capacity = capacity
        self.window = window
        self.max_windows = max_windows
        self.windows: list[tuple[float, BloomFilter]] = []

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        start = (ctx.now // self.window) * self.window
        if not self.windows or self.windows[-1][0] != start:
            self.windows.append((start, BloomFilter(self.capacity, 0.001, salt=ctx.asn % 255)))
            if len(self.windows) > self.max_windows:
                del self.windows[0]
        self.windows[-1][1].add(packet.digest())
        return Verdict.PASS

    def saw(self, packet: Packet) -> bool:
        digest = packet.digest()
        return any(digest in bloom for _, bloom in self.windows)
