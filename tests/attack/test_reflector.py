"""Tests for the reflector attack engine (packet-level and fluid)."""

import pytest

from repro.attack import ReflectorAttack, reflector_responder
from repro.attack.reflector import ReflectorFluidModel
from repro.errors import AttackConfigError
from repro.net import (
    FluidNetwork,
    ICMPType,
    Network,
    Packet,
    Protocol,
    TopologyBuilder,
)


def build_net():
    return Network(TopologyBuilder.hierarchical(2, 2, 4, seed=2))


class TestResponder:
    def _host(self):
        net = build_net()
        return net, net.add_host(net.topology.stub_ases[0])

    def test_synack_mode(self):
        net, h = self._host()
        respond = reflector_responder(mode="synack")
        syn = Packet.tcp_syn(h.address, h.address)
        (reply,) = respond(syn, h, 0.0)
        assert reply.flags.is_synack
        assert reply.src == h.address
        assert reply.kind == "attack-reflected"
        assert not reply.spoofed  # the reflector's real address!

    def test_synack_ignores_non_syn(self):
        net, h = self._host()
        respond = reflector_responder(mode="synack")
        assert respond(Packet.udp(h.address, h.address), h, 0.0) is None

    def test_rst_mode(self):
        net, h = self._host()
        respond = reflector_responder(mode="rst")
        ack = Packet(src=h.address, dst=h.address, proto=Protocol.TCP)
        (reply,) = respond(ack, h, 0.0)
        assert reply.proto is Protocol.TCP

    def test_icmp_mode(self):
        net, h = self._host()
        respond = reflector_responder(mode="icmp")
        (reply,) = respond(Packet.udp(h.address, h.address), h, 0.0)
        assert reply.icmp_type is ICMPType.HOST_UNREACHABLE

    def test_dns_amplification(self):
        net, h = self._host()
        respond = reflector_responder(amplification=10.0, mode="dns")
        query = Packet.udp(h.address, h.address, size=60)
        (reply,) = respond(query, h, 0.0)
        assert reply.size == 600

    def test_no_reflection_loops(self):
        net, h = self._host()
        respond = reflector_responder(mode="dns")
        reflected = Packet.udp(h.address, h.address, kind="attack-reflected")
        assert respond(reflected, h, 0.0) is None

    def test_unknown_mode(self):
        with pytest.raises(AttackConfigError):
            reflector_responder(mode="wat")


class TestReflectorAttack:
    def _scenario(self, mode="synack", amplification=1.0):
        net = build_net()
        stubs = net.topology.stub_ases
        victim = net.add_host(stubs[0], record=True)
        agents = [net.add_host(a) for a in stubs[1:3]]
        reflectors = [net.add_host(a) for a in stubs[3:6]]
        attack = ReflectorAttack(net, agents, reflectors, victim,
                                 rate_pps=40.0, duration=0.5, mode=mode,
                                 amplification=amplification, seed=5)
        return net, victim, agents, reflectors, attack

    def test_victim_receives_from_reflectors_only(self):
        net, victim, agents, reflectors, attack = self._scenario()
        attack.launch()
        net.run()
        reflector_addrs = {int(r.address) for r in reflectors}
        agent_addrs = {int(a.address) for a in agents}
        srcs = {int(p.src) for _, p in victim.log}
        assert srcs <= reflector_addrs
        assert not (srcs & agent_addrs)
        assert victim.received_by_kind["attack-reflected"] > 0

    def test_sources_at_victim_are_unspoofed(self):
        """The paper's central point: the victim sees legitimate sources."""
        net, victim, *_, attack = self._scenario()
        attack.launch()
        net.run()
        assert all(not p.spoofed for _, p in victim.log)
        # yet ground truth shows reflectors, not the real agents
        assert all(p.true_origin.startswith("host-") for _, p in victim.log)

    def test_dns_mode_amplifies_bytes(self):
        net, victim, agents, _, attack = self._scenario(mode="dns", amplification=5.0)
        gens = attack.launch()
        net.run()
        request_bytes = sum(g.sent for g in gens) * attack.request_size
        assert victim.received_bytes_by_kind["attack-reflected"] == pytest.approx(
            5.0 * request_bytes, rel=0.05)

    def test_needs_reflectors(self):
        net, victim, agents, _, attack = self._scenario()
        attack.reflectors = []
        with pytest.raises(AttackConfigError):
            attack.launch()


class TestReflectorFluidModel:
    def _model(self, amplification=2.0):
        topo = TopologyBuilder.hierarchical(2, 2, 4, seed=3)
        fluid = FluidNetwork(topo)
        stubs = topo.stub_ases
        return fluid, ReflectorFluidModel(
            fluid, victim_asn=stubs[0], agent_asns=stubs[1:4],
            reflector_asns=stubs[4:7], rate_per_agent=1e6,
            amplification=amplification,
        )

    def test_request_flows_spray_evenly(self):
        fluid, model = self._model()
        flows = model.request_flows()
        assert len(flows) == 9
        assert all(f.rate == pytest.approx(1e6 / 3) for f in flows)
        assert all(f.claimed_src_asn == model.victim_asn for f in flows)
        assert all(f.spoofed for f in flows)

    def test_unfiltered_amplified_delivery(self):
        fluid, model = self._model(amplification=2.0)
        req, second = model.evaluate()
        assert req.delivered_rate() == pytest.approx(3e6)
        assert model.victim_attack_rate() == pytest.approx(6e6)

    def test_filtering_requests_reduces_reflection(self):
        fluid, model = self._model(amplification=2.0)

        class DropSpoofedAtSource:
            def pass_fraction(self, flow, asn, prev_asn, pos, path):
                return 0.0 if (pos == 0 and flow.spoofed) else 1.0

        assert model.victim_attack_rate(filters=[DropSpoofedAtSource()]) == 0.0

    def test_extra_flows_ride_second_pass(self):
        fluid, model = self._model()
        from repro.net import Flow

        legit = Flow(model.agent_asns[0], model.victim_asn, 5e5, kind="legit")
        _, second = model.evaluate(extra_flows=[legit])
        assert second.delivered_rate("legit") == pytest.approx(5e5)

    def test_needs_reflectors(self):
        fluid, model = self._model()
        with pytest.raises(AttackConfigError):
            ReflectorFluidModel(fluid, 0, [1], [], 1e6)
