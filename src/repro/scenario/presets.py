"""Named, ready-to-run scenario specs for the CLI and docs.

These mirror the E2 mitigation-matrix cell (hierarchical 2x2x8 Internet,
8 agents, 6 reflectors, 4 legitimate clients) so ``repro scenario run``
numbers line up with EXPERIMENTS.md, plus a faulted variant exercising
the chaos harness.  ``repro scenario list`` prints this registry.
"""

from __future__ import annotations

from repro.scenario.spec import (
    AttackSpec,
    DefenseSpec,
    FaultSpec,
    ScenarioSpec,
    TopologySpec,
)

__all__ = ["PRESETS", "preset", "preset_names"]

_E2_TOPOLOGY = TopologySpec(kind="hierarchical", n_core=2, transit_per_core=2,
                            stub_per_transit=8)

_REFLECTOR = AttackSpec(kind="reflector", n_agents=8, n_reflectors=6,
                        n_legit_clients=4, attack_rate_pps=1500.0,
                        request_size=100, amplification=10.0,
                        reflector_mode="dns", duration=0.6, attack_start=0.1,
                        seed_offset=1)

_SPOOFED = AttackSpec(kind="direct-spoofed", n_agents=8, n_legit_clients=4,
                      attack_rate_pps=1500.0, duration=0.6, attack_start=0.1,
                      seed_offset=1)

_UNSPOOFED = AttackSpec(kind="direct-unspoofed", n_agents=8,
                        n_legit_clients=4, attack_rate_pps=1500.0,
                        duration=0.6, attack_start=0.1, seed_offset=1)

PRESETS: dict[str, ScenarioSpec] = {
    spec.name: spec for spec in (
        ScenarioSpec(
            name="reflector-baseline", topology=_E2_TOPOLOGY,
            attack=_REFLECTOR,
            description="undefended DNS reflector flood (E2 baseline cell)"),
        ScenarioSpec(
            name="reflector-tcs", topology=_E2_TOPOLOGY, attack=_REFLECTOR,
            defense=DefenseSpec.of("tcs"),
            description="reflector flood vs. TCS anti-spoofing at all stub "
                        "borders (runs on both engines)"),
        ScenarioSpec(
            name="spoofed-flood", topology=_E2_TOPOLOGY, attack=_SPOOFED,
            description="undefended direct spoofed flood (E2 baseline cell)"),
        ScenarioSpec(
            name="spoofed-flood-ingress", topology=_E2_TOPOLOGY,
            attack=_SPOOFED, defense=DefenseSpec.of("ingress"),
            description="spoofed flood vs. RFC 2267 ingress filtering at "
                        "every stub (runs on both engines)"),
        ScenarioSpec(
            name="spoofed-flood-rbf", topology=_E2_TOPOLOGY, attack=_SPOOFED,
            defense=DefenseSpec.of("rbf", fraction=0.3),
            description="spoofed flood vs. route-based filtering at 30% of "
                        "ASes (runs on both engines)"),
        ScenarioSpec(
            name="botnet-flood-pushback", topology=_E2_TOPOLOGY,
            attack=_UNSPOOFED, defense=DefenseSpec.of("pushback"),
            description="unspoofed botnet flood vs. pushback rate-limiting "
                        "(packet engine only)"),
        ScenarioSpec(
            name="reflector-under-faults", topology=_E2_TOPOLOGY,
            attack=_REFLECTOR, defense=DefenseSpec.of("tcs"),
            faults=FaultSpec(n_crashes=2, n_flaps=1, seed_offset=5),
            description="the TCS defense while devices crash and links flap "
                        "(packet engine only)"),
    )
}


def preset_names() -> tuple[str, ...]:
    return tuple(PRESETS)


def preset(name: str) -> ScenarioSpec:
    from repro.scenario.spec import SpecError

    try:
        return PRESETS[name]
    except KeyError:
        raise SpecError(f"unknown preset {name!r}; "
                        f"known: {', '.join(PRESETS)}") from None
