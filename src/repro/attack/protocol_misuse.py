"""Protocol-misuse attacks: connection teardown via forged TCP RST or ICMP
messages (paper Sec. 2.1: "misuse of protocols that make the victim host
seem to be temporarily unavailable due to faked protocol signalling", and
Sec. 4.3: "Attacks based on protocol misuse ... can also be filtered out").

We model a pool of long-lived TCP connections at a victim host; an attacker
injects spoofed RST (or ICMP host-unreachable) packets that, on delivery,
kill the matching connection.  The experiment metric is connection survival.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from repro.errors import AttackConfigError
from repro.net.network import Network
from repro.net.node import Host
from repro.net.packet import ICMPType, Packet, Protocol, TCPFlags
from repro.attack.flood import TrafficGenerator
from repro.util.rng import derive_rng

__all__ = ["Connection", "ConnectionPool", "ProtocolMisuseAttack"]


@dataclass
class Connection:
    """One established TCP connection as seen by the victim endpoint."""

    peer: int        # remote address value
    local_port: int
    peer_port: int
    alive: bool = True
    killed_at: Optional[float] = None
    killed_by: Optional[str] = None


class ConnectionPool:
    """Tracks established connections on a host and reacts to teardown packets.

    Install on the victim host with ``host.add_responder(pool.on_packet)``.
    A TCP RST (or ICMP host-unreachable) matching an established peer kills
    the connection — the endpoint cannot tell forged signalling from real.
    """

    def __init__(self, host: Host) -> None:
        self.host = host
        self.connections: list[Connection] = []
        host.add_responder(self.on_packet)

    def establish(self, peer: Host, local_port: int = 80, peer_port: int = 40000) -> Connection:
        conn = Connection(peer=int(peer.address), local_port=local_port, peer_port=peer_port)
        self.connections.append(conn)
        return conn

    def on_packet(self, packet: Packet, host: Host, now: float) -> None:
        teardown = (
            (packet.proto is Protocol.TCP and bool(packet.flags & TCPFlags.RST))
            or (packet.proto is Protocol.ICMP and packet.icmp_type is ICMPType.HOST_UNREACHABLE)
        )
        if not teardown:
            return None
        for conn in self.connections:
            if not conn.alive:
                continue
            if packet.proto is Protocol.ICMP:
                # ICMP unreachable claims the *peer* became unreachable
                if int(packet.src) == conn.peer or packet.icmp_type is ICMPType.HOST_UNREACHABLE:
                    conn.alive = False
                    conn.killed_at = now
                    conn.killed_by = "icmp"
                    break
            else:
                # RST must claim to come from the connection's peer
                if int(packet.src) == conn.peer:
                    conn.alive = False
                    conn.killed_at = now
                    conn.killed_by = "rst"
                    break
        return None

    @property
    def alive_count(self) -> int:
        return sum(1 for c in self.connections if c.alive)

    @property
    def survival_fraction(self) -> float:
        return self.alive_count / len(self.connections) if self.connections else 1.0


@dataclass
class ProtocolMisuseAttack:
    """Inject forged teardown packets against a victim's connection pool.

    The attacker knows (or guesses) the victim's peers; each injected packet
    spoofs one peer's address.  ``mode`` selects RST or ICMP.
    """

    network: Network
    attacker_host: Host
    pool: ConnectionPool
    rate_pps: float = 20.0
    duration: float = 1.0
    start: float = 0.0
    mode: str = "rst"  # "rst" | "icmp"
    hit_fraction: float = 1.0  # fraction of injected packets naming a real peer
    seed: int | None = None

    def launch(self) -> TrafficGenerator:
        if self.mode not in ("rst", "icmp"):
            raise AttackConfigError(f"unknown misuse mode {self.mode!r}")
        if not self.pool.connections:
            raise AttackConfigError("victim has no connections to attack")
        rng = derive_rng(self.seed, "misuse")
        victim_addr = self.pool.host.address
        peers = [c.peer for c in self.pool.connections]

        def factory(seq: int, now: float) -> Packet:
            from repro.net.addressing import IPv4Address

            if rng.random() < self.hit_fraction:
                spoofed_src = IPv4Address(peers[int(rng.integers(0, len(peers)))])
            else:  # wild guess: an address unrelated to any connection
                spoofed_src = IPv4Address(int(rng.integers(1, 2**32 - 1)))
            if self.mode == "rst":
                pkt = Packet.tcp_rst(spoofed_src, victim_addr)
            else:
                pkt = Packet.icmp(spoofed_src, victim_addr, ICMPType.HOST_UNREACHABLE)
            pkt.kind = "attack-misuse"
            pkt.true_origin = self.attacker_host.name
            pkt.spoofed = True
            return pkt

        gen = TrafficGenerator(self.attacker_host, factory, self.rate_pps,
                               start=self.start, duration=self.duration,
                               seed=derive_rng(self.seed, "misuse-gen"))
        gen.install()
        return gen
