"""Tests for remaining small public surfaces."""

import pytest

from repro.net import TopologyBuilder, build_routing
from repro.net.routing import paths_through


class TestPathsThrough:
    def test_yields_one_path_per_pair(self):
        topo = TopologyBuilder.line(4)
        tables = build_routing(topo)
        pairs = [(0, 3), (3, 0), (1, 2)]
        paths = list(paths_through(tables, pairs))
        assert paths == [[0, 1, 2, 3], [3, 2, 1, 0], [1, 2]]


class TestProbeObserverBounds:
    def test_max_records_bound(self):
        from repro.core import NetworkUser
        from repro.core.apps.debugging import ProbeObserver
        from repro.core.components import ComponentContext
        from repro.net import IPv4Address, Packet, Prefix

        observer = ProbeObserver(max_records=3)
        ctx = ComponentContext(
            now=0.0, asn=1, is_transit=False,
            local_prefix=Prefix.parse("10.0.0.0/16"), stage="dest",
            owner=NetworkUser("u", prefixes=[Prefix.parse("10.1.0.0/16")]))
        for i in range(10):
            observer(Packet.udp(IPv4Address(1), IPv4Address(2)), ctx)
        assert len(observer.observations) == 3
        assert observer.processed == 10


class TestOverlayMultipleBeacons:
    def test_round_robin_over_beacons(self):
        from repro.mitigation import SecureOverlay
        from repro.net import Network, Packet, TopologyBuilder

        net = Network(TopologyBuilder.hierarchical(2, 2, 6, seed=41))
        stubs = net.topology.stub_ases
        victim = net.add_host(stubs[0])
        clients = [net.add_host(a) for a in stubs[1:3]]
        sos = SecureOverlay(victim, overlay_asns=stubs[3:10], n_soaps=2,
                            n_beacons=2, n_servlets=1)
        sos.deploy(net)
        for client in clients:
            sos.authorize(client)
            pkt = sos.overlay_packet(client, Packet.udp(
                client.address, victim.address, kind="legit"))
            client.send(pkt)
        net.run()
        assert victim.received_by_kind.get("legit", 0) == 2
        # both beacons participated (each soap maps to a distinct beacon)
        beacon_traffic = [b.received_packets for b in sos.beacons]
        assert sum(beacon_traffic) == 2

    def test_stretch_uses_matching_beacon(self):
        from repro.mitigation import SecureOverlay
        from repro.net import Network, TopologyBuilder

        net = Network(TopologyBuilder.hierarchical(2, 2, 6, seed=41))
        stubs = net.topology.stub_ases
        victim = net.add_host(stubs[0])
        client = net.add_host(stubs[1])
        sos = SecureOverlay(victim, overlay_asns=stubs[3:10], n_soaps=2,
                            n_beacons=2, n_servlets=1)
        sos.deploy(net)
        assert sos.stretch(client) >= 1.0


class TestFmtHelpers:
    def test_table_column_missing_raises(self):
        from repro.util import Table

        t = Table("x", ["a"])
        with pytest.raises(ValueError):
            t.column("nope")

    def test_online_stats_stdev(self):
        from repro.util import OnlineStats

        s = OnlineStats()
        for x in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            s.add(x)
        assert s.stdev == pytest.approx(2.138, abs=0.01)


class TestSpawnGeneratorSeeding:
    def test_traffic_generator_accepts_generator_seed(self):
        from repro.attack import TrafficGenerator
        from repro.net import Network, Packet, TopologyBuilder
        from repro.util import derive_rng

        net = Network(TopologyBuilder.line(2))
        a = net.add_host(0)
        b = net.add_host(1)
        gen = TrafficGenerator(a, lambda s, t: Packet.udp(a.address, b.address),
                               rate_pps=100.0, duration=0.1, poisson=True,
                               seed=derive_rng(5, "g"))
        gen.install()
        net.run()
        assert gen.sent > 0
