"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AddressError",
    "TopologyError",
    "RoutingError",
    "SimulationError",
    "AttackConfigError",
    "MitigationError",
    "OwnershipError",
    "RegistrationError",
    "CertificateError",
    "ScopeViolation",
    "SafetyViolation",
    "VettingError",
    "DeploymentError",
    "ComponentGraphError",
    "ControlPlaneUnavailable",
    "RetryExhausted",
    "FaultConfigError",
    "MetricError",
    "StorageError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError):
    """Malformed IPv4 address or prefix, or an impossible allocation."""


class TopologyError(ReproError):
    """Invalid topology construction or query."""


class RoutingError(ReproError):
    """No route exists, or the routing tables are inconsistent."""


class SimulationError(ReproError):
    """Discrete-event simulator misuse (e.g. scheduling in the past)."""


class AttackConfigError(ReproError):
    """An attack scenario was configured inconsistently."""


class MitigationError(ReproError):
    """A mitigation scheme was configured or driven incorrectly."""


class OwnershipError(ReproError):
    """Traffic-ownership bookkeeping failure (unknown prefix/owner)."""


class RegistrationError(ReproError):
    """TCSP service registration was refused (Fig. 4 of the paper)."""


class CertificateError(ReproError):
    """An ownership certificate failed verification."""


class ScopeViolation(ReproError):
    """A network user tried to control traffic they do not own (Sec. 4.5)."""


class SafetyViolation(ReproError):
    """Runtime safety invariant broken: rate/byte amplification or header
    mutation of src/dst/TTL inside an adaptive device (Sec. 4.5)."""


class VettingError(ReproError):
    """A component or component graph failed static security vetting
    before deployment (Sec. 4.5: 'new service modules must be checked for
    security compliance before deployment')."""


class DeploymentError(ReproError):
    """Service deployment through TCSP/ISP NMS failed (Fig. 5)."""


class ComponentGraphError(ReproError):
    """Malformed processing-component graph (cycles, dangling ports)."""


class ControlPlaneUnavailable(ReproError):
    """The contacted control-plane entity (e.g. the TCSP under DDoS,
    Sec. 5.1) is currently unreachable."""


class RetryExhausted(ControlPlaneUnavailable):
    """A control-plane call failed on every attempt of its retry policy
    (:mod:`repro.core.rpc`).  Subclasses :class:`ControlPlaneUnavailable`
    so existing fallback paths (direct NMS, Sec. 5.1) keep working."""


class FaultConfigError(ReproError):
    """A fault-injection plan was configured inconsistently
    (:mod:`repro.net.faults`)."""


class MetricError(ReproError):
    """Telemetry misuse: conflicting metric declaration, unknown kind, or
    a label-cardinality budget exceeded (:mod:`repro.obs`)."""


class StorageError(ReproError):
    """Control-plane storage backend misuse (unknown replica, bad
    configuration) — :mod:`repro.core.storage`."""
