"""repro.obs — the unified telemetry layer.

One typed, deterministic metrics registry under the data plane
(:mod:`repro.net`), the control plane (:mod:`repro.core`) and the scenario
engines (:mod:`repro.scenario`): Counter/Gauge/Histogram/SpanTimer
instruments grouped into label-keyed families, ambient per-run scoping,
``snapshot()``/``delta()`` views that are byte-identical serial vs
parallel, wall-clock spans reported separately, and JSONL export.

See DESIGN.md's observability section for the registry design and the
determinism rules.
"""

from repro.obs.metrics import (
    CATALOG,
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricDecl,
    MetricRegistry,
    SpanTimer,
    declare,
    default_registry,
    get_registry,
    reset_metrics,
    scoped,
    snapshot_delta,
)
from repro.obs.schema import full_catalog

__all__ = [
    "CATALOG",
    "Counter",
    "Family",
    "Gauge",
    "Histogram",
    "MetricDecl",
    "MetricRegistry",
    "SpanTimer",
    "declare",
    "default_registry",
    "full_catalog",
    "get_registry",
    "reset_metrics",
    "scoped",
    "snapshot_delta",
]
