"""Tests for PPM and SPIE traceback."""

import pytest

from repro.attack import AttackScenario, ScenarioConfig
from repro.errors import MitigationError
from repro.mitigation import PPMTraceback, SpieTraceback, TracebackFilter
from repro.mitigation.traceback import MarkingCollector
from repro.net import Network, Packet, TopologyBuilder


def run_scenario(kind, seed=5, **cfg_kw):
    net = Network(TopologyBuilder.hierarchical(2, 2, 6, seed=3))
    cfg = ScenarioConfig(attack_kind=kind, n_agents=5, n_reflectors=4,
                         attack_rate_pps=400.0, duration=0.6, seed=seed, **cfg_kw)
    sc = AttackScenario(net, cfg)
    return net, sc


class TestPPM:
    def test_invalid_probability(self):
        with pytest.raises(MitigationError):
            PPMTraceback(p=0.0)
        with pytest.raises(MitigationError):
            PPMTraceback(p=1.5)

    def test_direct_unspoofed_identifies_agent_ases(self):
        net, sc = run_scenario("direct-unspoofed")
        ppm = PPMTraceback(p=0.1, seed=1)
        ppm.deploy(net, net.topology.as_numbers)
        col = MarkingCollector()
        sc.victim.add_responder(col.on_packet)
        sc.run()
        identified = PPMTraceback.identified_source_asns(col, min_count=2)
        agent_asns = {a.asn for a in sc.agents}
        assert identified
        assert identified <= agent_asns

    def test_direct_spoofed_still_finds_true_paths(self):
        """PPM's strength: markings come from routers, not source fields."""
        net, sc = run_scenario("direct-spoofed")
        ppm = PPMTraceback(p=0.1, seed=1)
        ppm.deploy(net, net.topology.as_numbers)
        col = MarkingCollector()
        sc.victim.add_responder(col.on_packet)
        sc.run()
        identified = PPMTraceback.identified_source_asns(col, min_count=2)
        agent_asns = {a.asn for a in sc.agents}
        assert identified
        assert identified <= agent_asns

    def test_reflector_attack_identifies_reflectors_not_agents(self):
        """The paper's key negative result (Sec. 3.1): traceback yields
        'a wrong attack source - the reflectors'."""
        net, sc = run_scenario("reflector")
        ppm = PPMTraceback(p=0.1, seed=1)
        ppm.deploy(net, net.topology.as_numbers)
        col = MarkingCollector()
        sc.victim.add_responder(col.on_packet)
        sc.run()
        identified = PPMTraceback.identified_source_asns(col, min_count=2)
        reflector_asns = {r.asn for r in sc.reflectors}
        agent_only_asns = {a.asn for a in sc.agents} - reflector_asns
        assert identified
        assert identified <= reflector_asns
        assert not (identified & agent_only_asns)

    def test_marking_never_drops(self):
        net, sc = run_scenario("direct-unspoofed")
        PPMTraceback(p=0.5, seed=2).deploy(net, net.topology.as_numbers)
        m = sc.run()
        assert m.attack_dropped_by_filters == 0

    def test_reconstruct_min_count_filters_noise(self):
        col = MarkingCollector()
        col.markings[(1, 2, 0)] = 10
        col.markings[(7, 8, 3)] = 1  # noise
        edges = PPMTraceback.reconstruct(col, min_count=2)
        assert (1, 2) in edges and (7, 8) not in edges

    def test_collector_ignores_legit(self):
        col = MarkingCollector()

        class H:  # minimal host stand-in
            pass

        pkt = Packet.udp(*(2 * [__import__("repro.net", fromlist=["IPv4Address"]).IPv4Address(1)]))
        pkt.kind = "legit"
        pkt.marking = (1, 2, 0)
        col.on_packet(pkt, H(), 0.0)
        assert not col.markings


class TestSPIE:
    def test_invalid_parameters(self):
        with pytest.raises(MitigationError):
            SpieTraceback(window=0.0)
        with pytest.raises(MitigationError):
            SpieTraceback(capacity_per_window=0)

    def test_traces_direct_packet_to_agent_as(self):
        net, sc = run_scenario("direct-spoofed")
        spie = SpieTraceback()
        spie.deploy(net, net.topology.as_numbers)
        sc.victim.record = True
        sc.run()
        pkt = next(p for _, p in sc.victim.log if p.kind == "attack")
        q = spie.trace(pkt, sc.victim_asn)
        assert q.complete
        true_agent_asn = next(a.asn for a in sc.agents if a.name == pkt.true_origin)
        assert q.origin_asn == true_agent_asn

    def test_reflected_packet_traces_to_reflector(self):
        net, sc = run_scenario("reflector")
        spie = SpieTraceback()
        spie.deploy(net, net.topology.as_numbers)
        sc.victim.record = True
        sc.run()
        pkt = next(p for _, p in sc.victim.log if p.kind == "attack-reflected")
        q = spie.trace(pkt, sc.victim_asn)
        reflector_asns = {r.asn for r in sc.reflectors}
        assert q.origin_asn in reflector_asns  # trace dies at the reflector

    def test_untraced_packet(self):
        net, sc = run_scenario("direct-unspoofed")
        spie = SpieTraceback()
        spie.deploy(net, net.topology.as_numbers)
        sc.run()
        ghost = Packet.udp(sc.victim.address, sc.victim.address)
        q = spie.trace(ghost, sc.victim_asn)
        assert q.origin_asn is None
        assert not q.complete

    def test_trace_requires_deploy(self):
        spie = SpieTraceback()
        with pytest.raises(MitigationError):
            spie.trace(Packet.udp(*(2 * [__import__("repro.net", fromlist=["IPv4Address"]).IPv4Address(1)])), 0)

    def test_window_paging_bounds_memory(self):
        net = Network(TopologyBuilder.line(2))
        spie = SpieTraceback(window=0.1, max_windows=3)
        spie.deploy(net, [0, 1])
        a = net.add_host(0)
        b = net.add_host(1)
        for i in range(20):
            net.sim.schedule_at(i * 0.1, a.send, Packet.udp(a.address, b.address))
        net.run()
        assert len(spie.stores[0]) <= 3


class TestTracebackFilter:
    def test_blocks_identified_sources_cutting_reflector_services(self):
        """Filtering 'identified' reflector ASes blocks their legit services
        too — the paper's counterproductive case."""
        net, sc = run_scenario("reflector")
        reflector_asns = [r.asn for r in sc.reflectors]
        tf = TracebackFilter(blocked_asns=reflector_asns)
        tf.deploy(net, [sc.victim_asn])
        # a legitimate service reply from a reflector AS host
        service = net.add_host(reflector_asns[0])
        sc.run()
        before = tf.dropped
        service.send(Packet.udp(service.address, sc.victim.address, kind="legit"))
        net.run()
        assert tf.dropped > before  # the legit reply died at the filter
        assert sc.victim.received_by_kind.get("attack-reflected", 0) == 0
