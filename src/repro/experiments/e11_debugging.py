"""E11 — network debugging and statistics (paper Sec. 4.4).

"Link delays or packet loss on intermediate links could be measured for
network debugging purposes."

We inject known delay and loss on a mid-path link, deploy the debugging
app and compare its estimates against the injected ground truth, sweeping
the probe count.
"""

from __future__ import annotations

from repro.core import DeploymentScope
from repro.core.apps import NetworkDebuggingApp
from repro.experiments.common import ExperimentConfig, register
from repro.net import LinkParams, Network, Packet
from repro.scenario import TopologySpec
from repro.scenario.tcs import build_tcs_world
from repro.util.tables import Table
from repro.util.units import Mbps, ms

__all__ = ["run", "debugging_table"]


def _run_once(cfg: ExperimentConfig, n_probes: int, true_delay: float,
              squeeze: bool):
    net = Network(TopologySpec(kind="line", n=4).build(cfg.seed))
    link = net.link_between(1, 2)
    link.delay = true_delay
    if squeeze:
        link.bandwidth = 2e5  # forces queueing loss under the probe burst
        link.buffer_bytes = 2_000
    world = build_tcs_world(net, owner_asn=0, service=True)
    app = NetworkDebuggingApp(world.service)
    app.deploy(DeploymentScope.everywhere())
    src = net.add_host(0, access=LinkParams(bandwidth=Mbps(100), delay=ms(1),
                                            buffer_bytes=10**7))
    dst = net.add_host(3)
    gap = 0.001 if squeeze else 0.01
    for i in range(n_probes):
        net.sim.schedule_at(i * gap, src.send,
                            Packet.udp(src.address, dst.address, size=200))
    net.run()
    return app.estimate_segment(1, 2)


def debugging_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E11: in-network delay/loss estimation accuracy (Sec. 4.4)",
        ["injected_delay_ms", "probes", "est_delay_ms", "delay_err_%",
         "loss_injected", "est_loss"],
    )
    for true_delay_ms in (5.0, 25.0):
        for n_probes in (5, 20, 100):
            est = _run_once(cfg, n_probes, true_delay_ms / 1e3, squeeze=False)
            err = abs(est.mean_delay * 1e3 - true_delay_ms) / true_delay_ms * 100
            table.add_row(true_delay_ms, n_probes,
                          round(est.mean_delay * 1e3, 3), round(err, 1),
                          "no", round(est.loss_fraction, 3))
    est = _run_once(cfg, 200, 0.005, squeeze=True)
    table.add_row(5.0, 200, round(est.mean_delay * 1e3, 2), "-", "yes",
                  round(est.loss_fraction, 3))
    table.add_note("delay error stems from serialization time, which the "
                   "estimator attributes to the segment; the squeezed run "
                   "shows loss detection on an overloaded link")
    return table


@register("E11")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [debugging_table(cfg)]
