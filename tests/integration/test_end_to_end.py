"""End-to-end integration tests: full stacks wired together."""


from repro.attack import AttackScenario, ScenarioConfig
from repro.core import (
    DeploymentScope,
    NumberAuthority,
    Tcsp,
    TrafficControlService,
)
from repro.core.apps import (
    AntiSpoofApp,
    DistributedFirewallApp,
    FirewallRule,
    SpieTracebackApp,
)
from repro.net import Network, Packet, TopologyBuilder


def full_world(seed=13, attack_kind="reflector"):
    """Topology + attack + TCSP + registered victim, ready to deploy."""
    net = Network(TopologyBuilder.hierarchical(2, 2, 6, seed=seed))
    sc = AttackScenario(net, ScenarioConfig(
        attack_kind=attack_kind, n_agents=6, n_reflectors=5,
        attack_rate_pps=300.0, duration=0.5, seed=seed))
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, net)
    nms = tcsp.contract_isp("isp", net.topology.as_numbers)
    prefix = net.topology.prefix_of(sc.victim_asn)
    authority.record_allocation(prefix, "victim-co")
    user, cert = tcsp.register_user("victim-co", [prefix])
    svc = TrafficControlService(tcsp, user, cert, home_nms=nms)
    return net, sc, svc


class TestHeadlineScenario:
    """The paper's end-to-end story as one test."""

    def test_register_deploy_defend(self):
        net, sc, svc = full_world()
        AntiSpoofApp(svc).deploy()
        metrics = sc.run()
        assert metrics.attack_packets_at_victim == 0
        assert metrics.legit_goodput == 1.0
        assert metrics.collateral_fraction == 0.0
        assert metrics.byte_hops_attack == 0

    def test_defense_survives_tcsp_outage(self):
        """Deploy through the fallback path while the TCSP is down."""
        net, sc, svc = full_world(seed=14)
        svc.tcsp.reachable = False
        AntiSpoofApp(svc).deploy()
        assert svc.fallback_used == 1
        metrics = sc.run()
        assert metrics.attack_packets_at_victim == 0

    def test_deactivation_restores_attack(self):
        net, sc, svc = full_world(seed=15)
        AntiSpoofApp(svc).deploy()
        svc.set_active(False)
        metrics = sc.run()
        assert metrics.attack_packets_at_victim > 0


class TestMultiTenant:
    """Two users with services on the same devices never interfere."""

    def test_two_users_independent_rules(self):
        net = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=4))
        authority = NumberAuthority()
        tcsp = Tcsp("TCSP", authority, net)
        tcsp.contract_isp("isp", net.topology.as_numbers)
        stubs = net.topology.stub_ases
        alice_host = net.add_host(stubs[0])
        bob_host = net.add_host(stubs[1])
        client = net.add_host(stubs[2])

        services = {}
        for name, host in (("alice", alice_host), ("bob", bob_host)):
            prefix = net.topology.prefix_of(host.asn)
            authority.record_allocation(prefix, name)
            user, cert = tcsp.register_user(name, [prefix])
            services[name] = TrafficControlService(tcsp, user, cert)
        # alice blocks UDP/53; bob blocks nothing
        fw = DistributedFirewallApp(services["alice"],
                                    [FirewallRule.block_port(53)])
        fw.deploy(DeploymentScope.everywhere())
        client.send(Packet.udp(client.address, alice_host.address, dport=53,
                               kind="to-alice"))
        client.send(Packet.udp(client.address, bob_host.address, dport=53,
                               kind="to-bob"))
        net.run()
        assert alice_host.received_packets == 0   # alice's rule fired
        assert bob_host.received_by_kind["to-bob"] == 1  # bob untouched

    def test_same_packet_both_stages_different_owners(self):
        """alice -> bob traffic passes alice's src stage then bob's dst stage."""
        net = Network(TopologyBuilder.line(3))
        authority = NumberAuthority()
        tcsp = Tcsp("TCSP", authority, net)
        tcsp.contract_isp("isp", net.topology.as_numbers)
        alice_host = net.add_host(0)
        bob_host = net.add_host(2)
        svcs = {}
        for name, asn in (("alice", 0), ("bob", 2)):
            prefix = net.topology.prefix_of(asn)
            authority.record_allocation(prefix, name)
            user, cert = tcsp.register_user(name, [prefix])
            svcs[name] = TrafficControlService(tcsp, user, cert)
        # alice logs outbound; bob logs inbound
        alice_fw = DistributedFirewallApp(svcs["alice"], [], with_logging=True)
        svcs["alice"].deploy(DeploymentScope.explicit([1]),
                             src_graph_factory=alice_fw.graph_factory)
        bob_fw = DistributedFirewallApp(svcs["bob"], [], with_logging=True)
        bob_fw.deploy(DeploymentScope.explicit([1]))
        alice_host.send(Packet.udp(alice_host.address, bob_host.address))
        net.run()
        assert bob_host.received_packets == 1
        assert len(svcs["alice"].read_logs()) == 1
        assert len(svcs["bob"].read_logs()) == 1


class TestForensicsPipeline:
    def test_attack_then_trace_then_block(self):
        """Detect -> trace with TCS SPIE -> firewall the sources -> verify."""
        net, sc, svc = full_world(seed=16, attack_kind="direct-unspoofed")
        spie = SpieTracebackApp(svc)
        spie.deploy(DeploymentScope.everywhere())
        sc.victim.record = True
        sc.run()
        attack_pkts = [p for _, p in sc.victim.log if p.kind == "attack"]
        assert attack_pkts
        origins = {spie.trace(p, sc.victim_asn).origin_asn
                   for p in attack_pkts[:30]}
        origins.discard(None)
        agent_asns = {a.asn for a in sc.agents}
        assert origins <= agent_asns
        assert origins  # at least one source traced


class TestDeterminism:
    def test_identical_seeds_identical_outcomes(self):
        results = []
        for _ in range(2):
            net, sc, svc = full_world(seed=77)
            AntiSpoofApp(svc).deploy(
                DeploymentScope.stub_borders(fraction=0.5, seed=5))
            m = sc.run()
            results.append((m.attack_packets_at_victim, m.legit_sent,
                            m.legit_delivered, m.byte_hops_attack))
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        outcomes = set()
        for seed in (1, 2, 3):
            net, sc, svc = full_world(seed=seed)
            m = sc.run()
            outcomes.add((sc.victim_asn, m.attack_packets_at_victim))
        assert len(outcomes) > 1
