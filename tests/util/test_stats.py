"""Unit tests for OnlineStats and WindowedCounter."""

import math

import numpy as np
from hypothesis import given, strategies as st

from repro.util import OnlineStats, WindowedCounter


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.n == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_simple_sequence(self):
        s = OnlineStats()
        for x in (1.0, 2.0, 3.0, 4.0):
            s.add(x)
        assert s.mean == 2.5
        assert s.min == 1.0
        assert s.max == 4.0
        assert math.isclose(s.variance, np.var([1, 2, 3, 4], ddof=1))

    @given(xs=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=200))
    def test_matches_numpy(self, xs):
        s = OnlineStats()
        for x in xs:
            s.add(x)
        assert math.isclose(s.mean, float(np.mean(xs)), rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(s.variance, float(np.var(xs, ddof=1)), rel_tol=1e-6, abs_tol=1e-3)

    @given(
        xs=st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=50),
        ys=st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=50),
    )
    def test_merge_equals_concatenation(self, xs, ys):
        a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
        for x in xs:
            a.add(x)
            c.add(x)
        for y in ys:
            b.add(y)
            c.add(y)
        a.merge(b)
        assert a.n == c.n
        assert math.isclose(a.mean, c.mean, rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(a.variance, c.variance, rel_tol=1e-6, abs_tol=1e-6)

    def test_merge_with_empty(self):
        a, b = OnlineStats(), OnlineStats()
        a.add(5.0)
        a.merge(b)
        assert a.n == 1 and a.mean == 5.0
        b.merge(a)
        assert b.n == 1 and b.mean == 5.0


class TestWindowedCounter:
    def test_events_inside_window_counted(self):
        w = WindowedCounter(window=1.0)
        w.add(0.0)
        w.add(0.5)
        assert w.total(0.9) == 2.0

    def test_events_expire(self):
        w = WindowedCounter(window=1.0)
        w.add(0.0)
        w.add(0.5)
        assert w.total(1.4) == 1.0
        assert w.total(2.0) == 0.0

    def test_weights(self):
        w = WindowedCounter(window=10.0)
        w.add(0.0, weight=100.0)
        w.add(1.0, weight=50.0)
        assert w.total(5.0) == 150.0
        assert w.rate(5.0) == 15.0

    def test_len_tracks_live_events(self):
        w = WindowedCounter(window=1.0)
        for t in (0.0, 0.2, 0.4):
            w.add(t)
        w.total(1.1)  # cutoff 0.1: events at 0.2 and 0.4 remain
        assert len(w) == 2
