"""Tests for the pushback baseline."""

import pytest

from repro.attack import AttackScenario, DirectFlood, ScenarioConfig
from repro.errors import MitigationError
from repro.mitigation import Pushback, PushbackConfig
from repro.net import LinkParams, Network, TopologyBuilder
from repro.util.units import Mbps


def heavy_flood(spoof="none", seed=1, agents=8, rate=2000.0):
    net = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=seed))
    cfg = ScenarioConfig(attack_kind=f"direct-{'random' if False else ('spoofed' if spoof == 'random' else 'unspoofed')}",
                         n_agents=agents, attack_rate_pps=rate,
                         duration=0.6, seed=seed)
    sc = AttackScenario(net, cfg)
    return net, sc


class TestConfig:
    def test_invalid_config(self):
        with pytest.raises(MitigationError):
            PushbackConfig(check_interval=0.0)
        with pytest.raises(MitigationError):
            PushbackConfig(max_depth=-1)


class TestDetectionAndLimiting:
    def test_triggers_on_congestion(self):
        net, sc = heavy_flood(spoof="none")
        pb = Pushback()
        pb.deploy(net, net.topology.as_numbers)
        sc.run()
        assert pb.activations > 0
        assert pb.limits_installed() > 0
        assert pb.rate_limited_drops > 0

    def test_no_trigger_without_congestion(self):
        net = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=2))
        cfg = ScenarioConfig(attack_kind="direct-unspoofed", n_agents=1,
                             attack_rate_pps=10.0, duration=0.4, seed=2)
        sc = AttackScenario(net, cfg)
        pb = Pushback()
        pb.deploy(net, net.topology.as_numbers)
        sc.run()
        assert pb.activations == 0

    def test_identifies_true_agents_when_unspoofed(self):
        net, sc = heavy_flood(spoof="none", seed=3)
        pb = Pushback()
        pb.deploy(net, net.topology.as_numbers)
        sc.run()
        agent_asns = {a.asn for a in sc.agents}
        identified = pb.identified_asns()
        assert identified
        assert identified <= agent_asns  # no innocents named

    def test_misidentifies_under_spoofing(self):
        """With random spoofed sources the aggregates point at innocents."""
        net, sc = heavy_flood(spoof="random", seed=4)
        pb = Pushback()
        pb.deploy(net, net.topology.as_numbers)
        sc.run()
        agent_asns = {a.asn for a in sc.agents}
        identified = pb.identified_asns()
        assert identified  # it does act...
        assert identified - agent_asns  # ...but names at least one innocent AS

    def test_reduces_attack_at_victim_but_with_collateral(self):
        """Pushback cuts the unspoofed flood, but legit clients sharing an
        aggregate's prefix get rate-limited too (the paper's collateral)."""
        base_net, base_sc = heavy_flood(spoof="none", seed=5)
        base = base_sc.run()
        pb_net, pb_sc = heavy_flood(spoof="none", seed=5)
        pb = Pushback(PushbackConfig(top_aggregates=4, limit_fraction=0.02))
        pb.deploy(pb_net, pb_net.topology.as_numbers)
        protected = pb_sc.run()
        assert (protected.attack_packets_at_victim
                < 0.8 * base.attack_packets_at_victim)
        assert pb.rate_limited_drops > 0
        # limits target real agent ASes (sources are genuine here)
        assert pb.identified_asns() <= {a.asn for a in pb_sc.agents}


class TestPropagation:
    def test_stops_at_non_deploying_router(self):
        """Contiguity requirement: a gap halts upstream propagation."""
        net = Network(TopologyBuilder.line(6))
        agent = net.add_host(0, access=LinkParams(bandwidth=Mbps(1000),
                                                  delay=0.001,
                                                  buffer_bytes=10**7))
        victim = net.add_host(5)
        flood = DirectFlood(net, [agent], victim, rate_pps=12_000.0,
                            duration=0.6, spoof="none", seed=1)
        # AS3 does not deploy: propagation from AS5/AS4 must stop there
        pb = Pushback(PushbackConfig(max_depth=5))
        pb.deploy(net, [1, 2, 4, 5], until=1.0)
        flood.launch()
        net.run(until=1.2)
        assert pb.limits_installed() > 0
        limited = set(pb.limits)
        assert 3 not in limited
        assert 2 not in limited and 1 not in limited  # behind the gap

    def test_depth_limit(self):
        net = Network(TopologyBuilder.line(6))
        agent = net.add_host(0, access=LinkParams(bandwidth=Mbps(1000),
                                                  delay=0.001,
                                                  buffer_bytes=10**7))
        victim = net.add_host(5)
        flood = DirectFlood(net, [agent], victim, rate_pps=12_000.0,
                            duration=0.6, spoof="none", seed=1)
        pb = Pushback(PushbackConfig(max_depth=1))
        pb.deploy(net, net.topology.as_numbers, until=1.0)
        flood.launch()
        net.run(until=1.2)
        limited = set(pb.limits)
        # congestion appears at the victim's AS (5); depth 1 reaches AS 4
        assert limited <= {4, 5}
