"""E6 — scalability (paper Sec. 5.3).

"It is important to notice that no additional rules must be installed in
our adaptive devices when more users join the Internet or when additional
computers are attached. ... The scaling factors that our service depends
on is the total number of autonomous systems deploying our service, the
resulting number of rules installed (derived from the tens of thousands
of subscribers) and the bandwidth at which traffic must be filtered."

Measured here:

* total installed rules vs. number of *subscribers* (grows linearly) and
  vs. number of *hosts* (flat),
* per-packet device processing cost vs. installed services (the redirect
  decision is one LPM lookup; only owners' packets pay for their graphs).
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.common import ExperimentConfig, register
from repro.net import (
    FluidNetwork,
    IPv4Address,
    LinkParams,
    Network,
    Packet,
    PacketBatch,
    TopologyBuilder,
    synthesize_as_rel2,
)
from repro.net.fluid import flood_flows
from repro.scenario.devices import build_device
from repro.util.rng import derive_rng
from repro.util.tables import Table
from repro.util.units import Mbps, ms

__all__ = ["run", "rules_vs_subscribers_table", "rules_vs_hosts_table",
           "device_cost_table", "flow_cache_table", "caida_scale_table",
           "batch_forwarding_table", "sketch_accuracy_table", "build_device"]


def rules_vs_subscribers_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E6a: installed rules scale with subscribers (Sec. 5.3)",
        ["subscribers", "rules_total", "rules_per_subscriber"],
    )
    for n in (10, 100, 1000, cfg.scaled(5000, minimum=2000)):
        device, _ = build_device(n)
        table.add_row(n, device.rule_count(),
                      round(device.rule_count() / n, 2))
    table.add_note("rules grow linearly in subscribers ('tens of thousands "
                   "rather than millions', Sec. 5.3)")
    return table


def rules_vs_hosts_table(cfg: ExperimentConfig) -> Table:
    """Growing the *host* population changes nothing on the devices."""
    table = Table(
        "E6b: installed rules are independent of the host population (Sec. 5.3)",
        ["hosts_behind_prefixes", "subscribers", "rules_total"],
    )
    device, users = build_device(100)
    baseline_rules = device.rule_count()
    for hosts in (10_000, 100_000, 1_000_000, 20_000_000):
        # hosts live inside the subscribers' prefixes: the ownership trie
        # and the rule set are untouched; only addresses get denser.
        table.add_row(hosts, len(users), device.rule_count())
        assert device.rule_count() == baseline_rules
    table.add_note("compare 2004's ~21.7M hosts (Sec. 5.3 [2]): the rule "
                   "count column would still read 200")
    return table


def device_cost_table(cfg: ExperimentConfig) -> Table:
    """Per-packet processing cost vs. installed services."""
    table = Table(
        "E6c: per-packet device cost vs. installed services",
        ["subscribers", "owned_pkt_us", "unowned_pkt_us", "redirect_check_us"],
    )
    reps = cfg.scaled(3000, minimum=500)
    for n in (10, 100, 1000):
        device, users = build_device(n)
        owned = Packet.udp(IPv4Address.parse("172.16.0.1"),
                           IPv4Address(users[0].prefixes[0].base + 5))
        unowned = Packet.udp(IPv4Address.parse("172.16.0.1"),
                             IPv4Address.parse("172.16.0.2"))

        def timed(fn, *args) -> float:
            start = time.perf_counter()
            for _ in range(reps):
                fn(*args)
            return (time.perf_counter() - start) / reps * 1e6

        t_owned = timed(device.process, owned, 0.0, None)
        t_unowned = timed(device.process, unowned, 0.0, None)
        t_check = timed(device.wants, owned)
        table.add_row(n, round(t_owned, 2), round(t_unowned, 2),
                      round(t_check, 2))
    table.add_note("the redirect decision (one LPM lookup) is independent "
                   "of the subscriber count; unowned traffic 'will use the "
                   "direct path through the router' (Sec. 4.1)")
    return table


def flow_cache_table(cfg: ExperimentConfig) -> Table:
    """The device's per-flow fast path: hit rate and redirect-check speedup.

    Real traffic is flow-structured (many packets per 4-tuple), so the
    LRU flow cache turns the per-packet redirect decision from two LPM
    walks plus a membership check into one dict probe.  ``cold_us``
    measures the miss path (cache cleared before every check),
    ``warm_us`` the steady state over a recirculating working set.
    """
    table = Table(
        "E6d: device flow-cache fast path (redirect decision)",
        ["subscribers", "flows", "hit_rate_%", "cold_us", "warm_us",
         "speedup_x"],
    )
    reps = cfg.scaled(3000, minimum=500)
    for n in (100, 1000):
        device, users = build_device(n)
        rng = derive_rng(cfg.seed, "e6d", n)
        n_flows = 64
        packets = []
        for i in range(n_flows):
            user = users[int(rng.integers(0, len(users)))]
            src = IPv4Address(int(rng.integers(0, 2**32)))
            dst = IPv4Address(user.prefixes[0].base
                              + int(rng.integers(1, 2**16)))
            packets.append(Packet.udp(src, dst, dport=int(rng.integers(1, 1024))))

        start = time.perf_counter()
        for i in range(reps):
            device.invalidate_flow_cache()
            device.wants(packets[i % n_flows])
        cold = (time.perf_counter() - start) / reps * 1e6

        device.invalidate_flow_cache()
        device.flow_cache_hits = device.flow_cache_misses = 0
        start = time.perf_counter()
        for i in range(reps):
            device.wants(packets[i % n_flows])
        warm = (time.perf_counter() - start) / reps * 1e6
        table.add_row(n, n_flows, round(device.flow_cache_hit_rate * 100, 1),
                      round(cold, 2), round(warm, 2),
                      round(cold / warm, 1) if warm else 0.0)
    table.add_note("cold = cache invalidated before every decision (the "
                   "uncached slow path); warm = steady state on a 64-flow "
                   "working set, the router-style common case")
    table.add_note("the cache is invalidated by install/uninstall and by "
                   "any ownership-registry change, so correctness never "
                   "depends on traffic patterns")
    return table


def caida_scale_table(cfg: ExperimentConfig) -> Table:
    """Fluid-model scalability on CAIDA-shaped AS graphs.

    The paper's deployment argument is stated at Internet scale ("roughly
    18'000 autonomous systems", Sec. 5.3).  Packet simulation cannot reach
    that; the fluid model evaluates a flooding attack across tens of
    thousands of ASes in well under a second.
    """
    table = Table(
        "E6e: fluid evaluation at CAIDA scale (as-rel2 shaped graphs)",
        ["ases", "links", "stubs", "flows", "build_ms", "eval_ms",
         "delivered_frac"],
    )
    sizes = (250, cfg.scaled(2000, minimum=500),
             cfg.scaled(18000, minimum=1000))
    for n in sizes:
        rng = derive_rng(cfg.seed, "e6e", n)
        start = time.perf_counter()
        topo = TopologyBuilder.from_as_rel2(synthesize_as_rel2(n, seed=cfg.seed))
        build_ms = (time.perf_counter() - start) * 1e3
        fluid = FluidNetwork(topo)
        victim = topo.stub_ases[0]
        n_flows = min(1000, max(50, len(topo.stub_ases) // 4))
        flows = flood_flows(topo, victim, n_flows, rate_each=Mbps(10), rng=rng)
        start = time.perf_counter()
        result = fluid.evaluate(flows)
        eval_ms = (time.perf_counter() - start) * 1e3
        frac = result.delivered_rate(dst_asn=victim) / result.sent_rate()
        table.add_row(n, topo.graph.number_of_edges(), len(topo.stub_ases),
                      n_flows, round(build_ms, 1), round(eval_ms, 1),
                      round(frac, 3))
    table.add_note("graphs come from synthesize_as_rel2 (CAIDA serial-2 "
                   "format) through the same parser a real snapshot would "
                   "use; delivered < 1 when the victim's access links "
                   "congest (Sec. 5.3 scale setting)")
    return table


def batch_forwarding_table(cfg: ExperimentConfig) -> Table:
    """Scalar vs batched forwarding on the packet data plane.

    Same 5-AS line, same total packet count; the batched pipeline carries
    the burst as SoA columns (one event slot per sub-batch) instead of one
    event per packet.
    """
    table = Table(
        "E6f: batched vs scalar packet forwarding (SoA data plane)",
        ["batch_size", "packets", "wall_ms", "per_packet_us", "speedup_x"],
    )
    n_packets = cfg.scaled(4096, minimum=512)
    fat = LinkParams(bandwidth=Mbps(10_000), delay=ms(1),
                     buffer_bytes=1 << 30)
    scalar_us = None
    for b in (1, 64, 1024):
        b = min(b, n_packets)  # reduced-scale runs send fewer packets
        net = Network(TopologyBuilder.line(5), access=fat,
                      link_params_fn=lambda a, c: fat)
        src = net.add_host(0)
        dst = net.add_host(4)
        start = time.perf_counter()
        if b == 1:
            for _ in range(n_packets):
                src.send(Packet.udp(src.address, dst.address))
        else:
            src_col = np.full(b, int(src.address), dtype=np.int64)
            for _ in range(n_packets // b):
                src.send_batch(PacketBatch.udp(src_col, int(dst.address)))
        net.run()
        wall_ms = (time.perf_counter() - start) * 1e3
        sent = n_packets if b == 1 else (n_packets // b) * b
        assert net.total_received() == sent
        per_packet = wall_ms * 1e3 / sent
        if scalar_us is None:
            scalar_us = per_packet
        table.add_row(b, sent, round(wall_ms, 1), round(per_packet, 2),
                      round(scalar_us / per_packet, 1))
    table.add_note("batch 1 is the scalar pipeline (event per packet); "
                   "larger batches amortise routing lookups and queue "
                   "accounting over NumPy columns")
    return table


def sketch_accuracy_table(cfg: ExperimentConfig) -> Table:
    """Flow-statistics backends: state bytes vs accuracy across fan-in.

    The Sec. 5.3 claim applied to the statistics service: exact per-flow
    state grows linearly with attacker fan-in, while the sketch backends
    hold state constant and pay with bounded count error.  Keys follow a
    zipf-like source popularity (heavy hitters plus a long tail), the
    adversarial-but-realistic regime for top-k tracking.
    """
    from repro.core.flowstats import make_flow_stats

    table = Table(
        "E6g: flow-statistics backends — state vs accuracy across fan-in",
        ["backend", "fan_in", "state_bytes", "top10_recall",
         "mean_rel_err_%"],
    )
    fan_ins = (1000, 10_000, cfg.scaled(100_000, minimum=20_000))
    for fan_in in fan_ins:
        rng = derive_rng(cfg.seed, "e6g", fan_in)
        n = 4 * fan_in
        weights = 1.0 / np.arange(1, fan_in + 1, dtype=np.float64) ** 1.1
        weights /= weights.sum()
        keys = rng.choice(fan_in, size=n, p=weights).astype(np.int64)
        sizes = rng.integers(40, 1500, size=n).astype(np.int64)
        true_keys, true_counts = np.unique(keys, return_counts=True)
        order = np.lexsort((true_keys, -true_counts))
        top_true = {int(true_keys[i]) for i in order[:10]}
        for kind in ("exact", "bloom", "cmsketch", "countsketch"):
            stats = make_flow_stats(kind, seed=cfg.seed)
            stats.add_batch(keys, nbytes=sizes)
            top_est = {k for k, _ in stats.top(10, by="packets")}
            recall = len(top_true & top_est) / 10 if top_est else 0.0
            errs = [abs(stats.packet_count(int(true_keys[i]))
                        - int(true_counts[i])) / int(true_counts[i])
                    for i in order[:10]]
            table.add_row(kind, fan_in, stats.state_bytes(),
                          round(recall, 2),
                          round(100 * float(np.mean(errs)), 2))
    table.add_note("exact state grows linearly with fan-in; the sketches "
                   "(and the bloom counter) stay constant — a bloom filter "
                   "cannot enumerate keys at all, so its top-10 recall is 0 "
                   "by construction")
    table.add_note("count-min errors are overestimate-only (eps*N bound); "
                   "count-sketch errors are unbiased and typically smaller "
                   "on skewed streams")
    return table


@register("E6")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [rules_vs_subscribers_table(cfg), rules_vs_hosts_table(cfg),
            device_cost_table(cfg), flow_cache_table(cfg),
            caida_scale_table(cfg), batch_forwarding_table(cfg),
            sketch_accuracy_table(cfg)]
