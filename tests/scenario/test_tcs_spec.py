"""The compiler-registered ``tcs-spec`` defense."""

import dataclasses

from repro.scenario import preset, run_scenario
from repro.scenario.defenses import names
from repro.scenario.spec import DefenseSpec


def with_defense(defense: DefenseSpec):
    return dataclasses.replace(
        preset("spoofed-flood-ingress").scaled(0.3), defense=defense)


def test_registered():
    assert "tcs-spec" in names()


def test_default_spec_stops_the_spoofed_flood():
    undefended = run_scenario(with_defense(DefenseSpec.of("none")))
    defended = run_scenario(with_defense(DefenseSpec.of("tcs-spec")))
    assert undefended.attack_delivered > 0
    assert defended.attack_delivered == 0
    # off-service-UDP scoping: legitimate traffic untouched
    assert defended.legit_goodput == undefended.legit_goodput
    assert defended.collateral == 0.0
    assert "compiled" in defended.notes


def test_rules_parameter_overrides_the_default_policy():
    # a no-op policy (drop ICMP only) must not stop the UDP flood
    spec = DefenseSpec.of("tcs-spec", rules=[
        {"action": "drop", "proto": "icmp", "label": "icmp-only"}])
    defended = run_scenario(with_defense(spec))
    assert defended.attack_delivered > 0
