"""Tests for the amplifying-network structure."""

import pytest

from repro.attack import AmplifyingNetwork
from repro.errors import AttackConfigError
from repro.net import Network, TopologyBuilder


def make_hosts(n):
    net = Network(TopologyBuilder.star(max(3, n)))
    return net, [net.add_host(net.topology.stub_ases[i % len(net.topology.stub_ases)])
                 for i in range(n)]


class TestAmplifyingNetwork:
    def test_assign_agents_round_robin(self):
        net, hosts = make_hosts(8)
        s = AmplifyingNetwork(attacker=hosts[0], masters=hosts[1:3], agents=hosts[3:])
        s.assign_agents()
        assert len(s.agents_of(hosts[1])) == 3
        assert len(s.agents_of(hosts[2])) == 2
        # attacker edges present
        assert (hosts[0], hosts[1]) in s.control_edges

    def test_assign_without_masters_fails(self):
        net, hosts = make_hosts(3)
        s = AmplifyingNetwork(attacker=hosts[0], agents=hosts[1:])
        with pytest.raises(AttackConfigError):
            s.assign_agents()

    def test_control_depth(self):
        net, hosts = make_hosts(5)
        base = AmplifyingNetwork(attacker=hosts[0], masters=[hosts[1]], agents=[hosts[2]])
        assert base.control_depth == 2
        refl = AmplifyingNetwork(attacker=hosts[0], masters=[hosts[1]],
                                 agents=[hosts[2]], reflectors=[hosts[3]])
        assert refl.control_depth == 3

    def test_size(self):
        net, hosts = make_hosts(6)
        s = AmplifyingNetwork(attacker=hosts[0], masters=hosts[1:3], agents=hosts[3:6])
        assert s.size == 6

    def test_validate_rejects_duplicate_roles(self):
        net, hosts = make_hosts(3)
        s = AmplifyingNetwork(attacker=hosts[0], masters=[hosts[1]],
                              agents=[hosts[1], hosts[2]])
        with pytest.raises(AttackConfigError):
            s.validate()

    def test_validate_requires_agents(self):
        net, hosts = make_hosts(2)
        s = AmplifyingNetwork(attacker=hosts[0], masters=[hosts[1]])
        with pytest.raises(AttackConfigError):
            s.validate()

    def test_validate_agents_need_masters(self):
        net, hosts = make_hosts(2)
        s = AmplifyingNetwork(attacker=hosts[0], agents=[hosts[1]])
        with pytest.raises(AttackConfigError):
            s.validate()
