"""Network nodes: hosts and AS routers.

``Router`` implements the paper's node architecture (Fig. 2/6): standard IP
forwarding, plus two hooks —

* ``add_filter`` — where baseline mitigations (ingress filtering, pushback
  rate limiters, ...) attach, and
* ``adaptive_device`` — the paper's programmable traffic processing device;
  the router redirects a packet through it *only* when the packet carries a
  registered user's address ("Most traffic will use the direct path through
  the router", Sec. 4.1).

``Host`` carries ground-truth receive counters and pluggable responders
(used to model reflectors: "any server that ... replies with a packet after
it has received a request packet can be misused as a reflector", Sec. 2.2).
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Protocol as TypingProtocol

import numpy as np

from repro.net.addressing import IPv4Address
from repro.net.link import Link
from repro.net.packet import Packet, PacketBatch
from repro.util.stats import WindowedCounter

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["Node", "Host", "Router", "PacketFilter", "AdaptiveDeviceHook"]

# A packet filter: (packet, router, ingress link or None, now) -> keep?
PacketFilter = Callable[[Packet, "Router", Optional[Link], float], bool]
# A responder: (packet, host, now) -> packets to send back (or None)
Responder = Callable[[Packet, "Host", float], Optional[Iterable[Packet]]]


class AdaptiveDeviceHook(TypingProtocol):
    """Interface the router expects from an attached adaptive device."""

    def wants(self, packet: Packet) -> bool:
        """True iff the packet is owned by some registered user here."""
        ...  # pragma: no cover

    def process(self, packet: Packet, now: float,
                ingress: Optional[int]) -> Optional[Packet]:
        """Run the two processing stages; None means the packet was dropped."""
        ...  # pragma: no cover


class Node:
    """Anything that can terminate a link."""

    def __init__(self, name: str) -> None:
        self.name = name

    def receive(self, packet: Packet, link: Optional[Link]) -> None:  # pragma: no cover
        raise NotImplementedError

    def receive_batch(self, batch: PacketBatch,
                      link: Optional[Link]) -> None:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class Host(Node):
    """An end host attached to a stub AS.

    Receive-side ground truth is tallied in ``received_by_kind`` /
    ``received_bytes_by_kind``; responders may generate reply packets
    (reflector/server behaviour).
    """

    def __init__(self, network: "Network", address: IPv4Address, asn: int,
                 record: bool = False,
                 processing_pps: Optional[float] = None) -> None:
        super().__init__(f"host-{address}")
        self.network = network
        self.address = address
        self.asn = asn
        self.record = record
        #: server CPU model: packets arriving beyond this rate are received
        #: by the NIC but never serviced ("an attacked server's resources
        #: are exhausted before its uplink is overloaded", Sec. 3.1) —
        #: None = unlimited.
        self.processing_pps = processing_pps
        self._proc_window = WindowedCounter(0.1) if processing_pps else None
        self.cpu_dropped = 0
        self.cpu_dropped_by_kind: Counter[str] = Counter()
        self.received_packets = 0
        self.received_bytes = 0
        self.received_by_kind: Counter[str] = Counter()
        self.received_bytes_by_kind: Counter[str] = Counter()
        self.sent_packets = 0
        self.log: list[tuple[float, Packet]] = []
        self.responders: list[Responder] = []
        self.uplink: Optional[Link] = None    # host -> AS router
        self.downlink: Optional[Link] = None  # AS router -> host

    def add_responder(self, responder: Responder) -> None:
        """Register a function that may answer incoming packets."""
        self.responders.append(responder)

    def receive(self, packet: Packet, link: Optional[Link]) -> None:
        now = self.network.sim.now
        if self._proc_window is not None:
            if self._proc_window.rate(now) >= self.processing_pps:
                self.cpu_dropped += 1
                self.cpu_dropped_by_kind[packet.kind] += 1
                return  # CPU exhausted: packet arrives but is never serviced
            self._proc_window.add(now)
        self.received_packets += 1
        self.received_bytes += packet.size
        self.received_by_kind[packet.kind] += 1
        self.received_bytes_by_kind[packet.kind] += packet.size
        if self.record:
            self.log.append((now, packet))
        for responder in self.responders:
            replies = responder(packet, self, now)
            if replies:
                for reply in replies:
                    self.send(reply)

    def receive_batch(self, batch: PacketBatch, link: Optional[Link]) -> None:
        """Batch delivery; counters accumulate per batch.

        Hosts with per-packet behaviour (a CPU model, responders, or a
        record log) take the scalar-fallback path so that behaviour stays
        exact; plain counting hosts — the common case in floods — tally the
        whole batch with a handful of array reductions.
        """
        if self._proc_window is not None or self.responders or self.record:
            for p in batch.to_packets():
                self.receive(p, link)
            return
        self.received_packets += len(batch)
        self.received_bytes += batch.total_bytes
        for kind, count in batch.kind_counts().items():
            self.received_by_kind[kind] += count
        for kind, nbytes in batch.bytes_by_kind().items():
            self.received_bytes_by_kind[kind] += nbytes

    def send(self, packet: Packet) -> bool:
        """Transmit a packet over the access uplink toward the AS router."""
        if self.uplink is None:
            raise RuntimeError(f"{self.name} is not attached to the network")
        self.sent_packets += 1
        if packet.created_at == 0.0:
            packet.created_at = self.network.sim.now
        return self.uplink.send(packet, self.network.sim)

    def send_batch(self, batch: PacketBatch) -> int:
        """Transmit a whole batch over the access uplink; returns the
        number of packets the uplink accepted."""
        if self.uplink is None:
            raise RuntimeError(f"{self.name} is not attached to the network")
        n = len(batch)
        self.sent_packets += n
        unstamped = batch.created_at == 0.0
        if unstamped.any():
            batch.created_at[unstamped] = self.network.sim.now
        rejected = self.uplink.transmit_batch(batch, self.network.sim)
        return n - (0 if rejected is None else len(rejected))

    def reset_stats(self) -> None:
        self.received_packets = self.received_bytes = self.sent_packets = 0
        self.cpu_dropped = 0
        self.cpu_dropped_by_kind.clear()
        self.received_by_kind.clear()
        self.received_bytes_by_kind.clear()
        self.log.clear()


class Router(Node):
    """The single router of one AS.

    Forwarding pipeline per packet (matching paper Fig. 2):

    1. mitigation filters (in registration order; any False drops),
    2. adaptive-device redirect if the device claims ownership of the packet,
    3. TTL decrement (inter-AS hops only) and next-hop forwarding or local
       host delivery.
    """

    def __init__(self, network: "Network", asn: int) -> None:
        super().__init__(f"AS{asn}")
        self.network = network
        self.asn = asn
        self.links: dict[int, Link] = {}       # neighbour asn -> egress link
        self.host_links: dict[int, Link] = {}  # host address value -> downlink
        self.filters: list[tuple[str, PacketFilter]] = []
        self.adaptive_device: Optional[AdaptiveDeviceHook] = None
        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        self.delivered_packets = 0
        self.drops: Counter[str] = Counter()           # reason -> count
        self.drops_by_kind: Counter[tuple[str, str]] = Counter()  # (reason, kind)

    # ------------------------------------------------------------- filters
    def add_filter(self, name: str, fn: PacketFilter) -> None:
        """Attach a named mitigation filter; duplicates by name are replaced."""
        self.remove_filter(name)
        self.filters.append((name, fn))

    def remove_filter(self, name: str) -> bool:
        before = len(self.filters)
        self.filters = [(n, f) for n, f in self.filters if n != name]
        return len(self.filters) != before

    def has_filter(self, name: str) -> bool:
        return any(n == name for n, _ in self.filters)

    # ---------------------------------------------------------- forwarding
    def _drop(self, packet: Packet, reason: str) -> None:
        self.drops[reason] += 1
        self.drops_by_kind[(reason, packet.kind)] += 1
        self.network.note_drop(self.asn, packet, reason)

    def receive(self, packet: Packet, link: Optional[Link]) -> None:
        now = self.network.sim.now
        for name, fn in self.filters:
            if not fn(packet, self, link, now):
                self._drop(packet, f"filter:{name}")
                return
        device = self.adaptive_device
        if device is not None and device.wants(packet):
            ingress = self._ingress_asn(link)
            processed = device.process(packet, now, ingress)
            if processed is None:
                self._drop(packet, "adaptive-device")
                return
            packet = processed
        self.forward(packet)

    def _drop_batch(self, batch: PacketBatch, reason: str) -> None:
        self.drops[reason] += len(batch)
        for kind, count in batch.kind_counts().items():
            self.drops_by_kind[(reason, kind)] += count
        self.network.note_drop_batch(self.asn, batch, reason)

    def receive_batch(self, batch: PacketBatch, link: Optional[Link]) -> None:
        """Batch ingress: the vectorised mirror of :meth:`receive`.

        Mitigation filters are per-packet callables, so their presence
        forces the scalar-fallback path; likewise an attached device
        without a ``process_batch`` method.  Otherwise the batch flows
        through the device's vectorised redirect decision and on to
        :meth:`forward_batch` intact.
        """
        if len(batch) == 0:
            return
        if self.filters:
            for p in batch.to_packets():
                self.receive(p, link)
            return
        device = self.adaptive_device
        if device is not None:
            if not hasattr(device, "process_batch"):
                for p in batch.to_packets():
                    self.receive(p, link)
                return
            now = self.network.sim.now
            ingress = self._ingress_asn(link)
            passed, dropped = device.process_batch(batch, now, ingress)
            if dropped is not None and len(dropped):
                self._drop_batch(dropped, "adaptive-device")
            if passed is None or len(passed) == 0:
                return
            batch = passed
        self.forward_batch(batch)

    def _ingress_asn(self, link: Optional[Link]) -> Optional[int]:
        """ASN of the neighbour the packet arrived from (None for local/host)."""
        if link is None:
            return None
        src_node = link.src
        if isinstance(src_node, Router):
            return src_node.asn
        return None

    def forward(self, packet: Packet) -> None:
        dst_asn = self.network.topology.as_of(packet.dst)
        if dst_asn is None:
            self._drop(packet, "no-route")
            return
        if dst_asn == self.asn:
            self._deliver_local(packet)
            return
        if packet.ttl <= 1:
            self._drop(packet, "ttl-expired")
            return
        packet.ttl -= 1
        next_asn = self.network.routing[self.asn].next_hop(dst_asn)
        egress = self.links.get(next_asn)
        if egress is None:
            self._drop(packet, "no-link")
            return
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        # transport-work accounting: one inter-AS hop's worth of bytes
        # ("network resources ... wasted for transporting attack traffic
        # around the globe", Sec. 6)
        self.network.byte_hops_by_kind[packet.kind] += packet.size
        if not egress.send(packet, self.network.sim):
            self._drop(packet, "queue-full")

    def forward_batch(self, batch: PacketBatch) -> None:
        """Vectorised forwarding: one LPM batch resolves every destination
        AS, TTLs decrement as an array op, and packets sharing a next hop
        leave in one sub-batch per egress link."""
        net = self.network
        dst_asn = net.topology.as_of_many(batch.dst)
        no_route = dst_asn < 0
        if no_route.any():
            self._drop_batch(batch.select(no_route), "no-route")
            routable = ~no_route
            batch = batch.select(routable)
            dst_asn = dst_asn[routable]
            if len(batch) == 0:
                return
        local = dst_asn == self.asn
        if local.any():
            self._deliver_local_batch(batch.select(local))
            if local.all():
                return
            remote = ~local
            batch = batch.select(remote)
            dst_asn = dst_asn[remote]
        expired = batch.ttl <= 1
        if expired.any():
            self._drop_batch(batch.select(expired), "ttl-expired")
            alive = ~expired
            batch = batch.select(alive)
            dst_asn = dst_asn[alive]
            if len(batch) == 0:
                return
        batch.ttl -= 1
        table = net.routing[self.asn]
        unique_dsts, inverse = np.unique(dst_asn, return_inverse=True)
        hop_of = np.array([table.next_hop(int(d)) for d in unique_dsts],
                          dtype=np.int64)
        next_asn = hop_of[inverse]
        for hop in np.unique(hop_of):
            mask = next_asn == hop
            sub = batch.select(mask) if not mask.all() else batch
            egress = self.links.get(int(hop))
            if egress is None:
                self._drop_batch(sub, "no-link")
                continue
            self.forwarded_packets += len(sub)
            self.forwarded_bytes += sub.total_bytes
            for kind, nbytes in sub.bytes_by_kind().items():
                net.byte_hops_by_kind[kind] += nbytes
            rejected = egress.transmit_batch(sub, net.sim)
            if rejected is not None and len(rejected):
                self._drop_batch(rejected, "queue-full")

    def _deliver_local(self, packet: Packet) -> None:
        downlink = self.host_links.get(int(packet.dst))
        if downlink is None:
            self._drop(packet, "no-host")
            return
        self.delivered_packets += 1
        if not downlink.send(packet, self.network.sim):
            self._drop(packet, "queue-full")

    def _deliver_local_batch(self, batch: PacketBatch) -> None:
        dsts = batch.dst
        for value in np.unique(dsts):
            mask = dsts == value
            sub = batch.select(mask) if not mask.all() else batch
            downlink = self.host_links.get(int(value))
            if downlink is None:
                self._drop_batch(sub, "no-host")
                continue
            self.delivered_packets += len(sub)
            rejected = downlink.transmit_batch(sub, self.network.sim)
            if rejected is not None and len(rejected):
                self._drop_batch(rejected, "queue-full")

    def reset_stats(self) -> None:
        self.forwarded_packets = self.forwarded_bytes = self.delivered_packets = 0
        self.drops.clear()
        self.drops_by_kind.clear()
