"""Benchmark regenerating E6: rules/cost scalability (Sec. 5.3)."""

from repro.experiments import e6_scalability

from conftest import run_and_print


def test_e6(benchmark, exp_cfg):
    """E6: rules/cost scalability (Sec. 5.3)"""
    run_and_print(benchmark, e6_scalability.run, exp_cfg)
