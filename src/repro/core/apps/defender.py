"""Reactive defender: observable-signature detection + instant TCS response.

Ties the paper's pieces together on the defense side: the victim watches
its *own* inbound traffic (no ground truth, only packet headers), detects
attack signatures, and answers each with the matching TCS deployment —
exercising "rules ... can be installed, configured and activated
instantly" (Sec. 4.2) against an attacker who keeps switching vectors.

Signatures and responses:

* ``udp-flood``   — off-service UDP rate -> distributed firewall drop rule,
* ``reflection``  — unsolicited replies (DNS answers / SYN-ACKs the victim
  never solicited) -> worldwide anti-spoofing for the victim's prefix,
* ``rst-storm``   — forged teardown rate -> block-RST/ICMP firewall rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.apps.antispoof import AntiSpoofApp
from repro.core.apps.firewall import DistributedFirewallApp, FirewallRule
from repro.core.components import HeaderMatch
from repro.core.deployment import DeploymentScope
from repro.core.service import TrafficControlService
from repro.net.node import Host
from repro.net.packet import Packet, Protocol, TCPFlags
from repro.util.sketch import SpaceSaving
from repro.util.stats import WindowedCounter

__all__ = ["DefenseAction", "ReactiveDefender"]


@dataclass(frozen=True)
class DefenseAction:
    """One detection -> deployment event."""

    time: float
    signature: str
    response: str
    devices: int


class ReactiveDefender:
    """Watches one victim host and deploys TCS responses on detection."""

    def __init__(self, service: TrafficControlService, victim: Host,
                 threshold_pps: float = 100.0, window: float = 0.2,
                 service_ports: tuple[int, ...] = (80,),
                 thresholds: Optional[dict[str, float]] = None,
                 track_sources: int = 0) -> None:
        self.service = service
        self.victim = victim
        self.service_ports = set(service_ports)
        #: per-signature detection thresholds; teardown storms are low-rate
        #: but lethal, so their default threshold is much lower
        self.thresholds = {
            "udp-flood": threshold_pps,
            "reflection": threshold_pps,
            "rst-storm": min(threshold_pps, 10.0),
        }
        if thresholds:
            self.thresholds.update(thresholds)
        self._signals = {
            "udp-flood": WindowedCounter(window),
            "reflection": WindowedCounter(window),
            "rst-storm": WindowedCounter(window),
        }
        #: per-signature heavy-hitter candidates (``track_sources`` > 0):
        #: O(1) state per signature regardless of attacker fan-in, so the
        #: defender can name suspects without growing a dict per source
        self.source_tracks: dict[str, SpaceSaving] = (
            {sig: SpaceSaving(track_sources) for sig in self._signals}
            if track_sources > 0 else {})
        self.actions: list[DefenseAction] = []
        self._deployed: set[str] = set()
        victim.add_responder(self._observe)

    # -------------------------------------------------------------- detection
    def _classify(self, packet: Packet) -> Optional[str]:
        if packet.proto is Protocol.UDP:
            if packet.sport == 53 and packet.dport not in self.service_ports:
                return "reflection"   # unsolicited DNS-style answer
            if packet.dport not in self.service_ports:
                return "udp-flood"
        if packet.proto is Protocol.TCP:
            if packet.flags.is_synack:
                return "reflection"   # SYN/ACK we never asked for
            if packet.flags & TCPFlags.RST:
                return "rst-storm"
        return None

    def _observe(self, packet: Packet, host: Host, now: float):
        signature = self._classify(packet)
        if signature is None:
            return None
        counter = self._signals[signature]
        counter.add(now)
        if self.source_tracks:
            self.source_tracks[signature].update(int(packet.src))
        if (signature not in self._deployed
                and counter.rate(now) > self.thresholds[signature]):
            self._respond(signature, now)
        return None

    # --------------------------------------------------------------- response
    def _respond(self, signature: str, now: float) -> None:
        self._deployed.add(signature)
        if signature == "udp-flood":
            # drop UDP everywhere except toward the victim's service ports
            rules = [FirewallRule(
                "drop-offservice-udp",
                HeaderMatch(proto=Protocol.UDP,
                            dport_not_in=tuple(sorted(self.service_ports))),
            )]
            app = DistributedFirewallApp(self.service, rules)
            result = app.deploy(DeploymentScope.stub_borders())
            response = "firewall: drop off-service UDP at stub borders"
        elif signature == "reflection":
            app = AntiSpoofApp(self.service)
            result = app.deploy(DeploymentScope.stub_borders())
            response = "anti-spoofing for the victim prefix, worldwide"
        else:  # rst-storm
            app = DistributedFirewallApp(self.service, [
                FirewallRule.block_teardown_rst(),
                FirewallRule.block_icmp_unreachable(),
            ])
            result = app.deploy(DeploymentScope.everywhere())
            response = "firewall: block forged teardown packets"
        devices = sum(len(v) for v in result.values())
        self.actions.append(DefenseAction(time=now, signature=signature,
                                          response=response, devices=devices))

    # ---------------------------------------------------------------- queries
    def detected(self, signature: str) -> bool:
        return signature in self._deployed

    def reaction_time(self, signature: str, attack_start: float) -> Optional[float]:
        for action in self.actions:
            if action.signature == signature:
                return action.time - attack_start
        return None

    def top_sources(self, signature: str, n: int = 5) -> list[tuple[int, int]]:
        """Heaviest observed sources for ``signature`` (address, count).

        Counts are SpaceSaving upper bounds; the guaranteed-monitored
        property means any source above ``total/track_sources`` appears.
        """
        tracker = self.source_tracks.get(signature)
        return tracker.top(n) if tracker is not None else []
