"""The Traffic Control Service Provider (paper Figs. 3-5, Sec. 5.1).

The TCSP is the single point of registration and orchestration:

* *registration* (Fig. 4): check the network user's identity, verify
  claimed address ownership against the Internet number authority, issue a
  signed ownership certificate;
* *contracts* (Fig. 3): "sets up contracts with many ISPs that
  subsequently attach adaptive devices to some or all of their routers";
* *deployment relay* (Fig. 5): map a user's service request to component
  configurations and instruct the contracted ISPs' NMSes;
* *management relay*: parameter changes, activation, log collection.

"The introduction of a TCSP helps to scale the management of our service.
Only a single service registration is needed instead of a separate one
with each ISP."  Availability is modelled explicitly: every call into the
TCSP goes through a retry-aware :class:`~repro.core.rpc.ControlChannel`
whose endpoint is down while ``reachable`` is False (the TCSP under DDoS)
— after bounded retries the channel raises
:class:`~repro.errors.RetryExhausted` (a
:class:`ControlPlaneUnavailable`), and users fall over to the direct NMS
path automatically — experiment E7.  TCSP -> NMS relays likewise go
through each NMS's own channel: a partitioned NMS is retried, then
skipped and recorded in ``undelivered`` for later resync
(:meth:`Tcsp.resync`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from repro.errors import (
    ControlPlaneUnavailable,
    DeploymentError,
    RegistrationError,
)
from repro.core.rpc import ControlChannel
from repro.core.certificates import CertificateAuthority, OwnershipCertificate
from repro.core.deployment import DeploymentScope
from repro.core.nms import GraphFactory, IspNms
from repro.core.ownership import NetworkUser, NumberAuthority
from repro.net.addressing import Prefix

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["IspContract", "Tcsp"]


@dataclass
class IspContract:
    """A TCSP <-> ISP agreement (Fig. 3): which NMS manages which ASes."""

    isp_id: str
    nms: IspNms
    signed_at: float = 0.0


class Tcsp:
    """The traffic control service provider."""

    def __init__(self, name: str, authority: NumberAuthority,
                 network: "Network") -> None:
        self.name = name
        self.authority = authority
        self.network = network
        self.ca = CertificateAuthority(issuer=name)
        self.contracts: dict[str, IspContract] = {}
        self.registered: dict[str, tuple[NetworkUser, OwnershipCertificate]] = {}
        #: False while the TCSP itself is being DDoSed (Sec. 5.1)
        self.reachable = True
        self.registrations_refused = 0
        #: retry-aware channel all user -> TCSP calls go through; replaces
        #: the old hard `if not reachable: raise` check
        self.channel = ControlChannel(
            f"tcsp:{name}", clock=lambda: network.sim.now,
            down_fn=lambda: not self.reachable,
        )
        #: (isp_id, op) relays that exhausted their retries (NMS partition)
        self.undelivered: list[tuple[str, str]] = []
        self.nms_relay_failures = 0
        self._pending_relays: list[tuple] = []

    def _call(self, op: str, fn: Callable[..., Any], *args: Any) -> Any:
        """Route one inbound control call through the TCSP's channel."""
        return self.channel.call(op, fn, *args)

    def _relay(self, contract: IspContract, op: str, fn: Callable[..., Any],
               *args: Any) -> Any:
        """Relay one call to an ISP NMS through *its* channel; a partition
        exhausts the retries, is recorded, and returns None."""
        try:
            return contract.nms.channel.call(op, fn, *args)
        except ControlPlaneUnavailable:
            self.nms_relay_failures += 1
            self.undelivered.append((contract.isp_id, op))
            self._pending_relays.append((contract.isp_id, op, fn, args))
            return None

    # ---------------------------------------------------------------- contracts
    def contract_isp(self, isp_id: str, asns: Iterable[int],
                     attach_all: bool = True) -> IspNms:
        """Sign up an ISP: create its NMS and attach adaptive devices."""
        return self._call("contract_isp", self._contract_isp, isp_id,
                          asns, attach_all)

    def _contract_isp(self, isp_id: str, asns: Iterable[int],
                      attach_all: bool) -> IspNms:
        if isp_id in self.contracts:
            raise DeploymentError(f"ISP {isp_id!r} already contracted")
        nms = IspNms(isp_id, self.network, asns, ca=self.ca)
        if attach_all:
            nms.attach_devices()
        # peer all contracted NMSes with each other (config forwarding path)
        for contract in self.contracts.values():
            contract.nms.peers.append(nms)
            nms.peers.append(contract.nms)
        self.contracts[isp_id] = IspContract(isp_id=isp_id, nms=nms,
                                             signed_at=self.network.sim.now)
        return nms

    @property
    def nmses(self) -> list[IspNms]:
        return [c.nms for c in self.contracts.values()]

    def covered_asns(self) -> set[int]:
        """ASes with an attached adaptive device under any contract."""
        out: set[int] = set()
        for nms in self.nmses:
            out |= set(nms.devices)
        return out

    # -------------------------------------------------------------- registration
    def register_user(self, user_id: str, prefixes: Iterable[Prefix],
                      identity_verified: bool = True,
                      validity: float = 365.0 * 86400.0
                      ) -> tuple[NetworkUser, OwnershipCertificate]:
        """The Fig. 4 workflow: verify identity, verify ownership, certify."""
        return self._call("register_user", self._register_user, user_id,
                          prefixes, identity_verified, validity)

    def _register_user(self, user_id: str, prefixes: Iterable[Prefix],
                       identity_verified: bool, validity: float
                       ) -> tuple[NetworkUser, OwnershipCertificate]:
        prefixes = list(prefixes)
        if not prefixes:
            raise RegistrationError("registration needs at least one prefix")
        if not identity_verified:
            self.registrations_refused += 1
            raise RegistrationError(
                f"identity of {user_id!r} could not be verified (CA step)"
            )
        if not self.authority.verify_ownership(user_id, prefixes):
            self.registrations_refused += 1
            raise RegistrationError(
                f"number authority does not list {user_id!r} as holder of "
                f"all of {[str(p) for p in prefixes]}"
            )
        user = NetworkUser(user_id=user_id, prefixes=prefixes)
        cert = self.ca.issue(user_id, prefixes, now=self.network.sim.now,
                             validity=validity)
        self.registered[user_id] = (user, cert)
        return user, cert

    def user(self, user_id: str) -> NetworkUser:
        try:
            return self.registered[user_id][0]
        except KeyError as exc:
            raise RegistrationError(f"user {user_id!r} not registered") from exc

    # --------------------------------------------------------------- deployment
    def deploy_service(self, cert: OwnershipCertificate,
                       scope: DeploymentScope,
                       src_graph_factory: Optional[GraphFactory] = None,
                       dst_graph_factory: Optional[GraphFactory] = None
                       ) -> dict[str, list[int]]:
        """Fig. 5: map the request to components and instruct the ISP NMSes.

        Returns {isp_id: [configured ASes]}.  A partitioned NMS is retried,
        then skipped (recorded in ``undelivered``; :meth:`resync` replays
        once the partition heals).
        """
        return self._call("deploy_service", self._deploy_service, cert,
                          scope, src_graph_factory, dst_graph_factory)

    def _deploy_service(self, cert: OwnershipCertificate,
                        scope: DeploymentScope,
                        src_graph_factory: Optional[GraphFactory],
                        dst_graph_factory: Optional[GraphFactory]
                        ) -> dict[str, list[int]]:
        self.ca.verify(cert, self.network.sim.now)
        if cert.user_id not in self.registered:
            raise RegistrationError(f"user {cert.user_id!r} not registered")
        user = self.registered[cert.user_id][0]
        target = scope.resolve(self.network.topology)
        results: dict[str, list[int]] = {}
        for isp_id, contract in sorted(self.contracts.items()):
            configured = self._relay(
                contract, "deploy", contract.nms.deploy,
                cert, user, target, src_graph_factory, dst_graph_factory,
            )
            if configured:
                results[isp_id] = configured
        return results

    def resync(self, isp_id: Optional[str] = None) -> int:
        """Replay relays that were undelivered (e.g. during an NMS
        partition); returns how many were delivered this time."""
        delivered = 0
        remaining: list[tuple] = []
        for entry in self._pending_relays:
            target_id, op, fn, args = entry
            if isp_id is not None and target_id != isp_id:
                remaining.append(entry)
                continue
            contract = self.contracts.get(target_id)
            if contract is None:
                continue
            try:
                contract.nms.channel.call(op, fn, *args)
                delivered += 1
            except ControlPlaneUnavailable:
                remaining.append(entry)
        self._pending_relays = remaining
        return delivered

    # --------------------------------------------------------------- management
    def set_active(self, cert: OwnershipCertificate, active: bool) -> int:
        """Relay an activate/deactivate request to all contracted NMSes."""
        return self._call("set_active", self._set_active, cert, active)

    def _set_active(self, cert: OwnershipCertificate, active: bool) -> int:
        touched = 0
        for contract in self.contracts.values():
            result = self._relay(contract, "set_active",
                                 contract.nms.set_active,
                                 cert, cert.user_id, active)
            touched += result or 0
        return touched

    def read_logs(self, cert: OwnershipCertificate) -> list[tuple]:
        """Relay a log-read request to all contracted NMSes."""
        return self._call("read_logs", self._read_logs, cert)

    def _read_logs(self, cert: OwnershipCertificate) -> list[tuple]:
        entries: list[tuple] = []
        for contract in self.contracts.values():
            result = self._relay(contract, "read_logs",
                                 contract.nms.read_logs, cert, cert.user_id)
            entries.extend(result or [])
        return sorted(entries)

    def total_rule_count(self) -> int:
        """Installed components across the whole infrastructure (Sec. 5.3)."""
        return sum(nms.rule_count() for nms in self.nmses)
