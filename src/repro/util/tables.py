"""Plain-text result tables.

Every experiment in :mod:`repro.experiments` returns a :class:`Table`, the
benchmark harness prints it, and EXPERIMENTS.md records it — one uniform
"row/series" format mirroring how the paper's claims are reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["Table"]


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A titled table with named columns and formatted text rendering."""

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append a row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table '{self.title}' has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Attach a free-text footnote rendered under the table."""
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """Return all values of the named column."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def to_text(self) -> str:
        """Render an aligned monospace table."""
        cells = [[_fmt(c) for c in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
            for i in range(len(headers))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(str(c) for c in self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
        for note in self.notes:
            lines.append(f"\n*note: {note}*")
        return "\n".join(lines)

    def __iter__(self) -> Iterable[list[Any]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)
