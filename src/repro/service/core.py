"""The engine-agnostic TCS decision core (carved out of the device).

:class:`DecisionCore` owns the paper's per-packet decision path —
ownership-LPM redirect decision behind a per-flow LRU cache, the
source-owner/destination-owner two-stage pipeline, and the Sec. 4.5
safety containment that disables a violating service on the spot.  Both
consumers share it byte-for-byte:

* the simulator's :class:`~repro.core.device.AdaptiveDevice` delegates
  its scalar and batch paths here (and injects its ``device.*`` registry
  counters, so experiment tables are unchanged by the extraction),
* the live :class:`~repro.service.facade.ServiceFacade` drives the same
  core from wall-clock (or injected) time and emits ``service.*``
  counters instead.

Counters are injected as anything with a ``value`` attribute (registry
``Counter`` instruments or plain :class:`StatCell` cells), so the core
itself declares no metric families and can run registry-free.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, TYPE_CHECKING

from repro.errors import DeploymentError, SafetyViolation
from repro.core.components import ComponentContext, Verdict
from repro.core.graph import ComponentGraph
from repro.core.ownership import NetworkUser, OwnershipRegistry
from repro.net.addressing import IPv4Address
from repro.policy.compiler import compile_policy
from repro.net.packet import Packet, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.device import DeviceContext, ServiceInstance

__all__ = ["DecisionCore", "StatCell", "FLOW_CACHE_CAPACITY"]

#: Default per-core LRU flow-cache capacity (distinct 4-tuples) — the
#: same constant :mod:`repro.core.device` re-exports.
FLOW_CACHE_CAPACITY = 4096

#: The counter slots a core accounts into (see ``counters=`` below).
COUNTER_NAMES = ("redirected", "dropped", "safety_disables",
                 "flow_cache_hits", "flow_cache_misses")


class StatCell:
    """Registry-free counter cell: the ``.value`` contract of
    :class:`repro.obs.metrics.Counter` without any registry."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def reset(self) -> None:
        self.value = 0


class DecisionCore:
    """Redirect decision + two-stage pipeline, independent of any engine.

    ``context`` is a :class:`~repro.core.device.DeviceContext` (where the
    decision point sits); ``services`` is the mutable user-id ->
    :class:`~repro.core.device.ServiceInstance` map (shared by reference
    with the owning device or facade); ``counters`` maps the names in
    :data:`COUNTER_NAMES` to objects with a ``value`` attribute —
    unnamed slots get private :class:`StatCell` cells.
    """

    __slots__ = ("context", "registry", "services", "strict", "stage_order",
                 "flow_cache", "flow_cache_capacity", "_flow_cache_version",
                 "generation",
                 "m_redirected", "m_dropped", "m_safety_disables",
                 "m_fc_hits", "m_fc_misses")

    def __init__(self, context: "DeviceContext", registry: OwnershipRegistry,
                 *, services: Optional[dict] = None, strict: bool = True,
                 stage_order: str = "src-first",
                 flow_cache_capacity: int = FLOW_CACHE_CAPACITY,
                 counters: Optional[dict] = None) -> None:
        if stage_order not in ("src-first", "dst-first"):
            raise DeploymentError(f"unknown stage order {stage_order!r}")
        self.context = context
        self.registry = registry
        self.services: dict[str, "ServiceInstance"] = (
            {} if services is None else services)
        #: strict=True re-raises safety violations (library/API use);
        #: strict=False contains them (live path: restore the packet,
        #: disable the service, keep forwarding).
        self.strict = strict
        #: the paper mandates source stage before destination stage
        #: ("first sending ... and then receiving", Sec. 4.1); "dst-first"
        #: exists only for the E13 ablation.
        self.stage_order = stage_order
        #: per-flow fast path: 4-tuple -> (src_owner, dst_owner,
        #: redirect?), so repeat packets of a flow skip both ownership
        #: LPM walks and the service-membership check.
        self.flow_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.flow_cache_capacity = flow_cache_capacity
        self._flow_cache_version = registry.version
        #: policy generation: bumped on every invalidation (install/
        #: uninstall/activation/hot-swap), so observers can tag cached
        #: decisions and verify a swap took effect atomically
        self.generation = 0
        c = counters or {}
        self.m_redirected = c.get("redirected") or StatCell()
        self.m_dropped = c.get("dropped") or StatCell()
        self.m_safety_disables = c.get("safety_disables") or StatCell()
        self.m_fc_hits = c.get("flow_cache_hits") or StatCell()
        self.m_fc_misses = c.get("flow_cache_misses") or StatCell()

    # -------------------------------------------------------------- management
    def install(self, user: NetworkUser,
                src_graph: Optional[ComponentGraph] = None,
                dst_graph: Optional[ComponentGraph] = None
                ) -> "ServiceInstance":
        """Install (after vetting) a user's stage graphs."""
        from repro.core.device import ServiceInstance

        if src_graph is None and dst_graph is None:
            raise DeploymentError(f"user {user.user_id!r}: nothing to install")
        for graph in (src_graph, dst_graph):
            if graph is not None:
                # compiler-pass vetting: same exceptions/messages as
                # vet_graph, and the compiled programs are cached for the
                # execution paths below
                compile_policy(graph, vet=True)
        instance = self.services.get(user.user_id)
        if instance is None:
            instance = ServiceInstance(user=user)
            self.services[user.user_id] = instance
        if src_graph is not None:
            instance.src_graph = src_graph
        if dst_graph is not None:
            instance.dst_graph = dst_graph
        instance.disabled_for_violation = False
        self.invalidate()
        return instance

    def uninstall(self, user_id: str) -> bool:
        removed = self.services.pop(user_id, None) is not None
        if removed:
            self.invalidate()
        return removed

    def set_active(self, user_id: str, active: bool) -> None:
        try:
            self.services[user_id].active = active
        except KeyError as exc:
            raise DeploymentError(f"no service for user {user_id!r} here") from exc
        # cached redirect decisions embed the active flag — drop them, or a
        # deactivated service's flows would keep being redirected (and a
        # re-activated one's would keep bypassing the pipeline)
        self.invalidate()

    def rule_count(self) -> int:
        """Total installed components — the Sec. 5.3 scaling quantity."""
        return sum(s.rule_count() for s in self.services.values())

    # -------------------------------------------------------------- fast path
    def invalidate(self) -> None:
        """Drop every cached per-flow decision (service set changed) and
        advance the policy generation tag."""
        self.flow_cache.clear()
        self.generation += 1

    def synced_cache(self) -> "OrderedDict[tuple, tuple]":
        """The flow cache, cleared first if the ownership registry changed
        since the last lookup (detected via its version counter)."""
        cache = self.flow_cache
        if self._flow_cache_version != self.registry.version:
            cache.clear()
            self._flow_cache_version = self.registry.version
        return cache

    def flow_entry(self, src: int, dst: int, proto: Protocol,
                   dport: int) -> tuple:
        """Resolve ``(src_owner, dst_owner, redirect?)`` for one flow
        4-tuple (addresses as ints), caching the answer.

        Entries survive until the LRU evicts them, a service is installed
        or uninstalled here, or the ownership registry changes.
        """
        cache = self.synced_cache()
        key = (src, dst, proto, dport)
        entry = cache.get(key)
        if entry is not None:
            self.m_fc_hits.value += 1
            cache.move_to_end(key)
            return entry
        return self.flow_miss(key)

    def flow_miss(self, key: tuple) -> tuple:
        """Slow path: resolve owners via the registry and cache the result."""
        self.m_fc_misses.value += 1
        registry = self.registry
        src_owner = registry.owner_of(key[0])
        dst_owner = registry.owner_of(key[1])
        services = self.services
        src_inst = None if src_owner is None else services.get(src_owner.user_id)
        dst_inst = None if dst_owner is None else services.get(dst_owner.user_id)
        # only *active* services claim the flow; set_active/install/
        # uninstall invalidate the cache so entries never go stale
        wants = ((src_inst is not None and src_inst.active)
                 or (dst_inst is not None and dst_inst.active))
        entry = (src_owner, dst_owner, wants)
        cache = self.flow_cache
        cache[key] = entry
        if len(cache) > self.flow_cache_capacity:
            cache.popitem(last=False)
        return entry

    def wants(self, packet: Packet) -> bool:
        """Redirect decision: does a registered user with an active service
        here own this packet?  Everything else takes the direct path.

        Mirrors :meth:`flow_entry` inline — this is the single hottest
        call in the simulator, so it spends no extra stack frame on a hit.
        """
        cache = self.flow_cache
        if self._flow_cache_version != self.registry.version:
            cache.clear()
            self._flow_cache_version = self.registry.version
        key = (packet.src.value, packet.dst.value, packet.proto, packet.dport)
        entry = cache.get(key)
        if entry is not None:
            self.m_fc_hits.value += 1
            cache.move_to_end(key)
            return entry[2]
        return self.flow_miss(key)[2]

    # --------------------------------------------------------------- pipeline
    def process(self, packet: Packet, now: float,
                ingress_asn: Optional[int]) -> Optional[Packet]:
        """Run the two processing stages; None means the packet was dropped."""
        self.m_redirected.value += 1
        src_owner, dst_owner, _ = self.flow_entry(
            packet.src.value, packet.dst.value, packet.proto, packet.dport)
        return self.run_stages(packet, src_owner, dst_owner, now, ingress_asn)

    def run_stages(self, packet: Packet, src_owner: Optional[NetworkUser],
                   dst_owner: Optional[NetworkUser], now: float,
                   ingress_asn: Optional[int]) -> Optional[Packet]:
        """The two-stage loop with owners already resolved (shared by the
        scalar path, the batch path's residual set, and the live facade)."""
        local_origin = ingress_asn is None
        stages = [(src_owner, "source"), (dst_owner, "dest")]
        if self.stage_order == "dst-first":  # E13 ablation only
            stages.reverse()
        for owner, stage in stages:
            if owner is None:
                continue
            packet_after = self._run_stage(packet, owner, stage, now,
                                           ingress_asn, local_origin)
            if packet_after is None:
                self.m_dropped.value += 1
                return None
            packet = packet_after
        return packet

    def _run_stage(self, packet: Packet, owner: NetworkUser, stage: str,
                   now: float, ingress_asn: Optional[int],
                   local_origin: bool) -> Optional[Packet]:
        instance = self.services.get(owner.user_id)
        if instance is None or not instance.active or instance.disabled_for_violation:
            return packet
        graph = instance.src_graph if stage == "source" else instance.dst_graph
        if graph is None:
            return packet
        ctx = ComponentContext(
            now=now, asn=self.context.asn, is_transit=self.context.is_transit,
            local_prefix=self.context.local_prefix, stage=stage, owner=owner,
            ingress_asn=ingress_asn, local_origin=local_origin,
        )
        before = instance.monitor.note_in(packet)
        # compiled scalar program: byte-identical verdicts/counters to the
        # interpreted graph.process walk (kept as the differential oracle)
        verdict = graph.compiled().process(packet, ctx)
        result = packet if verdict is Verdict.PASS else None
        try:
            instance.monitor.check(before, result, graph.name)
        except SafetyViolation:
            # Sec. 4.5: contain the misbehaving service immediately.
            instance.disabled_for_violation = True
            self.m_safety_disables.value += 1
            if self.strict:
                raise
            # fail-safe containment: undo the forbidden mutations and let
            # the packet continue on the normal path
            packet.src = IPv4Address(before.src)
            packet.dst = IPv4Address(before.dst)
            packet.ttl = before.ttl
            packet.size = before.size
            return packet
        return result
