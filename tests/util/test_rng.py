"""Unit tests for deterministic RNG derivation."""

import numpy as np

from repro.util import derive_rng, spawn_rngs


class TestDeriveRng:
    def test_same_seed_same_stream(self):
        a = derive_rng(42, "attack", 3)
        b = derive_rng(42, "attack", 3)
        assert a.random() == b.random()

    def test_different_keys_different_streams(self):
        a = derive_rng(42, "attack", 3)
        b = derive_rng(42, "attack", 4)
        c = derive_rng(42, "defense", 3)
        values = {a.random(), b.random(), c.random()}
        assert len(values) == 3

    def test_generator_passthrough(self):
        g = np.random.default_rng(7)
        assert derive_rng(g, "ignored") is g

    def test_none_seed_is_deterministic(self):
        assert derive_rng(None, "x").random() == derive_rng(None, "x").random()

    def test_string_and_int_keys_mix(self):
        assert derive_rng(1, "a", 2).random() != derive_rng(1, "a", "2x").random()

    def test_spawn_rngs_independent(self):
        gens = spawn_rngs(9, 4, "workers")
        assert len(gens) == 4
        assert len({g.random() for g in gens}) == 4
