"""Batch experiment runner.

Usage::

    python -m repro.experiments              # all experiments, full scale
    python -m repro.experiments E2 E4        # a subset
    python -m repro.experiments --scale 0.3  # faster, smaller
    python -m repro.experiments --markdown   # EXPERIMENTS.md-ready output
    python -m repro.experiments -j 8         # fan out across 8 processes

Parallel runs produce byte-identical tables to serial ones: every
experiment derives all randomness from the root seed, so ``-j`` only
changes the wall clock.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.common import ExperimentConfig, run_all, run_parallel


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments",
                                     description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="size multiplier for workload knobs")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--markdown", action="store_true",
                        help="emit GitHub-flavoured markdown tables")
    parser.add_argument("--parallel", "-j", type=int, default=1, metavar="N",
                        nargs="?", const=os.cpu_count() or 1,
                        help="fan experiments (and their sweeps) out across "
                             "N worker processes (default 1 = serial; bare "
                             "-j uses all cores)")
    args = parser.parse_args(argv)

    workers = max(1, args.parallel or 1)
    cfg = ExperimentConfig(seed=args.seed, scale=args.scale, workers=workers)
    only = args.experiments or None
    started = time.perf_counter()
    if workers > 1:
        results = run_parallel(cfg, only=only, max_workers=workers)
    else:
        results = run_all(cfg, only=only)
    for exp_id, tables in results.items():
        for table in tables:
            print(table.to_markdown() if args.markdown else table.to_text())
            print()
    elapsed = time.perf_counter() - started
    print(f"# ran {sum(len(t) for t in results.values())} tables from "
          f"{len(results)} experiments in {elapsed:.1f}s "
          f"(scale={args.scale})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
