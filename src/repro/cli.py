"""Command-line interface.

Usage::

    python -m repro topology --kind powerlaw --size 100
    python -m repro attack --kind reflector --agents 8 --rate 300
    python -m repro defend --attack reflector --defense tcs
    python -m repro experiments E2 E4 --scale 0.5

The ``experiments`` subcommand forwards to :mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.util.units import fmt_rate

__all__ = ["main", "build_parser"]

TOPOLOGY_KINDS = ("hierarchical", "powerlaw", "internet", "line", "star")
DEFENSES = ("none", "ingress", "rbf", "pushback", "traceback-filter",
            "sos", "i3", "lasthop", "tcs")


def _build_topology(kind: str, size: int, seed: int):
    from repro.net import TopologyBuilder

    if kind == "hierarchical":
        stubs = max(1, size // 6)
        return TopologyBuilder.hierarchical(2, 2, max(1, stubs // 4) + 1,
                                            seed=seed)
    if kind == "powerlaw":
        return TopologyBuilder.powerlaw(n=size, seed=seed)
    if kind == "internet":
        return TopologyBuilder.internet_like(n=size, seed=seed)
    if kind == "line":
        return TopologyBuilder.line(size)
    if kind == "star":
        return TopologyBuilder.star(max(1, size - 1))
    raise ValueError(f"unknown topology kind {kind!r}")


def cmd_topology(args: argparse.Namespace) -> int:
    topo = _build_topology(args.kind, args.size, args.seed)
    print(f"topology: {args.kind}, {len(topo)} ASes, "
          f"{topo.graph.number_of_edges()} links")
    print(f"  core   : {len(topo.core_ases)}")
    print(f"  transit: {len(topo.transit_ases)}")
    print(f"  stub   : {len(topo.stub_ases)}")
    degrees = sorted((topo.degree(a) for a in topo.as_numbers), reverse=True)
    print(f"  degree : max={degrees[0]}, median={degrees[len(degrees) // 2]}, "
          f"min={degrees[-1]}")
    if args.verbose:
        for asn in topo.as_numbers:
            info = topo.ases[asn]
            print(f"  AS{asn:<5} {info.role.value:<8} {info.prefix} "
                  f"deg={topo.degree(asn)}")
    return 0


def _run_scenario(attack: str, agents: int, reflectors: int, rate: float,
                  duration: float, seed: int, defense: str = "none"):
    from repro.experiments.common import ExperimentConfig
    from repro.experiments.e2_mitigation_matrix import run_cell

    cfg = ExperimentConfig(seed=seed, scale=max(0.125, agents / 8))
    return run_cell(attack, defense, cfg)


def cmd_attack(args: argparse.Namespace) -> int:
    cell = _run_scenario(args.kind, args.agents, args.reflectors, args.rate,
                         args.duration, args.seed)
    print(f"attack: {args.kind} ({args.agents} agents)")
    print(f"  attack packets delivered to victim: {cell.attack_pkts}")
    print(f"  legitimate goodput                : {cell.legit_goodput:.0%}")
    return 0


def cmd_defend(args: argparse.Namespace) -> int:
    base = _run_scenario(args.attack, args.agents, args.reflectors,
                         args.rate, args.duration, args.seed, "none")
    cell = _run_scenario(args.attack, args.agents, args.reflectors,
                         args.rate, args.duration, args.seed, args.defense)
    denom = max(1, base.attack_pkts)
    print(f"attack: {args.attack}   defense: {args.defense}")
    print(f"  attack at victim  : {base.attack_pkts} -> {cell.attack_pkts} "
          f"({cell.attack_pkts / denom:.0%} of undefended)")
    print(f"  legitimate goodput: {base.legit_goodput:.0%} -> "
          f"{cell.legit_goodput:.0%}")
    print(f"  collateral damage : {cell.collateral:.0%}")
    if cell.identified_true or cell.identified_false:
        print(f"  identified sources: {cell.identified_true} real, "
              f"{cell.identified_false} innocent")
    if cell.notes:
        print(f"  note: {cell.notes}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    forwarded = list(args.ids)
    forwarded += ["--scale", str(args.scale), "--seed", str(args.seed)]
    if args.markdown:
        forwarded.append("--markdown")
    return experiments_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Adaptive Distributed Traffic Control Service — "
                    "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser("topology", help="generate and describe an AS topology")
    p_topo.add_argument("--kind", choices=TOPOLOGY_KINDS, default="hierarchical")
    p_topo.add_argument("--size", type=int, default=60)
    p_topo.add_argument("--seed", type=int, default=42)
    p_topo.add_argument("--verbose", action="store_true")
    p_topo.set_defaults(fn=cmd_topology)

    p_attack = sub.add_parser("attack", help="run an undefended DDoS scenario")
    p_attack.add_argument("--kind", choices=("direct-spoofed",
                                             "direct-unspoofed", "reflector"),
                          default="reflector")
    p_attack.add_argument("--agents", type=int, default=8)
    p_attack.add_argument("--reflectors", type=int, default=6)
    p_attack.add_argument("--rate", type=float, default=300.0)
    p_attack.add_argument("--duration", type=float, default=0.5)
    p_attack.add_argument("--seed", type=int, default=42)
    p_attack.set_defaults(fn=cmd_attack)

    p_defend = sub.add_parser("defend", help="run an attack against a defense")
    p_defend.add_argument("--attack", choices=("direct-spoofed",
                                               "direct-unspoofed", "reflector"),
                          default="reflector")
    p_defend.add_argument("--defense", choices=DEFENSES, default="tcs")
    p_defend.add_argument("--agents", type=int, default=8)
    p_defend.add_argument("--reflectors", type=int, default=6)
    p_defend.add_argument("--rate", type=float, default=300.0)
    p_defend.add_argument("--duration", type=float, default=0.5)
    p_defend.add_argument("--seed", type=int, default=42)
    p_defend.set_defaults(fn=cmd_defend)

    p_exp = sub.add_parser("experiments", help="run the claim-reproduction suite")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    p_exp.add_argument("--scale", type=float, default=1.0)
    p_exp.add_argument("--seed", type=int, default=42)
    p_exp.add_argument("--markdown", action="store_true")
    p_exp.set_defaults(fn=cmd_experiments)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
