"""Network substrate: IPv4 addressing, packets, AS-level topologies, routing,
links with drop-tail queues, a deterministic discrete-event simulator and a
NumPy-vectorised fluid (flow-level) model for Internet-scale sweeps.

This package is the "Internet" the paper's traffic control service is
deployed into.  One router per autonomous system; hosts attach to stub ASes;
every router carries an optional adaptive-device hook (paper Fig. 2).
"""

from repro.net.addressing import (
    AddressAllocator,
    CompiledPrefixTable,
    HostAddressPool,
    IPv4Address,
    Prefix,
    PrefixTable,
    summarize,
)
from repro.net.packet import ICMPType, Packet, PacketBatch, Protocol, TCPFlags
from repro.net.topology import (
    ASRole,
    ASInfo,
    Topology,
    TopologyBuilder,
    parse_as_rel2,
    synthesize_as_rel2,
)
from repro.net.routing import RoutingTable, build_routing
from repro.net.policy import PolicyRouting, Relationship
from repro.net.link import Link
from repro.net.network import LinkParams, Network
from repro.net.node import Host, Node, Router
from repro.net.simulator import Event, Simulator
from repro.net.fluid import Flow, FlowSet, FluidFilter, FluidNetwork, FluidResult
from repro.net.faults import Fault, FaultInjector, FaultKind, FaultPlan
from repro.net.trace import PacketRecord, TraceRecorder
from repro.net.render import tier_summary, to_dot

__all__ = [
    "IPv4Address",
    "Prefix",
    "PrefixTable",
    "CompiledPrefixTable",
    "AddressAllocator",
    "HostAddressPool",
    "summarize",
    "Network",
    "LinkParams",
    "Packet",
    "PacketBatch",
    "Protocol",
    "TCPFlags",
    "ICMPType",
    "ASRole",
    "ASInfo",
    "Topology",
    "TopologyBuilder",
    "parse_as_rel2",
    "synthesize_as_rel2",
    "RoutingTable",
    "build_routing",
    "PolicyRouting",
    "Relationship",
    "Link",
    "Node",
    "Host",
    "Router",
    "Simulator",
    "Event",
    "Flow",
    "FlowSet",
    "FluidFilter",
    "FluidNetwork",
    "FluidResult",
    "Fault",
    "FaultKind",
    "FaultPlan",
    "FaultInjector",
    "PacketRecord",
    "TraceRecorder",
    "to_dot",
    "tier_summary",
]
