"""E10 — automated reaction to network anomalies (paper Sec. 4.4).

Triggers watch the rate of traffic toward the user's servers; when the
rate exceeds the configured boundary, the pre-installed rate limit
activates on that device.  Measured: detection delay, packets limited, and
the victim's goodput with vs. without the reaction, swept over the
trigger threshold.
"""

from __future__ import annotations

from repro.core import DeploymentScope
from repro.core.apps import AutoReactionApp
from repro.experiments.common import ExperimentConfig, register
from repro.scenario import AttackSpec, ScenarioSpec, TopologySpec
from repro.scenario.tcs import build_tcs_world
from repro.util.tables import Table

__all__ = ["run", "trigger_table", "heavy_hitter_table"]


def _run_once(cfg: ExperimentConfig, threshold: float | None,
              **app_kwargs):
    built = ScenarioSpec(
        name="e10-triggers", seed=cfg.seed,
        topology=TopologySpec(kind="hierarchical", n_core=2,
                              transit_per_core=2, stub_per_transit=6),
        attack=AttackSpec(kind="direct-unspoofed", n_agents=6,
                          attack_rate_pps=800.0, duration=0.6,
                          attack_start=0.2, seed_offset=3),
    ).build()
    net, sc = built.network, built.scenario
    app = None
    if threshold is not None:
        world = build_tcs_world(net, owner_asn=sc.victim_asn, service=True)
        # the anomaly here: off-service UDP (legit web traffic uses dport 80)
        from repro.net import Protocol

        app = AutoReactionApp(world.service, threshold_pps=threshold,
                              limit_bps=4e5, window=0.2,
                              predicate=lambda p: (p.proto is Protocol.UDP
                                                   and p.dport != 80),
                              **app_kwargs)
        # react on every device along the way, not only at the victim
        app.deploy(DeploymentScope.everywhere())
    metrics = sc.run()
    return sc, app, metrics


def trigger_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E10: trigger-armed automated reaction (Sec. 4.4)",
        ["trigger_threshold_pps", "fired_devices", "detection_delay_s",
         "attack_pkts@victim", "legit_goodput"],
    )
    _, _, baseline = _run_once(cfg, threshold=None)
    table.add_row("off", 0, "-", baseline.attack_packets_at_victim,
                  round(baseline.legit_goodput, 3))
    for threshold in (2000.0, 500.0, 100.0):
        sc, app, metrics = _run_once(cfg, threshold)
        delay = app.detection_delay(attack_start=0.2)
        table.add_row(threshold, app.fired,
                      round(delay, 3) if delay is not None else "never",
                      metrics.attack_packets_at_victim,
                      round(metrics.legit_goodput, 3))
    table.add_note("lower thresholds detect faster and limit more; the "
                   "reaction is the pre-installed rate limiter activating "
                   "on the device where the trigger fired")
    return table


def heavy_hitter_table(cfg: ExperimentConfig) -> Table:
    """Triggers with a SpaceSaving heavy-hitter stream (Sec. 4.4).

    ``aggregate`` is the baseline trigger (fires on total rate, limits all
    matching traffic); ``hh-identify`` attaches the source tracker so each
    firing names the offending sources and the limiter narrows to them;
    ``hh-per-source`` additionally fires once per source whose own rate
    crosses the threshold.
    """
    table = Table(
        "E10b: heavy-hitter triggers identify offending sources (Sec. 4.4)",
        ["mode", "fired", "sources_identified", "attacker_recall",
         "limited_pkts", "legit_goodput"],
    )
    modes = (
        ("aggregate", {}),
        ("hh-identify", {"heavy_hitter_k": 64}),
        ("hh-per-source", {"heavy_hitter_k": 64, "per_source": True}),
    )
    for mode, kwargs in modes:
        sc, app, metrics = _run_once(cfg, threshold=500.0, **kwargs)
        true_sources = {int(h.address) for h in sc.agents}
        found = app.offending_sources()
        recall = (len(found & true_sources) / len(true_sources)
                  if true_sources else 0.0)
        table.add_row(mode, app.fired, len(found), round(recall, 2),
                      app.limited_packets(),
                      round(metrics.legit_goodput, 3))
    table.add_note("the SpaceSaving tracker keeps O(64) state per trigger "
                   "regardless of attacker fan-in; identified sources let "
                   "the reaction limit offenders instead of every matching "
                   "flow")
    return table


@register("E10")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [trigger_table(cfg), heavy_hitter_table(cfg)]
