"""Benchmark regenerating E13: design-choice ablations (stage order, redirect policy, stateful filtering)."""

from repro.experiments import e13_ablations

from conftest import run_and_print


def test_e13(benchmark, exp_cfg):
    """E13: design-choice ablations (stage order, redirect policy, stateful filtering)"""
    run_and_print(benchmark, e13_ablations.run, exp_cfg)
