"""CAIDA as-rel2 parsing, the synthetic generator, and the committed
fixture (tests/net/data/as-rel2-small.txt — synthetic, serial-2 shaped;
see the header comments it carries)."""

from pathlib import Path

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.net import (
    ASRole,
    FluidNetwork,
    Network,
    Packet,
    TopologyBuilder,
    parse_as_rel2,
    synthesize_as_rel2,
)
from repro.net.fluid import flood_flows
from repro.scenario.spec import TopologySpec
from repro.util.rng import derive_rng

FIXTURE = Path(__file__).parent / "data" / "as-rel2-small.txt"


class TestParser:
    def test_relationships_and_roles(self):
        g = parse_as_rel2("# comment\n1|2|-1\n2|3|-1\n1|4|0\n4|2|-1\n")
        assert g.nodes[1]["role"] is ASRole.CORE      # customers, no provider
        assert g.nodes[2]["role"] is ASRole.TRANSIT   # both
        assert g.nodes[3]["role"] is ASRole.STUB      # no customers
        assert g.edges[1, 2]["rel"] == "p2c"
        assert g.edges[1, 2]["provider"] == 1
        assert g.edges[1, 4]["rel"] == "p2p"

    def test_accepts_iterable_of_lines(self):
        g = parse_as_rel2(["1|2|-1", "", "# x", "2|3|0"])
        assert sorted(g.nodes) == [1, 2, 3]

    def test_accepts_path(self):
        g = parse_as_rel2(FIXTURE)
        assert g.number_of_nodes() > 200

    def test_disconnected_keeps_giant_component(self):
        g = parse_as_rel2("1|2|-1\n1|5|-1\n3|4|0\n")
        assert sorted(g.nodes) == [1, 2, 5]

    def test_self_loops_ignored(self):
        g = parse_as_rel2("1|1|-1\n1|2|-1\n")
        assert sorted(g.nodes) == [1, 2]

    @pytest.mark.parametrize("bad", ["1|2", "1|2|5", "a|b|-1", "1||0"])
    def test_malformed_raises(self, bad):
        with pytest.raises(TopologyError):
            parse_as_rel2(f"1|2|-1\n{bad}\n")

    def test_empty_source_raises(self):
        with pytest.raises(TopologyError):
            parse_as_rel2("# nothing here\n")


class TestSynthesizer:
    def test_deterministic(self):
        assert synthesize_as_rel2(300, seed=9) == synthesize_as_rel2(300, seed=9)
        assert synthesize_as_rel2(300, seed=9) != synthesize_as_rel2(300, seed=10)

    def test_shape(self):
        topo = TopologyBuilder.from_as_rel2(synthesize_as_rel2(500, seed=1))
        assert len(topo) == 500
        assert topo.core_ases and topo.transit_ases and topo.stub_ases
        # stub-heavy, like real AS snapshots
        assert len(topo.stub_ases) > len(topo) / 3

    def test_too_small_raises(self):
        with pytest.raises(TopologyError):
            synthesize_as_rel2(1)


class TestFixture:
    def test_fixture_matches_generator(self):
        """The committed file is exactly synthesize_as_rel2(250, seed=20250807)
        — regenerate it if the generator intentionally changes."""
        assert FIXTURE.read_text() == synthesize_as_rel2(250, seed=20250807)

    def test_loads_as_topology(self):
        topo = TopologyBuilder.from_as_rel2(FIXTURE)
        assert len(topo) == 250
        assert topo.graph.number_of_edges() >= 250

    def test_packet_delivery_on_fixture(self):
        topo = TopologyBuilder.from_as_rel2(FIXTURE)
        net = Network(topo)
        stubs = topo.stub_ases
        a = net.add_host(stubs[0])
        b = net.add_host(stubs[-1])
        a.send(Packet.udp(a.address, b.address))
        net.run()
        assert b.received_packets == 1

    def test_fluid_flood_on_fixture(self):
        fluid = FluidNetwork.from_as_rel2(FIXTURE)
        topo = fluid.topology
        rng = derive_rng(5, "caida-test")
        victim = topo.stub_ases[0]
        flows = flood_flows(topo, victim, 40, rate_each=1e6, rng=rng)
        assert len(flows) == 40
        assert all(f.dst_asn == victim and f.src_asn != victim for f in flows)
        result = fluid.evaluate(flows)
        assert result.delivered_rate() > 0
        assert result.sent_rate() == pytest.approx(40e6)

    def test_flood_flows_deterministic(self):
        topo = TopologyBuilder.from_as_rel2(FIXTURE)
        pick = lambda: [f.src_asn for f in flood_flows(  # noqa: E731
            topo, topo.stub_ases[0], 10, 1.0, derive_rng(3, "x"))]
        assert pick() == pick()

    def test_flood_flows_too_many_sources(self):
        topo = TopologyBuilder.from_as_rel2(FIXTURE)
        with pytest.raises(TopologyError):
            flood_flows(topo, topo.stub_ases[0], 10_000, 1.0,
                        derive_rng(3, "x"))


class TestSpecIntegration:
    def test_caida_kind_builds(self):
        spec = TopologySpec(kind="caida", n=120)
        topo = spec.build(base_seed=42)
        assert len(topo) == 120

    def test_caida_kind_seed_sensitivity(self):
        spec = TopologySpec(kind="caida", n=120)
        a = spec.build(base_seed=42)
        b = spec.build(base_seed=42)
        c = spec.build(base_seed=43)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)
        assert sorted(a.graph.edges) != sorted(c.graph.edges)

    def test_spec_round_trips_through_json(self):
        spec = TopologySpec(kind="caida", n=64, seed_offset=3)
        from repro.scenario.spec import ScenarioSpec

        full = ScenarioSpec(topology=spec)
        again = ScenarioSpec.from_json(full.to_json())
        assert again.topology.kind == "caida"
        assert again.topology.n == 64


class TestScale:
    def test_as_of_many_at_caida_scale(self):
        topo = TopologyBuilder.caida_like(2000, seed=6)
        addrs = np.array([int(topo.prefix_of(asn).base) + 1
                          for asn in topo.as_numbers[:256]], dtype=np.int64)
        resolved = topo.as_of_many(addrs)
        assert list(resolved) == topo.as_numbers[:256]

    def test_large_graph_connected_and_fast(self):
        topo = TopologyBuilder.caida_like(5000, seed=2)
        import networkx as nx

        assert nx.is_connected(topo.graph)
        assert len(topo) == 5000
