"""DDoS reflector attacks (paper Sec. 2.2, Fig. 1).

Agents send request packets whose *source address is spoofed to the victim*
to innocent, uncompromised servers; the servers dutifully reply — SYN/ACKs,
RSTs, ICMP messages, or amplified DNS-style answers — and the replies flood
the victim.  Crucially, the packets the victim receives carry the
*legitimate, unspoofed* addresses of the reflectors: "Stopping traffic from
these sources will also terminate access to Internet services that the
victim might rely on."

Both a packet-level engine (responders on reflector hosts) and a two-pass
fluid formulation (request flows -> surviving fraction -> reflected flows)
are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence


from repro.errors import AttackConfigError
from repro.net.fluid import Flow, FluidFilter, FluidNetwork, FluidResult
from repro.net.network import Network
from repro.net.node import Host
from repro.net.packet import ICMPType, Packet, Protocol
from repro.attack.flood import TrafficGenerator
from repro.util.rng import derive_rng

__all__ = ["reflector_responder", "ReflectorAttack", "ReflectorFluidModel"]


def reflector_responder(amplification: float = 1.0, reply_kind: str = "attack-reflected",
                        mode: str = "synack") -> Callable:
    """Build a responder modelling an innocent reflecting server.

    ``mode``:

    * ``synack`` — answers TCP SYNs with SYN/ACK (web/FTP servers),
    * ``rst`` — answers other TCP packets with RST,
    * ``icmp`` — answers anything with ICMP host-unreachable (routers),
    * ``dns`` — answers UDP queries with an ``amplification``-times larger
      reply (bandwidth amplification).

    The reply's ``kind`` is ground-truth-labelled but its source address is
    the reflector's own, *unspoofed* address — that is the whole point.
    """
    if mode not in ("synack", "rst", "icmp", "dns"):
        raise AttackConfigError(f"unknown reflector mode {mode!r}")

    def respond(packet: Packet, host: Host, now: float) -> Optional[Iterable[Packet]]:
        if packet.kind.startswith("attack-reflected"):
            return None  # never re-reflect a reflection
        reply_size = max(40, int(packet.size * amplification))
        if mode == "synack" and packet.proto is Protocol.TCP and packet.flags.is_syn:
            reply = Packet.tcp_synack(host.address, packet.src, sport=packet.dport)
        elif mode == "rst" and packet.proto is Protocol.TCP and not packet.flags.is_syn:
            reply = Packet.tcp_rst(host.address, packet.src)
        elif mode == "icmp":
            reply = Packet.icmp(host.address, packet.src, ICMPType.HOST_UNREACHABLE)
        elif mode == "dns" and packet.proto is Protocol.UDP:
            reply = Packet.udp(host.address, packet.src, sport=packet.dport, size=reply_size)
        else:
            return None
        reply.kind = reply_kind
        reply.true_origin = host.name
        reply.size = max(reply.size, reply_size) if mode == "dns" else reply.size
        return [reply]

    return respond


@dataclass
class ReflectorAttack:
    """Packet-level reflector attack: agents spoof the victim toward reflectors.

    ``launch`` (a) installs reflecting responders on the reflector hosts and
    (b) starts one request generator per agent, spraying SYNs/queries over
    the reflectors round-robin.
    """

    network: Network
    agents: list[Host]
    reflectors: list[Host]
    victim: Host
    rate_pps: float = 100.0        # per agent
    request_size: int = 40
    amplification: float = 1.0     # reply bytes / request bytes (dns mode)
    mode: str = "synack"
    duration: float = 1.0
    start: float = 0.0
    seed: int | None = None

    def launch(self) -> list[TrafficGenerator]:
        if not self.reflectors:
            raise AttackConfigError("reflector attack needs reflectors")
        for reflector in self.reflectors:
            reflector.add_responder(
                reflector_responder(self.amplification, mode=self.mode)
            )
        generators = []
        n_refl = len(self.reflectors)
        for i, agent in enumerate(self.agents):
            def factory(seq: int, now: float, agent=agent, i=i) -> Packet:
                reflector = self.reflectors[(seq + i) % n_refl]
                if self.mode == "dns":
                    pkt = Packet.udp(self.victim.address, reflector.address,
                                     dport=53, size=self.request_size)
                else:
                    pkt = Packet.tcp_syn(self.victim.address, reflector.address)
                    pkt.size = self.request_size
                pkt.kind = "attack-request"
                pkt.true_origin = agent.name
                pkt.spoofed = True
                return pkt

            gen = TrafficGenerator(agent, factory, self.rate_pps,
                                   start=self.start, duration=self.duration,
                                   seed=derive_rng(self.seed, "refl", i))
            gen.install()
            generators.append(gen)
        return generators


class ReflectorFluidModel:
    """Two-pass fluid evaluation of a reflector attack.

    Pass 1 routes the spoofed *request* flows (agent AS -> reflector AS,
    claimed source = victim AS) through the filters; pass 2 turns the
    surviving request rate into *reflected* flows (reflector AS -> victim
    AS, genuinely sourced) scaled by the amplification factor, and routes
    those through the filters too.
    """

    def __init__(self, fluid: FluidNetwork, victim_asn: int,
                 agent_asns: Sequence[int], reflector_asns: Sequence[int],
                 rate_per_agent: float, amplification: float = 1.0) -> None:
        if not reflector_asns:
            raise AttackConfigError("fluid reflector model needs reflector ASes")
        self.fluid = fluid
        self.victim_asn = victim_asn
        self.agent_asns = list(agent_asns)
        self.reflector_asns = list(reflector_asns)
        self.rate_per_agent = rate_per_agent
        self.amplification = amplification

    def request_flows(self) -> list[Flow]:
        """Agent -> reflector spoofed request flows, sprayed evenly."""
        flows = []
        share = self.rate_per_agent / len(self.reflector_asns)
        for agent in self.agent_asns:
            for refl in self.reflector_asns:
                flows.append(Flow(agent, refl, share, kind="attack-request",
                                  claimed_src_asn=self.victim_asn,
                                  tag=f"agent{agent}->refl{refl}"))
        return flows

    def evaluate(self, filters: Sequence[FluidFilter] = (),
                 extra_flows: Sequence[Flow] = (),
                 congestion: bool = True) -> tuple[FluidResult, FluidResult]:
        """Run both passes; returns (request_result, reflected_result).

        ``extra_flows`` (e.g. legitimate client traffic) ride along in the
        second pass so congestion and collateral effects are shared.
        """
        req = self.fluid.evaluate(self.request_flows(), filters=filters,
                                  congestion=congestion)
        # surviving request rate per reflector AS
        arrived: dict[int, float] = {}
        for i, f in enumerate(req.flows):
            arrived[f.dst_asn] = arrived.get(f.dst_asn, 0.0) + float(req.delivered[i])
        reflected = [
            Flow(refl, self.victim_asn, rate * self.amplification,
                 kind="attack-reflected", tag=f"refl{refl}")
            for refl, rate in sorted(arrived.items()) if rate > 0
        ]
        second = self.fluid.evaluate([*reflected, *extra_flows], filters=filters,
                                     congestion=congestion)
        return req, second

    def victim_attack_rate(self, filters: Sequence[FluidFilter] = (),
                           extra_flows: Sequence[Flow] = ()) -> float:
        """Convenience: reflected bits/s arriving at the victim AS."""
        _, second = self.evaluate(filters, extra_flows)
        return second.delivered_rate("attack-reflected", dst_asn=self.victim_asn)
