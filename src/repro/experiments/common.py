"""Shared experiment scaffolding: configuration, registry, batch runner."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable

from repro.util.tables import Table

__all__ = ["ExperimentConfig", "register", "registry", "run_all"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``scale`` trades fidelity for runtime: 1.0 is the full (paper-shaped)
    configuration used for EXPERIMENTS.md; benchmarks use smaller scales.
    """

    seed: int = 42
    scale: float = 1.0

    def scaled(self, n: int, minimum: int = 1) -> int:
        """Scale an integer knob, keeping it at least ``minimum``."""
        return max(minimum, int(round(n * self.scale)))

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)


_REGISTRY: dict[str, Callable[[ExperimentConfig], list[Table]]] = {}


def register(experiment_id: str):
    """Decorator registering an experiment's runner under its id."""

    def wrap(fn: Callable[[ExperimentConfig], list[Table]]):
        _REGISTRY[experiment_id] = fn
        return fn

    return wrap


def registry() -> dict[str, Callable[[ExperimentConfig], list[Table]]]:
    # import for side effects: each module registers itself
    from repro.experiments import (  # noqa: F401
        e1_reflector_anatomy,
        e2_mitigation_matrix,
        e3_deployment_sweep,
        e4_tcs_defense,
        e5_safety,
        e6_scalability,
        e7_control_plane,
        e8_protocol_misuse,
        e9_traceback,
        e10_triggers,
        e11_debugging,
        e12_incentives,
        e13_ablations,
        e14_server_farm,
        e15_arms_race,
    )

    return dict(_REGISTRY)


def run_all(cfg: ExperimentConfig | None = None,
            only: Iterable[str] | None = None) -> dict[str, list[Table]]:
    """Run all (or selected) experiments; returns {id: [tables]}."""
    cfg = cfg or ExperimentConfig()
    wanted = set(only) if only is not None else None
    results: dict[str, list[Table]] = {}
    for exp_id, runner in sorted(registry().items()):
        if wanted is not None and exp_id not in wanted:
            continue
        results[exp_id] = runner(cfg)
    return results
