"""Benchmark regenerating E15: the arms race (Secs. 1, 4.2)."""

from repro.experiments import e15_arms_race

from conftest import run_and_print


def test_e15(benchmark, exp_cfg):
    """E15: vector-switching attacker vs. reactive TCS defender"""
    run_and_print(benchmark, e15_arms_race.run, exp_cfg)
