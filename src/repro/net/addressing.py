"""IPv4 addressing: addresses, prefixes, longest-prefix-match tables and a
per-AS address allocator.

Addresses are plain 32-bit ints wrapped in a tiny value class, prefixes are
``(base, length)`` pairs, and :class:`PrefixTable` is a binary trie giving
longest-prefix match — the same primitive real routers and the paper's
"officially registered to hold ... the IP address" ownership checks rely on.

Traffic ownership (Sec. 4.1 of the paper) is *defined* over prefixes: a
network user owns a packet iff its source or destination address lies in one
of the user's registered prefixes.  Everything in :mod:`repro.core` builds on
the matching semantics implemented here.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Generic, Iterable, Iterator, Optional, TypeVar

import numpy as np

from repro.errors import AddressError

__all__ = [
    "IPv4Address",
    "Prefix",
    "PrefixTable",
    "CompiledPrefixTable",
    "AddressAllocator",
]

_MAX = 0xFFFFFFFF

T = TypeVar("T")


def _coerce_addr_batch(addrs) -> np.ndarray:
    """Normalise a batch of addresses to a validated int64 ndarray.

    Accepts anything :func:`numpy.asarray` can turn into an array: integer
    arrays of any width, float arrays holding whole numbers, lists of
    ints/strings/:class:`IPv4Address`, or the empty list.  Raises
    :class:`~repro.errors.AddressError` on fractional floats, values
    outside the 32-bit address space (including negatives — before this
    check a ``-1`` silently wrapped to the *last* interval of the compiled
    table), and non-numeric dtypes.
    """
    arr = np.asarray(addrs)
    kind = arr.dtype.kind
    if kind == "O" or kind in "US":
        flat = [_as_int(a) for a in arr.ravel().tolist()]
        arr = np.array(flat, dtype=np.int64).reshape(arr.shape)
    elif kind == "f":
        if arr.size and not np.all(np.mod(arr, 1.0) == 0.0):
            raise AddressError("address batch contains non-integer floats")
        arr = arr.astype(np.int64)
    elif kind == "u":
        # check before the int64 cast: huge uint64s would wrap silently
        if arr.size and int(arr.max()) > _MAX:
            raise AddressError(
                f"address out of range in batch: {int(arr.max()):#x}")
        arr = arr.astype(np.int64)
    elif kind in "ib":
        arr = arr.astype(np.int64, copy=False)
    else:
        raise AddressError(f"unsupported address batch dtype: {arr.dtype}")
    if arr.size:
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0 or hi > _MAX:
            bad = lo if lo < 0 else hi
            raise AddressError(f"address out of range in batch: {bad:#x}")
    return arr


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address stored as an unsigned 32-bit integer.

    >>> IPv4Address.parse("10.0.0.1").value
    167772161
    >>> str(IPv4Address(167772161))
    '10.0.0.1'
    """

    value: int

    def __post_init__(self) -> None:
        if not (0 <= self.value <= _MAX):
            raise AddressError(f"address out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation."""
        parts = text.split(".")
        if len(parts) != 4:
            raise AddressError(f"not a dotted quad: {text!r}")
        value = 0
        for part in parts:
            try:
                octet = int(part)
            except ValueError as exc:
                raise AddressError(f"bad octet in {text!r}") from exc
            if not (0 <= octet <= 255):
                raise AddressError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __int__(self) -> int:
        return self.value


def _as_int(addr: "IPv4Address | int | str") -> int:
    if isinstance(addr, IPv4Address):
        return addr.value
    if isinstance(addr, str):
        return IPv4Address.parse(addr).value
    return int(addr)


@dataclass(frozen=True, order=True)
class Prefix:
    """A CIDR prefix ``base/length`` with a canonical (masked) base address.

    >>> p = Prefix.parse("10.1.0.0/16")
    >>> p.contains(IPv4Address.parse("10.1.2.3"))
    True
    >>> p.contains(IPv4Address.parse("10.2.0.0"))
    False
    """

    base: int
    length: int

    def __post_init__(self) -> None:
        if not (0 <= self.length <= 32):
            raise AddressError(f"prefix length out of range: {self.length}")
        if not (0 <= self.base <= _MAX):
            raise AddressError(f"prefix base out of range: {self.base:#x}")
        if self.base & ~self.mask():
            raise AddressError(
                f"prefix base {IPv4Address(self.base)}/{self.length} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        if "/" not in text:
            raise AddressError(f"missing '/length' in {text!r}")
        addr_text, _, len_text = text.partition("/")
        try:
            length = int(len_text)
        except ValueError as exc:
            raise AddressError(f"bad length in {text!r}") from exc
        base = IPv4Address.parse(addr_text).value
        mask = (0xFFFFFFFF << (32 - length)) & _MAX if length else 0
        return cls(base & mask, length)

    @classmethod
    def make(cls, addr: "IPv4Address | int | str", length: int) -> "Prefix":
        """Build a prefix containing ``addr``, masking host bits."""
        mask = (0xFFFFFFFF << (32 - length)) & _MAX if length else 0
        return cls(_as_int(addr) & mask, length)

    def mask(self) -> int:
        """The netmask as a 32-bit int."""
        return (0xFFFFFFFF << (32 - self.length)) & _MAX if self.length else 0

    def contains(self, addr: "IPv4Address | int | str") -> bool:
        """True iff ``addr`` falls inside this prefix."""
        return (_as_int(addr) & self.mask()) == self.base

    def contains_prefix(self, other: "Prefix") -> bool:
        """True iff ``other`` is equal to or more specific than this prefix."""
        return other.length >= self.length and (other.base & self.mask()) == self.base

    def overlaps(self, other: "Prefix") -> bool:
        """True iff the two prefixes share any address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    @property
    def first(self) -> IPv4Address:
        return IPv4Address(self.base)

    @property
    def last(self) -> IPv4Address:
        return IPv4Address(self.base | ~self.mask() & _MAX)

    def addresses(self) -> Iterator[IPv4Address]:
        """Iterate all addresses in the prefix (careful with short prefixes)."""
        for v in range(self.base, self.base + self.num_addresses):
            yield IPv4Address(v)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Split into equal subnets of ``new_length``."""
        if new_length < self.length or new_length > 32:
            raise AddressError(f"cannot split /{self.length} into /{new_length}")
        step = 1 << (32 - new_length)
        for base in range(self.base, self.base + self.num_addresses, step):
            yield Prefix(base, new_length)

    def __str__(self) -> str:
        return f"{IPv4Address(self.base)}/{self.length}"


class _TrieNode(Generic[T]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[Optional[_TrieNode[T]]] = [None, None]
        self.value: Optional[T] = None
        self.has_value = False


class CompiledPrefixTable(Generic[T]):
    """A :class:`PrefixTable` frozen into sorted flat interval arrays.

    Longest-prefix match over a *fixed* rule set is piecewise constant over
    the address space: projecting every prefix onto its ``[base, base+size)``
    interval and resolving each elementary interval once turns per-packet
    LPM into a single binary search — the same flattening trick compiled
    line-rate pipelines use instead of walking a trie per packet.

    ``lookup`` is an O(log n) scalar bisect; ``lookup_many`` vectorises whole
    address batches through :func:`numpy.searchsorted`.  The structure is a
    snapshot: mutate the source trie and :meth:`PrefixTable.compile` again.
    """

    __slots__ = ("_starts", "_starts_np", "_values", "_value_ids", "_size",
                 "_int_values", "_none_mask")

    def __init__(self, table: "PrefixTable[T]") -> None:
        bounds = {0}
        size = 0
        for prefix, _ in table.items():
            size += 1
            bounds.add(prefix.base)
            end = prefix.base + prefix.num_addresses
            if end <= _MAX:
                bounds.add(end)
        starts = sorted(bounds)
        # one slow trie walk per elementary interval, then merge runs whose
        # resolved value is the same object
        merged_starts: list[int] = []
        values: list[Optional[T]] = []
        for start in starts:
            value = table._lookup_trie(start)
            if values and values[-1] is value:
                continue
            merged_starts.append(start)
            values.append(value)
        self._size = size
        self._starts = merged_starts
        self._values = values
        self._starts_np = np.asarray(merged_starts, dtype=np.int64)
        self._value_ids = np.empty(len(values), dtype=object)
        self._value_ids[:] = values
        # lazy int64 projection of the interval values for lookup_many_int
        self._int_values: Optional[np.ndarray] = None
        self._none_mask: Optional[np.ndarray] = None

    def lookup(self, addr: "IPv4Address | int | str") -> Optional[T]:
        """Longest-prefix-match lookup; None when nothing matches."""
        a = addr if type(addr) is int else _as_int(addr)
        return self._values[bisect_right(self._starts, a) - 1]

    def lookup_many(self, addrs) -> np.ndarray:
        """Vectorised LPM for a batch of addresses.

        ``addrs`` is anything :func:`numpy.asarray` accepts: an integer
        ndarray (any width), a float ndarray of whole numbers, a list of
        ints / dotted-quad strings / :class:`IPv4Address`, or the empty
        list.  Returns an object ndarray of matched values (``None`` where
        nothing matches), aligned with the input shape.  Addresses outside
        the 32-bit space raise :class:`~repro.errors.AddressError` instead
        of silently wrapping onto the wrong interval.
        """
        arr = _coerce_addr_batch(addrs)
        if arr.size == 0:
            return np.empty(arr.shape, dtype=object)
        idx = np.searchsorted(self._starts_np, arr, side="right") - 1
        return self._value_ids[idx]

    def _compile_int_values(self) -> None:
        n = len(self._values)
        vals = np.zeros(n, dtype=np.int64)
        none_mask = np.zeros(n, dtype=bool)
        for j, v in enumerate(self._values):
            if v is None:
                none_mask[j] = True
            elif isinstance(v, (int, np.integer)) and not isinstance(v, bool):
                vals[j] = int(v)
            else:
                raise AddressError(
                    f"lookup_many_int needs integer table values, got {type(v).__name__}")
        self._int_values = vals
        self._none_mask = none_mask

    def lookup_many_int(self, addrs, default: int = -1) -> np.ndarray:
        """Vectorised LPM returning an int64 array (for int-valued tables).

        Like :meth:`lookup_many` but stays in int64 end to end — the hot
        path for routing-style tables mapping prefixes to AS numbers.
        Unmatched addresses yield ``default`` instead of ``None``.  Raises
        :class:`~repro.errors.AddressError` when the table holds non-int
        values.
        """
        arr = _coerce_addr_batch(addrs)
        if self._int_values is None:
            self._compile_int_values()
        assert self._int_values is not None and self._none_mask is not None
        if arr.size == 0:
            return np.empty(arr.shape, dtype=np.int64)
        idx = np.searchsorted(self._starts_np, arr, side="right") - 1
        out = self._int_values[idx]
        if self._none_mask.any():
            out = np.where(self._none_mask[idx], default, out)
        return out

    def __contains__(self, addr: "IPv4Address | int | str") -> bool:
        return self.lookup(addr) is not None

    def __len__(self) -> int:
        return self._size

    @property
    def intervals(self) -> int:
        """Number of distinct-value elementary intervals (diagnostics)."""
        return len(self._starts)


#: Slow trie lookups tolerated after a mutation before ``PrefixTable``
#: recompiles its flat fast path (keeps insert/lookup interleavings cheap).
_COMPILE_AFTER_LOOKUPS = 16


class PrefixTable(Generic[T]):
    """Binary trie mapping prefixes to values with longest-prefix match.

    The workhorse behind routing tables, ownership registries, and the
    adaptive device's "is this packet owned by a registered user?" redirect
    decision (paper Sec. 4.1/Fig. 2).

    Lookup-heavy phases run on a compiled flat-interval snapshot
    (:class:`CompiledPrefixTable`) built automatically once enough lookups
    hit an unchanged table; ``insert``/``remove`` invalidate it, so
    correctness never depends on callers knowing about compilation.

    >>> t = PrefixTable()
    >>> t.insert(Prefix.parse("10.0.0.0/8"), "coarse")
    >>> t.insert(Prefix.parse("10.1.0.0/16"), "fine")
    >>> t.lookup(IPv4Address.parse("10.1.2.3"))
    'fine'
    >>> t.lookup(IPv4Address.parse("10.9.0.1"))
    'coarse'
    """

    def __init__(self) -> None:
        self._root: _TrieNode[T] = _TrieNode()
        self._size = 0
        self._version = 0
        self._compiled: Optional[CompiledPrefixTable[T]] = None
        self._lookups_since_change = 0

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every ``insert``/``remove``."""
        return self._version

    def _invalidate(self) -> None:
        self._version += 1
        self._compiled = None
        self._lookups_since_change = 0

    def compile(self) -> CompiledPrefixTable[T]:
        """Freeze the current rule set into a flat-interval LPM table.

        The snapshot is cached and served to subsequent ``lookup`` calls
        until the next mutation.
        """
        if self._compiled is None:
            self._compiled = CompiledPrefixTable(self)
        return self._compiled

    def insert(self, prefix: Prefix, value: T) -> None:
        """Insert or replace the value for an exact prefix."""
        node = self._root
        for i in range(prefix.length):
            bit = (prefix.base >> (31 - i)) & 1
            nxt = node.children[bit]
            if nxt is None:
                nxt = _TrieNode()
                node.children[bit] = nxt
            node = nxt
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True
        self._invalidate()

    def remove(self, prefix: Prefix) -> bool:
        """Remove an exact prefix; returns True if it was present."""
        node = self._root
        for i in range(prefix.length):
            bit = (prefix.base >> (31 - i)) & 1
            nxt = node.children[bit]
            if nxt is None:
                return False
            node = nxt
        if node.has_value:
            node.has_value = False
            node.value = None
            self._size -= 1
            self._invalidate()
            return True
        return False

    def _lookup_trie(self, addr: "IPv4Address | int | str") -> Optional[T]:
        """The original bit-by-bit trie walk (slow path, always correct)."""
        value = self._root.value if self._root.has_value else None
        node = self._root
        a = _as_int(addr)
        for i in range(32):
            node = node.children[(a >> (31 - i)) & 1]  # type: ignore[assignment]
            if node is None:
                break
            if node.has_value:
                value = node.value
        return value

    def lookup(self, addr: "IPv4Address | int | str") -> Optional[T]:
        """Longest-prefix-match lookup; None when nothing matches."""
        compiled = self._compiled
        if compiled is not None:
            a = addr if type(addr) is int else _as_int(addr)
            return compiled._values[bisect_right(compiled._starts, a) - 1]
        self._lookups_since_change += 1
        if self._lookups_since_change >= _COMPILE_AFTER_LOOKUPS:
            return self.compile().lookup(addr)
        return self._lookup_trie(addr)

    def lookup_many(self, addrs) -> np.ndarray:
        """Vectorised LPM over a batch of addresses (compiles if needed)."""
        return self.compile().lookup_many(addrs)

    def lookup_many_int(self, addrs, default: int = -1) -> np.ndarray:
        """Vectorised int64 LPM for int-valued tables (compiles if needed)."""
        return self.compile().lookup_many_int(addrs, default=default)

    def covering(self, prefix: Prefix) -> Iterator[tuple[Prefix, T]]:
        """Yield stored entries whose prefix covers ``prefix``, shortest
        first (at most 33 — one per level on the trie path)."""
        node: Optional[_TrieNode[T]] = self._root
        if node.has_value:
            yield Prefix(0, 0), node.value  # type: ignore[misc]
        base = 0
        for i in range(prefix.length):
            bit = (prefix.base >> (31 - i)) & 1
            node = node.children[bit]
            if node is None:
                return
            base |= bit << (31 - i)
            if node.has_value:
                yield Prefix(base, i + 1), node.value  # type: ignore[misc]

    def lookup_exact(self, prefix: Prefix) -> Optional[T]:
        """Exact-prefix lookup (no LPM)."""
        node = self._root
        for i in range(prefix.length):
            bit = (prefix.base >> (31 - i)) & 1
            nxt = node.children[bit]
            if nxt is None:
                return None
            node = nxt
        return node.value if node.has_value else None

    def items(self) -> Iterator[tuple[Prefix, T]]:
        """Iterate all (prefix, value) pairs in trie order."""
        stack: list[tuple[_TrieNode[T], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, base, depth = stack.pop()
            if node.has_value:
                yield Prefix(base, depth), node.value  # type: ignore[misc]
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append((child, base | (bit << (31 - depth)), depth + 1))

    def __contains__(self, addr: "IPv4Address | int | str") -> bool:
        return self.lookup(addr) is not None

    def __len__(self) -> int:
        return self._size


class AddressAllocator:
    """Hands out disjoint prefixes and host addresses from a super-block.

    Each AS in a topology receives one prefix; hosts inside the AS receive
    consecutive addresses from it.  Mirrors how RIRs delegate blocks, which
    is exactly the database the paper's TCSP queries (Fig. 4, "Internet
    number authority").
    """

    def __init__(self, block: Prefix | str = "10.0.0.0/8") -> None:
        self.block = Prefix.parse(block) if isinstance(block, str) else block
        self._next = self.block.base
        self._allocated: list[Prefix] = []

    def allocate_prefix(self, length: int = 24) -> Prefix:
        """Allocate the next available prefix of the given length."""
        if length < self.block.length:
            raise AddressError(f"/{length} larger than pool {self.block}")
        step = 1 << (32 - length)
        base = (self._next + step - 1) & ~(step - 1)  # align up
        if base + step > self.block.base + self.block.num_addresses:
            raise AddressError(f"pool {self.block} exhausted")
        self._next = base + step
        prefix = Prefix(base, length)
        self._allocated.append(prefix)
        return prefix

    @property
    def allocated(self) -> list[Prefix]:
        return list(self._allocated)


class HostAddressPool:
    """Sequential host addresses within one prefix (skipping the base)."""

    def __init__(self, prefix: Prefix) -> None:
        self.prefix = prefix
        self._next = prefix.base + 1

    def next_address(self) -> IPv4Address:
        """Allocate the next host address in the prefix."""
        if self._next > int(self.prefix.last):
            raise AddressError(f"prefix {self.prefix} has no free host addresses")
        addr = IPv4Address(self._next)
        self._next += 1
        return addr


def summarize(prefixes: Iterable[Prefix]) -> list[Prefix]:
    """Remove prefixes covered by shorter ones in the input.

    Used when registering ownership: ``10.0.0.0/8`` subsumes ``10.1.0.0/16``.
    """
    result: list[Prefix] = []
    for p in sorted(set(prefixes), key=lambda q: (q.length, q.base)):
        if not any(existing.contains_prefix(p) for existing in result):
            result.append(p)
    return result
