"""ScenarioSpec value-object behavior: validation, derivation, JSON."""

import dataclasses

import pytest

from repro.scenario import (
    AttackSpec,
    DefenseSpec,
    FaultSpec,
    PRESETS,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    preset,
    preset_names,
)


class TestTopologySpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError):
            TopologySpec(kind="donut")

    def test_seed_offset_changes_the_graph(self):
        spec = TopologySpec(kind="powerlaw", n=60)
        base = spec.build(42)
        offset = dataclasses.replace(spec, seed_offset=1).build(42)
        assert set(base.graph.edges()) != set(offset.graph.edges())

    def test_offset_equals_shifted_base_seed(self):
        spec = TopologySpec(kind="powerlaw", n=60, seed_offset=7)
        assert (set(spec.build(42).graph.edges())
                == set(TopologySpec(kind="powerlaw", n=60).build(49)
                       .graph.edges()))

    @pytest.mark.parametrize("kind", ["hierarchical", "powerlaw", "internet",
                                      "line", "star", "tree"])
    def test_every_kind_builds(self, kind):
        topo = TopologySpec(kind=kind, n=20).build(42)
        assert len(topo) > 0


class TestAttackSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError):
            AttackSpec(kind="quantum")

    def test_to_config_applies_seed_offset(self):
        cfg = AttackSpec(kind="reflector", seed_offset=3).to_config(42)
        assert cfg.seed == 45
        assert cfg.attack_kind == "reflector"

    def test_scaled_scales_populations(self):
        spec = AttackSpec(n_agents=8, n_reflectors=6).scaled(0.5)
        assert spec.n_agents == 4
        assert spec.n_reflectors == 3
        assert AttackSpec(n_agents=2).scaled(0.01).n_agents == 1


class TestDefenseSpec:
    def test_of_sorts_params(self):
        a = DefenseSpec.of("rbf", fraction=0.3, seedy=1)
        b = DefenseSpec.of("rbf", seedy=1, fraction=0.3)
        assert a == b
        assert a.get("fraction") == 0.3
        assert a.get("missing", "x") == "x"
        assert a.as_dict() == {"fraction": 0.3, "seedy": 1}

    def test_spec_is_hashable(self):
        assert hash(DefenseSpec.of("tcs")) == hash(DefenseSpec.of("tcs"))


class TestFaultSpec:
    def test_empty(self):
        assert FaultSpec().empty
        assert not FaultSpec(n_crashes=1).empty

    def test_plan_is_seed_deterministic(self):
        spec = FaultSpec(n_crashes=3, n_flaps=1)
        kw = dict(horizon=2.0, device_asns=[4, 5, 6],
                  links=[(0, 1), (1, 2)])
        assert (spec.plan(42, **kw).faults == spec.plan(42, **kw).faults)
        assert (spec.plan(42, **kw).faults != spec.plan(43, **kw).faults)


class TestScenarioSpec:
    def test_horizon(self):
        spec = ScenarioSpec(attack=AttackSpec(attack_start=0.1, duration=0.6),
                            settle=0.5)
        assert spec.horizon == pytest.approx(1.2)

    def test_with_seed_and_defense(self):
        spec = ScenarioSpec(seed=1)
        assert spec.with_seed(9).seed == 9
        assert spec.with_defense(DefenseSpec.of("tcs")).defense.name == "tcs"

    def test_scaled_identity_at_one(self):
        spec = ScenarioSpec()
        assert spec.scaled(1.0) is spec

    def test_json_round_trip(self):
        for name in preset_names():
            spec = preset(name)
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_from_json_rejects_garbage(self):
        with pytest.raises(SpecError):
            ScenarioSpec.from_json("not json {")
        with pytest.raises(SpecError):
            ScenarioSpec.from_json("[1, 2]")
        with pytest.raises(SpecError):
            ScenarioSpec.from_json('{"nonsense_field": 1}')

    def test_unknown_preset(self):
        with pytest.raises(SpecError):
            preset("does-not-exist")

    def test_presets_are_built(self):
        assert len(PRESETS) >= 6
        for spec in PRESETS.values():
            built = spec.build()
            assert built.victim_asn in built.topology.as_numbers
