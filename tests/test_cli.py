"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_defense_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["defend", "--defense", "magic"])

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["topology", "--kind", "donut"])


class TestTopologyCommand:
    def test_summary_output(self, capsys):
        assert main(["topology", "--kind", "star", "--size", "5"]) == 0
        out = capsys.readouterr().out
        assert "5 ASes" in out
        assert "stub   : 4" in out

    def test_verbose_lists_ases(self, capsys):
        main(["topology", "--kind", "line", "--size", "3", "--verbose"])
        out = capsys.readouterr().out
        assert "AS0" in out and "AS2" in out

    @pytest.mark.parametrize("kind", ["hierarchical", "powerlaw", "internet"])
    def test_all_kinds_build(self, kind, capsys):
        assert main(["topology", "--kind", kind, "--size", "40"]) == 0


class TestAttackAndDefend:
    def test_attack_reports_metrics(self, capsys):
        assert main(["attack", "--kind", "reflector", "--agents", "4",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "attack packets delivered" in out
        assert "goodput" in out

    def test_defend_tcs_zeroes_reflector(self, capsys):
        assert main(["defend", "--attack", "reflector", "--defense", "tcs",
                     "--agents", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "-> 0 (0% of undefended)" in out
        assert "collateral damage : 0%" in out

    def test_defend_none_is_identity(self, capsys):
        assert main(["defend", "--attack", "direct-unspoofed",
                     "--defense", "none", "--agents", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "100% of undefended" in out


class TestExperimentsForwarding:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "E5", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "E5: misuse attempts" in out

    def test_markdown_flag(self, capsys):
        assert main(["experiments", "E5", "--scale", "0.2", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| attempt |" in out

    def test_workers_flag_forwards_to_parallel_runner(self, capsys):
        assert main(["experiments", "E5", "--scale", "0.2", "-j", "2"]) == 0
        out = capsys.readouterr().out
        assert "E5: misuse attempts" in out


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("python -m repro ")
        # some dotted version follows the program name
        assert out.split()[-1][0].isdigit()


class TestObsCommand:
    def test_table_lists_every_layer(self, capsys):
        assert main(["obs"]) == 0
        out = capsys.readouterr().out
        for name in ("net.link.dropped_packets", "sim.events_processed",
                     "device.flow_cache_hits", "rpc.backoff_s",
                     "faults.injected", "scenario.attack_survival",
                     "service.checks", "service.admission_rejected",
                     "service.policy.swaps", "graph.packets_in",
                     "component.processed"):
            assert name in out

    def test_json_output_is_machine_readable(self, capsys):
        import json

        assert main(["obs", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in catalog}
        assert by_name["net.link.tx_packets"]["kind"] == "counter"
        assert by_name["net.link.tx_packets"]["labels"] == ["link"]
        assert by_name["rpc.backoff_s"]["kind"] == "histogram"
        assert by_name["scenario.legit_goodput"]["kind"] == "gauge"


class TestPolicyCommand:
    def test_show_dumps_ir_and_diagnostics(self, capsys):
        assert main(["policy", "show"]) == 0
        out = capsys.readouterr().out
        assert "FILTER" in out and "signature" in out
        assert "opt.fuse" in out  # demo spec has fusable filters

    def test_verify_reports_ok(self, capsys):
        assert main(["policy", "verify"]) == 0
        assert "no errors" in capsys.readouterr().out

    def test_spec_file_round_trip(self, capsys, tmp_path):
        import json

        spec_file = tmp_path / "svc.json"
        spec_file.write_text(json.dumps({
            "name": "svc",
            "rules": [
                {"action": "drop", "proto": "udp", "dport_not_in": [53]},
                {"action": "blacklist", "prefixes": ["203.0.113.0/24"]},
            ]}))
        assert main(["policy", "show", "--spec", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "svc@AS0" in out and "BLACKLIST" in out

    def test_bad_spec_file_is_an_error(self, capsys, tmp_path):
        import json

        spec_file = tmp_path / "bad.json"
        spec_file.write_text(json.dumps(
            {"name": "bad", "rules": [{"action": "teleport"}]}))
        assert main(["policy", "verify", "--spec", str(spec_file)]) == 2
        assert "error" in capsys.readouterr().err

    def test_bench_reports_ratio(self, capsys):
        assert main(["policy", "bench", "--batch", "64"]) == 0
        out = capsys.readouterr().out
        assert "interpreted walk" in out and "compiled batch" in out


class TestMetricsOut:
    def test_scenario_run_exports_jsonl(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "metrics.jsonl"
        assert main(["scenario", "run", "--spec", "spoofed-flood-ingress",
                     "--scale", "0.5", "--metrics-out", str(out_file)]) == 0
        rows = [json.loads(line)
                for line in out_file.read_text().splitlines()]
        names = {row["name"] for row in rows}
        assert "net.link.tx_packets" in names
        assert "scenario.attack_survival" in names
        # the export includes the wall-clock span, flagged as a timer
        timer = next(r for r in rows if r["name"] == "scenario.run_seconds")
        assert timer["kind"] == "timer"
        assert timer["value"]["count"] == 1

    def test_export_matches_printed_metrics(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "metrics.jsonl"
        assert main(["scenario", "run", "--spec", "spoofed-flood-ingress",
                     "--scale", "0.5", "--metrics-out", str(out_file)]) == 0
        printed = capsys.readouterr().out
        survival = next(
            json.loads(line)["value"]
            for line in out_file.read_text().splitlines()
            if json.loads(line)["name"] == "scenario.attack_survival")
        assert f"attack_survival   : {round(survival, 4)}" in printed


class TestServeCommand:
    def _request(self, port, tries=50):
        import http.client
        import time

        for attempt in range(tries):
            try:
                conn = http.client.HTTPConnection("127.0.0.1", port, timeout=2)
                conn.request("GET", "/")
                response = conn.getresponse()
                body = response.read()
                conn.close()
                return response.status, body
            except OSError:
                if attempt == tries - 1:
                    raise
                time.sleep(0.05)

    def _free_port(self):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def test_serve_answers_and_exits_after_max_requests(self, capsys):
        import threading

        port = self._free_port()
        status = []
        thread = threading.Thread(
            target=lambda: status.append(main(
                ["serve", "--port", str(port), "--max-requests", "2"])))
        thread.start()
        try:
            # 127.0.0.1 is unowned by the protected subscriber -> direct pass
            assert self._request(port) == (200, b"ok\n")
            assert self._request(port) == (200, b"ok\n")
        finally:
            thread.join(timeout=10)
        assert status == [0]
        out = capsys.readouterr().out
        assert f"http://127.0.0.1:{port}/" in out
        assert "served 2 checks: 2 passed, 0 dropped" in out

    def test_admission_bucket_turns_away_excess_requests(self, capsys):
        import threading

        port = self._free_port()
        status = []
        thread = threading.Thread(
            target=lambda: status.append(main(
                ["serve", "--port", str(port), "--max-requests", "2",
                 "--admit-rate", "0.001", "--admit-burst", "1"])))
        thread.start()
        try:
            assert self._request(port)[0] == 200
            code, body = self._request(port)
        finally:
            thread.join(timeout=10)
        assert status == [0]
        assert code == 429
        assert body == b"blocked by traffic control service\n"
        assert "1 admission-rejected" in capsys.readouterr().out

    def test_build_serve_app_blocks_blacklisted_sources(self):
        from repro.cli import _build_serve_app

        facade, _controller, app = _build_serve_app(
            "10.0.0.0/24", ["203.0.113.0/24"], None)
        captured = {}

        def start_response(status, headers):
            captured["status"] = status

        body = b"".join(app({"REMOTE_ADDR": "203.0.113.5"}, start_response))
        assert captured["status"] == "403 Forbidden"
        assert body == b"blocked by traffic control service\n"
        assert facade._m_drop.value == 1


class TestScenarioCommand:
    def test_list_prints_the_presets(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "reflector-tcs" in out
        assert "spoofed-flood-ingress" in out
        assert "defense=tcs" in out

    def test_run_preset_on_packet_engine(self, capsys):
        assert main(["scenario", "run", "--spec", "spoofed-flood-ingress",
                     "--engine", "packet"]) == 0
        out = capsys.readouterr().out
        assert "packet engine" in out
        assert "attack_survival" in out

    def test_run_spec_file(self, capsys, tmp_path):
        from repro.scenario import preset

        path = tmp_path / "spec.json"
        path.write_text(preset("spoofed-flood-ingress").to_json())
        assert main(["scenario", "run", "--spec", str(path)]) == 0
        assert "attack_survival" in capsys.readouterr().out

    def test_seed_override(self, capsys):
        assert main(["scenario", "run", "--spec", "spoofed-flood-ingress",
                     "--seed", "7"]) == 0
        assert "seed=7" in capsys.readouterr().out

    def test_unknown_spec_fails_cleanly(self, capsys):
        assert main(["scenario", "run", "--spec", "no-such-spec"]) == 2
        assert "neither a preset" in capsys.readouterr().err

    def test_fluid_engine_rejects_packet_only_spec(self, capsys):
        assert main(["scenario", "run", "--spec", "reflector-under-faults",
                     "--engine", "fluid"]) == 1
        assert "cannot run" in capsys.readouterr().err
