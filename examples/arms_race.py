#!/usr/bin/env python3
"""The arms race: a vector-switching attacker vs. the reactive defender.

The paper's core motivation (Sec. 1): attackers construct "new attack
tools and variants" faster than defenses follow.  The TCS answer
(Sec. 4.2): rules "can be installed, configured and activated instantly."

This example plays a three-act campaign — reflector bounce, spoofed UDP
flood, forged-RST teardown — against a victim whose reactive defender
sees nothing but packet headers, and prints the engagement timeline.

Run:  python examples/arms_race.py
"""

from repro.attack import Campaign, CampaignPhase, ConnectionPool
from repro.core import NumberAuthority, Tcsp, TrafficControlService
from repro.core.apps import ReactiveDefender
from repro.net import Network, TopologyBuilder


def main() -> None:
    network = Network(TopologyBuilder.hierarchical(2, 2, 8, seed=29))
    stubs = network.topology.stub_ases
    victim = network.add_host(stubs[0])
    agents = [network.add_host(a) for a in stubs[1:6]]
    reflectors = [network.add_host(a) for a in stubs[8:12]]

    # the victim subscribes to the TCS and arms a reactive defender
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, network)
    tcsp.contract_isp("world-isp", network.topology.as_numbers)
    prefix = network.topology.prefix_of(victim.asn)
    authority.record_allocation(prefix, "victim-co")
    user, cert = tcsp.register_user("victim-co", [prefix])
    service = TrafficControlService(tcsp, user, cert)
    defender = ReactiveDefender(service, victim, threshold_pps=80.0)

    # long-lived partner connections (the teardown phase's target)
    pool = ConnectionPool(victim)
    partners = [network.add_host(stubs[13]) for _ in range(10)]
    for partner in partners:
        pool.establish(partner)

    campaign = Campaign(network, victim, agents, reflectors, phases=[
        CampaignPhase("reflector", start=0.1, duration=0.5, rate_pps=250.0,
                      label="act 1: reflector bounce"),
        CampaignPhase("direct-spoofed", start=0.9, duration=0.5,
                      rate_pps=250.0, label="act 2: spoofed UDP flood"),
        CampaignPhase("rst-misuse", start=1.7, duration=0.4, rate_pps=80.0,
                      label="act 3: forged-RST teardown"),
    ], seed=5)
    campaign.pool = pool
    campaign.run()

    print("attack delivery per act (packets/s at the victim):")
    for label, rate in campaign.phase_report():
        print(f"  {label:<28} {rate:7.1f} pps")
    print()
    print("defender engagement log:")
    for action in defender.actions:
        print(f"  t={action.time * 1e3:6.0f} ms  [{action.signature:<10}] "
              f"{action.response} ({action.devices} devices)")
    print()
    print(f"partner connections surviving the teardown act: "
          f"{pool.alive_count}/{len(pool.connections)}")
    print("every vector was answered by one TCS deployment, from packet "
          "headers alone.")


if __name__ == "__main__":
    main()
