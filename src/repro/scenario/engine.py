"""Backend-agnostic execution: one ``run(spec) -> MetricSet`` call.

Two engines implement the :class:`Engine` protocol:

* :class:`PacketEngine` — builds the spec's world on the discrete-event
  :class:`~repro.net.simulator.Simulator`, launches attack + legitimate
  traffic (routing cooperative clients through the defense's wrapper),
  runs to the spec's horizon, then lets the defense finalize before the
  shared :class:`~repro.scenario.metrics.MetricSink` reads the routers.
* :class:`FluidEngine` — builds the *same* world (identical role
  placement: the packet scenario object is the single source of truth for
  who sits where), then evaluates its flow-level projection on a
  :class:`~repro.net.fluid.FluidNetwork` with the defense's fluid filters.
  Only defenses with a fluid equivalent run here; the rest raise
  :class:`~repro.scenario.spec.SpecError` naming the supported set.

The two engines agree on role placement and report the same
:class:`MetricSet` schema, so ``attack_survival`` / ``legit_goodput`` /
``collateral`` are directly comparable across backends — the basis of the
packet-vs-fluid comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Protocol as TypingProtocol, runtime_checkable

from repro.net.fluid import FluidNetwork
from repro.obs.metrics import get_registry
from repro.scenario import defenses
from repro.scenario.build import BuiltScenario, build
from repro.scenario.metrics import MetricSet, MetricSink
from repro.scenario.spec import ScenarioSpec, SpecError

__all__ = ["Engine", "PacketEngine", "FluidEngine", "ENGINES",
           "run_scenario"]


@runtime_checkable
class Engine(TypingProtocol):
    """Anything that can execute a ScenarioSpec end to end."""

    name: str

    def run(self, spec: ScenarioSpec) -> MetricSet:  # pragma: no cover
        ...


class PacketEngine:
    """Discrete-event packet-level execution."""

    name = "packet"

    def run(self, spec: ScenarioSpec) -> MetricSet:
        return self.run_built(build(spec))

    def run_built(self, built: BuiltScenario) -> MetricSet:
        """Run an already-built world (for callers that need the live
        objects afterwards, e.g. experiments reading extra counters)."""
        sc = built.scenario
        handle = built.defense
        # wall-clock profiling span; timers stay out of the deterministic
        # snapshot, so this never perturbs the serial == parallel contract
        with get_registry().span("scenario.run_seconds", engine=self.name):
            sc.launch(legit=handle.legit_wrapper is None)
            if handle.legit_wrapper is not None:
                sc.launch_legit(handle.legit_wrapper)
            metrics = sc.run(settle=built.spec.settle)
            handle.finish()
        return MetricSink.from_packet(built, metrics).publish()


class FluidEngine:
    """Flow-level execution on the fluid model.

    ``congestion`` mirrors :meth:`FluidNetwork.evaluate`; the default True
    matches the packet engine's finite link capacities.
    """

    name = "fluid"

    def __init__(self, congestion: bool = True) -> None:
        self.congestion = congestion

    def run(self, spec: ScenarioSpec) -> MetricSet:
        if spec.faults is not None and not spec.faults.empty:
            raise SpecError("the fluid engine cannot inject faults; "
                            "run fault scenarios on the packet engine")
        built = build(spec)
        fluid = FluidNetwork(built.topology)
        filters = defenses.fluid_filters(built, spec.defense, fluid)
        sc = built.scenario
        with get_registry().span("scenario.run_seconds", engine=self.name):
            if spec.attack.kind == "reflector":
                model = sc.fluid_reflector(fluid)
                req, res = model.evaluate(filters=filters,
                                          extra_flows=sc.legit_flows(),
                                          congestion=self.congestion)
                return MetricSink.from_fluid_reflector(built, req, res).publish()
            result = fluid.evaluate(sc.as_flows(), filters=filters,
                                    congestion=self.congestion)
        return MetricSink.from_fluid_direct(built, result).publish()


ENGINES: dict[str, type] = {
    PacketEngine.name: PacketEngine,
    FluidEngine.name: FluidEngine,
}


def run_scenario(spec: ScenarioSpec, engine: str = "packet") -> MetricSet:
    """One-call entry point: run ``spec`` on the named engine."""
    try:
        engine_cls = ENGINES[engine]
    except KeyError:
        raise SpecError(
            f"unknown engine {engine!r}; known: {tuple(sorted(ENGINES))}"
        ) from None
    return engine_cls().run(spec)
