"""Tests for the clock seam (service/clock.py + net SimClock)."""

import pytest

from repro.net import Simulator
from repro.service import Clock, ManualClock, WallClock


class TestProtocol:
    def test_all_clocks_satisfy_the_protocol(self):
        sim = Simulator()
        for clock in (WallClock(), ManualClock(), sim.clock):
            assert isinstance(clock, Clock)

    def test_a_non_clock_does_not(self):
        assert not isinstance(object(), Clock)


class TestWallClock:
    def test_starts_near_zero_and_advances(self):
        import time

        clock = WallClock()
        first = clock.now()
        assert 0.0 <= first < 1.0
        time.sleep(0.002)
        assert clock.now() > first


class TestManualClock:
    def test_starts_where_told_and_advances_explicitly(self):
        clock = ManualClock(10.0)
        assert clock.now() == 10.0
        assert clock.advance(2.5) == 12.5
        assert clock.now() == 12.5

    def test_never_advances_on_its_own(self):
        clock = ManualClock()
        assert clock.now() == clock.now() == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


class TestSimClock:
    def test_follows_simulated_time(self):
        sim = Simulator()
        clock = sim.clock
        assert clock.now() == 0.0
        sim.schedule(3.0, int)
        sim.run()
        assert clock.now() == 3.0
