"""Benchmark regenerating E5: misuse-prevention table (Sec. 4.5)."""

from repro.experiments import e5_safety

from conftest import run_and_print


def test_e5(benchmark, exp_cfg):
    """E5: misuse-prevention table (Sec. 4.5)"""
    run_and_print(benchmark, e5_safety.run, exp_cfg)
