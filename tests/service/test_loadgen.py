"""Tests for the open-loop load harness (tools/loadgen.py)."""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import loadgen  # noqa: E402


class TestWorld:
    def test_world_is_deterministic_per_seed(self):
        _, src_a, dst_a = loadgen.build_world(8, 0.1, 256, seed=1)
        _, src_b, dst_b = loadgen.build_world(8, 0.1, 256, seed=1)
        assert (src_a == src_b).all() and (dst_a == dst_b).all()

    def test_owned_share_zero_never_targets_subscribers(self):
        facade, src, dst = loadgen.build_world(8, 0.0, 256, seed=1)
        for d in dst[:32]:
            assert facade.registry.owner_of(int(d)) is None

    def test_owned_share_one_always_targets_subscribers(self):
        facade, _, dst = loadgen.build_world(8, 1.0, 256, seed=1)
        for d in dst[:32]:
            assert facade.registry.owner_of(int(d)) is not None


class TestVerdictHash:
    def test_same_seed_same_hash(self):
        h = []
        for _ in range(2):
            facade, src, dst = loadgen.build_world(8, 0.2, 256, seed=3)
            h.append(loadgen.verdict_hash(facade, src, dst, 256, 1000.0))
        assert h[0] == h[1]

    def test_different_seed_different_hash(self):
        facade_a, src_a, dst_a = loadgen.build_world(8, 0.2, 256, seed=3)
        facade_b, src_b, dst_b = loadgen.build_world(8, 0.2, 256, seed=4)
        assert (loadgen.verdict_hash(facade_a, src_a, dst_a, 256, 1000.0)
                != loadgen.verdict_hash(facade_b, src_b, dst_b, 256, 1000.0))


class TestOpenLoop:
    def test_small_run_completes_all_checks(self):
        facade, src, dst = loadgen.build_world(8, 0.1, 256, seed=1)
        result = loadgen.open_loop_run(facade, src, dst, rate=5000.0,
                                       duration=0.05, workers=2)
        assert result["checks"] == 250
        assert result["achieved_rate"] > 0
        assert result["late_max_ms"] >= 0

    def test_zero_duration_skips_the_phase(self):
        facade, src, dst = loadgen.build_world(8, 0.1, 256, seed=1)
        result = loadgen.open_loop_run(facade, src, dst, rate=5000.0,
                                       duration=0.0, workers=1)
        assert result["checks"] == 0


class TestCli:
    def test_determinism_only_run(self, capsys):
        assert loadgen.main(["--duration", "0", "--subscribers", "8",
                             "--flows", "256", "--hash-checks", "256"]) == 0
        out = capsys.readouterr().out
        assert "verdict stream: sha256=" in out

    def test_snapshot_and_schema_check_round_trip(self, tmp_path, capsys):
        out_file = tmp_path / "snap.json"
        args = ["--duration", "0.05", "--rate", "5000", "--subscribers", "8",
                "--flows", "256", "--hash-checks", "256"]
        assert loadgen.main(args + ["--out", str(out_file)]) == 0
        snapshot = json.loads(out_file.read_text())
        assert set(snapshot) >= {"config", "verdict_hash", "throughput",
                                 "metrics"}
        assert loadgen.main(args + ["--check-schema", str(out_file)]) == 0
        assert "schema check: ok" in capsys.readouterr().out

    def test_min_rate_gate_fails_when_unreachable(self, capsys):
        assert loadgen.main(["--duration", "0.05", "--rate", "1000",
                             "--subscribers", "8", "--flows", "256",
                             "--hash-checks", "64",
                             "--min-rate", "100000000"]) == 1
        assert "rate gate" in capsys.readouterr().err

    def test_committed_snapshot_schema_matches_a_fresh_run(self, capsys):
        committed = REPO_ROOT / "BENCH_service.json"
        assert committed.exists(), "BENCH_service.json must be committed"
        assert loadgen.main(["--duration", "0.05", "--rate", "5000",
                             "--subscribers", "8", "--flows", "256",
                             "--hash-checks", "64",
                             "--check-schema", str(committed)]) == 0
