"""Regression pins: the deduplicated attack builders must reproduce the
historical per-experiment inline code draw-for-draw.

Each legacy function below is a verbatim copy of the builder an experiment
used to carry privately (E3's spoofed flood, E4's pick-victim placement,
E12/E12b's shuffle placements).  The shared :mod:`repro.scenario.attacks`
versions must match them on identical topology + rng state.
"""

from repro.net import Flow, FlowSet
from repro.scenario import TopologySpec
from repro.scenario.attacks import (
    reflector_roles,
    spoofed_flood_flows,
    teardown_setup,
)
from repro.util.rng import derive_rng


def legacy_spoofed_flood_flows(topology, victim_asn, n_agents, rng):
    """E3's inline builder, pre-refactor (verbatim copy)."""
    stubs = [a for a in topology.stub_ases if a != victim_asn]
    all_ases = topology.as_numbers
    flows = FlowSet()
    for i in range(n_agents):
        agent = int(stubs[int(rng.integers(0, len(stubs)))])
        claimed = agent
        while claimed == agent:
            claimed = int(all_ases[int(rng.integers(0, len(all_ases)))])
        flows.add(Flow(agent, victim_asn, 1e6, kind="attack",
                       claimed_src_asn=claimed, tag=f"agent{i}"))
    return flows


def legacy_pick_victim_roles(topology, rng, n_agents, n_reflectors):
    """E4's inline placement, pre-refactor (verbatim copy)."""
    stubs = list(topology.stub_ases)
    victim_asn = int(stubs[int(rng.integers(0, len(stubs)))])
    others = [a for a in stubs if a != victim_asn]
    rng.shuffle(others)
    agents = others[:n_agents]
    reflectors = others[n_agents:n_agents + n_reflectors]
    spares = others[n_agents + n_reflectors:]
    return victim_asn, agents, reflectors, spares


def legacy_shuffle_roles(topology, rng, n_agents, n_reflectors):
    """E12's inline placement, pre-refactor (verbatim copy)."""
    stubs = list(topology.stub_ases)
    rng.shuffle(stubs)
    victim_asn = stubs[0]
    agents = stubs[1:1 + n_agents]
    reflectors = stubs[1 + n_agents:1 + n_agents + n_reflectors]
    return victim_asn, agents, reflectors


def legacy_shuffle_tail_roles(topology, rng, n_agents, n_reflectors):
    """E12b's inline placement, pre-refactor (verbatim copy)."""
    stubs = list(topology.stub_ases)
    rng.shuffle(stubs)
    victim_asn = stubs[0]
    agents = stubs[1:1 + n_agents]
    reflectors = stubs[-n_reflectors:]
    return victim_asn, agents, reflectors


TOPO = TopologySpec(kind="powerlaw", n=120, m=2).build(42)


class TestSpoofedFloodFlows:
    def test_pins_the_e3_inline_builder(self):
        victim = int(TOPO.stub_ases[3])
        new = spoofed_flood_flows(TOPO, victim, 50,
                                  derive_rng(42, "pin", 0))
        old = legacy_spoofed_flood_flows(TOPO, victim, 50,
                                         derive_rng(42, "pin", 0))
        assert [(f.src_asn, f.dst_asn, f.claimed_src_asn, f.tag)
                for f in new] == \
               [(f.src_asn, f.dst_asn, f.claimed_src_asn, f.tag)
                for f in old]


class TestReflectorRoles:
    def test_pick_victim_pins_the_e4_inline_placement(self):
        roles = reflector_roles(TOPO, derive_rng(42, "e4", 1), 20, 10,
                                style="pick-victim")
        victim, agents, reflectors, spares = legacy_pick_victim_roles(
            TOPO, derive_rng(42, "e4", 1), 20, 10)
        assert roles.victim_asn == victim
        assert list(roles.agent_asns) == [int(a) for a in agents]
        assert list(roles.reflector_asns) == [int(a) for a in reflectors]
        assert list(roles.spare_asns) == [int(a) for a in spares]

    def test_shuffle_pins_the_e12_inline_placement(self):
        roles = reflector_roles(TOPO, derive_rng(42, "e12"), 20, 10,
                                style="shuffle")
        victim, agents, reflectors = legacy_shuffle_roles(
            TOPO, derive_rng(42, "e12"), 20, 10)
        assert roles.victim_asn == victim
        assert list(roles.agent_asns) == [int(a) for a in agents]
        assert list(roles.reflector_asns) == [int(a) for a in reflectors]

    def test_shuffle_tail_pins_the_e12b_inline_placement(self):
        roles = reflector_roles(TOPO, derive_rng(42, "e12b"), 20, 10,
                                style="shuffle", reflectors_from_tail=True)
        victim, agents, reflectors = legacy_shuffle_tail_roles(
            TOPO, derive_rng(42, "e12b"), 20, 10)
        assert roles.victim_asn == victim
        assert list(roles.agent_asns) == [int(a) for a in agents]
        assert list(roles.reflector_asns) == [int(a) for a in reflectors]

    def test_styles_are_not_interchangeable(self):
        a = reflector_roles(TOPO, derive_rng(42, "x"), 20, 10,
                            style="pick-victim")
        b = reflector_roles(TOPO, derive_rng(42, "x"), 20, 10,
                            style="shuffle")
        assert (a.victim_asn, a.agent_asns) != (b.victim_asn, b.agent_asns)

    def test_unknown_style_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            reflector_roles(TOPO, derive_rng(42, "x"), 2, 2, style="cosmic")

    def test_roles_are_disjoint(self):
        roles = reflector_roles(TOPO, derive_rng(42, "x"), 20, 10)
        groups = ({roles.victim_asn}, set(roles.agent_asns),
                  set(roles.reflector_asns), set(roles.spare_asns))
        assert sum(len(g) for g in groups) == len(set().union(*groups))


class TestTeardownSetup:
    def test_e8_shape(self):
        from repro.net import Network

        net = Network(TopologySpec(kind="hierarchical", n_core=2,
                                   transit_per_core=2,
                                   stub_per_transit=5).build(42))
        victim, peers, attacker, pool = teardown_setup(net, n_peers=4)
        stubs = net.topology.stub_ases
        assert victim.asn == stubs[0]
        assert [p.asn for p in peers] == list(stubs[1:5])
        assert attacker.asn == stubs[5]
        assert pool.alive_count == 4
