"""Proactive source-address filtering baselines.

* :class:`IngressFiltering` — RFC 2267 [7]: a deploying AS drops packets
  *entering the network from its own customers* whose source address does
  not belong to the AS.  "rejects packets with a spoofed source address at
  the ingress of a network" (Sec. 3.2).  Effective exactly where the paper
  says: on paths between agents and reflectors, only if the *agent's* ISP
  deploys it.

* :class:`RouteBasedFiltering` — Park & Lee [15]: a deploying AS anywhere
  on the path checks whether the packet arrived on an interface consistent
  with shortest-path routing from its claimed source; inconsistent packets
  are dropped.  This is the scheme for which ~20% AS coverage already
  blocks most spoofed traffic — reproduced in experiment E3.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.mitigation.base import Mitigation
from repro.net.fluid import Flow, FluidFilter
from repro.net.link import Link
from repro.net.network import Network
from repro.net.node import Host, Router
from repro.net.packet import Packet

__all__ = ["IngressFiltering", "RouteBasedFiltering"]


class IngressFiltering(Mitigation):
    """RFC 2267 ingress filtering at the customer edge."""

    name = "ingress"

    def __init__(self) -> None:
        super().__init__()
        self.dropped = 0

    def deploy(self, network: Network, asns: Iterable[int]) -> None:
        for asn in asns:
            router = network.routers[asn]
            prefix = network.topology.prefix_of(asn)

            def filt(packet: Packet, router: Router, link: Optional[Link],
                     now: float, prefix=prefix) -> bool:
                # Only traffic entering from a directly attached host (the
                # "customer" side in the one-router-per-AS model) is checked;
                # transit traffic passes untouched — RFC 2267 semantics.
                if link is not None and isinstance(link.src, Host):
                    if not prefix.contains(packet.src):
                        self.dropped += 1
                        return False
                return True

            router.add_filter(self.name, filt)
            self.deployed_asns.add(asn)

    def fluid_filter(self) -> FluidFilter:
        mitigation = self

        class _Fluid:
            def pass_fraction(self, flow: Flow, asn: int, prev_asn, pos: int,
                              path: Sequence[int]) -> float:
                # at the source AS only: spoofed flows are caught at ingress
                if pos == 0 and asn in mitigation.deployed_asns and flow.spoofed:
                    return 0.0
                return 1.0

        return _Fluid()


class RouteBasedFiltering(Mitigation):
    """Park & Lee route-based distributed packet filtering."""

    name = "rbf"

    def __init__(self) -> None:
        super().__init__()
        self.dropped = 0

    def deploy(self, network: Network, asns: Iterable[int]) -> None:
        for asn in asns:
            router = network.routers[asn]
            prefix = network.topology.prefix_of(asn)
            table = network.routing[asn]

            def filt(packet: Packet, router: Router, link: Optional[Link],
                     now: float, prefix=prefix, table=table, asn=asn) -> bool:
                src_asn = network.topology.as_of(packet.src)
                if src_asn is None:
                    self.dropped += 1
                    return False  # bogon source
                if link is not None and isinstance(link.src, Host):
                    # locally injected: source must be local (ingress check)
                    if not prefix.contains(packet.src):
                        self.dropped += 1
                        return False
                    return True
                if src_asn == asn:
                    # claims to be our own address but arrived from outside
                    if link is not None:
                        self.dropped += 1
                        return False
                    return True
                ingress = router._ingress_asn(link)
                if ingress is None:
                    return True
                if ingress not in table.expected_ingress(src_asn):
                    self.dropped += 1
                    return False
                return True

            router.add_filter(self.name, filt)
            self.deployed_asns.add(asn)

    def fluid_filter(self) -> FluidFilter:
        mitigation = self

        class _Fluid:
            def __init__(self) -> None:
                self.fluid_net = None  # bound lazily on first use

            def pass_fraction(self, flow: Flow, asn: int, prev_asn, pos: int,
                              path: Sequence[int]) -> float:
                if asn not in mitigation.deployed_asns or not flow.spoofed:
                    return 1.0
                if self.fluid_net is None:
                    return 1.0
                claimed = flow.source_address_asn
                if pos == 0:
                    # locally injected with a foreign source: ingress check
                    return 0.0 if claimed != asn else 1.0
                expected = self.fluid_net.expected_ingress(asn, claimed)
                return 1.0 if prev_asn in expected else 0.0

        return _Fluid()

    def bind_fluid(self, fluid_net) -> FluidFilter:
        """Fluid filter bound to a concrete :class:`FluidNetwork` (needed
        for the expected-ingress computation)."""
        filt = self.fluid_filter()
        filt.fluid_net = fluid_net
        return filt
