"""Deployment scoping (paper Sec. 5.1).

"The network user may scope the deployment according to different criteria
(e.g. only on 'border routers of stub networks')."

A :class:`DeploymentScope` resolves declarative criteria (tiers, explicit
AS sets, exclusions, fractions) to the concrete set of ASes whose adaptive
devices should receive the service components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import DeploymentError
from repro.net.topology import ASRole, Topology
from repro.util.rng import derive_rng

__all__ = ["DeploymentScope"]


@dataclass(frozen=True)
class DeploymentScope:
    """Declarative selection of target ASes.

    * ``roles`` — restrict to tiers (e.g. ``(ASRole.STUB,)`` = the border
      routers of stub networks from the paper's example),
    * ``include`` / ``exclude`` — explicit AS adjustments,
    * ``fraction`` — partial deployment (incremental rollout, Sec. 5.1:
      "The infrastructure can be deployed incrementally"),
    * ``seed`` — determinism for fractional sampling.
    """

    roles: Optional[tuple[ASRole, ...]] = None
    include: frozenset[int] = frozenset()
    exclude: frozenset[int] = frozenset()
    fraction: float = 1.0
    seed: int = 0

    @classmethod
    def everywhere(cls) -> "DeploymentScope":
        return cls()

    @classmethod
    def stub_borders(cls, fraction: float = 1.0, seed: int = 0) -> "DeploymentScope":
        """The paper's canonical scope: border routers of stub networks."""
        return cls(roles=(ASRole.STUB,), fraction=fraction, seed=seed)

    @classmethod
    def explicit(cls, asns) -> "DeploymentScope":
        return cls(roles=(), include=frozenset(asns))

    def resolve(self, topology: Topology) -> set[int]:
        """The concrete AS set for this topology."""
        if not (0.0 <= self.fraction <= 1.0):
            raise DeploymentError(f"fraction must be in [0,1], got {self.fraction}")
        if self.roles is not None and len(self.roles) == 0:
            base: set[int] = set()
        elif self.roles is None:
            base = set(topology.as_numbers)
        else:
            base = {a for a in topology.as_numbers if topology.role_of(a) in self.roles}
        if self.fraction < 1.0 and base:
            rng = derive_rng(self.seed, "scope")
            ordered = sorted(base)
            k = int(round(self.fraction * len(ordered)))
            picked = rng.choice(len(ordered), size=k, replace=False) if k else []
            base = {ordered[i] for i in picked}
        base |= set(self.include)
        base -= set(self.exclude)
        unknown = base - set(topology.as_numbers)
        if unknown:
            raise DeploymentError(f"scope names unknown ASes: {sorted(unknown)[:5]}")
        return base
