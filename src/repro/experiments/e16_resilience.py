"""E16 — mitigation resilience under injected control-plane and device
faults (paper Secs. 4.5 and 5.1; DESIGN.md failure model).

The paper's availability story is qualitative: the service keeps working
while the TCSP is attacked (Sec. 5.1) and a failing device stays inside
its owner's mandate (Sec. 4.5).  E16 makes it quantitative by injecting
*scheduled, seeded* faults — adaptive-device crashes, control-message-loss
windows, NMS partitions, a TCSP outage — into a running TCS deployment
that is filtering a live UDP flood, and measuring

* mitigation effectiveness per sampling window (1 - attack leak / attack
  sent),
* recovery: the time after the last fault clears until effectiveness is
  back within 5% of the fault-free run (the self-healing loop: crashed
  devices restart *wiped*, the NMS watchdog detects the restart and
  anti-entropy re-installs the services),
* control-plane work: retries, message drops, direct-NMS failovers,
  reconciliations.

E16e/E16f extend the chaos to the control plane's *state*: the TCSP runs
as a replica set over a shared :mod:`~repro.core.storage` backend, and a
fault plan crashes the primary TCSP, one NMS shard and one storage
replica mid-run.  E16e contrasts process-local memory (the crashed
shard's desired state is wiped) with the replicated store (a promoted
standby and the restarted NMS reconcile back to full deployment — zero
permanently lost records after heal); E16f tracks the replica set's
convergence window by window.

All randomness derives from ``(cfg.seed, level)``, so the sweep is
byte-identical between :func:`run_all` and :func:`run_parallel`, and two
runs at the same seed produce identical tables.
"""

from __future__ import annotations

from typing import Optional

from repro.attack.flood import DirectFlood, TrafficGenerator
from repro.core import (
    ComponentGraph,
    DeploymentScope,
    InMemoryBackend,
    ReplicatedBackend,
)
from repro.core.components import HeaderFilter, HeaderMatch
from repro.core.storage import StorageBackend
from repro.errors import ControlPlaneUnavailable
from repro.experiments.common import ExperimentConfig, parallel_map, register
from repro.net import ASRole, Network, Packet, Protocol
from repro.net.faults import Fault, FaultInjector, FaultKind, FaultPlan
from repro.scenario import FaultSpec, TopologySpec
from repro.scenario.tcs import build_tcs_world
from repro.util.rng import derive_rng
from repro.util.tables import Table

__all__ = ["run", "sweep_table", "timeline_table", "control_path_table",
           "fail_policy_table", "shard_crash_table", "convergence_table"]

HORIZON = 4.0          #: simulated seconds per trial
WINDOW = 0.25          #: effectiveness sampling window
FLOOD_START = 0.2
FLOOD_DURATION = 3.4   #: flood outlives every fault (plan clears by ~3.2 s)
ATTACK_RATE_PPS = 300.0
LEGIT_RATE_PPS = 50.0
CONTROL_PERIOD = 0.4   #: period of the user's background control calls

#: fault intensity sweep: level name -> declarative fault schedule
LEVELS: tuple[tuple[str, FaultSpec], ...] = (
    ("none", FaultSpec()),
    ("light", FaultSpec(n_crashes=2)),
    ("moderate", FaultSpec(n_crashes=4, n_loss_windows=1, loss_rate=0.5,
                           n_partitions=1)),
    ("heavy", FaultSpec(n_crashes=8, n_loss_windows=2, loss_rate=0.8,
                        n_partitions=1, tcsp_outages=1)),
)


def _drop_attack_factory(device_ctx):
    """dst-owner stage: drop off-service UDP toward the subscriber."""
    graph = ComponentGraph("drop-attack-udp")
    graph.add(HeaderFilter("f", HeaderMatch(proto=Protocol.UDP)))
    return graph


def _world(seed: int, n_agents: int, n_legit: int, fail_policy: str):
    """A contracted, deployed, watched TCS world with a flood scheduled."""
    net = Network(TopologySpec(kind="hierarchical", n_core=2,
                               transit_per_core=2,
                               stub_per_transit=6).build(seed))
    world = build_tcs_world(net, n_isps=3, service=True, home_nms_index=0)
    tcsp, nmses, svc = world.tcsp, world.nmses, world.service
    stubs = net.topology.stub_ases
    victim_asn = world.owner_asn
    # filter close to the sources (Sec. 5.2): every stub border except the
    # victim's own, so a crashed source-side device has measurable impact
    scope = DeploymentScope(roles=(ASRole.STUB,),
                            exclude=frozenset({int(victim_asn)}))
    svc.deploy(scope, dst_graph_factory=_drop_attack_factory)

    victim = net.add_host(victim_asn)
    attacker_asns = [int(a) for a in stubs[1:1 + n_agents]]
    attackers = [net.add_host(a) for a in attacker_asns]
    legit_asns = [int(a) for a in stubs[1 + n_agents:1 + n_agents + n_legit]]
    legit_hosts = [net.add_host(a) for a in legit_asns]

    for nms in nmses:
        for device in nms.devices.values():
            device.fail_policy = fail_policy
        nms.start_watchdog()

    DirectFlood(net, attackers, victim, rate_pps=ATTACK_RATE_PPS,
                duration=FLOOD_DURATION, start=FLOOD_START, spoof="none",
                seed=seed).launch()
    for i, client in enumerate(legit_hosts):
        def factory(seq, now, client=client):
            return Packet.tcp_syn(client.address, victim.address, dport=80,
                                  kind="legit")
        TrafficGenerator(client, factory, LEGIT_RATE_PPS, start=FLOOD_START,
                         duration=FLOOD_DURATION,
                         seed=derive_rng(seed, "e16-legit", i)).install()
    return (net, tcsp, nmses, svc, victim, attacker_asns, legit_asns)


def _window_effs(samples: list[tuple], n_agents: int) -> list[tuple]:
    """Per-window (t_end, effectiveness | None, active_faults) from the
    cumulative samples; None where no attack traffic was due."""
    out = []
    for (t0, a0, _f0), (t1, a1, f1) in zip(samples, samples[1:]):
        lo = max(t0, FLOOD_START)
        hi = min(t1, FLOOD_START + FLOOD_DURATION)
        sent = n_agents * ATTACK_RATE_PPS * max(0.0, hi - lo)
        eff = None if sent <= 0 else max(0.0, 1.0 - (a1 - a0) / sent)
        out.append((t1, eff, f1))
    return out


def _run_level(point: tuple) -> dict:
    """One sweep point (top-level so parallel_map can pickle it)."""
    level, fault_spec, seed, n_agents, n_legit = point
    net, tcsp, nmses, svc, victim, attacker_asns, legit_asns = _world(
        seed, n_agents, n_legit, fail_policy="fail-open")
    plan = fault_spec.plan(
        seed, horizon=HORIZON, device_asns=attacker_asns,
        nms_ids=[n.isp_id for n in nmses[1:]])
    injector = FaultInjector(plan, net, tcsp=tcsp, nmses=nmses, seed=seed)
    injector.arm()

    samples: list[tuple] = [(0.0, 0, 0)]

    def sample() -> None:
        samples.append((net.sim.now, victim.received_by_kind.get("attack", 0),
                        len(injector.active)))

    net.sim.schedule_every(WINDOW, sample)

    def control_op() -> None:
        try:
            svc.read_logs()
        except ControlPlaneUnavailable:
            pass

    net.sim.schedule_every(CONTROL_PERIOD, control_op)
    net.run(until=HORIZON)

    windows = _window_effs(samples, n_agents)
    effs = [(t, e) for t, e, _f in windows if e is not None]
    during = [e for t, e in effs
              if plan.faults and plan.faults[0].start <= t <= plan.last_clear + WINDOW]
    after = [e for t, e in effs if t > plan.last_clear + WINDOW]
    channels = [tcsp.channel] + [n.channel for n in nmses]
    return {
        "level": level,
        "n_faults": len(plan),
        "last_clear": plan.last_clear,
        "windows": windows,
        "eff_during": (sum(during) / len(during)) if during else None,
        "eff_after": (sum(after) / len(after)) if after else None,
        "after_series": [(t, e) for t, e in effs if t > plan.last_clear],
        "retries": sum(c.stats.retries for c in channels),
        "msg_drops": injector.messages_dropped,
        "fallbacks": svc.fallback_used,
        "crashes": sum(d.crashes for n in nmses for d in n.devices.values()),
        "reconciliations": sum(n.reconciliations for n in nmses),
        "reinstalled": sum(n.services_reinstalled for n in nmses),
        "relay_failures": tcsp.nms_relay_failures,
    }


def _recovery_time(result: dict, eff_ref: float) -> Optional[float]:
    """Seconds from the last fault clearing until the first window whose
    effectiveness is back within 5% of the fault-free reference."""
    for t, e in result["after_series"]:
        if e is not None and e >= eff_ref - 0.05:
            return max(0.0, t - result["last_clear"])
    return None


def _sweep_points(cfg: ExperimentConfig) -> list[dict]:
    n_agents = cfg.scaled(6, minimum=3)
    n_legit = cfg.scaled(4, minimum=2)
    points = [(level, knobs, cfg.seed, n_agents, n_legit)
              for level, knobs in LEVELS]
    return parallel_map(_run_level, points, workers=cfg.workers)


def sweep_table(cfg: ExperimentConfig,
                results: Optional[list[dict]] = None) -> Table:
    table = Table(
        "E16a: mitigation effectiveness vs. injected fault intensity "
        "(Secs. 4.5/5.1)",
        ["fault_level", "faults", "crashes", "eff_during_faults",
         "eff_after_clear", "recovery_s", "recovered", "retries",
         "msg_drops", "failovers", "reinstalls"],
    )
    results = results if results is not None else _sweep_points(cfg)
    ref = next(r for r in results if r["level"] == "none")
    eff_ref = ref["eff_after"] if ref["eff_after"] is not None else 1.0
    for r in results:
        if r["level"] == "none":
            recovery, recovered = 0.0, True
        else:
            rec = _recovery_time(r, eff_ref)
            recovery = rec if rec is not None else -1.0
            recovered = (rec is not None
                         and r["eff_after"] is not None
                         and r["eff_after"] >= eff_ref - 0.05)
        table.add_row(
            r["level"], r["n_faults"], r["crashes"],
            round(r["eff_during"], 3) if r["eff_during"] is not None else "-",
            round(r["eff_after"], 3) if r["eff_after"] is not None else "-",
            round(recovery, 2), recovered, r["retries"], r["msg_drops"],
            r["fallbacks"], r["reinstalled"],
        )
    table.add_note("eff = 1 - (attack delivered / attack sent) per 0.25 s "
                   "window; 'during' averages windows overlapping the fault "
                   "schedule, 'after' the windows past the last clear")
    table.add_note("recovered = effectiveness back within 5% of the "
                   "fault-free run after the last fault clears (self-healing "
                   "via watchdog + anti-entropy re-install)")
    return table


def timeline_table(cfg: ExperimentConfig,
                   results: Optional[list[dict]] = None) -> Table:
    table = Table(
        "E16b: recovery timeline at the 'moderate' fault level",
        ["t_s", "effectiveness", "active_faults"],
    )
    results = results if results is not None else _sweep_points(cfg)
    moderate = next(r for r in results if r["level"] == "moderate")
    for t, eff, active in moderate["windows"]:
        if round(t / WINDOW) % 2 == 0:  # print every other window
            table.add_row(round(t, 2),
                          round(eff, 3) if eff is not None else "-", active)
    table.add_note(f"last injected fault clears at "
                   f"t={moderate['last_clear']:.2f}s; effectiveness dips "
                   f"while crashed (fail-open) devices leak, then returns "
                   f"once the watchdog re-installs wiped services")
    return table


def control_path_table(cfg: ExperimentConfig) -> Table:
    """Deterministic control-plane scenarios: who carries the call, and at
    what retry cost, as TCSP/NMS availability degrades."""
    table = Table(
        "E16c: control-plane path selection and retry cost (Sec. 5.1)",
        ["scenario", "deploy_ok", "devices", "path", "retries",
         "exhausted", "failovers", "relay_failures"],
    )

    def fresh(seed_off: int = 0):
        return _world(cfg.seed + seed_off, n_agents=3, n_legit=2,
                      fail_policy="fail-open")

    # 1: healthy — via TCSP
    net, tcsp, nmses, svc, victim, *_ = fresh()
    n_devices = sum(len(n.desired["acme"].target_asns)
                    for n in nmses if "acme" in n.desired)
    table.add_row("healthy", True, n_devices, "via TCSP",
                  tcsp.channel.stats.retries, tcsp.channel.stats.exhausted,
                  svc.fallback_used, tcsp.nms_relay_failures)
    # 2: TCSP down — retried, then automatic direct NMS + peer forwarding
    net, tcsp, nmses, svc, victim, *_ = fresh(1)
    tcsp.reachable = False
    scope = DeploymentScope(roles=(ASRole.STUB,),
                            exclude=frozenset({int(victim.asn)}))
    result = svc.deploy(scope, dst_graph_factory=_drop_attack_factory)
    table.add_row("TCSP under DDoS", bool(result),
                  sum(len(v) for v in result.values()),
                  "direct NMS + peers", tcsp.channel.stats.retries,
                  tcsp.channel.stats.exhausted, svc.fallback_used,
                  tcsp.nms_relay_failures)
    # 3: one NMS partitioned during a TCSP relay — skipped, then resynced
    net, tcsp, nmses, svc, victim, *_ = fresh(2)
    nmses[1].partitioned = True
    svc.set_active(False)
    partition_failures = tcsp.nms_relay_failures
    nmses[1].partitioned = False
    resynced = tcsp.resync()
    table.add_row(f"NMS partition (resynced {resynced} op)", True, n_devices,
                  "via TCSP, partitioned NMS skipped",
                  nmses[1].channel.stats.retries,
                  nmses[1].channel.stats.exhausted, svc.fallback_used,
                  partition_failures)
    table.add_note("'failovers' counts TrafficControlService falls to the "
                   "direct home-NMS path; 'relay_failures' counts TCSP->NMS "
                   "relays that exhausted their retries")
    return table


def fail_policy_table(cfg: ExperimentConfig) -> Table:
    """Sec. 4.5 while down: fail-open passes owned traffic unfiltered,
    fail-closed blocks it — measured during an injected crash window."""
    table = Table(
        "E16d: fail-open vs. fail-closed during a device crash (Sec. 4.5)",
        ["fail_policy", "attack_leaked_during_crash",
         "legit_delivered_during_crash", "attack_after_recovery",
         "legit_after_recovery"],
    )
    crash_at, restart_at, t_end = 1.0, 2.0, 3.0
    for policy in ("fail-open", "fail-closed"):
        net, tcsp, nmses, svc, victim, attacker_asns, legit_asns = _world(
            cfg.seed, n_agents=3, n_legit=2, fail_policy=policy)
        # crash the device at one attacker stub and one legit client stub
        targets = [attacker_asns[0], legit_asns[0]]
        devices = [net.routers[a].adaptive_device for a in targets]
        marks: dict[str, tuple[int, int]] = {}

        def snap(label: str) -> None:
            marks[label] = (victim.received_by_kind.get("attack", 0),
                            victim.received_by_kind.get("legit", 0))

        for device in devices:
            net.sim.schedule_at(crash_at, device.crash)
            net.sim.schedule_at(restart_at, device.restart)
        net.sim.schedule_at(crash_at, snap, "crash")
        net.sim.schedule_at(restart_at, snap, "restart")
        # watchdog reconciles within one heartbeat of the restart
        net.sim.schedule_at(restart_at + 0.5, snap, "recovered")
        net.run(until=t_end)
        snap("end")
        a_during = marks["restart"][0] - marks["crash"][0]
        l_during = marks["restart"][1] - marks["crash"][1]
        a_after = marks["end"][0] - marks["recovered"][0]
        l_after = marks["end"][1] - marks["recovered"][1]
        # due in each interval: the crashed stub's flood share, and ALL
        # legit clients' traffic (only one client's stub crashed)
        n_legit = len(legit_asns)
        expected_attack = ATTACK_RATE_PPS * (restart_at - crash_at)
        expected_legit = n_legit * LEGIT_RATE_PPS * (restart_at - crash_at)
        after_span = t_end - restart_at - 0.5
        table.add_row(
            policy, round(a_during / expected_attack, 3),
            round(l_during / expected_legit, 3),
            round(a_after / (ATTACK_RATE_PPS * after_span), 3),
            round(l_after / (n_legit * LEGIT_RATE_PPS * after_span), 3),
        )
    table.add_note("one attacker-stub and one client-stub device crash at "
                   "t=1 s and restart (wiped, Sec. 4.5) at t=2 s; ratios are "
                   "against the traffic due in each interval")
    table.add_note("fail-open leaks the crashed stub's attack but keeps "
                   "legit flowing; fail-closed blocks both until the "
                   "watchdog re-installs the services")
    return table


STORE_HORIZON = 3.0    #: simulated seconds for the E16e/E16f store trials


def _store_world(seed: int, backend: str):
    """A 3-ISP TCS world with a TCSP standby and a selectable storage
    backend (control plane only — no traffic; E16e/E16f measure state)."""
    net = Network(TopologySpec(kind="hierarchical", n_core=2,
                               transit_per_core=2,
                               stub_per_transit=6).build(seed))
    store: StorageBackend
    if backend == "replicated":
        replicated = ReplicatedBackend(3, seed=seed, replication_lag=0.02,
                                       sim=net.sim)
        replicated.start_anti_entropy(WINDOW)
        store = replicated
    else:
        store = InMemoryBackend()
    world = build_tcs_world(net, n_isps=3, service=True, home_nms_index=0,
                            store=store, tcsp_standbys=1)
    return net, world, store


def _run_store_point(point: tuple) -> dict:
    """One E16e backend trial (top-level so parallel_map can pickle it).

    Timeline: the service deploys at t=0; the primary TCSP is unreachable
    0.6-1.6 s (the replica set promotes the standby once the lease
    lapses); storage replica 1 is down 0.7-1.6 s; the ``isp-1`` NMS
    process crashes at 0.8 s — its volatile state dies with it — and
    restarts at 1.6 s, reconciling from whatever its desired-state store
    still holds.  Mid-crash control traffic (two activation toggles) keeps
    writes flowing through the degraded store; undelivered relays are
    resynced at 2.0 s.
    """
    backend, seed = point
    net, world, store = _store_world(seed, backend)
    tcsp, nmses, svc = world.tcsp, world.nmses, world.service
    scope = DeploymentScope(roles=(ASRole.STUB,),
                            exclude=frozenset({int(world.owner_asn)}))
    svc.deploy(scope, dst_graph_factory=_drop_attack_factory)

    def desired_count() -> int:
        return sum(1 for n in nmses if world.owner in n.desired)

    plan = FaultPlan([
        Fault(FaultKind.TCSP_OUTAGE, 0.6, 1.0),
        Fault(FaultKind.STORE_REPLICA_CRASH, 0.7, 0.9, (1,)),
        Fault(FaultKind.NMS_SHARD_CRASH, 0.8, 0.8, ("isp-1",)),
    ])
    replicated = isinstance(store, ReplicatedBackend)
    injector = FaultInjector(plan, net, tcsp=tcsp, nmses=nmses,
                             store=store if replicated else None, seed=seed)
    injector.arm()

    desired_deploy = desired_count()
    marks: dict[str, int] = {}
    timeline: list[tuple] = []

    def sample() -> None:
        timeline.append((
            net.sim.now,
            store.live_replicas if replicated else len(nmses),
            store.divergent_records() if replicated else 0,
            store.lost_writes if replicated else 0,
            store.repairs if replicated else 0,
            desired_count(),
        ))

    net.sim.schedule_every(WINDOW, sample)

    def toggle(active: bool) -> None:
        try:
            svc.set_active(active)
        except ControlPlaneUnavailable:
            pass

    def mark_during() -> None:
        marks["during"] = desired_count()

    resynced: list[int] = []
    net.sim.schedule_at(1.0, toggle, False)
    net.sim.schedule_at(1.2, mark_during)
    net.sim.schedule_at(1.3, toggle, True)
    net.sim.schedule_at(2.0, lambda: resynced.append(tcsp.resync()))
    net.run(until=STORE_HORIZON)
    if replicated:
        store.anti_entropy()
    return {
        "backend": backend,
        "durable": store.durable,
        "desired_deploy": desired_deploy,
        "desired_during": marks.get("during", 0),
        "desired_heal": desired_count(),
        "lost_in_crash": sum(n.desired_lost_in_crashes for n in nmses),
        "resynced": sum(resynced),
        "tcsp_failovers": tcsp.failovers,
        "relay_failures": tcsp.nms_relay_failures,
        "failover_writes": store.failover_writes if replicated else 0,
        "lost_writes": store.lost_writes if replicated else 0,
        "stale_reads": store.stale_reads if replicated else 0,
        "repairs": store.repairs if replicated else 0,
        "perm_lost": store.permanently_lost() if replicated else None,
        "timeline": timeline,
    }


def _store_points(cfg: ExperimentConfig) -> list[dict]:
    points = [(backend, cfg.seed) for backend in ("memory", "replicated")]
    return parallel_map(_run_store_point, points, workers=cfg.workers)


def shard_crash_table(cfg: ExperimentConfig,
                      results: Optional[list[dict]] = None) -> Table:
    table = Table(
        "E16e: desired-state survival across TCSP / NMS-shard / storage-"
        "replica crashes (Sec. 5.1)",
        ["backend", "durable", "desired_deploy", "desired_mid_crash",
         "desired_healed", "wiped", "resynced", "tcsp_failovers",
         "failover_writes", "lost_writes", "stale_reads", "perm_lost"],
    )
    results = results if results is not None else _store_points(cfg)
    for r in results:
        table.add_row(
            r["backend"], r["durable"], r["desired_deploy"],
            r["desired_during"], r["desired_heal"], r["lost_in_crash"],
            r["resynced"], r["tcsp_failovers"], r["failover_writes"],
            r["lost_writes"], r["stale_reads"],
            r["perm_lost"] if r["perm_lost"] is not None else "-",
        )
    table.add_note("desired_* counts NMSes whose desired-state store still "
                   "holds the subscriber's deployment; the isp-1 NMS process "
                   "crashes mid-run (its process-local state dies), the "
                   "primary TCSP is DDoSed (standby promoted on lease "
                   "expiry), and storage replica 1 is down for 0.9 s")
    table.add_note("the in-memory backend loses the crashed shard's desired "
                   "entry permanently ('wiped'); the replicated store "
                   "serves it from surviving replicas, so the restarted NMS "
                   "reconciles back to full deployment and perm_lost = 0")
    return table


def convergence_table(cfg: ExperimentConfig,
                      results: Optional[list[dict]] = None) -> Table:
    table = Table(
        "E16f: replicated-store consistency convergence under shard crashes",
        ["t_s", "live_replicas", "divergent", "lost_writes", "repairs",
         "desired_visible"],
    )
    results = results if results is not None else _store_points(cfg)
    r = next(x for x in results if x["backend"] == "replicated")
    for t, live, divergent, lost, repairs, desired in r["timeline"]:
        table.add_row(round(t, 2), live, divergent, lost, repairs, desired)
    table.add_note("divergent = records where a live replica lags the "
                   "newest live version; anti-entropy runs every 0.25 s and "
                   "repairs the crashed replica after its 1.6 s restart")
    table.add_note(f"permanently lost records after heal + final "
                   f"anti-entropy pass: {r['perm_lost']}")
    return table


@register("E16")
def run(cfg: ExperimentConfig) -> list[Table]:
    results = _sweep_points(cfg)
    store_results = _store_points(cfg)
    return [sweep_table(cfg, results), timeline_table(cfg, results),
            control_path_table(cfg), fail_policy_table(cfg),
            shard_crash_table(cfg, store_results),
            convergence_table(cfg, store_results)]
