"""E15 — the arms race: a vector-switching attacker vs. the reactive TCS
defender (paper Secs. 1 and 4.2).

"While attackers are able to exploit ... the flexibility of a huge number
of compromised hosts to construct new attack tools and variants, operators
of Internet servers are left without appropriate means" (Sec. 1) — unless
rules "can be installed, configured and activated instantly" (Sec. 4.2).

A three-phase campaign (reflector bounce, then spoofed UDP flood, then
forged-RST teardown) runs against (a) an undefended victim and (b) a
victim with a signature-based :class:`ReactiveDefender` that answers each
vector with the matching TCS deployment.  Reported per phase: mean attack
rate at the victim and the defender's reaction time.
"""

from __future__ import annotations

from repro.attack import Campaign, CampaignPhase, ConnectionPool
from repro.core.apps import ReactiveDefender
from repro.experiments.common import ExperimentConfig, register
from repro.net import Network
from repro.scenario import TopologySpec
from repro.scenario.tcs import build_tcs_world
from repro.util.tables import Table

__all__ = ["run", "arms_race_table"]

PHASES = [
    CampaignPhase("reflector", start=0.1, duration=0.5, rate_pps=250.0,
                  label="1: reflector bounce"),
    CampaignPhase("direct-spoofed", start=0.9, duration=0.5, rate_pps=250.0,
                  label="2: spoofed UDP flood"),
    CampaignPhase("rst-misuse", start=1.7, duration=0.4, rate_pps=80.0,
                  label="3: forged-RST teardown"),
]

SIGNATURE_OF_PHASE = {
    "1: reflector bounce": "reflection",
    "2: spoofed UDP flood": "udp-flood",
    "3: forged-RST teardown": "rst-storm",
}


def _run_once(cfg: ExperimentConfig, defended: bool):
    net = Network(TopologySpec(kind="hierarchical", n_core=2,
                               transit_per_core=2,
                               stub_per_transit=8).build(cfg.seed))
    stubs = net.topology.stub_ases
    victim = net.add_host(stubs[0])
    n_agents = cfg.scaled(5, minimum=3)
    agents = [net.add_host(a) for a in stubs[1:1 + n_agents]]
    reflectors = [net.add_host(a) for a in stubs[8:12]]
    defender = None
    if defended:
        world = build_tcs_world(net, owner="victim-co", owner_asn=victim.asn,
                                service=True)
        defender = ReactiveDefender(world.service, victim, threshold_pps=80.0)
    pool = ConnectionPool(victim)
    peers = [net.add_host(stubs[13]) for _ in range(10)]
    for peer in peers:
        pool.establish(peer)
    campaign = Campaign(net, victim, agents, reflectors, phases=list(PHASES),
                        seed=cfg.seed + 1)
    campaign.pool = pool
    campaign.run()
    return campaign, defender, pool


def arms_race_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E15: vector-switching attacker vs. reactive TCS defender "
        "(Secs. 1, 4.2)",
        ["phase", "attack_pps_undefended", "attack_pps_defended",
         "reaction_time_ms", "response"],
    )
    bare_campaign, _, bare_pool = _run_once(cfg, defended=False)
    tcs_campaign, defender, tcs_pool = _run_once(cfg, defended=True)
    bare = dict(bare_campaign.phase_report())
    defended = dict(tcs_campaign.phase_report())
    actions_by_sig = {a.signature: a for a in defender.actions}
    for phase in PHASES:
        label = phase.label
        signature = SIGNATURE_OF_PHASE[label]
        action = actions_by_sig.get(signature)
        reaction = (round((action.time - phase.start) * 1e3, 0)
                    if action else "not needed")
        response = action.response if action else "(covered by earlier rule)"
        table.add_row(label, round(bare[label], 1), round(defended[label], 1),
                      reaction, response)
    table.add_row("connections alive after phase 3",
                  bare_pool.alive_count, tcs_pool.alive_count, "-",
                  f"of {len(bare_pool.connections)}")
    table.add_note("the defender sees only packet headers at the victim "
                   "(no ground truth); each new vector is answered by one "
                   "TCS deployment within fractions of a second")
    return table


@register("E15")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [arms_race_table(cfg)]
