"""Compiled (flat-interval) LPM must agree with the trie bit for bit.

The compiled fast path is pure optimisation: these tests pin the contract
that no sequence of inserts, removes and lookups can ever make
``PrefixTable.lookup`` (auto-compiling), ``CompiledPrefixTable.lookup`` or
``lookup_many`` disagree with the reference trie walk.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.net import CompiledPrefixTable, Prefix, PrefixTable
from repro.net.addressing import _COMPILE_AFTER_LOOKUPS


def build_table(entries):
    t = PrefixTable()
    for v, length in entries:
        p = Prefix.make(v, length)
        t.insert(p, str(p))
    return t


entries_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=32),
    ),
    min_size=1, max_size=60,
)
queries_st = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=40)


class TestCompiledMatchesTrie:
    @given(entries=entries_st, queries=queries_st)
    @settings(max_examples=60)
    def test_scalar_lookup_matches(self, entries, queries):
        t = build_table(entries)
        compiled = t.compile()
        for q in queries:
            assert compiled.lookup(q) == t._lookup_trie(q)

    @given(entries=entries_st, queries=queries_st)
    @settings(max_examples=60)
    def test_lookup_many_matches_scalar(self, entries, queries):
        t = build_table(entries)
        compiled = t.compile()
        batch = compiled.lookup_many(np.array(queries, dtype=np.int64))
        assert list(batch) == [t._lookup_trie(q) for q in queries]

    @given(entries=entries_st, queries=queries_st,
           drop=st.data())
    @settings(max_examples=40)
    def test_matches_after_removals(self, entries, queries, drop):
        t = build_table(entries)
        prefixes = [p for p, _ in t.items()]
        to_remove = drop.draw(st.lists(st.sampled_from(prefixes), max_size=10))
        for p in to_remove:
            t.remove(p)
        compiled = t.compile()
        for q in queries:
            assert compiled.lookup(q) == t._lookup_trie(q)

    @given(entries=entries_st, queries=queries_st)
    @settings(max_examples=40)
    def test_auto_fast_path_transparent(self, entries, queries):
        """Hammering lookup() past the compile threshold changes nothing."""
        t = build_table(entries)
        expected = {q: t._lookup_trie(q) for q in queries}
        for _ in range(_COMPILE_AFTER_LOOKUPS + 1):
            t.lookup(queries[0])
        assert t._compiled is not None  # fast path engaged
        for q in queries:
            assert t.lookup(q) == expected[q]


class TestInvalidation:
    def test_insert_invalidates_compiled(self):
        t = PrefixTable()
        t.insert(Prefix.parse("10.0.0.0/8"), "coarse")
        assert t.compile().lookup("10.1.2.3") == "coarse"
        t.insert(Prefix.parse("10.1.0.0/16"), "fine")
        assert t._compiled is None
        assert t.compile().lookup("10.1.2.3") == "fine"

    def test_remove_invalidates_compiled(self):
        t = PrefixTable()
        t.insert(Prefix.parse("10.0.0.0/8"), "coarse")
        t.insert(Prefix.parse("10.1.0.0/16"), "fine")
        assert t.compile().lookup("10.1.2.3") == "fine"
        t.remove(Prefix.parse("10.1.0.0/16"))
        assert t.lookup("10.1.2.3") == "coarse"

    def test_version_bumps_on_mutation_only(self):
        t = PrefixTable()
        v0 = t.version
        t.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert t.version == v0 + 1
        t.lookup("10.0.0.1")
        assert t.version == v0 + 1
        t.remove(Prefix.parse("10.0.0.0/8"))
        assert t.version == v0 + 2
        # removing something absent is not a mutation
        t.remove(Prefix.parse("10.0.0.0/8"))
        assert t.version == v0 + 2

    def test_interleaved_insert_lookup_stays_correct(self):
        t = PrefixTable()
        for i in range(64):
            t.insert(Prefix((i + 1) << 16, 16), i)
            for j in range(i + 1):
                assert t.lookup(((j + 1) << 16) + 5) == j


class TestCompiledEdges:
    def test_empty_table(self):
        t = PrefixTable()
        compiled = t.compile()
        assert compiled.lookup("1.2.3.4") is None
        assert len(compiled) == 0
        assert list(compiled.lookup_many([0, 2**32 - 1])) == [None, None]

    def test_default_route_and_extremes(self):
        t = PrefixTable()
        t.insert(Prefix.parse("0.0.0.0/0"), "default")
        t.insert(Prefix.parse("255.255.255.255/32"), "top")
        compiled = t.compile()
        assert compiled.lookup(0) == "default"
        assert compiled.lookup(2**32 - 1) == "top"
        assert compiled.lookup(2**32 - 2) == "default"
        assert "1.2.3.4" in compiled
        assert len(compiled) == 2

    def test_identity_preserved(self):
        """Compiled lookups return the *same object* the trie stores."""
        t = PrefixTable()
        value = object()
        t.insert(Prefix.parse("10.0.0.0/8"), value)
        assert t.compile().lookup("10.1.2.3") is value

    def test_standalone_construction(self):
        t = PrefixTable()
        t.insert(Prefix.parse("10.0.0.0/8"), "x")
        compiled = CompiledPrefixTable(t)
        assert compiled.lookup("10.0.0.1") == "x"
        assert compiled.intervals >= 2


class TestCovering:
    def test_covering_walk(self):
        t = PrefixTable()
        t.insert(Prefix.parse("0.0.0.0/0"), "root")
        t.insert(Prefix.parse("10.0.0.0/8"), "eight")
        t.insert(Prefix.parse("10.1.0.0/16"), "sixteen")
        t.insert(Prefix.parse("11.0.0.0/8"), "other")
        covering = list(t.covering(Prefix.parse("10.1.2.0/24")))
        assert [v for _, v in covering] == ["root", "eight", "sixteen"]
        assert [p.length for p, _ in covering] == [0, 8, 16]

    def test_covering_includes_exact(self):
        t = PrefixTable()
        t.insert(Prefix.parse("10.1.0.0/16"), "me")
        assert [v for _, v in t.covering(Prefix.parse("10.1.0.0/16"))] == ["me"]

    def test_covering_excludes_more_specific(self):
        t = PrefixTable()
        t.insert(Prefix.parse("10.1.0.0/16"), "deep")
        assert list(t.covering(Prefix.parse("10.0.0.0/8"))) == []
