"""Shared utilities: deterministic RNG, units, token buckets, Bloom filters,
count sketches, summary statistics and plain-text result tables."""

from repro.util.rng import derive_rng, spawn_rngs
from repro.util.units import (
    BITS_PER_BYTE,
    Gbps,
    Kbps,
    Mbps,
    bits,
    bytes_to_bits,
    fmt_rate,
    ms,
    seconds,
    us,
)
from repro.util.tokenbucket import TokenBucket
from repro.util.bloom import BloomFilter
from repro.util.sketch import (
    CountingBloom,
    CountMinSketch,
    CountSketch,
    SpaceSaving,
)
from repro.util.stats import OnlineStats, WindowedCounter
from repro.util.tables import Table

__all__ = [
    "derive_rng",
    "spawn_rngs",
    "BITS_PER_BYTE",
    "bits",
    "bytes_to_bits",
    "Kbps",
    "Mbps",
    "Gbps",
    "seconds",
    "ms",
    "us",
    "fmt_rate",
    "TokenBucket",
    "BloomFilter",
    "CountMinSketch",
    "CountSketch",
    "CountingBloom",
    "SpaceSaving",
    "OnlineStats",
    "WindowedCounter",
    "Table",
]
