"""Probabilistic flow-statistics sketches: Count-Min, Count-Sketch,
SpaceSaving and a counting Bloom filter.

The paper's scalability argument (Sec. 5.3) is that device state scales
with *subscribers*, not with the host population.  Exact per-flow counting
breaks that claim under adversarial traffic: a DDoS attack with 100k
spoofed or real sources grows a ``Counter`` linearly with attacker fan-in.
The sketch family here makes per-flow statistics O(1) in the key
population — the same design point line-rate telemetry systems (OctoSketch
on DPDK) and per-sender accounting mboxes (MiddlePolice) rely on.

Design contract shared by every sketch:

* **Deterministic seeded hashing** — hash parameters derive from
  ``blake2b(seed)`` exactly like :mod:`repro.util.bloom`'s double hashing,
  so equal seeds give byte-equal tables across processes and platforms
  (the serial == ``parallel_map`` == process-pool guarantee).
* **Integer keys** — sketches hash ``int64``/``uint64`` keys, matching the
  packed flow keys the batched data plane already computes
  (:meth:`repro.net.packet.PacketBatch.flow_keys`).  Callers that key by
  richer tuples encode them first (see :mod:`repro.core.flowstats`).
* **Scalar and vectorised paths** — ``update(key, w)`` for per-packet
  code, ``update_batch(keys, weights)`` doing one NumPy scatter-add per
  row for the batched data plane.
* **Mergeability** — ``merge(other)`` combines same-shaped, same-seeded
  sketches by addition, so per-device sketches aggregate into one
  distributed view without shipping per-flow state.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from typing import Iterable, Optional, Union

import numpy as np

from repro.errors import ReproError

__all__ = ["CountMinSketch", "CountSketch", "CountingBloom", "SpaceSaving"]

_U64 = np.uint64
_MASK64 = (1 << 64) - 1

ArrayLike = Union[np.ndarray, Iterable[int]]


def _derive_multipliers(seed: int, salt: bytes, n: int) -> np.ndarray:
    """``n`` odd 64-bit multipliers derived from ``blake2b(seed, salt)``.

    Multiply-shift hashing (Dietzfelbinger et al.): with ``a`` odd and
    uniform, ``(a * x) >> (64 - log2 w)`` is universal over power-of-two
    table widths.  Oddness guarantees ``a`` is invertible mod 2^64.
    """
    out = np.empty(n, dtype=_U64)
    counter = 0
    produced = 0
    while produced < n:
        digest = hashlib.blake2b(
            counter.to_bytes(8, "little"), digest_size=32,
            salt=salt, key=seed.to_bytes(8, "little", signed=False)).digest()
        for off in range(0, 32, 8):
            if produced >= n:
                break
            out[produced] = int.from_bytes(digest[off:off + 8], "little") | 1
            produced += 1
        counter += 1
    return out


def _as_u64(keys: ArrayLike) -> np.ndarray:
    """Coerce a key column to uint64 (int64 inputs reinterpret bit-wise)."""
    arr = np.asarray(keys)
    if arr.dtype == _U64:
        return arr
    if arr.dtype.kind in "iu":
        return arr.astype(np.int64, copy=False).view(_U64)
    return np.array([int(k) & _MASK64 for k in arr.ravel().tolist()],
                    dtype=_U64)


def _as_i64_weights(weights, n: int) -> np.ndarray:
    if weights is None:
        return np.ones(n, dtype=np.int64)
    arr = np.asarray(weights)
    if arr.ndim == 0:
        return np.full(n, int(arr), dtype=np.int64)
    if len(arr) != n:
        raise ReproError(f"weights length {len(arr)} != keys length {n}")
    return arr.astype(np.int64, copy=False)


def _pow2_width(width: int) -> tuple[int, int]:
    """Round ``width`` up to a power of two; return (width, shift)."""
    if width <= 0:
        raise ReproError(f"sketch width must be > 0, got {width}")
    w = 1 << max(1, (width - 1).bit_length())
    return w, 64 - (w.bit_length() - 1)


class _HashedSketch:
    """Shared plumbing of the row-hashed sketches (CMS / Count-Sketch)."""

    __slots__ = ("width", "depth", "seed", "table", "total", "updates",
                 "_mult", "_shift")

    _SALT = b"sketch--"

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        if depth <= 0:
            raise ReproError(f"sketch depth must be > 0, got {depth}")
        self.width, self._shift = _pow2_width(width)
        self.depth = depth
        self.seed = seed
        self.table = np.zeros((depth, self.width), dtype=np.int64)
        #: total weight folded in (N in the epsilon*N error bound)
        self.total = 0
        #: number of update calls (scalar) / rows (batched) folded in
        self.updates = 0
        self._mult = _derive_multipliers(seed, self._SALT, depth)

    # ------------------------------------------------------------- hashing
    def _row_index(self, row: int, key_u64: int) -> int:
        return ((int(self._mult[row]) * key_u64) & _MASK64) >> self._shift

    def _indices(self, keys_u64: np.ndarray) -> np.ndarray:
        """(depth, n) index matrix — one multiply-shift per row."""
        shift = _U64(self._shift)
        return ((self._mult[:, None] * keys_u64[None, :]) >> shift
                ).astype(np.int64)

    # ------------------------------------------------------------ plumbing
    def _check_mergeable(self, other: "_HashedSketch") -> None:
        if (type(self) is not type(other) or self.width != other.width
                or self.depth != other.depth or self.seed != other.seed):
            raise ReproError(
                f"cannot merge {type(self).__name__}(w={self.width}, "
                f"d={self.depth}, seed={self.seed}) with "
                f"{type(other).__name__}(w={other.width}, d={other.depth}, "
                f"seed={other.seed})")

    @property
    def nbytes(self) -> int:
        """Bytes of counter state (the accuracy-vs-memory x-axis)."""
        return int(self.table.nbytes)

    def clear(self) -> None:
        self.table[:] = 0
        self.total = 0
        self.updates = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(width={self.width}, "
                f"depth={self.depth}, seed={self.seed}, total={self.total})")


class CountMinSketch(_HashedSketch):
    """Count-Min sketch (Cormode & Muthukrishnan): biased-up counts in
    ``depth x width`` int64 counters.

    Guarantee: ``estimate(k) >= true(k)`` always, and
    ``estimate(k) <= true(k) + eps * N`` with probability ``1 - delta``
    for ``width >= e / eps`` and ``depth >= ln(1 / delta)``, where ``N``
    is the total inserted weight.

    >>> cms = CountMinSketch.from_error(epsilon=0.01, delta=0.01, seed=7)
    >>> cms.update(42, 3)
    >>> cms.update_batch(np.array([42, 7]), np.array([2, 5]))
    >>> int(cms.estimate(42))
    5
    """

    __slots__ = ()

    @classmethod
    def from_error(cls, epsilon: float, delta: float,
                   seed: int = 0) -> "CountMinSketch":
        """Size the sketch for an ``eps * N`` error at confidence ``1-delta``."""
        if not (0.0 < epsilon < 1.0 and 0.0 < delta < 1.0):
            raise ReproError(
                f"invalid sketch parameters: epsilon={epsilon}, delta={delta}")
        return cls(width=int(math.ceil(math.e / epsilon)),
                   depth=int(math.ceil(math.log(1.0 / delta))), seed=seed)

    def update(self, key: int, w: int = 1) -> None:
        """Fold ``w`` of weight into ``key`` (per-packet scalar path)."""
        k = int(key) & _MASK64
        table = self.table
        for row in range(self.depth):
            table[row, self._row_index(row, k)] += w
        self.total += w
        self.updates += 1

    def update_batch(self, keys: ArrayLike,
                     weights: Optional[ArrayLike] = None) -> None:
        """One vectorised scatter-add per row over a key column."""
        keys_u64 = _as_u64(keys)
        n = len(keys_u64)
        if n == 0:
            return
        w = _as_i64_weights(weights, n)
        idx = self._indices(keys_u64)
        table = self.table
        for row in range(self.depth):
            np.add.at(table[row], idx[row], w)
        self.total += int(w.sum())
        self.updates += n

    def estimate(self, key: int) -> int:
        """Point estimate: min over rows (never under the true count)."""
        k = int(key) & _MASK64
        return int(min(self.table[row, self._row_index(row, k)]
                       for row in range(self.depth)))

    def estimate_batch(self, keys: ArrayLike) -> np.ndarray:
        keys_u64 = _as_u64(keys)
        if len(keys_u64) == 0:
            return np.zeros(0, dtype=np.int64)
        idx = self._indices(keys_u64)
        rows = np.arange(self.depth)[:, None]
        return self.table[rows, idx].min(axis=0)

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Fold ``other`` in (tables add; the estimate bound adds too)."""
        self._check_mergeable(other)
        self.table += other.table
        self.total += other.total
        self.updates += other.updates
        return self


class CountSketch(_HashedSketch):
    """Count-Sketch (Charikar, Chen & Farach-Colton): signed updates, so
    collisions cancel in expectation and the median-of-rows estimate is
    **unbiased** (errors swing both ways, unlike Count-Min's overestimate).

    The sign hash is the top bit of a second multiply-shift over the same
    key, independent of the index hash.
    """

    __slots__ = ("_sign_mult",)

    _SALT = b"csketch-"

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        super().__init__(width, depth, seed)
        self._sign_mult = _derive_multipliers(seed, b"csketch+", depth)

    @classmethod
    def from_error(cls, epsilon: float, delta: float,
                   seed: int = 0) -> "CountSketch":
        """Size for ``eps * ||f||_2`` error at confidence ``1 - delta``."""
        if not (0.0 < epsilon < 1.0 and 0.0 < delta < 1.0):
            raise ReproError(
                f"invalid sketch parameters: epsilon={epsilon}, delta={delta}")
        return cls(width=int(math.ceil(3.0 / epsilon ** 2)),
                   depth=int(math.ceil(math.log(3.0 / delta))), seed=seed)

    def _row_sign(self, row: int, key_u64: int) -> int:
        return 1 if ((int(self._sign_mult[row]) * key_u64) & _MASK64) >> 63 \
            else -1

    def _signs(self, keys_u64: np.ndarray) -> np.ndarray:
        """(depth, n) matrix of +/-1 signs."""
        bits = (self._sign_mult[:, None] * keys_u64[None, :]) >> _U64(63)
        return bits.astype(np.int64) * 2 - 1

    def update(self, key: int, w: int = 1) -> None:
        k = int(key) & _MASK64
        table = self.table
        for row in range(self.depth):
            table[row, self._row_index(row, k)] += self._row_sign(row, k) * w
        self.total += w
        self.updates += 1

    def update_batch(self, keys: ArrayLike,
                     weights: Optional[ArrayLike] = None) -> None:
        keys_u64 = _as_u64(keys)
        n = len(keys_u64)
        if n == 0:
            return
        w = _as_i64_weights(weights, n)
        idx = self._indices(keys_u64)
        signed = self._signs(keys_u64) * w[None, :]
        table = self.table
        for row in range(self.depth):
            np.add.at(table[row], idx[row], signed[row])
        self.total += int(w.sum())
        self.updates += n

    def estimate(self, key: int) -> int:
        k = int(key) & _MASK64
        votes = sorted(
            self._row_sign(row, k) * int(self.table[row, self._row_index(row, k)])
            for row in range(self.depth))
        mid = len(votes) // 2
        if len(votes) % 2:
            return votes[mid]
        # even depth: round the two-middle mean toward zero (stays integral)
        return int((votes[mid - 1] + votes[mid]) / 2)

    def estimate_batch(self, keys: ArrayLike) -> np.ndarray:
        keys_u64 = _as_u64(keys)
        if len(keys_u64) == 0:
            return np.zeros(0, dtype=np.int64)
        idx = self._indices(keys_u64)
        rows = np.arange(self.depth)[:, None]
        votes = self.table[rows, idx] * self._signs(keys_u64)
        med = np.median(votes, axis=0)
        return np.trunc(med).astype(np.int64)

    def merge(self, other: "CountSketch") -> "CountSketch":
        self._check_mergeable(other)
        self.table += other.table
        self.total += other.total
        self.updates += other.updates
        return self


class CountingBloom:
    """Counting Bloom filter: ``k`` hash functions into **one** shared
    counter array (vs Count-Min's ``k`` independent rows).

    The min over a key's ``k`` cells upper-bounds its true count, like
    Count-Min, but all hash functions share one array, so cross-function
    collisions make it strictly less accurate than a CMS of equal memory —
    the instructive middle point between a membership Bloom filter
    (:class:`repro.util.bloom.BloomFilter`) and the sketches.
    """

    __slots__ = ("n_cells", "n_hashes", "seed", "cells", "total", "updates",
                 "_mult", "_shift")

    def __init__(self, n_cells: int, n_hashes: int = 4, seed: int = 0) -> None:
        if n_hashes <= 0:
            raise ReproError(f"n_hashes must be > 0, got {n_hashes}")
        self.n_cells, self._shift = _pow2_width(n_cells)
        self.n_hashes = n_hashes
        self.seed = seed
        self.cells = np.zeros(self.n_cells, dtype=np.int64)
        self.total = 0
        self.updates = 0
        self._mult = _derive_multipliers(seed, b"cbloom--", n_hashes)

    def _indices(self, keys_u64: np.ndarray) -> np.ndarray:
        shift = _U64(self._shift)
        return ((self._mult[:, None] * keys_u64[None, :]) >> shift
                ).astype(np.int64)

    def update(self, key: int, w: int = 1) -> None:
        k = _U64(int(key) & _MASK64)
        idx = ((self._mult * k) >> _U64(self._shift)).astype(np.int64)
        # a key's hash functions may collide on a cell; count each cell once
        self.cells[np.unique(idx)] += w
        self.total += w
        self.updates += 1

    def update_batch(self, keys: ArrayLike,
                     weights: Optional[ArrayLike] = None) -> None:
        keys_u64 = _as_u64(keys)
        n = len(keys_u64)
        if n == 0:
            return
        w = _as_i64_weights(weights, n)
        idx = self._indices(keys_u64)
        cells = self.cells
        # per-key dedup would cost a sort per key; collisions of one key's
        # own hash functions are handled by updating each hash row once and
        # skipping rows that repeat an earlier row's cell for that key
        seen = np.zeros((self.n_hashes, n), dtype=bool)
        for row in range(self.n_hashes):
            for prev in range(row):
                seen[row] |= idx[row] == idx[prev]
        for row in range(self.n_hashes):
            fresh = ~seen[row]
            if fresh.all():
                np.add.at(cells, idx[row], w)
            else:
                np.add.at(cells, idx[row][fresh], w[fresh])
        self.total += int(w.sum())
        self.updates += n

    def estimate(self, key: int) -> int:
        k = _U64(int(key) & _MASK64)
        idx = ((self._mult * k) >> _U64(self._shift)).astype(np.int64)
        return int(self.cells[idx].min())

    def estimate_batch(self, keys: ArrayLike) -> np.ndarray:
        keys_u64 = _as_u64(keys)
        if len(keys_u64) == 0:
            return np.zeros(0, dtype=np.int64)
        return self.cells[self._indices(keys_u64)].min(axis=0)

    def __contains__(self, key: int) -> bool:
        return self.estimate(int(key)) > 0

    def merge(self, other: "CountingBloom") -> "CountingBloom":
        if (self.n_cells != other.n_cells or self.n_hashes != other.n_hashes
                or self.seed != other.seed):
            raise ReproError("cannot merge differently-shaped CountingBlooms")
        self.cells += other.cells
        self.total += other.total
        self.updates += other.updates
        return self

    @property
    def nbytes(self) -> int:
        return int(self.cells.nbytes)

    def clear(self) -> None:
        self.cells[:] = 0
        self.total = 0
        self.updates = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CountingBloom(cells={self.n_cells}, k={self.n_hashes}, "
                f"seed={self.seed}, total={self.total})")


class SpaceSaving:
    """SpaceSaving heavy-hitter tracker (Metwally, Agrawal & El Abbadi).

    Keeps at most ``capacity`` monitored keys with counts and per-key
    error bounds: ``count - error <= true <= count``.  Any key whose true
    weight exceeds ``total / capacity`` is guaranteed to be monitored —
    the property the trigger app's per-offending-source stream relies on.

    Updates are O(1) amortised for monitored keys and O(log capacity) on
    an eviction: victim selection uses a lazy min-heap of ``(count, key)``
    entries (stale entries are discarded on pop, and the heap is compacted
    once it outgrows the live set by a constant factor).
    """

    __slots__ = ("capacity", "counts", "errors", "total", "updates", "_heap")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ReproError(f"SpaceSaving capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.counts: dict[int, int] = {}
        self.errors: dict[int, int] = {}
        self.total = 0
        self.updates = 0
        # lazy heap over (count, key); superset of the live pairs in counts
        self._heap: list[tuple[int, int]] = []

    def _push(self, key: int, count: int) -> None:
        heap = self._heap
        heapq.heappush(heap, (count, key))
        if len(heap) > 8 * self.capacity + 64:
            self._heap = [(c, k) for k, c in self.counts.items()]
            heapq.heapify(self._heap)

    def _pop_min(self) -> tuple[int, int]:
        """The live minimum ``(count, key)`` pair, removed from the heap.

        A key's count only grows while monitored, so any heap entry
        smaller than the live pair is stale and can be dropped; ties on
        count break toward the smaller key, making eviction (hence the
        tracked set) order-independent given equal multisets of updates.
        """
        counts = self.counts
        heap = self._heap
        while True:
            count, key = heap[0]
            if counts.get(key) == count:
                heapq.heappop(heap)
                return count, key
            heapq.heappop(heap)

    def update(self, key: int, w: int = 1) -> None:
        key = int(key) & _MASK64  # canonical uint64 view, like the hashes
        counts = self.counts
        current = counts.get(key)
        if current is not None:
            counts[key] = current + w
            self._push(key, current + w)
        elif len(counts) < self.capacity:
            counts[key] = w
            self.errors[key] = 0
            self._push(key, w)
        else:
            floor, victim = self._pop_min()
            counts.pop(victim)
            self.errors.pop(victim)
            counts[key] = floor + w
            self.errors[key] = floor
            self._push(key, floor + w)
        self.total += w
        self.updates += 1

    def update_batch(self, keys: ArrayLike,
                     weights: Optional[ArrayLike] = None) -> None:
        """Aggregate the batch per key, then apply in sorted-key order.

        Aggregation keeps the eviction loop off the per-packet path; the
        sorted order makes batched updates deterministic regardless of the
        batch's internal packet order.
        """
        arr = _as_u64(keys)
        n = len(arr)
        if n == 0:
            return
        w = _as_i64_weights(weights, n)
        uniq, inverse = np.unique(arr, return_inverse=True)
        sums = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(sums, inverse, w)
        for key, weight in zip(uniq.tolist(), sums.tolist()):
            self.update(key, weight)
        self.updates += n - len(uniq)  # update() counted one per unique key

    def estimate(self, key: int) -> int:
        """Upper-bound count for ``key`` (0 if not monitored)."""
        return self.counts.get(int(key) & _MASK64, 0)

    def guaranteed(self, key: int) -> int:
        """Lower-bound count: ``count - error``."""
        key = int(key) & _MASK64
        return self.counts.get(key, 0) - self.errors.get(key, 0)

    def top(self, n: Optional[int] = None) -> list[tuple[int, int]]:
        """``(key, count)`` pairs, heaviest first (key-ascending ties)."""
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked if n is None else ranked[:n]

    def heavy_hitters(self, phi: float) -> list[tuple[int, int]]:
        """Keys whose *guaranteed* count exceeds ``phi * total``."""
        threshold = phi * self.total
        return [(k, c) for k, c in self.top()
                if c - self.errors[k] > threshold]

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Fold ``other`` in (capacity stays; error bounds still hold).

        Standard pairwise merge: counts add where both monitor a key, and
        a key monitored by only one side inherits the other side's minimum
        count as additional error headroom.  The result keeps the
        ``count - error <= true <= count`` invariant.
        """
        if self.capacity != other.capacity:
            raise ReproError("cannot merge SpaceSaving of different capacity")
        self_min = min(self.counts.values(), default=0) \
            if len(self.counts) >= self.capacity else 0
        other_min = min(other.counts.values(), default=0) \
            if len(other.counts) >= other.capacity else 0
        merged: dict[int, int] = {}
        errors: dict[int, int] = {}
        for key in sorted(set(self.counts) | set(other.counts)):
            mine = self.counts.get(key)
            theirs = other.counts.get(key)
            count = (mine if mine is not None else self_min) + \
                    (theirs if theirs is not None else other_min)
            err = (self.errors.get(key, self_min)
                   + other.errors.get(key, other_min))
            merged[key] = count
            errors[key] = err
        keep = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))
        keep = keep[:self.capacity]
        self.counts = dict(keep)
        self.errors = {k: errors[k] for k, _ in keep}
        self._heap = [(c, k) for k, c in self.counts.items()]
        heapq.heapify(self._heap)
        self.total += other.total
        self.updates += other.updates
        return self

    @property
    def nbytes(self) -> int:
        """Approximate state size: two 8-byte words per monitored slot."""
        return self.capacity * 16

    def clear(self) -> None:
        self.counts.clear()
        self.errors.clear()
        self._heap.clear()
        self.total = 0
        self.updates = 0

    def __len__(self) -> int:
        return len(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpaceSaving(capacity={self.capacity}, "
                f"monitored={len(self.counts)}, total={self.total})")
