#!/usr/bin/env python3
"""Distributed firewall: protect long-lived TCP sessions from forged
teardown packets (paper Secs. 2.1 and 4.3).

A B2B portal keeps persistent TCP connections to its partners.  An
attacker injects spoofed TCP RST packets naming the partners' addresses —
each one tears down a connection.  The portal's owner deploys two
firewall rules through the traffic control service; the forged packets
now die inside the network, and the owner reads the drop logs remotely.

Run:  python examples/distributed_firewall.py
"""

from repro.attack import ConnectionPool, ProtocolMisuseAttack
from repro.core import DeploymentScope, NumberAuthority, Tcsp, TrafficControlService
from repro.core.apps import DistributedFirewallApp, FirewallRule
from repro.net import Network, TopologyBuilder


def build_world(defended: bool):
    network = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=21))
    stubs = network.topology.stub_ases
    portal = network.add_host(stubs[0])
    partners = [network.add_host(a) for a in stubs[1:6]]
    attacker = network.add_host(stubs[6])
    pool = ConnectionPool(portal)
    for partner in partners:
        pool.establish(partner)

    firewall = None
    if defended:
        authority = NumberAuthority()
        tcsp = Tcsp("TCSP", authority, network)
        tcsp.contract_isp("world-isp", network.topology.as_numbers)
        prefix = network.topology.prefix_of(portal.asn)
        authority.record_allocation(prefix, "b2b-portal")
        user, cert = tcsp.register_user("b2b-portal", [prefix])
        service = TrafficControlService(tcsp, user, cert)
        firewall = DistributedFirewallApp(
            service,
            rules=[FirewallRule.block_teardown_rst(),
                   FirewallRule.block_icmp_unreachable()],
            with_logging=True,
        )
        firewall.deploy(DeploymentScope.everywhere())

    ProtocolMisuseAttack(network, attacker, pool, rate_pps=40.0,
                         duration=0.5, mode="rst", seed=5).launch()
    network.run(until=1.0)
    return pool, firewall, (firewall.service if firewall else None)


def main() -> None:
    print("=== without the distributed firewall ===")
    pool, _, _ = build_world(defended=False)
    print(f"  connections surviving the RST attack: "
          f"{pool.alive_count}/{len(pool.connections)}")

    print()
    print("=== with TCS firewall rules (block-rst, block-icmp-unreach) ===")
    pool, firewall, service = build_world(defended=True)
    print(f"  connections surviving the RST attack: "
          f"{pool.alive_count}/{len(pool.connections)}")
    print(f"  forged packets dropped in-network   : {firewall.dropped()}")
    logs = service.read_logs()
    print(f"  log entries readable via the TCSP   : {len(logs)}")


if __name__ == "__main__":
    main()
