"""Distributed traffic statistics (paper Secs. 1, 4.4 and 4.6).

"new ways of collecting traffic statistics" / "customers ... that want to
gather distributed traffic statistics for their sites" — the owner deploys
statistics collectors across the network and aggregates them into a
traffic matrix: where does my traffic come from, by which protocol, at
which rates, observed *inside* the network rather than only at the uplink.

The per-flow store behind each collector is pluggable
(:mod:`repro.core.flowstats`): the default ``exact`` backend keeps the
historical byte-identical ``Counter`` semantics, while the sketch
backends cap device state at O(1) regardless of attacker fan-in — the
Sec. 5.3 scalability stance ("rules scale with subscribers, not hosts")
applied to the statistics service itself.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.core.components import Capabilities, Component, ComponentContext, Verdict
from repro.core.device import DeviceContext
from repro.core.deployment import DeploymentScope
from repro.core.flowstats import FlowStatsBackend, make_flow_stats
from repro.core.graph import ComponentGraph
from repro.core.service import TrafficControlService
from repro.net.packet import Packet, PacketBatch, Protocol
from repro.obs.metrics import declare

__all__ = [
    "TrafficMatrixCollector", "DistributedStatisticsApp", "TrafficReport",
    "encode_flow_key", "decode_flow_key",
]

_SKETCH_UPDATES = declare(
    "stats.sketch.updates", "counter", labels=("asn",),
    help="flow-key observations folded into the statistics backend")
_SKETCH_BYTES = declare(
    "stats.sketch.bytes", "gauge", labels=("asn",),
    help="bytes of per-flow statistics state across the AS's collectors")
_RESOLVER_HITS = declare(
    "stats.resolver_cache_hits", "counter", labels=("asn",),
    help="source-AS resolutions served from the collector's LRU")
_RESOLVER_MISSES = declare(
    "stats.resolver_cache_misses", "counter", labels=("asn",),
    help="source-AS resolutions that went to the prefix table")

#: AS number field of an encoded flow key meaning "no AS owns this source".
_NO_ASN = 0xFFFFFFFF


def encode_flow_key(src_asn: int, proto_value: int) -> int:
    """Pack ``(source AS, protocol number)`` into one integer sketch key."""
    return ((src_asn & _NO_ASN) << 8) | (proto_value & 0xFF)


def decode_flow_key(key: int) -> tuple[int, str]:
    """Inverse of :func:`encode_flow_key` — ``(src_asn, proto_name)``."""
    asn = key >> 8
    return (-1 if asn == _NO_ASN else asn), Protocol(key & 0xFF).name


class TrafficMatrixCollector(Component):
    """Per-device collector of (source AS x protocol) packet/byte counts.

    ``backend`` picks the flow-statistics store ("exact" | "bloom" |
    "cmsketch" | "countsketch", or a ready
    :class:`~repro.core.flowstats.FlowStatsBackend`).  ``resolver`` maps a
    source address to its AS (memoized through a small LRU);
    ``resolver_many`` is the optional vectorised form used by the batched
    path (e.g. ``Topology.as_of_many``).
    """

    capabilities = Capabilities(extra_traffic_bps=2_000.0)
    batch_capable = True

    def __init__(self, name: str = "traffic-matrix", resolver=None,
                 backend: Union[str, FlowStatsBackend] = "exact",
                 resolver_many=None, seed: int = 0,
                 resolver_cache: int = 1024, **backend_params) -> None:
        super().__init__(name)
        #: maps an address value to an AS number (injected at deploy time)
        self.resolver = resolver
        #: vectorised resolver over an int64 address column (optional)
        self.resolver_many = resolver_many
        self.stats: FlowStatsBackend = make_flow_stats(
            backend, seed=seed, **backend_params)
        self.first_seen: Optional[float] = None
        self.last_seen: Optional[float] = None
        self._cache: OrderedDict[int, int] = OrderedDict()
        self._cache_cap = max(0, resolver_cache)
        self._m_updates = self._m_bytes = None
        self._m_hits = self._m_misses = None
        self._published_bytes = 0

    # ------------------------------------------------------------- resolving
    def _bind_metrics(self, asn: int) -> None:
        # several collectors on one device share the asn series, so a
        # late binder must join the running total, not zero it
        label = str(asn)
        self._m_updates = _SKETCH_UPDATES.labelled(fresh=False, asn=label)
        self._m_bytes = _SKETCH_BYTES.labelled(fresh=False, asn=label)
        self._m_hits = _RESOLVER_HITS.labelled(fresh=False, asn=label)
        self._m_misses = _RESOLVER_MISSES.labelled(fresh=False, asn=label)

    def _publish_state_bytes(self) -> None:
        # the gauge aggregates all collectors on the series: publish this
        # collector's growth as a delta so the sum stays order-independent
        state = self.stats.state_bytes()
        self._m_bytes.value += state - self._published_bytes
        self._published_bytes = state

    def _resolve(self, addr: int) -> int:
        """Source AS of ``addr`` through the memoizing LRU."""
        if self.resolver is None:
            return -1
        cache = self._cache
        asn = cache.get(addr)
        if asn is not None:
            cache.move_to_end(addr)
            self._m_hits.value += 1
            return asn
        self._m_misses.value += 1
        resolved = self.resolver(addr)
        asn = -1 if resolved is None else int(resolved)
        if self._cache_cap:
            cache[addr] = asn
            if len(cache) > self._cache_cap:
                cache.popitem(last=False)
        return asn

    # ------------------------------------------------------------ processing
    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        if self._m_updates is None:
            self._bind_metrics(ctx.asn)
        src_asn = self._resolve(int(packet.src))
        self.stats.add(encode_flow_key(src_asn, packet.proto.value),
                       1, packet.size)
        self._m_updates.value += 1
        self._publish_state_bytes()
        if self.first_seen is None:
            self.first_seen = ctx.now
        self.last_seen = ctx.now
        return Verdict.PASS

    def process_batch(self, batch: PacketBatch, rows: np.ndarray,
                      ctx: ComponentContext) -> None:
        """Vectorised :meth:`process` over the selected batch rows: one
        resolver call and one backend update per sub-batch."""
        n = len(rows)
        if n == 0:
            return
        if self._m_updates is None:
            self._bind_metrics(ctx.asn)
        srcs = batch.src[rows]
        if self.resolver_many is not None:
            asns = np.asarray(self.resolver_many(srcs), dtype=np.int64)
        elif self.resolver is not None:
            asns = np.fromiter((self._resolve(int(a)) for a in srcs),
                               dtype=np.int64, count=n)
        else:
            asns = np.full(n, -1, dtype=np.int64)
        keys = (((asns.view(np.uint64) & np.uint64(_NO_ASN)) << np.uint64(8))
                | (batch.proto[rows].view(np.uint64) & np.uint64(0xFF)))
        self.stats.add_batch(keys, nbytes=batch.size[rows])
        self._m_updates.value += n
        self._publish_state_bytes()
        if self.first_seen is None:
            self.first_seen = ctx.now
        self.last_seen = ctx.now

    # ----------------------------------------------------------- legacy view
    @property
    def packets(self) -> Counter:
        """(src asn, proto name) -> packets, in first-seen order.

        A decoded view over the backend; with the exact backend this is
        content- and order-identical to the historical ``Counter``
        attribute.  Sketch backends enumerate tracked heavy hitters only.
        """
        return Counter({decode_flow_key(k): p
                        for k, p, _b in self.stats.items()})

    @property
    def bytes(self) -> Counter:
        return Counter({decode_flow_key(k): b
                        for k, _p, b in self.stats.items()})

    @property
    def resolver_cache_hits(self) -> int:
        return self._m_hits.value if self._m_hits is not None else 0

    @property
    def resolver_cache_misses(self) -> int:
        return self._m_misses.value if self._m_misses is not None else 0


@dataclass
class TrafficReport:
    """Aggregated view over all devices."""

    packets_by_src_asn: dict[int, int] = field(default_factory=dict)
    bytes_by_src_asn: dict[int, int] = field(default_factory=dict)
    packets_by_proto: dict[str, int] = field(default_factory=dict)
    observation_points: int = 0
    duration: float = 0.0
    state_bytes: int = 0

    def top_sources(self, n: int = 5) -> list[tuple[int, int]]:
        """(src asn, bytes) of the heaviest sources."""
        return sorted(self.bytes_by_src_asn.items(),
                      key=lambda kv: -kv[1])[:n]

    def rate_bps(self, src_asn: Optional[int] = None) -> float:
        if self.duration <= 0:
            return 0.0
        if src_asn is None:
            total = sum(self.bytes_by_src_asn.values())
        else:
            total = self.bytes_by_src_asn.get(src_asn, 0)
        return total * 8 / self.duration


class DistributedStatisticsApp:
    """Deploy traffic-matrix collectors and aggregate their counters.

    ``backend`` (+ ``backend_params``) selects the per-device flow store;
    the exact default reproduces the historical reports byte-for-byte.
    """

    def __init__(self, service: TrafficControlService,
                 backend: str = "exact", seed: int = 0,
                 **backend_params) -> None:
        self.service = service
        self.backend = backend
        self.seed = seed
        self.backend_params = backend_params
        self.collectors: dict[int, TrafficMatrixCollector] = {}

    def graph_factory(self, device_ctx: DeviceContext) -> ComponentGraph:
        topology = self.service.tcsp.network.topology
        collector = TrafficMatrixCollector(
            resolver=topology.as_of, resolver_many=topology.as_of_many,
            backend=self.backend,
            seed=self.seed + device_ctx.asn, **self.backend_params)
        self.collectors[device_ctx.asn] = collector
        graph = ComponentGraph(f"stats:{self.service.user.user_id}")
        graph.add(collector)
        return graph

    def deploy(self, scope: Optional[DeploymentScope] = None) -> dict[str, list[int]]:
        scope = scope or DeploymentScope.everywhere()
        return self.service.deploy(scope, dst_graph_factory=self.graph_factory)

    # -------------------------------------------------------------- reporting
    def report(self, at_asn: Optional[int] = None) -> TrafficReport:
        """Aggregate (one device's or all devices') counters.

        Note that aggregating over *all* devices counts a packet once per
        observation point; for volume accounting use ``at_asn`` (e.g. the
        owner's own AS) — for path-coverage analyses use the global view.
        """
        report = TrafficReport()
        selected = ([self.collectors[at_asn]] if at_asn is not None
                    else list(self.collectors.values()))
        first, last = None, None
        for collector in selected:
            report.state_bytes += collector.stats.state_bytes()
            if collector.first_seen is None:
                continue
            report.observation_points += 1
            first = (collector.first_seen if first is None
                     else min(first, collector.first_seen))
            last = (collector.last_seen if last is None
                    else max(last, collector.last_seen))
            for key, pkts, nbytes in collector.stats.items():
                asn, proto = decode_flow_key(key)
                report.packets_by_src_asn[asn] = (
                    report.packets_by_src_asn.get(asn, 0) + pkts)
                report.packets_by_proto[proto] = (
                    report.packets_by_proto.get(proto, 0) + pkts)
                report.bytes_by_src_asn[asn] = (
                    report.bytes_by_src_asn.get(asn, 0) + nbytes)
        if first is not None and last is not None:
            report.duration = max(last - first, 1e-9)
        return report
