"""Tests for the TCSP, ISP NMSes, deployment scoping and the service facade
(paper Figs. 3-5, Sec. 5.1)."""

import pytest

from repro.core import (
    ComponentGraph,
    DeploymentScope,
    NumberAuthority,
    Tcsp,
    TrafficControlService,
)
from repro.core.components import HeaderFilter, HeaderMatch, LoggerComponent
from repro.errors import (
    CertificateError,
    ControlPlaneUnavailable,
    DeploymentError,
    RegistrationError,
    ScopeViolation,
)
from repro.net import ASRole, Network, Packet, Protocol, TopologyBuilder


def build_world(seed=1):
    net = Network(TopologyBuilder.hierarchical(2, 2, 4, seed=seed))
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, net)
    return net, authority, tcsp


def drop_udp_factory(device_ctx):
    g = ComponentGraph("drop-udp")
    g.add(HeaderFilter("f", HeaderMatch(proto=Protocol.UDP)))
    return g


def log_factory(device_ctx):
    g = ComponentGraph("log")
    g.add(LoggerComponent("log"))
    return g


class TestContracts:
    def test_contract_creates_nms_with_devices(self):
        net, authority, tcsp = build_world()
        nms = tcsp.contract_isp("isp1", net.topology.stub_ases)
        assert set(nms.devices) == set(net.topology.stub_ases)
        assert all(net.routers[a].adaptive_device is not None
                   for a in net.topology.stub_ases)

    def test_duplicate_contract_rejected(self):
        net, authority, tcsp = build_world()
        tcsp.contract_isp("isp1", [0])
        with pytest.raises(DeploymentError):
            tcsp.contract_isp("isp1", [1])

    def test_contracted_nmses_are_peered(self):
        net, authority, tcsp = build_world()
        a = tcsp.contract_isp("isp1", net.topology.stub_ases[:2])
        b = tcsp.contract_isp("isp2", net.topology.stub_ases[2:4])
        assert b in a.peers and a in b.peers

    def test_covered_asns(self):
        net, authority, tcsp = build_world()
        tcsp.contract_isp("isp1", net.topology.stub_ases[:3])
        assert tcsp.covered_asns() == set(net.topology.stub_ases[:3])


class TestRegistration:
    def test_fig4_workflow(self):
        net, authority, tcsp = build_world()
        prefix = net.topology.prefix_of(net.topology.stub_ases[0])
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        assert user.prefixes == [prefix]
        tcsp.ca.verify(cert, net.sim.now)
        assert tcsp.user("acme") is user

    def test_unverified_identity_refused(self):
        net, authority, tcsp = build_world()
        prefix = net.topology.prefix_of(0)
        authority.record_allocation(prefix, "acme")
        with pytest.raises(RegistrationError):
            tcsp.register_user("acme", [prefix], identity_verified=False)
        assert tcsp.registrations_refused == 1

    def test_ownership_check_refuses_imposters(self):
        """The Fig. 4 'verifyOwnership' step: you cannot register someone
        else's prefix."""
        net, authority, tcsp = build_world()
        prefix = net.topology.prefix_of(0)
        authority.record_allocation(prefix, "acme")
        with pytest.raises(RegistrationError):
            tcsp.register_user("evil", [prefix])

    def test_empty_prefix_list_refused(self):
        net, authority, tcsp = build_world()
        with pytest.raises(RegistrationError):
            tcsp.register_user("acme", [])

    def test_unknown_user_lookup(self):
        net, authority, tcsp = build_world()
        with pytest.raises(RegistrationError):
            tcsp.user("ghost")


class TestDeployment:
    def _registered(self, seed=1):
        net, authority, tcsp = build_world(seed)
        nms = tcsp.contract_isp("isp1", net.topology.as_numbers)
        victim_asn = net.topology.stub_ases[0]
        prefix = net.topology.prefix_of(victim_asn)
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        return net, tcsp, nms, user, cert, victim_asn

    def test_deploy_resolves_scope(self):
        net, tcsp, nms, user, cert, victim_asn = self._registered()
        result = tcsp.deploy_service(cert, DeploymentScope.stub_borders(),
                                     dst_graph_factory=drop_udp_factory)
        assert set(result["isp1"]) == set(net.topology.stub_ases)

    def test_deploy_unregistered_user_refused(self):
        net, tcsp, nms, user, cert, victim_asn = self._registered()
        stranger_cert = tcsp.ca.issue("stranger", user.prefixes, now=net.sim.now)
        with pytest.raises(RegistrationError):
            tcsp.deploy_service(stranger_cert, DeploymentScope.everywhere(),
                                dst_graph_factory=drop_udp_factory)

    def test_nms_rejects_mismatched_certificate(self):
        net, tcsp, nms, user, cert, victim_asn = self._registered()
        other_cert = tcsp.ca.issue("other", user.prefixes, now=net.sim.now)
        with pytest.raises(CertificateError):
            nms.deploy(other_cert, user, [victim_asn],
                       dst_graph_factory=drop_udp_factory)

    def test_nms_rejects_prefix_outside_certificate(self):
        net, tcsp, nms, user, cert, victim_asn = self._registered()
        from repro.core import NetworkUser

        greedy = NetworkUser("acme", prefixes=[net.topology.prefix_of(1)])
        with pytest.raises(ScopeViolation):
            nms.deploy(cert, greedy, [victim_asn],
                       dst_graph_factory=drop_udp_factory)

    def test_nms_attach_foreign_as_rejected(self):
        net, tcsp, nms, *_ = self._registered()
        from repro.core.nms import IspNms

        other = IspNms("isp2", net, [0], ca=tcsp.ca)
        with pytest.raises(DeploymentError):
            other.attach_devices([1])

    def test_deploy_installs_working_filters(self):
        net, tcsp, nms, user, cert, victim_asn = self._registered()
        tcsp.deploy_service(cert, DeploymentScope.everywhere(),
                            dst_graph_factory=drop_udp_factory)
        victim = net.add_host(victim_asn)
        client = net.add_host(net.topology.stub_ases[1])
        client.send(Packet.udp(client.address, victim.address))
        client.send(Packet.tcp_syn(client.address, victim.address))
        net.run()
        assert victim.received_packets == 1  # only the TCP SYN survived

    def test_activation_toggle(self):
        net, tcsp, nms, user, cert, victim_asn = self._registered()
        tcsp.deploy_service(cert, DeploymentScope.everywhere(),
                            dst_graph_factory=drop_udp_factory)
        touched = tcsp.set_active(cert, False)
        assert touched == len(net.topology.as_numbers)
        victim = net.add_host(victim_asn)
        client = net.add_host(net.topology.stub_ases[1])
        client.send(Packet.udp(client.address, victim.address))
        net.run()
        assert victim.received_packets == 1  # filter present but inactive

    def test_read_logs_roundtrip(self):
        net, tcsp, nms, user, cert, victim_asn = self._registered()
        tcsp.deploy_service(cert, DeploymentScope.everywhere(),
                            dst_graph_factory=log_factory)
        victim = net.add_host(victim_asn)
        client = net.add_host(net.topology.stub_ases[1])
        client.send(Packet.udp(client.address, victim.address))
        net.run()
        entries = tcsp.read_logs(cert)
        assert entries  # each on-path device logged the packet
        assert all(e[4] == int(victim.address) for e in entries)

    def test_rule_count_scales_with_deployment(self):
        net, tcsp, nms, user, cert, victim_asn = self._registered()
        assert tcsp.total_rule_count() == 0
        tcsp.deploy_service(cert, DeploymentScope.stub_borders(),
                            dst_graph_factory=drop_udp_factory)
        assert tcsp.total_rule_count() == len(net.topology.stub_ases)


class TestDeploymentScope:
    def test_everywhere(self):
        t = TopologyBuilder.hierarchical(seed=1)
        assert DeploymentScope.everywhere().resolve(t) == set(t.as_numbers)

    def test_stub_borders(self):
        t = TopologyBuilder.hierarchical(seed=1)
        assert DeploymentScope.stub_borders().resolve(t) == set(t.stub_ases)

    def test_explicit(self):
        t = TopologyBuilder.hierarchical(seed=1)
        assert DeploymentScope.explicit([1, 2]).resolve(t) == {1, 2}

    def test_fraction_sampling_deterministic(self):
        t = TopologyBuilder.powerlaw(n=60, seed=2)
        s = DeploymentScope(roles=(ASRole.STUB,), fraction=0.5, seed=7)
        assert s.resolve(t) == s.resolve(t)
        assert len(s.resolve(t)) == round(0.5 * len(t.stub_ases))

    def test_exclude(self):
        t = TopologyBuilder.hierarchical(seed=1)
        scope = DeploymentScope(roles=(ASRole.STUB,),
                                exclude=frozenset({t.stub_ases[0]}))
        assert t.stub_ases[0] not in scope.resolve(t)

    def test_unknown_as_rejected(self):
        t = TopologyBuilder.star(3)
        with pytest.raises(DeploymentError):
            DeploymentScope.explicit([99]).resolve(t)

    def test_bad_fraction(self):
        t = TopologyBuilder.star(3)
        with pytest.raises(DeploymentError):
            DeploymentScope(fraction=1.5).resolve(t)


class TestTcspResilience:
    """Sec. 5.1: the direct NMS path when the TCSP is under DDoS (E7)."""

    def _world(self):
        net, authority, tcsp = build_world(seed=3)
        nms = tcsp.contract_isp("isp1", net.topology.as_numbers)
        victim_asn = net.topology.stub_ases[0]
        prefix = net.topology.prefix_of(victim_asn)
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        svc = TrafficControlService(tcsp, user, cert, home_nms=nms)
        return net, tcsp, nms, svc, victim_asn

    def test_unreachable_tcsp_raises_without_fallback(self):
        net, tcsp, nms, svc, victim_asn = self._world()
        svc.home_nms = None
        tcsp.reachable = False
        with pytest.raises(ControlPlaneUnavailable):
            svc.deploy(DeploymentScope.everywhere(),
                       dst_graph_factory=drop_udp_factory)

    def test_fallback_deploys_via_home_nms(self):
        net, tcsp, nms, svc, victim_asn = self._world()
        tcsp.reachable = False
        result = svc.deploy(DeploymentScope.stub_borders(),
                            dst_graph_factory=drop_udp_factory)
        assert svc.fallback_used == 1
        assert set(result["isp1"]) == set(net.topology.stub_ases)

    def test_fallback_set_active_and_logs(self):
        net, tcsp, nms, svc, victim_asn = self._world()
        svc.deploy(DeploymentScope.everywhere(), dst_graph_factory=log_factory)
        tcsp.reachable = False
        assert svc.set_active(False) == len(net.topology.as_numbers)
        assert svc.read_logs() == []
        assert svc.fallback_used == 2

    def test_forwarding_to_peer_nmses(self):
        net, authority, tcsp = build_world(seed=4)
        half = len(net.topology.as_numbers) // 2
        nms1 = tcsp.contract_isp("isp1", net.topology.as_numbers[:half])
        nms2 = tcsp.contract_isp("isp2", net.topology.as_numbers[half:])
        victim_asn = net.topology.stub_ases[0]
        prefix = net.topology.prefix_of(victim_asn)
        authority.record_allocation(prefix, "acme")
        user, cert = tcsp.register_user("acme", [prefix])
        svc = TrafficControlService(tcsp, user, cert, home_nms=nms1)
        tcsp.reachable = False
        result = svc.deploy(DeploymentScope.everywhere(),
                            dst_graph_factory=drop_udp_factory)
        configured = set(result["isp1"])
        # the home NMS forwarded the config to its peer: full coverage
        assert configured == set(net.topology.as_numbers)
        assert nms2.deployments == 1

    def test_deploy_requires_a_factory(self):
        net, tcsp, nms, svc, victim_asn = self._world()
        with pytest.raises(DeploymentError):
            svc.deploy(DeploymentScope.everywhere())
