"""Unit tests for the Bloom filter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.util import BloomFilter


class TestBasics:
    def test_membership(self):
        bf = BloomFilter(capacity=100)
        bf.add(b"hello")
        assert b"hello" in bf
        assert b"world" not in bf

    def test_count(self):
        bf = BloomFilter(capacity=10)
        for i in range(5):
            bf.add(str(i).encode())
        assert bf.count == 5

    def test_clear(self):
        bf = BloomFilter(capacity=10)
        bf.add(b"x")
        bf.clear()
        assert b"x" not in bf
        assert bf.count == 0
        assert bf.saturation == 0.0

    def test_salt_changes_hashing(self):
        a = BloomFilter(capacity=100, salt=1)
        b = BloomFilter(capacity=100, salt=2)
        a.add(b"item")
        b.add(b"item")
        assert (a._bits != b._bits).any()

    def test_fp_rate_near_target_at_capacity(self):
        bf = BloomFilter(capacity=1000, fp_rate=0.01, salt=7)
        for i in range(1000):
            bf.add(f"present-{i}".encode())
        false_positives = sum(
            1 for i in range(10_000) if f"absent-{i}".encode() in bf
        )
        # allow generous slack: expect around 1%, fail above 3%
        assert false_positives / 10_000 < 0.03

    def test_saturation_monotone(self):
        bf = BloomFilter(capacity=50, salt=3)
        last = 0.0
        for i in range(50):
            bf.add(str(i).encode())
            assert bf.saturation >= last
            last = bf.saturation

    @pytest.mark.parametrize("cap,fp", [(0, 0.01), (-5, 0.01), (10, 0.0), (10, 1.0)])
    def test_invalid_parameters(self, cap, fp):
        with pytest.raises(ReproError):
            BloomFilter(capacity=cap, fp_rate=fp)


class TestNoFalseNegatives:
    """The defining Bloom-filter property: inserted items are always found.

    SPIE traceback correctness depends on this — a router must never deny
    having seen a packet it forwarded.
    """

    @given(items=st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_every_inserted_item_is_member(self, items):
        bf = BloomFilter(capacity=max(len(items), 8))
        for item in items:
            bf.add(item)
        for item in items:
            assert item in bf
