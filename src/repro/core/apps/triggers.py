"""Automated reaction to network anomalies (paper Sec. 4.4).

"Automated reaction to network anomalies could be implemented by placing
triggers that fire an event if the traffic statistics (e.g. rate of
connection attempts from/to a particular server) indicate values exceeding
expected boundaries.  As a consequence, a rule that rate limits the
anomalous traffic could be activated."

:class:`AutoReactionApp` deploys, per device, a trigger watching the rate
of matching packets plus a *pre-installed but inactive* reaction graph
(here: a rate limiter).  When the trigger fires, the reaction activates on
that device — "triggers can automatically activate predefined additional
configurations" (Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.components import (
    ComponentContext,
    RateLimiterComponent,
    TriggerComponent,
)
from repro.core.device import DeviceContext
from repro.core.deployment import DeploymentScope
from repro.core.graph import ComponentGraph
from repro.core.service import TrafficControlService
from repro.net.packet import Packet

__all__ = ["AutoReactionApp", "ReactionEvent"]


@dataclass(frozen=True)
class ReactionEvent:
    """One trigger firing."""

    time: float
    asn: int
    rate_pps: float
    #: offending sources identified at the firing (heavy-hitter mode only)
    sources: tuple[int, ...] = ()


@dataclass
class _DeviceReaction:
    trigger: TriggerComponent
    limiter: RateLimiterComponent
    active: bool = False
    sources: set[int] = field(default_factory=set)


class AutoReactionApp:
    """Trigger-armed rate limiting for the user's inbound traffic.

    ``heavy_hitter_k`` (> 0) attaches a SpaceSaving source tracker to each
    trigger so firings carry the offending source addresses, and the
    reaction limits *those sources only* instead of all matching traffic.
    ``per_source`` additionally fires the trigger once per source whose
    own rate exceeds ``threshold_pps`` (not just on the aggregate).
    """

    def __init__(self, service: TrafficControlService,
                 threshold_pps: float, limit_bps: float,
                 predicate: Optional[Callable[[Packet], bool]] = None,
                 window: float = 0.25, heavy_hitter_k: int = 0,
                 per_source: bool = False,
                 hh_min_share: float = 0.05) -> None:
        self.service = service
        self.threshold_pps = threshold_pps
        self.limit_bps = limit_bps
        self.predicate = predicate
        self.window = window
        self.heavy_hitter_k = heavy_hitter_k
        self.per_source = per_source
        self.hh_min_share = hh_min_share
        self.events: list[ReactionEvent] = []
        self.reactions: dict[int, _DeviceReaction] = {}

    def graph_factory(self, device_ctx: DeviceContext) -> ComponentGraph:
        """Trigger -> (inactive) limiter, activated by the trigger's event."""
        limiter = RateLimiterComponent("reaction-limit", self.limit_bps)
        reaction = _DeviceReaction(trigger=None, limiter=limiter)  # type: ignore[arg-type]

        predicate = self.predicate

        class GatedLimiter(RateLimiterComponent):
            """Rate limiter that is a no-op until the trigger activates it,
            and then limits only the *anomalous* traffic ("a rule that rate
            limits the anomalous traffic could be activated") — narrowed to
            the identified offenders when the trigger names any."""

            def process(self, packet: Packet, ctx: ComponentContext):
                from repro.core.components import Verdict

                if not reaction.active:
                    return Verdict.PASS
                if predicate is not None and not predicate(packet):
                    return Verdict.PASS
                if reaction.sources and int(packet.src) not in reaction.sources:
                    return Verdict.PASS
                return super().process(packet, ctx)

        gated = GatedLimiter("reaction-limit", self.limit_bps)
        reaction.limiter = gated

        def on_fire(ctx: ComponentContext, rate: float) -> None:
            reaction.active = True
            sources = reaction.trigger.last_sources
            reaction.sources.update(sources)
            self.events.append(ReactionEvent(
                time=ctx.now, asn=ctx.asn, rate_pps=rate, sources=sources))

        trigger = TriggerComponent(
            "anomaly-trigger", self.threshold_pps,
            action=on_fire, predicate=self.predicate, window=self.window,
            track_sources=self.heavy_hitter_k,
            per_source_threshold=(self.threshold_pps if self.per_source
                                  else None),
            hh_min_share=self.hh_min_share)
        reaction.trigger = trigger
        self.reactions[device_ctx.asn] = reaction
        graph = ComponentGraph(f"auto-react:{self.service.user.user_id}")
        graph.chain(trigger, gated)
        return graph

    def deploy(self, scope: Optional[DeploymentScope] = None) -> dict[str, list[int]]:
        scope = scope or DeploymentScope.everywhere()
        return self.service.deploy(scope, dst_graph_factory=self.graph_factory)

    # ----------------------------------------------------------------- metrics
    @property
    def fired(self) -> int:
        return len(self.events)

    def detection_delay(self, attack_start: float) -> Optional[float]:
        """Time from attack start to the first trigger firing."""
        if not self.events:
            return None
        return min(e.time for e in self.events) - attack_start

    def limited_packets(self) -> int:
        return sum(r.limiter.dropped for r in self.reactions.values())

    def offending_sources(self) -> set[int]:
        """Union of sources identified across all devices' firings."""
        out: set[int] = set()
        for reaction in self.reactions.values():
            out.update(reaction.sources)
        return out
