"""Security restrictions on delegated traffic control (paper Sec. 4.5).

Three mechanisms, mirroring the paper's argument that misuse "must be
prevented from the very beginning":

1. **Static vetting** (:func:`vet_component`, :func:`vet_graph`) — "New
   service modules for the adaptive device must be checked for security
   compliance before deployment."  Rejects components that declare writes
   to src/dst/TTL, packet-rate amplification (> 1 output per input), size
   amplification (> 1.0 size ratio), or an excessive side-channel budget.

2. **Runtime conservation monitoring** (:class:`SafetyMonitor`) — catches
   components whose *behaviour* contradicts their declaration: per-packet
   header/size invariants and per-window packet/byte conservation ("the
   amount of the network traffic leaving the adaptive device must be equal
   or less compared to the amount of traffic entering it").

3. **Scope confinement** is structural (the device only ever hands a user's
   graph packets that user owns — see :mod:`repro.core.device`), so it
   needs no checking here; tests prove it by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SafetyViolation, VettingError
from repro.core.components import Component
from repro.core.graph import ComponentGraph
from repro.net.packet import Packet

__all__ = [
    "FORBIDDEN_HEADER_FIELDS",
    "MAX_EXTRA_TRAFFIC_BPS",
    "vet_component",
    "vet_graph",
    "PacketSnapshot",
    "SafetyMonitor",
]

#: Sec. 4.5: "We do not allow the adaptive device to modify the source and
#: the destination IP address of a packet.  ...  Also the TTL field ... is
#: a field we cannot allow to be modified."
FORBIDDEN_HEADER_FIELDS: frozenset[str] = frozenset({"src", "dst", "ttl"})

#: Footnote 1: logging/statistics/triggers get "a reasonable amount of
#: additional traffic" — capped per component.
MAX_EXTRA_TRAFFIC_BPS: float = 64_000.0


def vet_component(component: Component) -> None:
    """Static security check of one component's declared capabilities."""
    caps = component.capabilities
    forbidden = caps.modifies_headers & FORBIDDEN_HEADER_FIELDS
    if forbidden:
        raise VettingError(
            f"component {component.name!r} declares writes to forbidden "
            f"header fields {sorted(forbidden)} (Sec. 4.5)"
        )
    if caps.max_outputs_per_input > 1:
        raise VettingError(
            f"component {component.name!r} may emit "
            f"{caps.max_outputs_per_input} packets per input: rate "
            f"amplification is forbidden (Sec. 4.5)"
        )
    if caps.max_size_ratio > 1.0:
        raise VettingError(
            f"component {component.name!r} may grow packets by factor "
            f"{caps.max_size_ratio}: byte amplification is forbidden (Sec. 4.5)"
        )
    if caps.extra_traffic_bps > MAX_EXTRA_TRAFFIC_BPS:
        raise VettingError(
            f"component {component.name!r} requests {caps.extra_traffic_bps:.0f} "
            f"bit/s of side-channel traffic (max {MAX_EXTRA_TRAFFIC_BPS:.0f})"
        )


def vet_graph(graph: ComponentGraph) -> None:
    """Vet every component and the graph structure before deployment."""
    graph.validate()
    for component in graph.components():
        vet_component(component)
    total_extra = sum(c.capabilities.extra_traffic_bps for c in graph.components())
    if total_extra > 2 * MAX_EXTRA_TRAFFIC_BPS:
        raise VettingError(
            f"graph {graph.name!r} aggregates {total_extra:.0f} bit/s of "
            f"side-channel traffic (max {2 * MAX_EXTRA_TRAFFIC_BPS:.0f})"
        )


@dataclass(frozen=True)
class PacketSnapshot:
    """Immutable copy of the safety-relevant header fields."""

    src: int
    dst: int
    ttl: int
    size: int

    @classmethod
    def of(cls, packet: Packet) -> "PacketSnapshot":
        return cls(src=int(packet.src), dst=int(packet.dst),
                   ttl=packet.ttl, size=packet.size)


class SafetyMonitor:
    """Runtime enforcement of the Sec. 4.5 conservation invariants.

    The adaptive device snapshots each packet before a service graph runs
    and calls :meth:`check` afterwards.  Violations raise
    :class:`SafetyViolation`; the device disables the offending service
    ("countermeasures against effects of misconfigurations and misuse").
    """

    def __init__(self) -> None:
        self.packets_in = 0
        self.packets_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.violations = 0

    def note_in(self, packet: Packet) -> PacketSnapshot:
        self.packets_in += 1
        self.bytes_in += packet.size
        return PacketSnapshot.of(packet)

    def check(self, before: PacketSnapshot, packet: Packet | None,
              service_name: str) -> None:
        """Validate the packet (or its drop) against the pre-snapshot."""
        if packet is None:  # dropped: conservation trivially holds
            self._assert_conservation(service_name)
            return
        if int(packet.src) != before.src or int(packet.dst) != before.dst:
            self.violations += 1
            raise SafetyViolation(
                f"service {service_name!r} rewrote src/dst addresses "
                f"(rerouting could 'wreak havoc easily', Sec. 4.5)"
            )
        if packet.ttl != before.ttl:
            self.violations += 1
            raise SafetyViolation(
                f"service {service_name!r} modified the TTL field (Sec. 4.5)"
            )
        if packet.size > before.size:
            self.violations += 1
            raise SafetyViolation(
                f"service {service_name!r} grew the packet from "
                f"{before.size} to {packet.size} bytes: byte amplification"
            )
        self.packets_out += 1
        self.bytes_out += packet.size
        self._assert_conservation(service_name)

    def _assert_conservation(self, service_name: str) -> None:
        if self.packets_out > self.packets_in:
            self.violations += 1
            raise SafetyViolation(
                f"service {service_name!r} emitted more packets than it "
                f"received ({self.packets_out} > {self.packets_in})"
            )
        if self.bytes_out > self.bytes_in:
            self.violations += 1
            raise SafetyViolation(
                f"service {service_name!r} emitted more bytes than it "
                f"received ({self.bytes_out} > {self.bytes_in})"
            )

    @property
    def conserving(self) -> bool:
        return self.packets_out <= self.packets_in and self.bytes_out <= self.bytes_in
