"""E9 — traceback: who gets identified, and SPIE backlog limits
(paper Secs. 3.1 and 4.4).

Part a reproduces the paper's central negative claim about reactive
traceback: "Reactive strategies involving traceback mechanisms will yield
a wrong attack source — the reflectors — if DDoS attacks involve
reflectors."  We run PPM, classic SPIE and the TCS-hosted SPIE service
against direct and reflector attacks and classify the identified sources
against ground truth.

Part b measures the SPIE digest-backlog effect: packets older than the
retained windows become untraceable.
"""

from __future__ import annotations

from repro.core import DeploymentScope
from repro.core.apps import SpieTracebackApp
from repro.experiments.common import ExperimentConfig, register
from repro.mitigation import PPMTraceback, SpieTraceback
from repro.mitigation.traceback import MarkingCollector
from repro.net import Network, Packet, TopologyBuilder
from repro.scenario import AttackSpec, ScenarioSpec, TopologySpec
from repro.scenario.tcs import build_tcs_world
from repro.util.tables import Table

__all__ = ["run", "identification_table", "backlog_table"]


def _scenario(attack_kind: str, cfg: ExperimentConfig):
    built = ScenarioSpec(
        name=f"e9-{attack_kind}", seed=cfg.seed,
        topology=TopologySpec(kind="hierarchical", n_core=2,
                              transit_per_core=2, stub_per_transit=8),
        attack=AttackSpec(kind=attack_kind, n_agents=6, n_reflectors=5,
                          attack_rate_pps=300.0, duration=0.5,
                          seed_offset=2),
    ).build()
    return built.network, built.scenario


def identification_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E9a: traceback identification vs. ground truth (Sec. 3.1)",
        ["attack", "method", "identified_agent_ases", "identified_reflector_ases",
         "identified_other", "verdict"],
    )
    for attack_kind in ("direct-spoofed", "reflector"):
        for method in ("ppm", "spie", "tcs-spie"):
            net, sc = _scenario(attack_kind, cfg)
            agent_asns = {a.asn for a in sc.agents}
            reflector_asns = {r.asn for r in sc.reflectors}
            identified: set[int] = set()
            if method == "ppm":
                ppm = PPMTraceback(p=0.1, seed=cfg.seed)
                ppm.deploy(net, net.topology.as_numbers)
                collector = MarkingCollector()
                sc.victim.add_responder(collector.on_packet)
                sc.run()
                identified = PPMTraceback.identified_source_asns(collector,
                                                                 min_count=2)
            else:
                sc.victim.record = True
                if method == "spie":
                    spie = SpieTraceback()
                    spie.deploy(net, net.topology.as_numbers)
                    sc.run()

                    def tracer(pkt, spie=spie):
                        return spie.trace(pkt, sc.victim_asn).origin_asn
                else:
                    world = build_tcs_world(net, owner_asn=sc.victim_asn,
                                            service=True)
                    app = SpieTracebackApp(world.service)
                    app.deploy(DeploymentScope.everywhere())
                    sc.run()

                    def tracer(pkt, app=app):
                        return app.trace(pkt, sc.victim_asn).origin_asn
                attack_pkts = [p for _, p in sc.victim.log
                               if p.kind.startswith("attack")][:40]
                for pkt in attack_pkts:
                    origin = tracer(pkt)
                    if origin is not None:
                        identified.add(origin)
            # ASes hosting both an agent and a reflector are ambiguous;
            # classify against the unambiguous sets.
            agent_only = agent_asns - reflector_asns
            reflector_only = reflector_asns - agent_asns
            in_agents = len(identified & agent_only)
            in_reflectors = len(identified & reflector_only)
            other = len(identified - agent_asns - reflector_asns)
            if attack_kind == "reflector" and not in_agents and in_reflectors:
                verdict = "wrong source: reflectors"
            elif in_agents and not in_reflectors and not other:
                verdict = "true agents found"
            else:
                verdict = "mixed"
            table.add_row(attack_kind, method, in_agents, in_reflectors,
                          other, verdict)
    table.add_note("for reflector attacks every method terminates at the "
                   "reflectors — the packets the victim receives were "
                   "genuinely created there (Sec. 3.1)")
    return table


def backlog_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E9b: SPIE traceability vs. packet age (digest backlog, Sec. 4.4)",
        ["packet_age_s", "retained_windows", "traceable_fraction"],
    )
    for max_windows in (2, 8):
        net = Network(TopologyBuilder.line(5))
        spie = SpieTraceback(window=0.5, max_windows=max_windows)
        spie.deploy(net, net.topology.as_numbers)
        src = net.add_host(0)
        victim = net.add_host(4, record=True)
        # one probe every 0.5 s for 10 s
        for i in range(20):
            net.sim.schedule_at(i * 0.5, src.send,
                                Packet.udp(src.address, victim.address))
        net.run(until=10.5)
        now = net.sim.now
        for age_bucket in (1.0, 3.0, 6.0, 9.0):
            packets = [(t, p) for t, p in victim.log
                       if age_bucket - 0.5 <= now - t < age_bucket + 0.5]
            if not packets:
                continue
            traced = sum(
                1 for _, p in packets
                if spie.trace(p, 4).origin_asn == 0
            )
            table.add_row(age_bucket, max_windows,
                          round(traced / len(packets), 2))
    table.add_note("windows are 0.5 s each; packets older than the retained "
                   "backlog cannot be traced to their origin any more")
    return table


@register("E9")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [identification_table(cfg), backlog_table(cfg)]
