#!/usr/bin/env python3
"""Quickstart: stop a DDoS reflector attack with the traffic control service.

Walks the paper's core story end to end:

1. build a small Internet (AS topology, routers, hosts),
2. launch a DDoS reflector attack against a web site (paper Fig. 1),
3. register the web site's owner with the TCSP (Fig. 4),
4. deploy worldwide anti-spoofing rules through the service (Sec. 4.3),
5. re-run the attack: it now dies at the sources' own ISPs.

Run:  python examples/quickstart.py
"""

from repro.attack import AttackScenario, ScenarioConfig
from repro.core import NumberAuthority, Tcsp, TrafficControlService
from repro.core.apps import AntiSpoofApp
from repro.net import Network, TopologyBuilder
from repro.util.units import fmt_rate


def run_attack(defended: bool) -> None:
    # --- 1. a small Internet: 2 core, 4 transit, 24 stub ASes
    network = Network(TopologyBuilder.hierarchical(
        n_core=2, transit_per_core=2, stub_per_transit=6, seed=7))

    # --- 2. the attack: agents spoof the victim toward innocent DNS servers
    scenario = AttackScenario(network, ScenarioConfig(
        attack_kind="reflector", n_agents=8, n_reflectors=6,
        attack_rate_pps=400.0, amplification=8.0, reflector_mode="dns",
        duration=0.5, seed=11))

    if defended:
        # --- 3. register ownership of the victim's prefix with the TCSP
        authority = NumberAuthority()
        tcsp = Tcsp("TCSP", authority, network)
        nms = tcsp.contract_isp("world-isp", network.topology.as_numbers)
        victim_prefix = network.topology.prefix_of(scenario.victim_asn)
        authority.record_allocation(victim_prefix, "example-shop")
        user, cert = tcsp.register_user("example-shop", [victim_prefix])
        service = TrafficControlService(tcsp, user, cert, home_nms=nms)

        # --- 4. one call deploys anti-spoofing at every stub border
        deployed = AntiSpoofApp(service).deploy()
        n_devices = sum(len(v) for v in deployed.values())
        print(f"  [TCS] anti-spoofing deployed on {n_devices} adaptive devices")

    # --- 5. run and report
    metrics = scenario.run()
    attack_bps = metrics.attack_bytes_at_victim * 8 / scenario.config.duration
    print(f"  attack traffic at victim : {metrics.attack_packets_at_victim} packets "
          f"({fmt_rate(attack_bps)})")
    print(f"  legitimate goodput       : {metrics.legit_goodput:.0%}")
    print(f"  wasted transport work    : {metrics.byte_hops_attack:,.0f} byte-hops")
    print(f"  collateral damage        : {metrics.collateral_fraction:.0%}")


def main() -> None:
    print("=== undefended reflector attack (paper Fig. 1) ===")
    run_attack(defended=False)
    print()
    print("=== same attack, victim subscribed to the TCS (Sec. 4.3) ===")
    run_attack(defended=True)


if __name__ == "__main__":
    main()
