"""E1 — anatomy of the DDoS reflector attack (paper Fig. 1 and Sec. 2.2).

Reproduces, as measured quantities, the three amplification properties the
paper attributes to the amplifying network: packet-rate amplification,
byte amplification and traceback difficulty — swept over the attack
structure — plus the worm-recruitment curve ("a huge amplifying network of
several ten thousand hosts in a short time", Sec. 2.1, Slammer-style).
"""

from __future__ import annotations

from repro.attack import EpidemicModel, measure_amplification
from repro.experiments.common import ExperimentConfig, register
from repro.scenario import AttackSpec, ScenarioSpec, TopologySpec
from repro.util.tables import Table

__all__ = ["run", "anatomy_table", "worm_table"]


def anatomy_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E1a: reflector-attack amplification vs. structure (Fig. 1 / Sec. 2.2)",
        ["agents", "reflectors", "reply_amp", "control_pkts",
         "attack_pkts@victim", "rate_amp", "byte_amp", "traceback_depth"],
    )
    sweeps = [
        (2, 2, 1.0), (4, 4, 1.0), (8, 6, 1.0),
        (4, 4, 3.0), (4, 4, 10.0),
        (cfg.scaled(12), cfg.scaled(8), 3.0),
    ]
    for n_agents, n_reflectors, amp in sweeps:
        spec = ScenarioSpec(
            name="e1-anatomy", seed=cfg.seed,
            topology=TopologySpec(kind="hierarchical", n_core=2,
                                  transit_per_core=2, stub_per_transit=8),
            attack=AttackSpec(kind="reflector", n_agents=n_agents,
                              n_reflectors=n_reflectors,
                              attack_rate_pps=200.0, amplification=amp,
                              reflector_mode="dns", duration=0.5),
        )
        scenario = spec.build().scenario
        metrics = scenario.run()
        report = measure_amplification(
            scenario.structure, scenario.victim, metrics.control_packets,
            metrics.attack_requests_sent * spec.attack.request_size,
        )
        table.add_row(n_agents, n_reflectors, amp, report.control_packets,
                      report.attack_packets_at_victim,
                      round(report.rate_amplification, 1),
                      round(report.byte_amplification, 2),
                      report.traceback_depth)
    table.add_note("rate_amp = attack packets at victim per control packet; "
                   "byte_amp = victim attack bytes per agent request byte; "
                   "depth counts indirection levels attacker->master->agent->reflector")
    return table


def worm_table(cfg: ExperimentConfig) -> Table:
    """Slammer-parameter SI curve: the agent pool available over time."""
    table = Table(
        "E1b: worm-recruited agent population over time (Sec. 2.1, "
        "Slammer-like SI epidemic)",
        ["t_seconds", "infected_hosts", "fraction_of_vulnerable"],
    )
    model = EpidemicModel(n_vulnerable=75_000, scan_rate=4_000.0,
                          initial_infected=1)
    for t in (0.0, 60.0, 120.0, 180.0, 240.0, 300.0, 600.0, 1200.0):
        infected = float(model.infected_at(t))
        table.add_row(t, int(infected), round(infected / 75_000, 4))
    table.add_note("doubling time ~%.1f s early on; 'several ten thousand "
                   "hosts in a short time' (Sec. 2.1)"
                   % (float(__import__('math').log(2)) / (model.beta * 75_000)))
    return table


@register("E1")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [anatomy_table(cfg), worm_table(cfg)]
