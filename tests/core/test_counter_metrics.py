"""Graph/component counters live on the obs registry (attribute views stay)."""

from repro.core.components import (
    ComponentContext,
    HeaderFilter,
    HeaderMatch,
    Verdict,
)
from repro.core.graph import ComponentGraph
from repro.core.ownership import NetworkUser
from repro.net import IPv4Address, Packet, Prefix, Protocol
from repro.obs import scoped


def ctx() -> ComponentContext:
    return ComponentContext(
        now=0.0, asn=1, is_transit=False,
        local_prefix=Prefix.parse("10.9.0.0/16"), stage="dest",
        owner=NetworkUser("u", prefixes=[Prefix.parse("10.1.0.0/16")]),
        ingress_asn=None, local_origin=True)


def test_counters_surface_in_registry_snapshot():
    with scoped() as registry:
        graph = ComponentGraph("snap")
        graph.chain(HeaderFilter("f", HeaderMatch(proto=Protocol.UDP)))
        pkt = Packet.udp(IPv4Address.parse("1.2.3.4"),
                         IPv4Address.parse("10.1.0.1"))
        assert graph.process(pkt, ctx()) is Verdict.DROP
        snap = registry.snapshot()
    assert snap["graph.packets_in{graph=snap}"] == 1
    assert snap["graph.packets_dropped{graph=snap}"] == 1
    assert snap["component.processed{component=f}"] == 1
    assert snap["component.dropped{component=f}"] == 1


def test_legacy_attribute_views_read_and_write():
    graph = ComponentGraph("legacy")
    comp = HeaderFilter("f", HeaderMatch(proto=Protocol.UDP))
    graph.chain(comp)
    assert graph.packets_in == 0 and comp.processed == 0
    graph.process(Packet.udp(IPv4Address.parse("1.2.3.4"),
                             IPv4Address.parse("10.1.0.1")), ctx())
    assert graph.packets_in == 1
    assert graph.packets_dropped == 1
    assert comp.processed == 1 and comp.dropped == 1
    # setters (the pre-migration API allowed resets)
    graph.packets_in = 0
    graph.packets_dropped = 0
    comp.processed = 0
    comp.dropped = 0
    assert graph.packets_in == 0 and comp.dropped == 0


def test_namesake_component_clobbers_the_series():
    """``fresh=True`` binding: a later namesake starts the registry series
    from zero with its own cell (a rebuilt graph must not inherit counts),
    while the earlier object keeps counting privately."""
    with scoped() as registry:
        a = HeaderFilter("dup", HeaderMatch(proto=Protocol.UDP))
        a.processed = 3
        b = HeaderFilter("dup", HeaderMatch(proto=Protocol.TCP))
        assert b.processed == 0
        assert a.processed == 3  # detached from the series, still readable
        b.processed = 5
        snap = registry.snapshot()
    assert snap["component.processed{component=dup}"] == 5
