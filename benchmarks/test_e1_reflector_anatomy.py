"""Benchmark regenerating E1: reflector-attack anatomy and amplification (Fig. 1, Sec. 2.2)."""

from repro.experiments import e1_reflector_anatomy

from conftest import run_and_print


def test_e1(benchmark, exp_cfg):
    """E1: reflector-attack anatomy and amplification (Fig. 1, Sec. 2.2)"""
    run_and_print(benchmark, e1_reflector_anatomy.run, exp_cfg)
