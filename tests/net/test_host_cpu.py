"""Tests for the host CPU (processing capacity) model."""

import pytest

from repro.net import Network, Packet, TopologyBuilder


def farm_host(processing_pps, n_packets=100, gap=0.001):
    net = Network(TopologyBuilder.line(2))
    server = net.add_host(1, processing_pps=processing_pps)
    client = net.add_host(0)
    for i in range(n_packets):
        net.sim.schedule_at(i * gap, client.send,
                            Packet.udp(client.address, server.address))
    net.run()
    return server


class TestHostCpu:
    def test_unlimited_by_default(self):
        server = farm_host(None)
        assert server.received_packets == 100
        assert server.cpu_dropped == 0

    def test_overload_drops_excess(self):
        # 1000 pps arrival against a 200 pps server
        server = farm_host(200.0)
        assert server.cpu_dropped > 0
        assert server.received_packets + server.cpu_dropped == 100
        # serviced rate is bounded by capacity (0.1 s sim -> ~20 services
        # plus window-boundary slack)
        assert server.received_packets < 60

    def test_slow_arrivals_all_serviced(self):
        server = farm_host(200.0, n_packets=20, gap=0.05)  # 20 pps
        assert server.cpu_dropped == 0
        assert server.received_packets == 20

    def test_drops_tracked_by_kind(self):
        net = Network(TopologyBuilder.line(2))
        server = net.add_host(1, processing_pps=100.0)
        client = net.add_host(0)
        for i in range(50):
            kind = "attack" if i % 2 else "legit"
            net.sim.schedule_at(i * 0.0005, client.send,
                                Packet.udp(client.address, server.address,
                                           kind=kind))
        net.run()
        assert server.cpu_dropped > 0
        assert set(server.cpu_dropped_by_kind) <= {"attack", "legit"}
        assert (sum(server.cpu_dropped_by_kind.values())
                == server.cpu_dropped)

    def test_cpu_drops_invisible_to_responders(self):
        net = Network(TopologyBuilder.line(2))
        server = net.add_host(1, processing_pps=100.0)
        client = net.add_host(0)
        serviced = []
        server.add_responder(lambda pkt, host, now: serviced.append(pkt.uid) or None)
        for i in range(50):
            net.sim.schedule_at(i * 0.0005, client.send,
                                Packet.udp(client.address, server.address))
        net.run()
        assert len(serviced) == server.received_packets

    def test_reset_clears_cpu_counters(self):
        server = farm_host(100.0)
        assert server.cpu_dropped > 0
        server.reset_stats()
        assert server.cpu_dropped == 0
        assert not server.cpu_dropped_by_kind


class TestE14:
    def test_farm_failure_mode_shape(self):
        from repro.experiments import e14_server_farm
        from repro.experiments.common import ExperimentConfig

        table = e14_server_farm.run(ExperimentConfig(seed=42, scale=0.5))[0]
        rows = {row[0]: row for row in table.rows}
        # the farm link never congests in any run
        assert all(row[1] < 10.0 for row in table.rows)
        # pushback sees nothing and helps nobody
        assert rows["pushback"][3] == 0
        assert rows["pushback"][4] == pytest.approx(rows["none"][4], abs=5)
        # the TCS restores full service
        assert rows["tcs"][4] == 100.0
        assert rows["tcs"][2] == 0
