#!/usr/bin/env python3
"""Live service mode: the TCS decision core embedded as ASGI middleware.

The simulator's adaptive device and this live stack share one decision
core (`repro.service.DecisionCore`): ownership lookup behind the per-flow
LRU cache, the two-stage owner pipeline, and safety containment.  Here
the core fronts an ordinary ASGI application — the same wrapping works
unchanged for any ASGI framework (FastAPI, Starlette, Django async),
because ASGI is a calling convention, not a library.

The demo subscribes one protected service, blacklists an attacker's
prefix, adds an admission token bucket, then plays six requests through
the middleware and narrates each verdict: 200 for clean clients, 403 for
the blacklisted one, 429 once the admission bucket runs dry.

Run:  python examples/service_middleware.py
"""

import asyncio

from repro.core import ComponentGraph, NetworkUser
from repro.core.components import PrefixBlacklist
from repro.net import Prefix
from repro.service import (
    AsgiTrafficMiddleware,
    ManualClock,
    ServiceFacade,
    TrafficController,
)
from repro.util import TokenBucket


async def shop_app(scope, receive, send):
    """The protected application — never sees a blocked request."""
    await send({"type": "http.response.start", "status": 200,
                "headers": [(b"content-type", b"text/plain")]})
    await send({"type": "http.response.body", "body": b"welcome to shop-co\n"})


async def play_request(app, client_ip):
    """Drive one request through the middleware, ASGI-style."""
    sent = []

    async def send(message):
        sent.append(message)

    async def receive():
        return {"type": "http.request"}

    await app({"type": "http", "client": (client_ip, 40000),
               "path": "/"}, receive, send)
    status = sent[0]["status"]
    body = sent[1]["body"].decode().strip()
    return status, body


def main() -> None:
    # --- the live control stack: one subscriber, one blacklist graph
    clock = ManualClock()
    facade = ServiceFacade(clock=clock)
    shop = NetworkUser("shop-co", prefixes=[Prefix.parse("10.1.0.0/16")])
    graph = ComponentGraph("shop-ingress")
    graph.chain(PrefixBlacklist("ban-botnet",
                                [Prefix.parse("203.0.113.0/24")]))
    facade.subscribe(shop, dst_graph=graph)

    # --- admission: at most 4 requests before the bucket needs refilling
    controller = TrafficController(
        facade, "10.1.0.80",
        admission=TokenBucket(rate=1.0, burst=4.0))
    app = AsgiTrafficMiddleware(shop_app, controller)

    clients = [
        ("198.51.100.7", "a regular customer"),
        ("203.0.113.66", "a blacklisted bot"),
        ("198.51.100.8", "another customer"),
        ("198.51.100.7", "the first customer again"),
        ("203.0.113.67", "another bot, but the bucket is empty"),
        ("198.51.100.9", "a customer the empty bucket turns away"),
    ]
    print("requests through the traffic-controlled ASGI app:")
    for ip, who in clients:
        status, body = asyncio.run(play_request(app, ip))
        print(f"  {ip:>13} ({who:<38}) -> {status} {body!r}")

    passed = facade._m_pass.value
    dropped = facade._m_drop.value
    rejected = controller._m_admission_rejected.value
    print(f"\nfacade verdicts: {passed} passed, {dropped} filtered, "
          f"{rejected} admission-rejected")

    # --- time is injectable: refill the bucket and the customer is back
    clock.advance(1.0)
    status, _ = asyncio.run(play_request(app, "198.51.100.9"))
    print(f"after advancing the clock 1s, 198.51.100.9 -> {status}")
    assert status == 200


if __name__ == "__main__":
    main()
