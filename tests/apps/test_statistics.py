"""Tests for the distributed traffic-statistics application."""

import pytest

from repro.core import DeploymentScope, NumberAuthority, Tcsp, TrafficControlService
from repro.core.apps import DistributedStatisticsApp
from repro.net import Network, Packet, TopologyBuilder


def world(seed=31):
    net = Network(TopologyBuilder.hierarchical(2, 2, 4, seed=seed))
    stubs = net.topology.stub_ases
    site = net.add_host(stubs[0])
    clients = [net.add_host(a) for a in stubs[1:4]]
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, net)
    tcsp.contract_isp("isp", net.topology.as_numbers)
    prefix = net.topology.prefix_of(site.asn)
    authority.record_allocation(prefix, "site-co")
    user, cert = tcsp.register_user("site-co", [prefix])
    svc = TrafficControlService(tcsp, user, cert)
    app = DistributedStatisticsApp(svc)
    return net, site, clients, app


class TestDistributedStatistics:
    def test_traffic_matrix_by_source_as(self):
        net, site, clients, app = world()
        app.deploy(DeploymentScope.explicit([site.asn]))
        for i, client in enumerate(clients):
            for _ in range(i + 1):
                client.send(Packet.udp(client.address, site.address, size=100))
        net.run()
        report = app.report(at_asn=site.asn)
        assert report.packets_by_src_asn == {
            clients[0].asn: 1, clients[1].asn: 2, clients[2].asn: 3,
        }
        assert report.packets_by_proto == {"UDP": 6}

    def test_top_sources(self):
        net, site, clients, app = world()
        app.deploy(DeploymentScope.explicit([site.asn]))
        for _ in range(5):
            clients[2].send(Packet.udp(clients[2].address, site.address, size=1000))
        clients[0].send(Packet.udp(clients[0].address, site.address, size=100))
        net.run()
        report = app.report(at_asn=site.asn)
        top = report.top_sources(1)
        assert top[0][0] == clients[2].asn
        assert top[0][1] == 5000

    def test_rate_estimation(self):
        net, site, clients, app = world()
        app.deploy(DeploymentScope.explicit([site.asn]))
        for i in range(11):
            net.sim.schedule_at(i * 0.1, clients[0].send,
                                Packet.udp(clients[0].address, site.address,
                                           size=125))
        net.run()
        report = app.report(at_asn=site.asn)
        # 11 packets x 125 B over ~1 s observation window ~ 11 kbit/s
        assert report.rate_bps() == pytest.approx(11_000, rel=0.15)
        assert report.rate_bps(clients[0].asn) == report.rate_bps()
        assert report.rate_bps(clients[1].asn) == 0.0

    def test_global_view_counts_observation_points(self):
        net, site, clients, app = world()
        app.deploy(DeploymentScope.everywhere())
        clients[0].send(Packet.udp(clients[0].address, site.address))
        net.run()
        report = app.report()
        # every AS on the client->site path observed the packet
        path_len = len(net.path(clients[0].asn, site.asn))
        assert report.observation_points == path_len
        assert report.packets_by_proto["UDP"] == path_len

    def test_scope_confinement_other_traffic_invisible(self):
        net, site, clients, app = world()
        app.deploy(DeploymentScope.everywhere())
        # traffic between two third parties must never appear in the stats
        clients[0].send(Packet.udp(clients[0].address, clients[1].address))
        net.run()
        report = app.report()
        assert report.observation_points == 0
        assert not report.packets_by_src_asn

    def test_empty_report(self):
        net, site, clients, app = world()
        app.deploy(DeploymentScope.explicit([site.asn]))
        report = app.report()
        assert report.duration == 0.0
        assert report.rate_bps() == 0.0
        assert report.top_sources() == []
